// Tests for the figure-driver harness (bench/bench_common).

#include "bench_common.h"

#include <gtest/gtest.h>

#include "support/log.h"

namespace fed::bench {
namespace {

class BenchCommonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }
};

TEST_F(BenchCommonTest, ParseOptionsDefaults) {
  const char* argv[] = {"prog"};
  const BenchOptions options = parse_options(1, const_cast<char**>(argv));
  EXPECT_EQ(options.seed, 1u);
  EXPECT_DOUBLE_EQ(options.scale, 1.0);
  EXPECT_EQ(options.epochs, 20u);
  EXPECT_EQ(options.rounds_override, 0u);
  EXPECT_FALSE(options.quick);
}

TEST_F(BenchCommonTest, QuickModeShrinksScale) {
  const char* argv[] = {"prog", "--quick", "--scale=0.5"};
  const BenchOptions options = parse_options(3, const_cast<char**>(argv));
  EXPECT_TRUE(options.quick);
  EXPECT_LE(options.scale, 0.1);
}

TEST_F(BenchCommonTest, ApplyRoundsHonorsOverrideAndQuick) {
  const char* argv[] = {"prog", "--rounds=37"};
  BenchOptions options = parse_options(2, const_cast<char**>(argv));
  const Workload w = load_workload("synthetic_iid", options);
  TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, 0.0, 20, 1);
  apply_rounds(c, w, options);
  EXPECT_EQ(c.rounds, 37u);

  options.rounds_override = 0;
  options.quick = true;
  apply_rounds(c, w, options);
  EXPECT_EQ(c.rounds, std::max<std::size_t>(2, w.default_rounds / 20));
}

TEST_F(BenchCommonTest, RenderSeriesAlignsVariants) {
  VariantResult a{"method-a", {}};
  VariantResult b{"method-b", {}};
  for (std::size_t r : {0u, 5u, 10u}) {
    RoundMetrics m;
    m.round = r;
    m.train_loss = 1.0 + r;
    m.test_accuracy = 0.1 * r;
    a.history.rounds.push_back(m);
    m.train_loss = 2.0 + r;
    b.history.rounds.push_back(m);
  }
  const std::string loss = render_series({a, b}, Metric::kTrainLoss);
  EXPECT_NE(loss.find("method-a"), std::string::npos);
  EXPECT_NE(loss.find("method-b"), std::string::npos);
  EXPECT_NE(loss.find("6.0000"), std::string::npos);   // a at round 5
  EXPECT_NE(loss.find("12.0000"), std::string::npos);  // b at round 10
  const std::string acc = render_series({a}, Metric::kTestAccuracy);
  EXPECT_NE(acc.find("0.5000"), std::string::npos);
  EXPECT_NE(acc.find("1.0000"), std::string::npos);
}

TEST_F(BenchCommonTest, RenderSeriesSkipsUnmeasuredVariance) {
  VariantResult a{"x", {}};
  RoundMetrics m;
  m.round = 1;
  m.train_loss = 0.5;  // evaluated, but variance never measured: '-'
  a.history.rounds.push_back(m);
  const std::string table = render_series({a}, Metric::kGradVariance);
  EXPECT_EQ(table.find("42.0"), std::string::npos);
}

TEST_F(BenchCommonTest, MetricNames) {
  EXPECT_STREQ(metric_name(Metric::kTrainLoss), "training loss");
  EXPECT_STREQ(metric_name(Metric::kMu), "mu");
}

}  // namespace
}  // namespace fed::bench
