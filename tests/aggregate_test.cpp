#include "sim/aggregate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace fed {
namespace {

// Single-shot aggregation through the partial-sum API: accumulate every
// contribution into one partial and finalize.
bool aggregate_all(SamplingScheme scheme,
                   std::span<const Contribution> contributions,
                   std::span<double> w) {
  PartialAggregate all(scheme, w.size());
  for (const Contribution& c : contributions) all.accumulate(c);
  return all.finalize(w);
}

TEST(Aggregate, WeightedAverageUsesSampleCounts) {
  Vector a{1.0, 0.0}, b{0.0, 1.0};
  std::vector<Contribution> contributions{{0, &a, 30.0}, {1, &b, 10.0}};
  Vector w(2, 99.0);
  ASSERT_TRUE(aggregate_all(SamplingScheme::kUniformThenWeightedAverage,
                            contributions, w));
  EXPECT_NEAR(w[0], 0.75, 1e-12);
  EXPECT_NEAR(w[1], 0.25, 1e-12);
}

TEST(Aggregate, SimpleAverageIgnoresSampleCounts) {
  Vector a{1.0, 0.0}, b{0.0, 1.0};
  std::vector<Contribution> contributions{{0, &a, 1000.0}, {1, &b, 1.0}};
  Vector w(2);
  ASSERT_TRUE(aggregate_all(SamplingScheme::kWeightedThenSimpleAverage,
                            contributions, w));
  EXPECT_NEAR(w[0], 0.5, 1e-12);
  EXPECT_NEAR(w[1], 0.5, 1e-12);
}

TEST(Aggregate, EmptyContributionsLeaveModelUntouched) {
  Vector w{3.0, 4.0};
  std::vector<Contribution> none;
  EXPECT_FALSE(
      aggregate_all(SamplingScheme::kUniformThenWeightedAverage, none, w));
  EXPECT_DOUBLE_EQ(w[0], 3.0);
  EXPECT_DOUBLE_EQ(w[1], 4.0);
}

TEST(Aggregate, IdenticalUpdatesAreFixedPoint) {
  Vector u{2.0, -1.0, 0.5};
  std::vector<Contribution> contributions{{0, &u, 5.0}, {1, &u, 50.0},
                                          {2, &u, 500.0}};
  for (auto scheme : {SamplingScheme::kUniformThenWeightedAverage,
                      SamplingScheme::kWeightedThenSimpleAverage}) {
    Vector w(3);
    ASSERT_TRUE(aggregate_all(scheme, contributions, w));
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(w[i], u[i], 1e-12);
  }
}

TEST(Aggregate, DimensionMismatchThrows) {
  Vector a{1.0, 2.0}, b{1.0};
  PartialAggregate partial(SamplingScheme::kWeightedThenSimpleAverage, 2);
  partial.accumulate({0, &a, 1.0});
  EXPECT_THROW(partial.accumulate({1, &b, 1.0}), std::invalid_argument);
}

TEST(Aggregate, FinalizeDimensionMismatchThrows) {
  Vector a{1.0, 2.0};
  PartialAggregate partial(SamplingScheme::kWeightedThenSimpleAverage, 2);
  partial.accumulate({0, &a, 1.0});
  Vector w(3);
  EXPECT_THROW(partial.finalize(w), std::invalid_argument);
}

TEST(Aggregate, ZeroSampleTotalThrowsForWeightedScheme) {
  Vector a{1.0};
  PartialAggregate partial(SamplingScheme::kUniformThenWeightedAverage, 1);
  partial.accumulate({0, &a, 0.0});
  Vector w(1);
  EXPECT_THROW(partial.finalize(w), std::invalid_argument);
}

TEST(Aggregate, SingleContributorCopiesUpdate) {
  Vector a{7.0, -3.0};
  std::vector<Contribution> contributions{{4, &a, 17.0}};
  Vector w(2);
  ASSERT_TRUE(aggregate_all(SamplingScheme::kUniformThenWeightedAverage,
                            contributions, w));
  EXPECT_DOUBLE_EQ(w[0], 7.0);
  EXPECT_DOUBLE_EQ(w[1], -3.0);
}

TEST(Aggregate, MergeOfMismatchedPartialsThrows) {
  PartialAggregate a(SamplingScheme::kUniformThenWeightedAverage, 2);
  PartialAggregate wrong_dim(SamplingScheme::kUniformThenWeightedAverage, 3);
  PartialAggregate wrong_scheme(SamplingScheme::kWeightedThenSimpleAverage, 2);
  EXPECT_THROW(a.merge(std::move(wrong_dim)), std::invalid_argument);
  EXPECT_THROW(a.merge(std::move(wrong_scheme)), std::invalid_argument);
}

// The tentpole property: random partitions of a contribution set into
// 1..8 shards, each shard accumulated independently, partials merged in
// shuffled order — the finalized model must be bit-identical to the
// single-shot aggregation, for both weighting schemes. Updates use
// awkward magnitudes so any floating-point reassociation would show.
TEST(Aggregate, ShardedMergeIsBitIdenticalToSingleShot) {
  constexpr std::size_t kDevices = 37;
  constexpr std::size_t kDim = 11;
  std::mt19937_64 rng(1234);
  std::uniform_real_distribution<double> coord(-1.0, 1.0);
  std::uniform_int_distribution<int> mag(-40, 40);
  std::uniform_real_distribution<double> samples(1.0, 400.0);

  std::vector<Vector> updates(kDevices, Vector(kDim));
  std::vector<Contribution> contributions;
  for (std::size_t d = 0; d < kDevices; ++d) {
    for (auto& x : updates[d]) x = std::ldexp(coord(rng), mag(rng));
    contributions.push_back({d, &updates[d], std::floor(samples(rng))});
  }

  for (auto scheme : {SamplingScheme::kUniformThenWeightedAverage,
                      SamplingScheme::kWeightedThenSimpleAverage}) {
    Vector expected(kDim);
    ASSERT_TRUE(aggregate_all(scheme, contributions, expected));

    for (std::size_t shards = 1; shards <= 8; ++shards) {
      // Random partition: each contribution lands on a random shard, so
      // some shards may be empty.
      std::uniform_int_distribution<std::size_t> pick(0, shards - 1);
      std::vector<PartialAggregate> partials;
      for (std::size_t s = 0; s < shards; ++s) partials.emplace_back(scheme, kDim);
      for (const Contribution& c : contributions) {
        partials[pick(rng)].accumulate(c);
      }

      std::vector<std::size_t> order(shards);
      for (std::size_t s = 0; s < shards; ++s) order[s] = s;
      std::shuffle(order.begin(), order.end(), rng);

      PartialAggregate root(scheme, kDim);
      for (std::size_t s : order) root.merge(std::move(partials[s]));

      Vector w(kDim);
      ASSERT_TRUE(root.finalize(w));
      for (std::size_t i = 0; i < kDim; ++i) {
        EXPECT_EQ(w[i], expected[i])
            << "scheme " << static_cast<int>(scheme) << ", shards " << shards
            << ", coordinate " << i;
      }
    }
  }
}

// Zero contributors stays degraded through any merge tree: merging empty
// partials never fabricates an update.
TEST(Aggregate, MergedEmptyPartialsStayDegraded) {
  for (auto scheme : {SamplingScheme::kUniformThenWeightedAverage,
                      SamplingScheme::kWeightedThenSimpleAverage}) {
    PartialAggregate root(scheme, 3);
    for (std::size_t s = 0; s < 4; ++s) {
      root.merge(PartialAggregate(scheme, 3));
    }
    Vector w{1.0, 2.0, 3.0};
    EXPECT_FALSE(root.finalize(w));
    EXPECT_DOUBLE_EQ(w[0], 1.0);
    EXPECT_DOUBLE_EQ(w[1], 2.0);
    EXPECT_DOUBLE_EQ(w[2], 3.0);
  }
}

}  // namespace
}  // namespace fed
