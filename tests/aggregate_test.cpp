#include "sim/aggregate.h"

#include <gtest/gtest.h>

namespace fed {
namespace {

TEST(Aggregate, WeightedAverageUsesSampleCounts) {
  Vector a{1.0, 0.0}, b{0.0, 1.0};
  std::vector<Contribution> contributions{{0, &a, 30.0}, {1, &b, 10.0}};
  Vector w(2, 99.0);
  ASSERT_TRUE(aggregate(SamplingScheme::kUniformThenWeightedAverage,
                        contributions, w));
  EXPECT_NEAR(w[0], 0.75, 1e-12);
  EXPECT_NEAR(w[1], 0.25, 1e-12);
}

TEST(Aggregate, SimpleAverageIgnoresSampleCounts) {
  Vector a{1.0, 0.0}, b{0.0, 1.0};
  std::vector<Contribution> contributions{{0, &a, 1000.0}, {1, &b, 1.0}};
  Vector w(2);
  ASSERT_TRUE(aggregate(SamplingScheme::kWeightedThenSimpleAverage,
                        contributions, w));
  EXPECT_NEAR(w[0], 0.5, 1e-12);
  EXPECT_NEAR(w[1], 0.5, 1e-12);
}

TEST(Aggregate, EmptyContributionsLeaveModelUntouched) {
  Vector w{3.0, 4.0};
  std::vector<Contribution> none;
  EXPECT_FALSE(aggregate(SamplingScheme::kUniformThenWeightedAverage, none, w));
  EXPECT_DOUBLE_EQ(w[0], 3.0);
  EXPECT_DOUBLE_EQ(w[1], 4.0);
}

TEST(Aggregate, IdenticalUpdatesAreFixedPoint) {
  Vector u{2.0, -1.0, 0.5};
  std::vector<Contribution> contributions{{0, &u, 5.0}, {1, &u, 50.0},
                                          {2, &u, 500.0}};
  for (auto scheme : {SamplingScheme::kUniformThenWeightedAverage,
                      SamplingScheme::kWeightedThenSimpleAverage}) {
    Vector w(3);
    ASSERT_TRUE(aggregate(scheme, contributions, w));
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(w[i], u[i], 1e-12);
  }
}

TEST(Aggregate, DimensionMismatchThrows) {
  Vector a{1.0, 2.0}, b{1.0};
  std::vector<Contribution> contributions{{0, &a, 1.0}, {1, &b, 1.0}};
  Vector w(2);
  EXPECT_THROW(
      aggregate(SamplingScheme::kWeightedThenSimpleAverage, contributions, w),
      std::invalid_argument);
}

TEST(Aggregate, ZeroSampleTotalThrowsForWeightedScheme) {
  Vector a{1.0};
  std::vector<Contribution> contributions{{0, &a, 0.0}};
  Vector w(1);
  EXPECT_THROW(aggregate(SamplingScheme::kUniformThenWeightedAverage,
                         contributions, w),
               std::invalid_argument);
}

TEST(Aggregate, SingleContributorCopiesUpdate) {
  Vector a{7.0, -3.0};
  std::vector<Contribution> contributions{{4, &a, 17.0}};
  Vector w(2);
  ASSERT_TRUE(
      aggregate(SamplingScheme::kUniformThenWeightedAverage, contributions, w));
  EXPECT_DOUBLE_EQ(w[0], 7.0);
  EXPECT_DOUBLE_EQ(w[1], -3.0);
}

}  // namespace
}  // namespace fed
