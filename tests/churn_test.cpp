// Open-world device churn (sim/churn.h): the arrive/depart schedule is a
// pure function of (seed, config, round) — identical across registries,
// thread counts, and aggregator shards — the departure floor holds, a
// mid-round departure folds into the straggler/failure accounting
// without perturbing other devices, and a zero config is bit-identical
// to the closed world.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/observer.h"
#include "sim/churn.h"
#include "support/log.h"

namespace fed {
namespace {

class ChurnTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(0.5, 0.5, 37);
      c.num_devices = 14;
      c.min_samples = 15;
      c.mean_log = 2.5;
      c.sigma_log = 0.5;
      return make_synthetic(c);
    }();
    return d;
  }

  static TrainerConfig config() {
    TrainerConfig c = fedprox_config(0.5);
    c.rounds = 10;
    c.devices_per_round = 4;
    c.systems.epochs = 3;
    c.systems.straggler_fraction = 0.5;
    c.learning_rate = 0.03;
    c.seed = 37;
    c.eval_every = 5;
    return c;
  }
};

TEST_F(ChurnTest, ParseRoundTripsAndRejectsBadSpecs) {
  const ChurnConfig parsed =
      parse_churn_config("arrive=0.05,depart=0.02,initial=100,min_active=10");
  EXPECT_EQ(parsed.arrive, 0.05);
  EXPECT_EQ(parsed.depart, 0.02);
  EXPECT_EQ(parsed.initial, 100u);
  EXPECT_EQ(parsed.min_active, 10u);
  EXPECT_TRUE(parsed.any());
  EXPECT_EQ(parse_churn_config(to_string(parsed)).arrive, parsed.arrive);
  EXPECT_FALSE(ChurnConfig{}.any());

  EXPECT_THROW((void)parse_churn_config("arrive=1.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_churn_config("depart=-0.1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_churn_config("arrive"), std::invalid_argument);
  EXPECT_THROW((void)parse_churn_config("leave=0.1"), std::invalid_argument);
}

TEST_F(ChurnTest, RegistryRejectsImpossibleConfigs) {
  ChurnConfig oversize;
  oversize.initial = 20;
  EXPECT_THROW((void)DeviceRegistry(10, oversize, 1), std::invalid_argument);
  ChurnConfig floor_too_high;
  floor_too_high.min_active = 11;
  EXPECT_THROW((void)DeviceRegistry(10, floor_too_high, 1),
               std::invalid_argument);
}

TEST_F(ChurnTest, ScheduleIsAPureFunctionOfSeedAndRound) {
  ChurnConfig config;
  config.arrive = 0.1;
  config.depart = 0.15;
  config.initial = 20;
  config.min_active = 3;
  DeviceRegistry a(40, config, 11);
  DeviceRegistry b(40, config, 11);
  DeviceRegistry other_seed(40, config, 12);
  bool diverged_from_other_seed = false;
  for (std::uint64_t round = 1; round <= 60; ++round) {
    a.begin_round(round);
    b.begin_round(round);
    other_seed.begin_round(round);
    EXPECT_EQ(a.active_devices(), b.active_devices());
    for (std::size_t device = 0; device < 40; ++device) {
      EXPECT_EQ(a.departing(device), b.departing(device));
    }
    diverged_from_other_seed |=
        a.active_devices() != other_seed.active_devices();
    a.end_round(round);
    b.end_round(round);
    other_seed.end_round(round);
  }
  EXPECT_EQ(a.total_arrivals(), b.total_arrivals());
  EXPECT_EQ(a.total_departures(), b.total_departures());
  EXPECT_TRUE(diverged_from_other_seed)
      << "two seeds produced the same 60-round schedule";
}

TEST_F(ChurnTest, DepartureFloorHolds) {
  ChurnConfig config;
  config.depart = 0.9;  // nearly everyone wants to leave every round
  config.min_active = 5;
  DeviceRegistry registry(12, config, 3);
  for (std::uint64_t round = 1; round <= 40; ++round) {
    registry.begin_round(round);
    // Departures are capped so end_round never goes below the floor.
    EXPECT_GE(registry.active_count() - registry.departing_count(),
              config.min_active);
    registry.end_round(round);
    EXPECT_GE(registry.active_count(), config.min_active);
  }
  EXPECT_GT(registry.total_departures(), 0u);
}

TEST_F(ChurnTest, ArrivalsAreSelectableImmediatelyAndCannotDepartSameRound) {
  ChurnConfig config;
  config.arrive = 1.0;  // every inactive device joins round 1
  config.depart = 1.0;  // every active device tries to leave
  config.initial = 2;
  config.min_active = 1;
  DeviceRegistry registry(8, config, 5);
  registry.begin_round(1);
  // All 6 inactive devices arrived and are active mid-round.
  EXPECT_EQ(registry.active_count(), 8u);
  for (std::size_t device = 0; device < 8; ++device) {
    // This round's arrivals may not depart in the same round.
    if (registry.departing(device)) {
      EXPECT_LT(device, 2u) << "same-round arrival " << device
                            << " was marked departing";
    }
  }
  registry.end_round(1);
  EXPECT_EQ(registry.total_arrivals(), 6u);
}

TEST_F(ChurnTest, PackAndRestoreResumeTheSameSchedule) {
  ChurnConfig config;
  config.arrive = 0.2;
  config.depart = 0.2;
  config.min_active = 2;
  DeviceRegistry original(16, config, 9);
  for (std::uint64_t round = 1; round <= 10; ++round) {
    original.begin_round(round);
    original.end_round(round);
  }
  DeviceRegistry restored(16, config, 9);
  restored.restore(original.pack_active(), original.total_arrivals(),
                   original.total_departures());
  EXPECT_EQ(restored.active_devices(), original.active_devices());
  EXPECT_EQ(restored.total_arrivals(), original.total_arrivals());
  for (std::uint64_t round = 11; round <= 30; ++round) {
    original.begin_round(round);
    restored.begin_round(round);
    EXPECT_EQ(restored.active_devices(), original.active_devices());
    original.end_round(round);
    restored.end_round(round);
  }
  EXPECT_EQ(restored.total_departures(), original.total_departures());
}

TEST_F(ChurnTest, ZeroConfigKeepsTheClosedWorldBitIdentical) {
  LogisticRegression model(data().input_dim, data().num_classes);
  const TrainHistory closed = Trainer(model, data(), config()).run();
  TrainerConfig c = config();
  c.churn = ChurnConfig{};  // explicit zero config: must change nothing
  const TrainHistory still_closed = Trainer(model, data(), c).run();
  EXPECT_EQ(closed.final_parameters, still_closed.final_parameters);
}

TEST_F(ChurnTest, TrainingUnderChurnIsBitIdenticalAcrossThreadsAndShards) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig reference_config = config();
  reference_config.churn.arrive = 0.15;
  reference_config.churn.depart = 0.15;
  reference_config.threads = 1;
  const TrainHistory reference =
      Trainer(model, data(), reference_config).run();

  for (const auto& [threads, shards] :
       {std::pair<std::size_t, std::size_t>{4, 1}, {2, 3}}) {
    TrainerConfig c = reference_config;
    c.threads = threads;
    c.shards = shards;
    const TrainHistory run = Trainer(model, data(), c).run();
    EXPECT_EQ(reference.final_parameters, run.final_parameters)
        << "threads=" << threads << " shards=" << shards;
    ASSERT_EQ(reference.rounds.size(), run.rounds.size());
    for (std::size_t i = 0; i < reference.rounds.size(); ++i) {
      EXPECT_EQ(reference.rounds[i].contributors, run.rounds[i].contributors);
      EXPECT_EQ(reference.rounds[i].stragglers, run.rounds[i].stragglers);
    }
  }
}

TEST_F(ChurnTest, MidRoundDepartureFoldsIntoTheFailurePath) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig c = config();
  c.rounds = 20;
  c.churn.depart = 0.4;  // plenty of mid-round departures among selected
  c.recovery.max_retries = 1;
  TraceCollector collector;
  Trainer trainer(model, data(), c);
  trainer.add_observer(collector);
  (void)trainer.run();

  std::uint64_t departs = 0;
  for (const RoundTrace& trace : collector.traces()) {
    departs += trace.faults.departs;
    // A departed device burns all its attempts as drops and ends as a
    // failed device; the channel invariants trace_lint enforces hold.
    EXPECT_GE(trace.faults.attempts, trace.selected);
    EXPECT_EQ(trace.faults.retries,
              trace.faults.attempts - trace.selected);
    EXPECT_GE(trace.faults.drops + trace.faults.corruptions +
                  trace.faults.timeouts,
              trace.faults.retries);
    EXPECT_GE(trace.faults.failed_devices, trace.faults.departs);
    if (trace.faults.attempts > 0) {
      EXPECT_EQ(trace.bytes_down % trace.faults.attempts, 0u);
    }
    EXPECT_LE(trace.active_devices, data().num_clients());
  }
  EXPECT_GT(departs, 0u) << "no selected device ever departed mid-round";
}

TEST_F(ChurnTest, DepartureDoesNotPerturbOtherDevicesFaultStreams) {
  // Folding a departure into the exchange path must not consume fault
  // randomness: the surviving devices' outcomes in a faulty channel are
  // the same whether or not a departing device was also selected.
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig faulty = config();
  faulty.faults.drop = 0.15;
  faulty.recovery.max_retries = 2;
  const TrainHistory reference = Trainer(model, data(), faulty).run();

  TrainerConfig with_churn = faulty;
  with_churn.churn.arrive = 0.3;  // same fault profile, open world
  with_churn.churn.depart = 0.3;
  const TrainHistory churned = Trainer(model, data(), with_churn).run();
  // Histories legitimately differ (different populations), but both must
  // be reproducible: rerunning each config gives bit-identical results.
  const TrainHistory reference2 = Trainer(model, data(), faulty).run();
  const TrainHistory churned2 = Trainer(model, data(), with_churn).run();
  EXPECT_EQ(reference.final_parameters, reference2.final_parameters);
  EXPECT_EQ(churned.final_parameters, churned2.final_parameters);
}

}  // namespace
}  // namespace fed
