#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "support/cli.h"
#include "support/csv.h"
#include "support/log.h"
#include "support/threadpool.h"

namespace fed {
namespace {

// ---- CliFlags ----

TEST(CliFlags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--rounds=50", "--mu", "0.1", "--verbose"};
  CliFlags flags(5, argv);
  EXPECT_EQ(flags.get_int("rounds", 0), 50);
  EXPECT_DOUBLE_EQ(flags.get_double("mu", 0.0), 0.1);
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(CliFlags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  CliFlags flags(1, argv);
  EXPECT_EQ(flags.get_int("rounds", 7), 7);
  EXPECT_EQ(flags.get_string("name", "x"), "x");
  EXPECT_FALSE(flags.get_bool("flag", false));
}

TEST(CliFlags, MalformedValueThrows) {
  const char* argv[] = {"prog", "--rounds=abc"};
  CliFlags flags(2, argv);
  EXPECT_THROW(flags.get_int("rounds", 0), std::invalid_argument);
}

TEST(CliFlags, DoubleListParsing) {
  const char* argv[] = {"prog", "--mus=0,0.01,1"};
  CliFlags flags(2, argv);
  const auto mus = flags.get_double_list("mus", {});
  ASSERT_EQ(mus.size(), 3u);
  EXPECT_DOUBLE_EQ(mus[1], 0.01);
}

TEST(CliFlags, PositionalAndUnused) {
  const char* argv[] = {"prog", "data.csv", "--typo=1"};
  CliFlags flags(3, argv);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "data.csv");
  EXPECT_EQ(flags.unused().size(), 1u);
}

TEST(CliFlags, NegativeNumberAsValue) {
  const char* argv[] = {"prog", "--mu=-0.5"};
  CliFlags flags(2, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("mu", 0.0), -0.5);
}

// ---- CSV ----

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/fedprox_test_csv/out.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.write_row({"1", "x,y"});
    csv.write_row_numeric({2.5, 3.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");  // comma cell gets quoted
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,3");
  std::filesystem::remove_all("/tmp/fedprox_test_csv");
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter csv("/tmp/fedprox_test_csv2/out.csv", {"a", "b"});
  EXPECT_THROW(csv.write_row({"only-one"}), std::invalid_argument);
  std::filesystem::remove_all("/tmp/fedprox_test_csv2");
}

TEST(Csv, EscapesQuotes) {
  const std::string path = "/tmp/fedprox_test_csv3/out.csv";
  {
    CsvWriter csv(path, {"a"});
    csv.write_row({"say \"hi\""});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"say \"\"hi\"\"\"");
  std::filesystem::remove_all("/tmp/fedprox_test_csv3");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"long-name", "1"});
  t.add_row({"x", "22"});
  const std::string render = t.render();
  EXPECT_NE(render.find("long-name  1"), std::string::npos);
  EXPECT_NE(render.find("---------"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
}

// ---- ThreadPool ----

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(100);
  pool.parallel_for(100, [&](std::size_t i) { visits[i]++; });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   8,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SubmitReturnsUsableFuture) {
  ThreadPool pool(1);
  std::atomic<int> x{0};
  auto fut = pool.submit([&] { x = 42; });
  fut.get();
  EXPECT_EQ(x.load(), 42);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

// ---- Logging ----

TEST(Log, LevelFiltering) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  log_info() << "should not crash or print";
  set_log_level(original);
  SUCCEED();
}

}  // namespace
}  // namespace fed
