// HealthMonitor contract: silent on clean runs, fatal with a useful
// report when a client update goes non-finite, and loss blow-up / stall
// detection on the evaluated loss stream.

#include "obs/health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/metrics.h"
#include "optim/sgd.h"
#include "support/log.h"

namespace fed {
namespace {

class HealthTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(0.5, 0.5, 29);
      c.num_devices = 6;
      c.min_samples = 12;
      c.mean_log = 2.5;
      c.sigma_log = 0.4;
      return make_synthetic(c);
    }();
    return d;
  }

  static TrainerConfig config() {
    TrainerConfig c = fedprox_config(0.5);
    c.rounds = 4;
    c.devices_per_round = data().num_clients();  // select everyone
    c.systems.epochs = 2;
    c.systems.straggler_fraction = 0.0;
    c.learning_rate = 0.03;
    c.seed = 29;
    c.eval_every = 1;
    return c;
  }

  // Feeds an evaluated loss straight into the monitor's round-end hook.
  static void feed_loss(HealthMonitor& monitor, std::size_t round,
                        double loss) {
    RoundMetrics metrics;
    metrics.round = round;
    metrics.train_loss = loss;
    metrics.train_accuracy = 0.5;
    metrics.test_accuracy = 0.5;
    monitor.on_round_end(metrics, RoundTrace{});
  }
};

// Delegates to SGD but poisons the update of one target device (matched
// by its training-set address) from `poison_round` on.
class PoisoningSolver final : public LocalSolver {
 public:
  PoisoningSolver(const Dataset* target, std::size_t poison_round)
      : target_(target), poison_round_(poison_round) {}

  std::string name() const override { return "poisoning_sgd"; }

  void solve(const LocalProblem& problem, const SolveBudget& budget, Rng& rng,
             std::span<double> w) const override {
    inner_.solve(problem, budget, rng, w);
    rounds_seen_ += (problem.data == target_);
    if (problem.data == target_ && rounds_seen_ >= poison_round_) {
      w[0] = std::numeric_limits<double>::quiet_NaN();
    }
  }

 private:
  SgdSolver inner_;
  const Dataset* target_;
  std::size_t poison_round_;
  mutable std::size_t rounds_seen_ = 0;
};

TEST_F(HealthTest, CleanRunStaysSilent) {
  LogisticRegression model(data().input_dim, data().num_classes);
  Trainer trainer(model, data(), config());
  MetricsRegistry registry;
  HealthMonitor health(HealthConfig{}, &registry);
  trainer.add_observer(health);
  trainer.run();

  EXPECT_TRUE(health.healthy());
  EXPECT_TRUE(health.incidents().empty());
  EXPECT_EQ(health.report(), "");
  EXPECT_EQ(registry.counter("health_incidents_total").value(), 0u);
}

TEST_F(HealthTest, InjectedNaNAbortsNamingRoundAndDevice) {
  constexpr std::size_t kTarget = 2;
  constexpr std::size_t kPoisonRound = 2;
  LogisticRegression model(data().input_dim, data().num_classes);
  auto cfg = config();
  cfg.solver = std::make_shared<PoisoningSolver>(
      &data().clients[kTarget].train, kPoisonRound);
  Trainer trainer(model, data(), cfg);
  MetricsRegistry registry;
  HealthMonitor health(HealthConfig{}, &registry);
  trainer.add_observer(health);

  try {
    trainer.run();
    FAIL() << "expected HealthError";
  } catch (const HealthError& error) {
    // The fatal incident is the poisoned aggregate, naming the device
    // whose update went non-finite and the round it happened in.
    EXPECT_EQ(error.incident().kind, HealthIncident::Kind::kNonFiniteWeights);
    EXPECT_EQ(error.incident().round, kPoisonRound);
    ASSERT_TRUE(error.incident().device.has_value());
    EXPECT_EQ(*error.incident().device, kTarget);
    const std::string report = error.what();
    EXPECT_NE(report.find("nonfinite_weights"), std::string::npos);
    EXPECT_NE(report.find("device " + std::to_string(kTarget)),
              std::string::npos);
    EXPECT_NE(report.find("round " + std::to_string(kPoisonRound)),
              std::string::npos);
  }

  // Both the client-update incident and the aggregate incident counted.
  EXPECT_EQ(registry.counter("health_incidents_total").value(), 2u);
  EXPECT_EQ(
      registry.counter("health_nonfinite_client_update_total").value(), 1u);
  EXPECT_EQ(registry.counter("health_nonfinite_weights_total").value(), 1u);
}

TEST_F(HealthTest, LossBlowupRecordedAgainstRunningMedian) {
  MetricsRegistry registry;
  HealthConfig cfg;
  cfg.blowup_factor = 10.0;
  HealthMonitor health(cfg, &registry);
  for (std::size_t round = 1; round <= 5; ++round) {
    feed_loss(health, round, 1.0);
  }
  EXPECT_TRUE(health.healthy());
  feed_loss(health, 6, 1000.0);  // 1000x the median of all-ones

  ASSERT_EQ(health.incidents().size(), 1u);
  const HealthIncident& incident = health.incidents().front();
  EXPECT_EQ(incident.kind, HealthIncident::Kind::kLossBlowup);
  EXPECT_EQ(incident.round, 6u);
  EXPECT_NEAR(incident.value, 1000.0, 1e-9);
  EXPECT_EQ(registry.counter("health_loss_blowup_total").value(), 1u);
  EXPECT_NE(health.report().find("loss_blowup"), std::string::npos);
}

TEST_F(HealthTest, LossBlowupCanBeFatal) {
  HealthConfig cfg;
  cfg.blowup_factor = 10.0;
  cfg.abort_on_blowup = true;
  HealthMonitor health(cfg);
  feed_loss(health, 1, 1.0);
  feed_loss(health, 2, 1.0);
  EXPECT_THROW(feed_loss(health, 3, 100.0), HealthError);
}

TEST_F(HealthTest, NonFiniteEvaluatedLossIsFatal) {
  HealthMonitor health;
  feed_loss(health, 1, 0.7);
  EXPECT_THROW(
      feed_loss(health, 2, std::numeric_limits<double>::quiet_NaN()),
      HealthError);
  ASSERT_EQ(health.incidents().size(), 1u);
  EXPECT_EQ(health.incidents().front().kind,
            HealthIncident::Kind::kNonFiniteLoss);
}

TEST_F(HealthTest, StallReportedOnceAfterPatienceRunsOut) {
  HealthConfig cfg;
  cfg.stall_patience = 3;
  HealthMonitor health(cfg);
  feed_loss(health, 1, 1.0);
  for (std::size_t round = 2; round <= 10; ++round) {
    feed_loss(health, round, 1.0);  // never improves
  }
  ASSERT_EQ(health.incidents().size(), 1u);
  const HealthIncident& incident = health.incidents().front();
  EXPECT_EQ(incident.kind, HealthIncident::Kind::kStalledConvergence);
  EXPECT_EQ(incident.round, 4u);  // patience of 3 exhausted at round 4

  // Improvement resets the streak and re-arms detection.
  feed_loss(health, 11, 0.5);
  for (std::size_t round = 12; round <= 15; ++round) {
    feed_loss(health, round, 0.5);
  }
  EXPECT_EQ(health.incidents().size(), 2u);
}

TEST_F(HealthTest, RunStartResetsState) {
  HealthMonitor health;
  feed_loss(health, 1, 1.0);
  feed_loss(health, 2, 1.0);
  health.on_run_start(RunInfo{});
  // A fresh run has no median history, so a big first loss is fine.
  feed_loss(health, 1, 500.0);
  EXPECT_TRUE(health.healthy());
}

}  // namespace
}  // namespace fed
