// End-to-end tests mirroring the paper's experiments at miniature scale.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/registry.h"
#include "core/trainer.h"
#include "support/log.h"

namespace fed {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }
};

// Figure 1's headline claim at mini scale: on heterogeneous synthetic
// data with 90% stragglers, tolerating partial work (FedProx mu=0) and
// adding the proximal term (mu=1) both end with a lower global loss than
// FedAvg's drop-the-stragglers policy.
TEST_F(IntegrationTest, FedProxBeatsFedAvgUnderHighSystemsHeterogeneity) {
  const Workload w = make_workload("synthetic_1_1", /*seed=*/4);
  auto make = [&](Algorithm algorithm, double mu) {
    TrainerConfig c = base_config(w, algorithm, mu, /*stragglers=*/0.9,
                                  /*epochs=*/20, /*seed=*/4);
    c.rounds = 60;
    c.eval_every = 60;  // only final evaluation; keeps the test fast
    return c;
  };
  const double avg_loss =
      *Trainer(*w.model, w.data, make(Algorithm::kFedAvg, 0.0))
           .run()
           .final_metrics()
           .train_loss;
  const double prox0_loss =
      *Trainer(*w.model, w.data, make(Algorithm::kFedProx, 0.0))
           .run()
           .final_metrics()
           .train_loss;
  const double prox1_loss =
      *Trainer(*w.model, w.data, make(Algorithm::kFedProx, 1.0))
           .run()
           .final_metrics()
           .train_loss;
  EXPECT_LT(prox0_loss, avg_loss);
  EXPECT_LT(prox1_loss, avg_loss);
}

// Figure 5's control: on IID data FedAvg is robust to stragglers.
TEST_F(IntegrationTest, FedAvgRobustOnIidData) {
  const Workload w = make_workload("synthetic_iid", 4);
  TrainerConfig c = base_config(w, Algorithm::kFedAvg, 0.0, 0.5, 20, 4);
  c.rounds = 40;
  c.eval_every = 40;
  auto history = Trainer(*w.model, w.data, c).run();
  EXPECT_FALSE(history.diverged());
  EXPECT_LT(*history.final_metrics().train_loss,
            *history.rounds.front().train_loss * 0.7);
}

// The proximal term shrinks measured dissimilarity (Section 5.3.3).
TEST_F(IntegrationTest, ProximalTermReducesGradientVariance) {
  const Workload w = make_workload("synthetic_1_1", 9);
  auto make = [&](double mu) {
    TrainerConfig c = base_config(w, Algorithm::kFedProx, mu, 0.0, 20, 9);
    c.rounds = 30;
    c.eval_every = 30;
    c.measure_dissimilarity = true;
    return c;
  };
  const auto h0 = Trainer(*w.model, w.data, make(0.0)).run();
  const auto h1 = Trainer(*w.model, w.data, make(1.0)).run();
  EXPECT_LT(*h1.final_metrics().grad_variance,
            *h0.final_metrics().grad_variance);
}

// Both LSTM workloads run end to end without divergence at tiny scale.
TEST_F(IntegrationTest, SequenceWorkloadsTrainWithoutDivergence) {
  for (const char* name : {"shakespeare", "sent140"}) {
    Workload w = make_workload(name, 2, /*scale=*/0.12);
    TrainerConfig c = base_config(w, Algorithm::kFedProx, w.best_mu, 0.0,
                                  /*epochs=*/2, 2);
    c.rounds = 2;
    c.devices_per_round = std::min<std::size_t>(3, w.data.num_clients());
    c.eval_every = 2;
    auto history = Trainer(*w.model, w.data, c).run();
    EXPECT_FALSE(history.diverged()) << name;
  }
}

// settled_accuracy implements the paper's read-off rule.
TEST_F(IntegrationTest, SettledAccuracyRules) {
  TrainHistory h;
  auto add = [&](std::size_t round, double loss, double acc) {
    RoundMetrics m;
    m.round = round;
    m.train_loss = loss;
    m.test_accuracy = acc;
    h.rounds.push_back(m);
  };
  // Converged at the second step: |delta| < 1e-4.
  add(0, 1.0, 0.1);
  add(1, 0.5, 0.5);
  add(2, 0.499999, 0.7);
  add(3, 0.2, 0.9);
  EXPECT_DOUBLE_EQ(settled_accuracy(h), 0.7);

  // No convergence: last round wins.
  TrainHistory h2;
  for (std::size_t i = 0; i < 5; ++i) {
    RoundMetrics m;
    m.round = i;
    m.train_loss = 1.0 - 0.1 * static_cast<double>(i);
    m.test_accuracy = 0.1 * static_cast<double>(i);
    h2.rounds.push_back(m);
  }
  EXPECT_DOUBLE_EQ(settled_accuracy(h2), 0.4);
}

// Trainer histories serialize to the experiment CSV without error.
TEST_F(IntegrationTest, HistoryCsvRoundTrip) {
  const Workload w = make_workload("synthetic_iid", 4);
  TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, 0.0, 5, 4);
  c.rounds = 3;
  std::vector<VariantSpec> specs{{"FedProx (mu=0)", c}};
  auto results = run_variants(w, specs, /*verbose=*/false);
  CsvWriter csv("/tmp/fedprox_integration_test.csv", history_csv_header());
  append_history_csv(csv, w.name, results);
  SUCCEED();
}

}  // namespace
}  // namespace fed
