// Observer API contract: hook cadence and ordering through a real
// Trainer run, composite fan-out, and registration-time guarantees.

#include "obs/observer.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "support/log.h"

namespace fed {
namespace {

constexpr std::size_t kRounds = 6;
constexpr std::size_t kDevices = 4;

class ObserverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(0.5, 0.5, 17);
      c.num_devices = 8;
      c.min_samples = 12;
      c.mean_log = 2.5;
      c.sigma_log = 0.4;
      return make_synthetic(c);
    }();
    return d;
  }

  static TrainerConfig config() {
    TrainerConfig c = fedprox_config(0.5);
    c.rounds = kRounds;
    c.devices_per_round = kDevices;
    c.systems.epochs = 3;
    c.systems.straggler_fraction = 0.5;
    c.learning_rate = 0.03;
    c.seed = 17;
    c.eval_every = 2;
    return c;
  }
};

// Records every hook invocation as a tagged string.
struct RecordingObserver : TrainingObserver {
  std::vector<std::string> events;
  RunInfo run_info;
  std::vector<std::size_t> client_rounds;

  void on_run_start(const RunInfo& info) override {
    run_info = info;
    events.push_back("run_start");
  }
  void on_round_start(std::size_t round,
                      std::span<const std::size_t> selected) override {
    events.push_back("round_start:" + std::to_string(round) + ":k=" +
                     std::to_string(selected.size()));
  }
  void on_client_result(std::size_t round, const ClientResult& result) override {
    client_rounds.push_back(round);
    events.push_back("client:" + std::to_string(result.device));
  }
  void on_round_end(const RoundMetrics& metrics,
                    const RoundTrace& trace) override {
    EXPECT_EQ(metrics.round, trace.round);
    events.push_back("round_end:" + std::to_string(metrics.round));
  }
  void on_run_end(const TrainHistory& history) override {
    EXPECT_FALSE(history.rounds.empty());
    events.push_back("run_end");
  }
};

TEST_F(ObserverTest, HookCountsMatchRunShape) {
  LogisticRegression model(data().input_dim, data().num_classes);
  Trainer trainer(model, data(), config());
  RecordingObserver rec;
  trainer.add_observer(rec);
  trainer.run();

  std::size_t run_starts = 0, round_starts = 0, clients = 0, round_ends = 0,
              run_ends = 0;
  for (const auto& e : rec.events) {
    if (e == "run_start") ++run_starts;
    if (e.starts_with("round_start:")) ++round_starts;
    if (e.starts_with("client:")) ++clients;
    if (e.starts_with("round_end:")) ++round_ends;
    if (e == "run_end") ++run_ends;
  }
  EXPECT_EQ(run_starts, 1u);
  EXPECT_EQ(round_starts, kRounds);
  EXPECT_EQ(clients, kRounds * kDevices);
  EXPECT_EQ(round_ends, kRounds + 1);  // round-0 record + training rounds
  EXPECT_EQ(run_ends, 1u);
}

TEST_F(ObserverTest, HookOrderingIsRunRoundClientEnd) {
  LogisticRegression model(data().input_dim, data().num_classes);
  Trainer trainer(model, data(), config());
  RecordingObserver rec;
  trainer.add_observer(rec);
  trainer.run();

  ASSERT_GE(rec.events.size(), 4u);
  EXPECT_EQ(rec.events.front(), "run_start");
  // The round-0 evaluation record lands before any training round starts.
  EXPECT_EQ(rec.events[1], "round_end:0");
  EXPECT_EQ(rec.events[2], "round_start:1:k=" + std::to_string(kDevices));
  EXPECT_EQ(rec.events.back(), "run_end");

  // Within each training round: round_start, K client results, round_end.
  std::size_t i = 2;
  for (std::size_t t = 1; t <= kRounds; ++t) {
    ASSERT_LT(i + kDevices + 1, rec.events.size() + 1);
    EXPECT_TRUE(rec.events[i].starts_with("round_start:" + std::to_string(t)));
    for (std::size_t k = 1; k <= kDevices; ++k) {
      EXPECT_TRUE(rec.events[i + k].starts_with("client:")) << rec.events[i + k];
    }
    EXPECT_EQ(rec.events[i + kDevices + 1], "round_end:" + std::to_string(t));
    i += kDevices + 2;
  }

  // Every client result is tagged with its training round.
  ASSERT_EQ(rec.client_rounds.size(), kRounds * kDevices);
  for (std::size_t j = 0; j < rec.client_rounds.size(); ++j) {
    EXPECT_EQ(rec.client_rounds[j], j / kDevices + 1);
  }
}

TEST_F(ObserverTest, RunInfoDescribesTheRun) {
  LogisticRegression model(data().input_dim, data().num_classes);
  const auto c = config();
  Trainer trainer(model, data(), c);
  RecordingObserver rec;
  trainer.add_observer(rec);
  trainer.run();

  EXPECT_EQ(rec.run_info.algorithm, "FedProx");
  EXPECT_EQ(rec.run_info.rounds, kRounds);
  EXPECT_EQ(rec.run_info.devices_per_round, kDevices);
  EXPECT_EQ(rec.run_info.num_clients, data().num_clients());
  EXPECT_EQ(rec.run_info.parameter_count, model.parameter_count());
  EXPECT_EQ(rec.run_info.seed, c.seed);
  EXPECT_GE(rec.run_info.threads, 1u);
}

TEST_F(ObserverTest, CompositeFansOutInRegistrationOrder) {
  CompositeObserver composite;
  std::vector<int> order;
  struct Tagger : TrainingObserver {
    Tagger(std::vector<int>& order_log, int id) : order(order_log), tag(id) {}
    void on_round_end(const RoundMetrics&, const RoundTrace&) override {
      order.push_back(tag);
    }
    std::vector<int>& order;
    int tag;
  };
  Tagger first(order, 1), second(order, 2), third(order, 3);
  composite.add(first);
  composite.add(second);
  composite.add(third);
  EXPECT_EQ(composite.size(), 3u);

  RoundMetrics m;
  RoundTrace t;
  composite.on_round_end(m, t);
  composite.on_round_end(m, t);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 1, 2, 3}));
}

TEST_F(ObserverTest, MultipleObserversSeeIdenticalCadence) {
  LogisticRegression model(data().input_dim, data().num_classes);
  Trainer trainer(model, data(), config());
  RecordingObserver a, b;
  trainer.add_observer(a);
  trainer.add_observer(b);
  trainer.run();
  EXPECT_EQ(a.events, b.events);
}

TEST_F(ObserverTest, ObserversFireInRegistrationOrderThroughTrainer) {
  LogisticRegression model(data().input_dim, data().num_classes);
  Trainer trainer(model, data(), config());
  std::vector<int> order;
  struct Tagger : TrainingObserver {
    Tagger(std::vector<int>& order_log, int id) : order(order_log), tag(id) {}
    void on_round_end(const RoundMetrics&, const RoundTrace&) override {
      order.push_back(tag);
    }
    std::vector<int>& order;
    int tag;
  };
  Tagger first(order, 1), second(order, 2), third(order, 3);
  trainer.add_observer(first);
  trainer.add_observer(second);
  trainer.add_observer(third);
  trainer.run();

  // Every round-end fans out 1, 2, 3 in registration order.
  ASSERT_EQ(order.size(), 3 * (kRounds + 1));
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i % 3) + 1);
  }
}

TEST_F(ObserverTest, OnAggregateSeesEveryTrainingRound) {
  LogisticRegression model(data().input_dim, data().num_classes);
  Trainer trainer(model, data(), config());
  struct AggregateRecorder : TrainingObserver {
    std::vector<std::size_t> rounds;
    std::size_t dimension = 0;
    void on_aggregate(std::size_t round,
                      std::span<const double> weights) override {
      rounds.push_back(round);
      dimension = weights.size();
    }
  } rec;
  trainer.add_observer(rec);
  trainer.run();

  // One aggregation per training round (round 0 is evaluation only),
  // exposing the live global parameter vector.
  ASSERT_EQ(rec.rounds.size(), kRounds);
  for (std::size_t t = 0; t < kRounds; ++t) EXPECT_EQ(rec.rounds[t], t + 1);
  EXPECT_EQ(rec.dimension, model.parameter_count());
}

TEST_F(ObserverTest, AddObserverAfterRunStartThrows) {
  LogisticRegression model(data().input_dim, data().num_classes);
  auto c = config();
  c.rounds = 1;
  Trainer trainer(model, data(), c);
  RecordingObserver late;
  trainer.run();
  EXPECT_THROW(trainer.add_observer(late), std::logic_error);
}

TEST_F(ObserverTest, TraceCollectorGathersOneTracePerRecord) {
  LogisticRegression model(data().input_dim, data().num_classes);
  Trainer trainer(model, data(), config());
  TraceCollector collector;
  trainer.add_observer(collector);
  const auto history = trainer.run();

  const auto& traces = collector.traces();
  ASSERT_EQ(traces.size(), history.rounds.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].round, history.rounds[i].round);
    EXPECT_EQ(traces[i].evaluated, history.rounds[i].evaluated());
    EXPECT_EQ(traces[i].contributors, history.rounds[i].contributors);
    EXPECT_EQ(traces[i].stragglers, history.rounds[i].stragglers);
  }
  // Training rounds select K devices; solve stats cover all of them.
  for (std::size_t i = 1; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].selected, kDevices);
    EXPECT_EQ(traces[i].solve.count, kDevices);
    EXPECT_GE(traces[i].round_seconds, 0.0);
  }
  collector.clear();
  EXPECT_TRUE(collector.traces().empty());
}

}  // namespace
}  // namespace fed
