// Negative case: writes a FED_GUARDED_BY field without holding its
// mutex. Valid C++ (it compiles when the annotations are no-ops), but
// under Clang with -Werror=thread-safety-analysis this MUST fail to
// compile — the ctest in tests/CMakeLists.txt asserts exactly that, so
// the annotation wiring cannot silently rot into a no-op.

#include "support/thread_annotations.h"

namespace {

class Account {
 public:
  // BAD: touches balance_ with mu_ not held.
  void deposit_unlocked(int n) { balance_ += n; }

 private:
  fed::Mutex mu_;
  int balance_ FED_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit_unlocked(1);
  return 0;
}
