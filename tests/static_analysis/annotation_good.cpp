// Positive control for the thread-safety compile-fail tests: correct
// lock discipline over the annotated primitives. Must compile under any
// supported compiler, with or without -Wthread-safety — if this file
// fails, the wrappers themselves (not the checked code) are broken.

#include "support/thread_annotations.h"

namespace {

class Account {
 public:
  // Public entry points take the lock themselves.
  void deposit(int n) FED_EXCLUDES(mu_) {
    fed::MutexLock lock(mu_);
    credit(n);
  }

  int balance() FED_EXCLUDES(mu_) {
    fed::MutexLock lock(mu_);
    return balance_;
  }

  void wait_for_funds() FED_EXCLUDES(mu_) {
    fed::MutexLock lock(mu_);
    while (balance_ <= 0) cv_.wait(mu_);
  }

  void close() FED_EXCLUDES(mu_) {
    {
      fed::MutexLock lock(mu_);
      credit(1);
    }
    cv_.notify_all();
  }

 private:
  // Internal helper assumes the lock; callers above hold it.
  void credit(int n) FED_REQUIRES(mu_) { balance_ += n; }

  fed::Mutex mu_;
  fed::CondVar cv_;
  int balance_ FED_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(5);
  account.close();
  return account.balance() == 6 ? 0 : 1;
}
