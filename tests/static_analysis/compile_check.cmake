# Compile (or refuse to compile) one source file, as a ctest.
#
# Invoked by tests/CMakeLists.txt as
#   cmake -DCOMPILER=... -DSRC=... -DINC=... [-DEXTRA_FLAGS="..."]
#         [-DEXPECT_FAIL=ON] -P compile_check.cmake
#
# EXPECT_FAIL=ON inverts the assertion: the file must NOT compile. Used
# with -Werror=thread-safety-analysis to prove the annotation macros
# actually reject an unguarded access / REQUIRES violation.

foreach(var COMPILER SRC INC)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compile_check.cmake: missing -D${var}=...")
  endif()
endforeach()

separate_arguments(extra_flags UNIX_COMMAND "${EXTRA_FLAGS}")

execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only "-I${INC}" ${extra_flags}
          ${SRC}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT_FAIL)
  if(rc EQUAL 0)
    message(FATAL_ERROR
            "expected a thread-safety compile error, but ${SRC} compiled "
            "cleanly — the annotation wiring is not enforcing anything")
  endif()
  # Make sure it failed for the right reason, not a stray syntax error.
  if(NOT err MATCHES "thread-safety" AND NOT err MATCHES "thread_safety")
    message(FATAL_ERROR
            "${SRC} failed to compile, but not from thread-safety "
            "analysis:\n${err}")
  endif()
else()
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "expected ${SRC} to compile, but it failed:\n${err}")
  endif()
endif()
