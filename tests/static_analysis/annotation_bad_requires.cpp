// Negative case: calls a FED_REQUIRES method without holding the
// required mutex. Valid C++ when the annotations are no-ops; under
// Clang with -Werror=thread-safety-analysis this MUST fail to compile
// (asserted by the compile-fail ctest).

#include "support/thread_annotations.h"

namespace {

class Account {
 public:
  void credit(int n) FED_REQUIRES(mu_) { balance_ += n; }

  fed::Mutex mu_;

 private:
  int balance_ FED_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.credit(1);  // BAD: mu_ not held
  return 0;
}
