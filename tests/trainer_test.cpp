#include "core/trainer.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/observer.h"
#include "optim/gd.h"
#include "support/log.h"

namespace fed {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedDataset& iid_data() {
    static const FederatedDataset data = [] {
      SyntheticConfig c = synthetic_iid_config(3);
      c.num_devices = 12;
      c.min_samples = 20;
      c.mean_log = 3.0;
      c.sigma_log = 0.5;
      return make_synthetic(c);
    }();
    return data;
  }

  static const FederatedDataset& noniid_data() {
    static const FederatedDataset data = [] {
      SyntheticConfig c = synthetic_config(1.0, 1.0, 3);
      c.num_devices = 12;
      c.min_samples = 20;
      c.mean_log = 3.0;
      c.sigma_log = 0.5;
      return make_synthetic(c);
    }();
    return data;
  }

  static TrainerConfig small_config(Algorithm algorithm, double mu,
                                    double stragglers) {
    TrainerConfig c;
    c.algorithm = algorithm;
    c.mu = mu;
    c.rounds = 25;
    c.devices_per_round = 5;
    c.systems.epochs = 10;
    c.systems.straggler_fraction = stragglers;
    c.learning_rate = 0.01;
    c.batch_size = 10;
    c.seed = 11;
    return c;
  }
};

TEST_F(TrainerTest, HistoryShapeAndRoundZero) {
  LogisticRegression model(iid_data().input_dim, iid_data().num_classes);
  auto history =
      Trainer(model, iid_data(), small_config(Algorithm::kFedProx, 0.0, 0.0))
          .run();
  ASSERT_EQ(history.rounds.size(), 26u);  // round 0 + 25 training rounds
  EXPECT_TRUE(history.rounds.front().evaluated());
  EXPECT_EQ(history.rounds.front().round, 0u);
  EXPECT_EQ(history.final_parameters.size(), model.parameter_count());
}

TEST_F(TrainerTest, LossDecreasesOnIidData) {
  LogisticRegression model(iid_data().input_dim, iid_data().num_classes);
  auto history =
      Trainer(model, iid_data(), small_config(Algorithm::kFedProx, 0.0, 0.0))
          .run();
  const double first = *history.rounds.front().train_loss;
  const double last = *history.final_metrics().train_loss;
  EXPECT_LT(last, first * 0.8);
  EXPECT_FALSE(history.diverged());
}

TEST_F(TrainerTest, FedAvgIdenticalToFedProxMuZeroWithoutStragglers) {
  // With no systems heterogeneity, FedAvg (drop) and FedProx mu=0 (keep)
  // make exactly the same updates under paired randomness.
  LogisticRegression model(noniid_data().input_dim, noniid_data().num_classes);
  auto avg =
      Trainer(model, noniid_data(), small_config(Algorithm::kFedAvg, 0.0, 0.0))
          .run();
  auto prox = Trainer(model, noniid_data(),
                      small_config(Algorithm::kFedProx, 0.0, 0.0))
                  .run();
  ASSERT_EQ(avg.final_parameters.size(), prox.final_parameters.size());
  for (std::size_t i = 0; i < avg.final_parameters.size(); ++i) {
    ASSERT_DOUBLE_EQ(avg.final_parameters[i], prox.final_parameters[i]);
  }
}

TEST_F(TrainerTest, RunsAreExactlyReproducible) {
  LogisticRegression model(noniid_data().input_dim, noniid_data().num_classes);
  const auto config = small_config(Algorithm::kFedProx, 0.1, 0.5);
  auto a = Trainer(model, noniid_data(), config).run();
  auto b = Trainer(model, noniid_data(), config).run();
  EXPECT_EQ(a.final_parameters, b.final_parameters);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss);
  }
}

TEST_F(TrainerTest, FedAvgDropsStragglersFromAggregation) {
  LogisticRegression model(noniid_data().input_dim, noniid_data().num_classes);
  auto history = Trainer(model, noniid_data(),
                         small_config(Algorithm::kFedAvg, 0.0, 0.5))
                     .run();
  bool saw_drop = false;
  for (std::size_t i = 1; i < history.rounds.size(); ++i) {
    const auto& m = history.rounds[i];
    EXPECT_EQ(m.contributors + m.stragglers, 5u);
    if (m.stragglers > 0) saw_drop = true;
  }
  EXPECT_TRUE(saw_drop);
}

TEST_F(TrainerTest, FedProxKeepsStragglerContributions) {
  LogisticRegression model(noniid_data().input_dim, noniid_data().num_classes);
  auto history = Trainer(model, noniid_data(),
                         small_config(Algorithm::kFedProx, 0.0, 0.9))
                     .run();
  for (std::size_t i = 1; i < history.rounds.size(); ++i) {
    EXPECT_EQ(history.rounds[i].contributors, 5u);
  }
}

TEST_F(TrainerTest, EvalEveryIsHonoredAndFinalRoundAlwaysEvaluated) {
  LogisticRegression model(iid_data().input_dim, iid_data().num_classes);
  auto config = small_config(Algorithm::kFedProx, 0.0, 0.0);
  config.eval_every = 10;
  auto history = Trainer(model, iid_data(), config).run();
  std::size_t evaluated = 0;
  for (const auto& m : history.rounds) evaluated += m.evaluated() ? 1 : 0;
  EXPECT_EQ(evaluated, 4u);  // rounds 0, 10, 20, 25
  EXPECT_TRUE(history.rounds.back().evaluated());
}

TEST_F(TrainerTest, GammaMeasurementRecorded) {
  LogisticRegression model(iid_data().input_dim, iid_data().num_classes);
  auto config = small_config(Algorithm::kFedProx, 1.0, 0.0);
  config.measure_gamma = true;
  config.rounds = 3;
  auto history = Trainer(model, iid_data(), config).run();
  for (std::size_t i = 1; i < history.rounds.size(); ++i) {
    ASSERT_TRUE(history.rounds[i].mean_gamma.has_value());
    EXPECT_GE(*history.rounds[i].mean_gamma, 0.0);
  }
}

TEST_F(TrainerTest, DissimilarityMeasurementRecorded) {
  LogisticRegression model(noniid_data().input_dim, noniid_data().num_classes);
  auto config = small_config(Algorithm::kFedProx, 0.0, 0.0);
  config.measure_dissimilarity = true;
  config.rounds = 2;
  auto history = Trainer(model, noniid_data(), config).run();
  ASSERT_TRUE(history.rounds.front().dissimilarity_b.has_value());
  EXPECT_GT(*history.rounds.front().grad_variance, 0.0);
  EXPECT_GE(*history.rounds.front().dissimilarity_b, 1.0);
}

TEST_F(TrainerTest, AdaptiveMuChangesOverTraining) {
  LogisticRegression model(noniid_data().input_dim, noniid_data().num_classes);
  auto config = small_config(Algorithm::kFedProx, 0.0, 0.0);
  config.adaptive_mu.enabled = true;
  config.adaptive_mu.initial_mu = 1.0;
  config.rounds = 40;
  auto history = Trainer(model, noniid_data(), config).run();
  bool changed = false;
  for (const auto& m : history.rounds) {
    if (m.mu != 1.0) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST_F(TrainerTest, CustomSolverPluggable) {
  LogisticRegression model(iid_data().input_dim, iid_data().num_classes);
  auto config = small_config(Algorithm::kFedProx, 1.0, 0.0);
  config.solver = std::make_shared<GdSolver>();
  config.rounds = 5;
  auto history = Trainer(model, iid_data(), config).run();
  EXPECT_FALSE(history.diverged());
  EXPECT_LT(*history.final_metrics().train_loss,
            *history.rounds.front().train_loss);
}

TEST_F(TrainerTest, FedDaneRunsAndRecords) {
  LogisticRegression model(iid_data().input_dim, iid_data().num_classes);
  auto config = small_config(Algorithm::kFedDane, 0.0, 0.0);
  config.rounds = 5;
  auto history = Trainer(model, iid_data(), config).run();
  EXPECT_EQ(history.rounds.size(), 6u);
  EXPECT_FALSE(history.diverged());
}

TEST_F(TrainerTest, AddObserverAfterRunStartThrows) {
  // Late registration would skip on_run_start and break ordering, so the
  // trainer rejects it once run() has begun.
  LogisticRegression model(iid_data().input_dim, iid_data().num_classes);
  auto config = small_config(Algorithm::kFedProx, 0.0, 0.0);
  config.rounds = 2;
  Trainer trainer(model, iid_data(), config);
  struct Noop : TrainingObserver {} before, after;
  trainer.add_observer(before);  // pre-run registration is fine
  trainer.run();
  EXPECT_THROW(trainer.add_observer(after), std::logic_error);
}

TEST_F(TrainerTest, ValidatesConfig) {
  LogisticRegression model(iid_data().input_dim, iid_data().num_classes);
  auto config = small_config(Algorithm::kFedProx, 0.0, 0.0);
  config.devices_per_round = 99;  // > num clients
  EXPECT_THROW(Trainer(model, iid_data(), config), std::invalid_argument);
  config = small_config(Algorithm::kFedProx, -1.0, 0.0);
  EXPECT_THROW(Trainer(model, iid_data(), config), std::invalid_argument);
}

TEST_F(TrainerTest, SamplingSchemesBothTrain) {
  LogisticRegression model(iid_data().input_dim, iid_data().num_classes);
  for (auto scheme : {SamplingScheme::kUniformThenWeightedAverage,
                      SamplingScheme::kWeightedThenSimpleAverage}) {
    auto config = small_config(Algorithm::kFedProx, 0.0, 0.0);
    config.sampling = scheme;
    config.rounds = 10;
    auto history = Trainer(model, iid_data(), config).run();
    EXPECT_LT(*history.final_metrics().train_loss,
              *history.rounds.front().train_loss);
  }
}

}  // namespace
}  // namespace fed
