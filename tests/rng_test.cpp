#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "tensor/tensor.h"

namespace fed {
namespace {

TEST(Rng, SameKeySameStream) {
  Rng a = make_stream(7, StreamKind::kTest, 3, 4);
  Rng b = make_stream(7, StreamKind::kTest, 3, 4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSaltsDiverge) {
  Rng a = make_stream(7, StreamKind::kTest, 3, 4);
  Rng b = make_stream(7, StreamKind::kTest, 3, 5);
  Rng c = make_stream(7, StreamKind::kMinibatch, 3, 4);
  int equal_ab = 0, equal_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const auto va = a();
    if (va == b()) ++equal_ab;
    if (va == c()) ++equal_ac;
  }
  EXPECT_LT(equal_ab, 2);
  EXPECT_LT(equal_ac, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) counts[rng.uniform_int(std::uint64_t{5})]++;
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 5, draws / 5 * 0.15);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{1}, std::int64_t{3});
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(21);
  const int n = 100000;
  double mean = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    mean += x;
    sq += x * x;
  }
  mean /= n;
  sq /= n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(sq, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(22);
  const int n = 50000;
  double mean = 0.0;
  for (int i = 0; i < n; ++i) mean += rng.normal(5.0, 0.5);
  mean /= n;
  EXPECT_NEAR(mean, 5.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(51);
  for (int trial = 0; trial < 20; ++trial) {
    auto s = rng.sample_without_replacement(10, 4);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 4u);
    for (auto i : s) EXPECT_LT(i, 10u);
  }
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementUniformCoverage) {
  Rng rng(52);
  std::vector<int> counts(6, 0);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    for (auto i : rng.sample_without_replacement(6, 2)) counts[i]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, trials * 2 / 6, trials * 2 / 6 * 0.1);
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(61);
  Vector w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(62);
  Vector neg{1.0, -1.0};
  EXPECT_THROW(rng.categorical(neg), std::invalid_argument);
  Vector zeros{0.0, 0.0};
  EXPECT_THROW(rng.categorical(zeros), std::invalid_argument);
}

TEST(Rng, WeightedSampleWithoutReplacementDistinct) {
  Rng rng(71);
  Vector w{5.0, 1.0, 1.0, 1.0};
  for (int t = 0; t < 50; ++t) {
    auto s = rng.weighted_sample_without_replacement(w, 3);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST(Rng, WeightedSampleFavorsHeavyItems) {
  Rng rng(72);
  Vector w{10.0, 1.0, 1.0, 1.0, 1.0};
  int first_count = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    auto s = rng.weighted_sample_without_replacement(w, 1);
    if (s[0] == 0) ++first_count;
  }
  // P(item 0) = 10/14 ~ 0.714.
  EXPECT_NEAR(static_cast<double>(first_count) / trials, 10.0 / 14.0, 0.02);
}

}  // namespace
}  // namespace fed
