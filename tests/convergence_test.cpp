#include "core/convergence.h"

#include <gtest/gtest.h>

#include "nn/logistic.h"
#include "test_util.h"

namespace fed {
namespace {

ConvergenceInputs benign() {
  // Near-IID, near-exact, high participation: the regime where Theorem 4
  // certifies decrease (the bound is conservative — see the dashboard
  // example for measured real-problem constants, where rho < 0).
  ConvergenceInputs in;
  in.mu = 20.0;
  in.gamma = 0.02;
  in.b = 1.2;
  in.k = 100.0;
  in.l = 1.0;
  in.l_minus = 0.0;
  return in;
}

TEST(Theorem4Rho, PositiveForBenignConstants) {
  EXPECT_GT(theorem4_rho(benign()), 0.0);
}

TEST(Theorem4Rho, MatchesHandComputedValue) {
  // mu=2, gamma=0, B=1, K=4, L=1, L_minus=0 (mu_bar = 2):
  // rho = 1/2 - 0 - sqrt(2)/(2*2) - 1/(2*2) - 1/(2*4)
  //       - (2*sqrt(8)+2)/(4*4)
  const ConvergenceInputs in{.mu = 2.0, .gamma = 0.0, .b = 1.0, .k = 4.0,
                             .l = 1.0, .l_minus = 0.0};
  const double expected = 0.5 - std::sqrt(2.0) / 4.0 - 0.25 - 0.125 -
                          (2.0 * std::sqrt(8.0) + 2.0) / 16.0;
  EXPECT_NEAR(theorem4_rho(in), expected, 1e-12);
}

TEST(Theorem4Rho, DecreasesWithDissimilarity) {
  ConvergenceInputs in = benign();
  const double rho_low_b = theorem4_rho(in);
  in.b = 3.0;
  EXPECT_LT(theorem4_rho(in), rho_low_b);
}

TEST(Theorem4Rho, DecreasesWithInexactness) {
  ConvergenceInputs in = benign();
  const double rho_exact = theorem4_rho(in);
  in.gamma = 0.5;
  EXPECT_LT(theorem4_rho(in), rho_exact);
}

TEST(Theorem4Rho, MoreDevicesHelp) {
  ConvergenceInputs in = benign();
  in.k = 4.0;
  const double rho_small_k = theorem4_rho(in);
  in.k = 100.0;
  EXPECT_GT(theorem4_rho(in), rho_small_k);
}

TEST(Theorem4Rho, RequiresMuAboveLMinus) {
  ConvergenceInputs in = benign();
  in.l_minus = 20.0;  // mu_bar would be negative
  EXPECT_THROW(theorem4_rho(in), std::invalid_argument);
}

TEST(Remark5, ConditionBoundaries) {
  EXPECT_TRUE(remark5_conditions(0.1, 2.0, 9.0));   // 0.2 < 1, 2/3 < 1
  EXPECT_FALSE(remark5_conditions(0.6, 2.0, 9.0));  // gamma B = 1.2
  EXPECT_FALSE(remark5_conditions(0.1, 4.0, 9.0));  // B/sqrt(K) = 4/3
}

TEST(Corollary7, MuScalesWithLAndBSquared) {
  EXPECT_DOUBLE_EQ(corollary7_mu(2.0, 3.0), 6.0 * 2.0 * 9.0);
}

TEST(Corollary10, BoundMatchesFormula) {
  EXPECT_DOUBLE_EQ(corollary10_b(3.0, 1.0), 2.0);
  EXPECT_THROW(corollary10_b(1.0, 0.0), std::invalid_argument);
}

TEST(SmallestCertifiedMu, FindsThresholdConsistentWithRho) {
  ConvergenceInputs in = benign();
  const double mu_star = smallest_certified_mu(in);
  ASSERT_GT(mu_star, 0.0);
  in.mu = mu_star;
  EXPECT_GT(theorem4_rho(in), 0.0);
  in.mu = mu_star * 0.5;
  if (in.mu > in.l_minus) {
    EXPECT_LE(theorem4_rho(in), 0.0);
  }
}

TEST(SmallestCertifiedMu, ReturnsNegativeWhenImpossible) {
  ConvergenceInputs in = benign();
  in.gamma = 2.0;  // gamma B > 1: no mu can certify
  in.b = 4.0;
  in.k = 4.0;      // B/sqrt(K) = 2 > 1
  EXPECT_LT(smallest_certified_mu(in, 1e4), 0.0);
}

TEST(EstimateSmoothness, QuadraticHasUnitCurvature) {
  // F(w) = 0.5 ||w - x||^2 has Hessian = I: L = 1, L_minus = 0.
  testing::QuadraticModel model(4);
  Dataset data = testing::make_dense_dataset({{1.0, 2.0, 3.0, 4.0}});
  Vector w(4, 0.0);
  Rng rng = make_stream(3, StreamKind::kTest);
  const auto est = estimate_smoothness(model, data, w, 8, 1e-4, rng);
  EXPECT_NEAR(est.l, 1.0, 1e-6);
  EXPECT_NEAR(est.l_minus, 0.0, 1e-6);
}

TEST(EstimateSmoothness, LogisticSmoothnessBounded) {
  // Softmax cross-entropy with bounded features has bounded curvature and
  // is convex: L finite, L_minus ~ 0.
  LogisticRegression model(5, 3);
  Rng gen = make_stream(4, StreamKind::kTest);
  Dataset data = testing::make_random_dataset(30, 5, 3, gen);
  Vector w(model.parameter_count(), 0.1);
  const auto est = estimate_smoothness(model, data, w, 10, 1e-4, gen);
  EXPECT_GT(est.l, 0.0);
  EXPECT_LT(est.l, 100.0);
  EXPECT_NEAR(est.l_minus, 0.0, 1e-4);  // convex objective
}

TEST(EstimateFederatedSmoothness, PoolsMaxOverDevices) {
  testing::QuadraticModel model(2);
  FederatedDataset fed;
  fed.clients.resize(3);
  Rng gen = make_stream(5, StreamKind::kTest);
  for (auto& c : fed.clients) {
    c.train = testing::make_random_dataset(4, 2, 2, gen);
  }
  Vector w(2, 0.0);
  const auto est =
      estimate_federated_smoothness(model, fed, w, 4, 1e-4, /*seed=*/5);
  EXPECT_NEAR(est.l, 1.0, 1e-6);
}

}  // namespace
}  // namespace fed
