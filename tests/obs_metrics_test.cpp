// Metrics registry: instrument semantics, concurrent updates from pool
// workers, JSON/table snapshots, and the Trainer-fed MetricsObserver.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "support/log.h"
#include "support/serialize.h"
#include "support/threadpool.h"

namespace fed {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }
};

TEST_F(MetricsTest, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(MetricsTest, HistogramTracksSumMinMaxMean) {
  Histogram h;
  h.observe(2e-6);
  h.observe(8e-6);
  h.observe(32e-6);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_NEAR(snap.sum, 42e-6, 1e-12);
  EXPECT_NEAR(snap.min, 2e-6, 1e-12);
  EXPECT_NEAR(snap.max, 32e-6, 1e-12);
  EXPECT_NEAR(snap.mean(), 14e-6, 1e-12);
}

TEST_F(MetricsTest, HistogramBucketsAreExponential) {
  // scale = 1: bucket i covers [2^i, 2^(i+1)).
  Histogram h(/*scale=*/1.0, /*num_buckets=*/4);
  h.observe(1.0);   // bucket 0
  h.observe(3.0);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // clamps to the last bucket
  h.observe(0.25);  // clamps to the first bucket
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(MetricsTest, RegistryReturnsStableInstruments) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);  // find-or-create: same name, same instrument
  a.add(7);
  EXPECT_EQ(registry.counter("x").value(), 7u);
  EXPECT_NE(&registry.counter("y"), &a);
}

TEST_F(MetricsTest, ConcurrentUpdatesFromPoolWorkersAreLossless) {
  MetricsRegistry registry;
  Counter& events = registry.counter("events_total");
  Gauge& last = registry.gauge("last_value");
  Histogram& values = registry.histogram("values", /*scale=*/1.0);

  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 250;
  ThreadPool pool(8);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    for (std::size_t j = 0; j < kPerTask; ++j) {
      events.add();
      last.set(static_cast<double>(i));
      values.observe(static_cast<double>(i % 8 + 1));
    }
  });

  EXPECT_EQ(events.value(), kTasks * kPerTask);
  const auto snap = values.snapshot();
  EXPECT_EQ(snap.count, kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
  // Sum of i%8+1 over i in [0,64) is 64*4.5; each repeated kPerTask times.
  EXPECT_NEAR(snap.sum, 4.5 * kTasks * kPerTask, 1e-6);
  EXPECT_GE(last.value(), 0.0);
  EXPECT_LT(last.value(), static_cast<double>(kTasks));
}

TEST_F(MetricsTest, ToJsonAndRenderExposeInstruments) {
  MetricsRegistry registry;
  registry.counter("hits_total").add(3);
  registry.gauge("temperature").set(21.5);
  registry.histogram("latency").observe(1e-3);

  const JsonValue dump = registry.to_json();
  ASSERT_TRUE(dump.is_object());
  EXPECT_DOUBLE_EQ(dump.at("counters").at("hits_total").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(dump.at("gauges").at("temperature").as_number(), 21.5);
  const auto& lat = dump.at("histograms").at("latency");
  EXPECT_DOUBLE_EQ(lat.at("count").as_number(), 1.0);
  EXPECT_NEAR(lat.at("mean").as_number(), 1e-3, 1e-12);

  const std::string table = registry.render();
  EXPECT_NE(table.find("hits_total"), std::string::npos);
  EXPECT_NE(table.find("temperature"), std::string::npos);
  EXPECT_NE(table.find("latency"), std::string::npos);
}

TEST_F(MetricsTest, MetricsObserverFedByTrainerRun) {
  SyntheticConfig sc = synthetic_config(0.5, 0.5, 23);
  sc.num_devices = 8;
  sc.min_samples = 12;
  sc.mean_log = 2.5;
  sc.sigma_log = 0.4;
  const FederatedDataset data = make_synthetic(sc);
  LogisticRegression model(data.input_dim, data.num_classes);

  TrainerConfig c = fedprox_config(0.5);
  c.rounds = 5;
  c.devices_per_round = 4;
  c.systems.epochs = 3;
  c.systems.straggler_fraction = 0.5;
  c.learning_rate = 0.03;
  c.seed = 23;

  MetricsRegistry registry;
  MetricsObserver metrics(registry);
  Trainer trainer(model, data, c);
  trainer.add_observer(metrics);
  const auto history = trainer.run();

  EXPECT_EQ(registry.counter("fed_rounds_total").value(),
            history.rounds.size());
  EXPECT_EQ(registry.counter("fed_clients_total").value(), 5u * 4u);
  std::size_t stragglers = 0;
  for (const auto& m : history.rounds) stragglers += m.stragglers;
  EXPECT_EQ(registry.counter("fed_stragglers_total").value(), stragglers);

  // Transport-measured traffic: one broadcast per selected device down,
  // one update per contributor up, at exact wire sizes.
  const std::size_t d = model.parameter_count();
  std::uint64_t expect_up = 0;
  for (const auto& m : history.rounds) {
    expect_up += m.contributors * update_wire_size(d);
  }
  EXPECT_EQ(registry.counter("fed_comm_bytes_up_total").value(), expect_up);
  EXPECT_EQ(registry.counter("fed_comm_bytes_down_total").value(),
            5u * 4u * broadcast_wire_size(d, 0));

  EXPECT_DOUBLE_EQ(registry.gauge("fed_mu").value(), 0.5);
  EXPECT_DOUBLE_EQ(registry.gauge("fed_round").value(),
                   static_cast<double>(history.rounds.back().round));
  EXPECT_DOUBLE_EQ(registry.gauge("fed_train_loss").value(),
                   *history.final_metrics().train_loss);

  EXPECT_EQ(registry.histogram("fed_round_seconds").snapshot().count,
            history.rounds.size());
  EXPECT_EQ(registry.histogram("fed_client_solve_seconds").snapshot().count,
            5u * 4u);
}

}  // namespace
}  // namespace fed
