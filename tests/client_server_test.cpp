#include <gtest/gtest.h>

#include "optim/sgd.h"
#include "sim/client.h"
#include "sim/server.h"
#include "test_util.h"

namespace fed {
namespace {

using testing::QuadraticModel;
using testing::make_dense_dataset;

ClientData quad_client() {
  ClientData c;
  c.train = make_dense_dataset({{2.0, 2.0}, {4.0, 6.0}});
  c.test = make_dense_dataset({{3.0, 4.0}});
  return c;
}

TEST(RunClient, UpdatesMoveTowardLocalMinimizer) {
  QuadraticModel model(2);
  const ClientData data = quad_client();
  Vector w_global{0.0, 0.0};
  SgdSolver solver;
  DeviceBudget budget{.device = 3, .straggler = false, .epochs = 10,
                      .iterations = 40};
  RoundConfig config{.mu = 0.0, .batch_size = 2, .learning_rate = 0.2,
                           .measure_gamma = false};
  Rng rng = make_stream(1, StreamKind::kMinibatch, 0, 3);
  const ClientResult result =
      run_client(model, data, w_global, solver, budget, config, {}, rng);
  EXPECT_EQ(result.device, 3u);
  EXPECT_EQ(result.num_samples, 2u);
  // Local minimizer is the feature mean (3, 4).
  EXPECT_NEAR(result.update[0], 3.0, 1e-3);
  EXPECT_NEAR(result.update[1], 4.0, 1e-3);
}

TEST(RunClient, ZeroBudgetReturnsAnchor) {
  QuadraticModel model(2);
  const ClientData data = quad_client();
  Vector w_global{5.0, -5.0};
  SgdSolver solver;
  DeviceBudget budget{.device = 0, .straggler = true, .epochs = 0,
                      .iterations = 0};
  RoundConfig config;
  Rng rng = make_stream(2, StreamKind::kMinibatch, 0, 0);
  const ClientResult result =
      run_client(model, data, w_global, solver, budget, config, {}, rng);
  EXPECT_EQ(result.update, (Vector{5.0, -5.0}));
  EXPECT_TRUE(result.straggler);
}

TEST(RunClient, GammaMeasuredWhenRequested) {
  QuadraticModel model(2);
  const ClientData data = quad_client();
  Vector w_global{0.0, 0.0};
  SgdSolver solver;
  DeviceBudget budget{.device = 0, .straggler = false, .epochs = 5,
                      .iterations = 30};
  RoundConfig config{.mu = 1.0, .batch_size = 2, .learning_rate = 0.2,
                           .measure_gamma = true};
  Rng rng = make_stream(3, StreamKind::kMinibatch, 0, 0);
  const ClientResult result =
      run_client(model, data, w_global, solver, budget, config, {}, rng);
  EXPECT_TRUE(result.gamma_measured);
  EXPECT_GE(result.gamma, 0.0);
  EXPECT_LT(result.gamma, 1.0);  // real progress was made
}

TEST(EvaluateGlobal, WeightsLossBySampleCount) {
  QuadraticModel model(1);
  FederatedDataset fed;
  fed.clients.resize(2);
  // Client 0: 1 sample at 0 -> F_0(w) = 0.5 w^2.
  fed.clients[0].train = make_dense_dataset({{0.0}});
  // Client 1: 3 samples at 2 -> F_1(w) = 0.5 (w-2)^2.
  fed.clients[1].train = make_dense_dataset({{2.0}, {2.0}, {2.0}});
  Vector w{1.0};
  const GlobalEval eval = evaluate_global(model, fed, w, nullptr);
  // f(1) = (1/4)(0.5) + (3/4)(0.5) = 0.5.
  EXPECT_NEAR(eval.train_loss, 0.5, 1e-12);
}

TEST(EvaluateGlobal, PoolsTestAccuracyOverDevices) {
  QuadraticModel model(1);  // its predict() always matches labels
  FederatedDataset fed;
  fed.clients.resize(2);
  fed.clients[0].train = make_dense_dataset({{0.0}});
  fed.clients[0].test = make_dense_dataset({{0.0}, {0.0}});
  fed.clients[1].train = make_dense_dataset({{1.0}});
  fed.clients[1].test = make_dense_dataset({{1.0}});
  Vector w{0.0};
  const GlobalEval eval = evaluate_global(model, fed, w, nullptr);
  EXPECT_DOUBLE_EQ(eval.test_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(eval.train_accuracy, 1.0);
}

TEST(EvaluateGlobal, ParallelMatchesSerial) {
  QuadraticModel model(2);
  FederatedDataset fed;
  Rng gen = make_stream(9, StreamKind::kTest);
  fed.clients.resize(8);
  for (auto& c : fed.clients) {
    c.train = testing::make_random_dataset(20, 2, 2, gen);
    c.test = testing::make_random_dataset(5, 2, 2, gen);
  }
  Vector w{0.3, -0.7};
  ThreadPool pool(4);
  const GlobalEval serial = evaluate_global(model, fed, w, nullptr);
  const GlobalEval parallel = evaluate_global(model, fed, w, &pool);
  EXPECT_NEAR(serial.train_loss, parallel.train_loss, 1e-12);
  EXPECT_DOUBLE_EQ(serial.test_accuracy, parallel.test_accuracy);
}

}  // namespace
}  // namespace fed
