#include "sim/sampling.h"

#include <gtest/gtest.h>

#include <set>

#include "tensor/tensor.h"

namespace fed {
namespace {

Vector uniform_pk(std::size_t n) { return Vector(n, 1.0 / n); }

class SchemeTest : public ::testing::TestWithParam<SamplingScheme> {};

TEST_P(SchemeTest, SelectsDistinctDevicesInRange) {
  const auto pk = uniform_pk(30);
  for (std::uint64_t round = 0; round < 25; ++round) {
    const auto s = select_devices(GetParam(), pk, 10, /*seed=*/1, round);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (auto d : s) EXPECT_LT(d, 30u);
  }
}

TEST_P(SchemeTest, DeterministicInSeedAndRound) {
  const auto pk = uniform_pk(20);
  const auto a = select_devices(GetParam(), pk, 5, 3, 7);
  const auto b = select_devices(GetParam(), pk, 5, 3, 7);
  EXPECT_EQ(a, b);
  const auto c = select_devices(GetParam(), pk, 5, 3, 8);
  EXPECT_NE(a, c);  // overwhelmingly likely for 20-choose-5
}

TEST_P(SchemeTest, ValidatesDevicesPerRound) {
  const auto pk = uniform_pk(5);
  EXPECT_THROW(select_devices(GetParam(), pk, 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(select_devices(GetParam(), pk, 6, 1, 0), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeTest,
    ::testing::Values(SamplingScheme::kUniformThenWeightedAverage,
                      SamplingScheme::kWeightedThenSimpleAverage));

TEST(Sampling, WeightedSchemePrefersHeavyDevices) {
  Vector pk{0.55, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05};
  int device0 = 0;
  const int rounds = 3000;
  for (int r = 0; r < rounds; ++r) {
    const auto s = select_devices(SamplingScheme::kWeightedThenSimpleAverage,
                                  pk, 2, 5, static_cast<std::uint64_t>(r));
    for (auto d : s) {
      if (d == 0) ++device0;
    }
  }
  // Device 0 should be picked in nearly every round (first-draw prob 0.55,
  // plus second-draw chances).
  EXPECT_GT(static_cast<double>(device0) / rounds, 0.6);
}

TEST(Sampling, UniformSchemeIgnoresWeights) {
  Vector pk{0.91, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01};
  std::vector<int> counts(10, 0);
  const int rounds = 5000;
  for (int r = 0; r < rounds; ++r) {
    for (auto d : select_devices(SamplingScheme::kUniformThenWeightedAverage,
                                 pk, 3, 5, static_cast<std::uint64_t>(r))) {
      counts[d]++;
    }
  }
  // Every device selected ~ rounds * 3/10.
  for (int c : counts) EXPECT_NEAR(c, rounds * 3 / 10, rounds * 3 / 10 * 0.15);
}

TEST(Sampling, ToStringNames) {
  EXPECT_EQ(to_string(SamplingScheme::kUniformThenWeightedAverage),
            "uniform_sampling+weighted_average");
  EXPECT_EQ(to_string(SamplingScheme::kWeightedThenSimpleAverage),
            "weighted_sampling+simple_average");
}

}  // namespace
}  // namespace fed
