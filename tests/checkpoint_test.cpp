// Crash recovery (core/checkpoint.h): the FPC1 snapshot round-trips
// bit-exactly and rejects any damage, the CheckpointWriter is atomic and
// retention-bounded, the trainer writes on the configured cadence, and —
// the central contract — a crashed-and-resumed run reproduces the
// uninterrupted TrainHistory bit-for-bit, including under channel
// faults, open-world churn, and a different thread/shard count after the
// resume. Also covers the telemetry resume semantics the bench layer
// relies on: JsonlTraceSink append mode and counter seeding from a
// published exposition file.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "support/log.h"
#include "support/serialize.h"

namespace fed {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  void SetUp() override {
    dir_ = ::testing::TempDir() + "fedprox_checkpoint_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(0.5, 0.5, 33);
      c.num_devices = 12;
      c.min_samples = 15;
      c.mean_log = 2.5;
      c.sigma_log = 0.5;
      return make_synthetic(c);
    }();
    return d;
  }

  static TrainerConfig config() {
    TrainerConfig c = fedprox_config(0.5);
    c.rounds = 12;
    c.devices_per_round = 4;
    c.systems.epochs = 3;
    c.systems.straggler_fraction = 0.5;
    c.learning_rate = 0.03;
    c.seed = 33;
    c.eval_every = 3;
    return c;
  }

  // A fully-populated snapshot exercising every optional field.
  static CheckpointState sample_state() {
    CheckpointState state;
    state.fingerprint = 0x1234abcd5678ef01ull;
    state.seed = 42;
    state.next_round = 9;
    state.first_round = 2;
    state.mu = 0.75;
    state.has_adaptive = true;
    state.adaptive_mu = 0.5;
    state.adaptive_last_loss = 1.25;
    state.adaptive_has_last = true;
    state.adaptive_consecutive_decreases = 3;
    state.parameters = Vector{0.5, -1.25, 3.0, 0.0};
    state.population = 10;
    state.churn_arrivals = 7;
    state.churn_departures = 5;
    state.active = {0xAF, 0x02};
    RoundMetrics m;
    m.round = 8;
    m.train_loss = 0.5;
    m.train_accuracy = 0.75;
    m.test_accuracy = 0.625;
    m.dissimilarity_b = 1.5;
    m.mu = 0.75;
    m.mean_gamma = 0.125;
    m.contributors = 4;
    m.stragglers = 2;
    state.rounds = {RoundMetrics{.round = 7, .mu = 0.5}, m};
    return state;
  }

  // Runs config `c` to completion; on a planned crash, resumes from the
  // newest checkpoint (repeatedly, in case a second crash is armed by
  // the caller between calls) and returns the combined history.
  static TrainHistory run_with_recovery(const Model& model, TrainerConfig c,
                                        const std::string& dir) {
    c.checkpoint.dir = dir;
    for (;;) {
      try {
        Trainer trainer(model, data(), c);
        if (auto newest = latest_checkpoint(dir)) {
          return trainer.resume(*newest);
        }
        return trainer.run();
      } catch (const ServerCrashed&) {
        c.crash = {};  // the next segment's server stays up
      }
    }
  }

  std::string dir_;
};

TEST_F(CheckpointTest, StateRoundTripsBitExact) {
  const CheckpointState state = sample_state();
  const WireBuffer wire = encode_checkpoint_state(state);
  const CheckpointState back =
      decode_checkpoint_state(std::span<const std::uint8_t>(wire));
  EXPECT_EQ(back.fingerprint, state.fingerprint);
  EXPECT_EQ(back.seed, state.seed);
  EXPECT_EQ(back.next_round, state.next_round);
  EXPECT_EQ(back.first_round, state.first_round);
  EXPECT_EQ(back.mu, state.mu);
  EXPECT_TRUE(back.has_adaptive);
  EXPECT_EQ(back.adaptive_mu, state.adaptive_mu);
  EXPECT_EQ(back.adaptive_last_loss, state.adaptive_last_loss);
  EXPECT_TRUE(back.adaptive_has_last);
  EXPECT_EQ(back.adaptive_consecutive_decreases, 3u);
  EXPECT_FALSE(back.has_theory);
  EXPECT_EQ(back.parameters, state.parameters);
  EXPECT_EQ(back.population, state.population);
  EXPECT_EQ(back.churn_arrivals, state.churn_arrivals);
  EXPECT_EQ(back.churn_departures, state.churn_departures);
  EXPECT_EQ(back.active, state.active);
  ASSERT_EQ(back.rounds.size(), 2u);
  EXPECT_EQ(back.rounds[0].round, 7u);
  EXPECT_FALSE(back.rounds[0].evaluated());
  EXPECT_EQ(back.rounds[1].train_loss, state.rounds[1].train_loss);
  EXPECT_EQ(back.rounds[1].mean_gamma, state.rounds[1].mean_gamma);
  EXPECT_EQ(back.rounds[1].stragglers, 2u);
}

TEST_F(CheckpointTest, EveryBitFlipIsRejected) {
  // The FNV-1a trailer covers the whole frame: flipping ANY single bit —
  // header, payload, or the checksum itself — must fail the load.
  const WireBuffer wire = encode_checkpoint_state(sample_state());
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    WireBuffer damaged = wire;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_THROW(
        (void)decode_checkpoint_state(std::span<const std::uint8_t>(damaged)),
        std::runtime_error)
        << "flip of bit " << bit << " was not detected";
  }
}

TEST_F(CheckpointTest, TruncationAndTrailingBytesAreRejected) {
  const WireBuffer wire = encode_checkpoint_state(sample_state());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    WireBuffer prefix(wire.begin(),
                      wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(
        (void)decode_checkpoint_state(std::span<const std::uint8_t>(prefix)),
        std::runtime_error)
        << "prefix of " << len << " bytes was not rejected";
  }
  WireBuffer extended = wire;
  extended.push_back(0x00);
  EXPECT_THROW(
      (void)decode_checkpoint_state(std::span<const std::uint8_t>(extended)),
      std::runtime_error);
}

TEST_F(CheckpointTest, SaveLoadIsAtomicOnDisk) {
  const CheckpointState state = sample_state();
  const std::string path = dir_ + "/ckpt-000000000008.fpc";
  save_checkpoint_state(path, state);
  EXPECT_TRUE(std::filesystem::exists(path));
  // temp+rename leaves no intermediate file behind.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".fpc")
        << "stray file " << entry.path();
  }
  const CheckpointState back = load_checkpoint_state(path);
  EXPECT_EQ(back.parameters, state.parameters);
  EXPECT_EQ(back.next_round, state.next_round);
  EXPECT_THROW((void)load_checkpoint_state(dir_ + "/absent.fpc"),
               std::runtime_error);
}

TEST_F(CheckpointTest, CorruptFileOnDiskIsRejected) {
  const std::string path = dir_ + "/ckpt-000000000008.fpc";
  save_checkpoint_state(path, sample_state());
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(12);
  file.put('\x7f');
  file.close();
  EXPECT_THROW((void)load_checkpoint_state(path), std::runtime_error);
}

TEST_F(CheckpointTest, WriterPrunesBeyondRetention) {
  CheckpointConfig config;
  config.dir = dir_;
  config.every = 1;
  config.retain = 2;
  CheckpointWriter writer(config);
  CheckpointState state = sample_state();
  for (std::uint64_t round = 1; round <= 5; ++round) {
    state.next_round = round + 1;  // names the file ckpt-<round>.fpc
    const auto info = writer.write(state);
    EXPECT_GT(info.bytes, 0u);
    EXPECT_LE(info.generations, config.retain);
  }
  const auto files = list_checkpoints(dir_);
  ASSERT_EQ(files.size(), 2u);  // only the newest two generations remain
  EXPECT_NE(files[0].find("ckpt-000000000004.fpc"), std::string::npos);
  EXPECT_NE(files[1].find("ckpt-000000000005.fpc"), std::string::npos);
  EXPECT_EQ(latest_checkpoint(dir_), files[1]);
  EXPECT_EQ(load_checkpoint_state(files[1]).next_round, 6u);
}

TEST_F(CheckpointTest, TrainerWritesOnTheConfiguredCadence) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig c = config();  // 12 rounds
  c.checkpoint.dir = dir_;
  c.checkpoint.every = 5;
  c.checkpoint.retain = 10;
  (void)Trainer(model, data(), c).run();
  const auto files = list_checkpoints(dir_);
  ASSERT_EQ(files.size(), 2u);  // after rounds 5 and 10 only
  EXPECT_EQ(load_checkpoint_state(files[0]).next_round, 6u);
  EXPECT_EQ(load_checkpoint_state(files[1]).next_round, 11u);
}

TEST_F(CheckpointTest, CheckpointingItselfNeverChangesHistory) {
  LogisticRegression model(data().input_dim, data().num_classes);
  const TrainHistory plain = Trainer(model, data(), config()).run();
  TrainerConfig c = config();
  c.checkpoint.dir = dir_;
  c.checkpoint.every = 2;
  const TrainHistory checkpointed = Trainer(model, data(), c).run();
  EXPECT_EQ(plain.final_parameters, checkpointed.final_parameters);
  ASSERT_EQ(plain.rounds.size(), checkpointed.rounds.size());
}

TEST_F(CheckpointTest, CrashAndResumeIsBitIdentical) {
  LogisticRegression model(data().input_dim, data().num_classes);
  const TrainHistory reference = Trainer(model, data(), config()).run();

  TrainerConfig c = config();
  c.checkpoint.every = 4;
  c.crash.at_round = 9;  // dies mid-aggregation; newest checkpoint: round 8
  const TrainHistory resumed = run_with_recovery(model, c, dir_);

  EXPECT_EQ(reference.final_parameters, resumed.final_parameters);
  ASSERT_EQ(reference.rounds.size(), resumed.rounds.size());
  for (std::size_t i = 0; i < reference.rounds.size(); ++i) {
    EXPECT_EQ(reference.rounds[i].round, resumed.rounds[i].round);
    EXPECT_EQ(reference.rounds[i].train_loss, resumed.rounds[i].train_loss);
    EXPECT_EQ(reference.rounds[i].mu, resumed.rounds[i].mu);
    EXPECT_EQ(reference.rounds[i].contributors,
              resumed.rounds[i].contributors);
  }
}

TEST_F(CheckpointTest, ResumeMayChangeThreadsAndShards) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig reference_config = config();
  reference_config.threads = 1;
  const TrainHistory reference =
      Trainer(model, data(), reference_config).run();

  // Crash a single-threaded, unsharded run; resume with 4 threads and 3
  // aggregator shards. Both knobs are excluded from the fingerprint and
  // bit-identity-neutral by contract.
  TrainerConfig crashed = config();
  crashed.threads = 1;
  crashed.checkpoint.dir = dir_;
  crashed.checkpoint.every = 4;
  crashed.crash.at_round = 7;
  try {
    (void)Trainer(model, data(), crashed).run();
    FAIL() << "planned crash did not fire";
  } catch (const ServerCrashed& crash) {
    EXPECT_EQ(crash.round(), 7u);
  }
  TrainerConfig resumed_config = config();
  resumed_config.threads = 4;
  resumed_config.shards = 3;
  resumed_config.checkpoint.dir = dir_;
  resumed_config.checkpoint.every = 4;
  const auto newest = latest_checkpoint(dir_);
  ASSERT_TRUE(newest.has_value());
  const TrainHistory resumed =
      Trainer(model, data(), resumed_config).resume(*newest);
  EXPECT_EQ(reference.final_parameters, resumed.final_parameters);
  EXPECT_EQ(reference.rounds.size(), resumed.rounds.size());
}

TEST_F(CheckpointTest, ResumeUnderChannelFaultsAndChurn) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig c = config();
  c.faults.drop = 0.2;
  c.faults.corrupt = 0.05;
  c.recovery.max_retries = 2;
  c.churn.arrive = 0.1;
  c.churn.depart = 0.1;
  const TrainHistory reference = Trainer(model, data(), c).run();

  TrainerConfig crashed = c;
  crashed.checkpoint.every = 3;
  crashed.crash.at_round = 8;
  const TrainHistory resumed = run_with_recovery(model, crashed, dir_);
  EXPECT_EQ(reference.final_parameters, resumed.final_parameters);
  ASSERT_EQ(reference.rounds.size(), resumed.rounds.size());
  for (std::size_t i = 0; i < reference.rounds.size(); ++i) {
    EXPECT_EQ(reference.rounds[i].contributors,
              resumed.rounds[i].contributors);
    EXPECT_EQ(reference.rounds[i].train_loss, resumed.rounds[i].train_loss);
  }
}

TEST_F(CheckpointTest, AdaptiveMuStateSurvivesTheCrash) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig c = config();
  c.eval_every = 1;  // adaptive mu moves on evaluated rounds
  c.adaptive_mu.enabled = true;
  c.adaptive_mu.initial_mu = 0.5;
  c.adaptive_mu.step = 0.1;
  c.adaptive_mu.patience = 2;
  const TrainHistory reference = Trainer(model, data(), c).run();

  TrainerConfig crashed = c;
  crashed.checkpoint.every = 4;
  crashed.crash.at_round = 10;
  const TrainHistory resumed = run_with_recovery(model, crashed, dir_);
  ASSERT_EQ(reference.rounds.size(), resumed.rounds.size());
  for (std::size_t i = 0; i < reference.rounds.size(); ++i) {
    EXPECT_EQ(reference.rounds[i].mu, resumed.rounds[i].mu)
        << "adaptive mu diverged at round " << reference.rounds[i].round;
  }
  EXPECT_EQ(reference.final_parameters, resumed.final_parameters);
}

TEST_F(CheckpointTest, FingerprintMismatchRefusesToResume) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig c = config();
  c.checkpoint.dir = dir_;
  c.checkpoint.every = 4;
  (void)Trainer(model, data(), c).run();
  const auto newest = latest_checkpoint(dir_);
  ASSERT_TRUE(newest.has_value());

  TrainerConfig other = config();
  other.seed = c.seed + 1;  // any trajectory-relevant knob must be caught
  Trainer mismatched(model, data(), other);
  EXPECT_THROW((void)mismatched.resume(*newest), std::runtime_error);

  TrainerConfig same = config();
  same.threads = 8;  // neutral knobs must NOT be caught
  const TrainHistory ok = Trainer(model, data(), same).resume(*newest);
  EXPECT_FALSE(ok.rounds.empty());
}

TEST_F(CheckpointTest, JsonlSinkAppendKeepsEarlierSegments) {
  const std::string path = dir_ + "/trace.jsonl";
  RunInfo info;
  info.algorithm = "FedProx";
  info.rounds = 2;
  RoundMetrics metrics;
  RoundTrace trace;
  {
    JsonlTraceSink sink(path);
    sink.begin_run(info);
    metrics.round = trace.round = 1;
    sink.write(metrics, trace);
  }
  {
    RunInfo resumed = info;
    resumed.resumed = true;
    resumed.first_round = 1;
    JsonlTraceSink sink(path, RotationPolicy{},
                        JsonlTraceSink::OpenMode::kAppend);
    sink.begin_run(resumed);
    metrics.round = trace.round = 2;
    sink.write(metrics, trace);
  }
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);  // truncation would have kept only two
  EXPECT_NE(lines[0].find("\"resumed\":false"), std::string::npos);
  EXPECT_NE(lines[2].find("\"resumed\":true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"first_round\":1"), std::string::npos);
}

TEST_F(CheckpointTest, CounterSeedingCarriesTotalsAcrossACrash) {
  std::filesystem::create_directories(dir_);
  const std::string path = dir_ + "/metrics.prom";
  {
    std::ofstream out(path);
    out << "# HELP fed_comm_bytes_down_total bytes\n"
        << "# TYPE fed_comm_bytes_down_total counter\n"
        << "fed_comm_bytes_down_total 12345\n"
        << "# TYPE fed_comm_faults_total counter\n"
        << "fed_comm_faults_total{kind=\"drop\"} 17\n"
        << "# TYPE fed_rounds_total gauge\n"
        << "fed_rounds_total 99\n";  // gauges are rebuilt, never seeded
  }
  MetricsRegistry registry;
  EXPECT_EQ(seed_counters_from_exposition(registry, path), 2u);
  EXPECT_EQ(registry.counter("fed_comm_bytes_down_total").value(), 12345u);
  EXPECT_EQ(registry.counter("fed_comm_faults_total", {{"kind", "drop"}})
                .value(),
            17u);
  EXPECT_EQ(registry.gauge("fed_rounds_total").value(), 0.0);
  // A missing file is a fresh start, not an error.
  EXPECT_EQ(seed_counters_from_exposition(registry, dir_ + "/absent.prom"),
            0u);
}

}  // namespace
}  // namespace fed
