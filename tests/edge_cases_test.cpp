// Edge cases and failure injection across module boundaries.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/grad_check.h"
#include "nn/logistic.h"
#include "nn/lstm.h"
#include "sim/server.h"
#include "support/log.h"
#include "test_util.h"

namespace fed {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }
};

// Variable-length sequences inside one batch: the LSTM must handle each
// sample's own horizon, and gradients must stay exact.
TEST_F(EdgeCaseTest, LstmVariableLengthBatchGradCheck) {
  LstmConfig config;
  config.vocab_size = 6;
  config.embed_dim = 3;
  config.hidden_dim = 4;
  config.num_layers = 2;
  config.num_classes = 3;
  config.trainable_embedding = true;
  LstmClassifier model(config);

  Dataset data;
  data.tokens = {{1}, {0, 2, 4}, {5, 5, 5, 5, 5, 1, 0}, {3, 2}};
  data.labels = {0, 1, 2, 1};
  Rng rng = make_stream(99, StreamKind::kTest);
  Vector w(model.parameter_count());
  model.init_parameters(w, rng);
  const auto batch = full_batch(4);
  const auto result = check_gradients(model, w, data, batch, 1e-5, 120);
  EXPECT_TRUE(result.passed(1e-5)) << result.max_relative_error;
}

// A client whose test split is empty must not poison global evaluation.
TEST_F(EdgeCaseTest, EvaluateGlobalWithEmptyTestSets) {
  testing::QuadraticModel model(2);
  FederatedDataset fed;
  fed.clients.resize(2);
  fed.clients[0].train = testing::make_dense_dataset({{1.0, 1.0}});
  // client 0 has no test data at all
  fed.clients[1].train = testing::make_dense_dataset({{2.0, 2.0}});
  fed.clients[1].test = testing::make_dense_dataset({{2.0, 2.0}});
  Vector w{0.0, 0.0};
  const GlobalEval eval = evaluate_global(model, fed, w, nullptr);
  EXPECT_TRUE(std::isfinite(eval.train_loss));
  EXPECT_DOUBLE_EQ(eval.test_accuracy, 1.0);  // only client 1's test counts
}

// With a 100% straggler fraction, FedAvg drops every device every round:
// the global model must stay frozen and the metrics constant.
TEST_F(EdgeCaseTest, FedAvgAllStragglersFreezesModel) {
  SyntheticConfig sc = synthetic_config(1.0, 1.0, 21);
  sc.num_devices = 6;
  sc.min_samples = 10;
  sc.mean_log = 2.0;
  sc.sigma_log = 0.3;
  const FederatedDataset data = make_synthetic(sc);
  LogisticRegression model(data.input_dim, data.num_classes);
  TrainerConfig c = fedavg_config();
  c.rounds = 5;
  c.devices_per_round = 3;
  c.systems.epochs = 5;
  c.systems.straggler_fraction = 1.0;
  c.seed = 21;
  auto h = Trainer(model, data, c).run();
  const double initial = *h.rounds.front().train_loss;
  for (const auto& m : h.rounds) {
    if (m.evaluated()) {
      EXPECT_DOUBLE_EQ(*m.train_loss, initial);
    }
    if (m.round > 0) {
      EXPECT_EQ(m.contributors, 0u);
    }
  }
}

// FedProx under the same conditions keeps training (partial work counts).
TEST_F(EdgeCaseTest, FedProxAllStragglersStillTrains) {
  SyntheticConfig sc = synthetic_config(1.0, 1.0, 21);
  sc.num_devices = 6;
  sc.min_samples = 10;
  sc.mean_log = 2.0;
  sc.sigma_log = 0.3;
  const FederatedDataset data = make_synthetic(sc);
  LogisticRegression model(data.input_dim, data.num_classes);
  TrainerConfig c = fedprox_config(0.0);
  c.rounds = 10;
  c.devices_per_round = 3;
  c.systems.epochs = 5;
  c.systems.straggler_fraction = 1.0;
  c.learning_rate = 0.03;
  c.seed = 21;
  auto h = Trainer(model, data, c).run();
  EXPECT_LT(*h.final_metrics().train_loss, *h.rounds.front().train_loss);
}

// Mini-batches larger than a device's dataset degrade to full batches.
TEST_F(EdgeCaseTest, BatchSizeLargerThanClientData) {
  testing::QuadraticModel model(2);
  FederatedDataset fed;
  fed.clients.resize(2);
  fed.clients[0].train = testing::make_dense_dataset({{1.0, 3.0}});
  fed.clients[1].train = testing::make_dense_dataset({{2.0, 0.0}, {4.0, 2.0}});
  TrainerConfig c = fedprox_config(0.1);
  c.rounds = 4;
  c.devices_per_round = 2;
  c.batch_size = 100;  // far larger than any client
  c.systems.epochs = 2;
  c.learning_rate = 0.2;
  c.seed = 5;
  auto h = Trainer(model, fed, c).run();
  EXPECT_FALSE(h.diverged());
  EXPECT_LT(*h.final_metrics().train_loss, *h.rounds.front().train_loss);
}

TEST_F(EdgeCaseTest, FinalMetricsThrowsOnEmptyHistory) {
  TrainHistory h;
  EXPECT_THROW(h.final_metrics(), std::logic_error);
}

TEST_F(EdgeCaseTest, DivergedDetectsNonFiniteLoss) {
  TrainHistory h;
  RoundMetrics m;
  m.train_loss = std::numeric_limits<double>::quiet_NaN();
  h.rounds.push_back(m);
  EXPECT_TRUE(h.diverged());
}

TEST_F(EdgeCaseTest, SettledAccuracyDivergenceRule) {
  TrainHistory h;
  // Loss creeps up; by round 11 f_t - f_{t-10} = 1.1 > 1 -> diverging.
  for (std::size_t i = 0; i < 15; ++i) {
    RoundMetrics m;
    m.round = i;
    m.train_loss = 1.0 + 0.11 * static_cast<double>(i);
    m.test_accuracy = 0.01 * static_cast<double>(i);
    h.rounds.push_back(m);
  }
  // First i with f_i - f_{i-10} > 1: 0.11 * 10 = 1.1 at i = 10.
  EXPECT_DOUBLE_EQ(settled_accuracy(h), 0.10);
}

TEST_F(EdgeCaseTest, TrajectoryStringHandlesSparseEvaluations) {
  TrainHistory h;
  for (std::size_t i = 0; i < 3; ++i) {
    RoundMetrics m;
    m.round = i * 10;
    m.train_loss = 3.0 - static_cast<double>(i);
    h.rounds.push_back(m);
  }
  const std::string s = trajectory_string(h, 5);
  EXPECT_NE(s.find("r0:3"), std::string::npos);
  EXPECT_NE(s.find("r20:1"), std::string::npos);
}

// Device budgets for devices with a single training sample.
TEST_F(EdgeCaseTest, SingleSampleDeviceTrains) {
  testing::QuadraticModel model(1);
  FederatedDataset fed;
  fed.clients.resize(2);
  fed.clients[0].train = testing::make_dense_dataset({{5.0}});
  fed.clients[1].train = testing::make_dense_dataset({{-5.0}});
  TrainerConfig c = fedprox_config(0.0);
  c.rounds = 3;
  c.devices_per_round = 2;
  c.batch_size = 10;
  c.systems.epochs = 3;
  c.learning_rate = 0.5;
  c.seed = 9;
  auto h = Trainer(model, fed, c).run();
  EXPECT_FALSE(h.diverged());
}

}  // namespace
}  // namespace fed
