#include "data/image_like.h"

#include <gtest/gtest.h>

#include <set>

#include "tensor/ops.h"

namespace fed {
namespace {

ImageLikeConfig small_mnist() {
  ImageLikeConfig c = mnist_like_config(/*seed=*/3, /*scale=*/0.05);  // 50 devices
  c.input_dim = 64;  // keep the test fast
  return c;
}

TEST(ImageLike, EveryDeviceHasExactlyTheShardClasses) {
  const FederatedDataset fed = make_image_like(small_mnist());
  for (const auto& client : fed.clients) {
    std::set<std::int32_t> classes(client.train.labels.begin(),
                                   client.train.labels.end());
    classes.insert(client.test.labels.begin(), client.test.labels.end());
    EXPECT_LE(classes.size(), 2u);  // mnist-like: 2 digits per device
    EXPECT_GE(classes.size(), 1u);
  }
}

TEST(ImageLike, FemnistHasFiveClassesPerDevice) {
  ImageLikeConfig c = femnist_like_config(4, 0.2);  // 40 devices
  c.input_dim = 64;
  const FederatedDataset fed = make_image_like(c);
  EXPECT_EQ(fed.name, "femnist_like");
  for (const auto& client : fed.clients) {
    std::set<std::int32_t> classes(client.train.labels.begin(),
                                   client.train.labels.end());
    classes.insert(client.test.labels.begin(), client.test.labels.end());
    EXPECT_LE(classes.size(), 5u);
  }
}

TEST(ImageLike, TableOneScaleDefaults) {
  const ImageLikeConfig mnist = mnist_like_config(1, 1.0);
  EXPECT_EQ(mnist.num_devices, 1000u);
  EXPECT_EQ(mnist.classes_per_device, 2u);
  const ImageLikeConfig femnist = femnist_like_config(1, 1.0);
  EXPECT_EQ(femnist.num_devices, 200u);
  EXPECT_EQ(femnist.classes_per_device, 5u);
}

TEST(ImageLike, Deterministic) {
  const FederatedDataset a = make_image_like(small_mnist());
  const FederatedDataset b = make_image_like(small_mnist());
  EXPECT_EQ(a.clients[7].train.features, b.clients[7].train.features);
  EXPECT_EQ(a.clients[7].train.labels, b.clients[7].train.labels);
}

TEST(ImageLike, MinimumSamplesRespected) {
  const ImageLikeConfig c = small_mnist();
  const FederatedDataset fed = make_image_like(c);
  for (const auto& client : fed.clients) {
    EXPECT_GE(client.train.size() + client.test.size(), c.min_samples);
  }
}

// Learnability: nearest-prototype classification on the generated data
// should far exceed chance — i.e. the class signal survives noise+style.
TEST(ImageLike, NearestCentroidBeatsChance) {
  ImageLikeConfig c = small_mnist();
  // Boost the class signal relative to the bench-calibrated default so
  // the 64-d test stays robust; the property under test is that labels
  // follow the prototypes at all.
  c.prototype_scale = 0.3;
  c.noise_scale = 0.8;
  const FederatedDataset fed = make_image_like(c);
  const std::size_t dim = c.input_dim;

  // Estimate class centroids from train data.
  Matrix centroid(c.num_classes, dim);
  std::vector<double> counts(c.num_classes, 0.0);
  for (const auto& client : fed.clients) {
    for (std::size_t i = 0; i < client.train.size(); ++i) {
      const auto y = static_cast<std::size_t>(client.train.labels[i]);
      axpy(1.0, client.train.features.row(i), centroid.row(y));
      counts[y] += 1.0;
    }
  }
  for (std::size_t k = 0; k < c.num_classes; ++k) {
    if (counts[k] > 0) scale(centroid.row(k), 1.0 / counts[k]);
  }

  std::size_t correct = 0, total = 0;
  for (const auto& client : fed.clients) {
    for (std::size_t i = 0; i < client.test.size(); ++i) {
      auto x = client.test.features.row(i);
      double best = 1e300;
      std::size_t best_k = 0;
      for (std::size_t k = 0; k < c.num_classes; ++k) {
        const double d = distance2(x, centroid.row(k));
        if (d < best) {
          best = d;
          best_k = k;
        }
      }
      if (static_cast<std::int32_t>(best_k) == client.test.labels[i]) {
        ++correct;
      }
      ++total;
    }
  }
  ASSERT_GT(total, 0u);
  const double acc = static_cast<double>(correct) / static_cast<double>(total);
  EXPECT_GT(acc, 0.5);  // chance is 0.1
}

TEST(ImageLike, RejectsBadConfig) {
  ImageLikeConfig c;
  c.classes_per_device = 20;  // > num_classes
  EXPECT_THROW(make_image_like(c), std::invalid_argument);
}

}  // namespace
}  // namespace fed
