#include "data/partition.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace fed {
namespace {

class ShardParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(ShardParamTest, EveryDeviceGetsDistinctClasses) {
  const auto [devices, classes, per_device] = GetParam();
  Rng rng = make_stream(1, StreamKind::kTest, devices);
  const auto shards = assign_class_shards(devices, classes, per_device, rng);
  ASSERT_EQ(shards.size(), devices);
  for (const auto& s : shards) {
    EXPECT_EQ(s.size(), per_device);
    std::set<std::int32_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), per_device);
    for (auto c : s) {
      EXPECT_GE(c, 0);
      EXPECT_LT(static_cast<std::size_t>(c), classes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShardParamTest,
    ::testing::Values(std::make_tuple(1000, 10, 2),   // mnist-like
                      std::make_tuple(200, 10, 5),    // femnist-like
                      std::make_tuple(5, 10, 10),     // all classes
                      std::make_tuple(7, 3, 1)));

TEST(AssignClassShards, BalancedClassUsage) {
  Rng rng = make_stream(2, StreamKind::kTest);
  const auto shards = assign_class_shards(1000, 10, 2, rng);
  std::vector<int> usage(10, 0);
  for (const auto& s : shards) {
    for (auto c : s) usage[static_cast<std::size_t>(c)]++;
  }
  // 2000 assignments over 10 classes: each should get ~200.
  for (int u : usage) EXPECT_NEAR(u, 200, 60);
}

TEST(AssignClassShards, TooManyClassesPerDeviceThrows) {
  Rng rng = make_stream(3, StreamKind::kTest);
  EXPECT_THROW(assign_class_shards(5, 3, 4, rng), std::invalid_argument);
}

TEST(SplitCount, SumsToTotalWithMinimumOne) {
  Rng rng = make_stream(4, StreamKind::kTest);
  const auto parts = split_count(100, 5, rng);
  EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), std::size_t{0}), 100u);
  for (auto p : parts) EXPECT_GE(p, 1u);
}

TEST(SplitCount, HandlesTotalSmallerThanParts) {
  Rng rng = make_stream(5, StreamKind::kTest);
  const auto parts = split_count(2, 5, rng);
  EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), std::size_t{0}), 2u);
}

TEST(SplitCount, ZeroPartsThrows) {
  Rng rng = make_stream(6, StreamKind::kTest);
  EXPECT_THROW(split_count(10, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace fed
