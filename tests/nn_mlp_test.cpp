#include "nn/mlp.h"

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace fed {
namespace {

TEST(MlpModel, ParameterCount) {
  Mlp model(4, 8, 3);
  EXPECT_EQ(model.parameter_count(), 8u * 4 + 8 + 3u * 8 + 3);
}

class MlpGradCheck
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>> {};

TEST_P(MlpGradCheck, AnalyticMatchesNumeric) {
  const auto [dim, hidden, classes, batch_n] = GetParam();
  Mlp model(dim, hidden, classes);
  Rng gen = make_stream(11, StreamKind::kTest, dim * 31 + hidden);
  Dataset data = testing::make_random_dataset(batch_n, dim, classes, gen);
  Vector w(model.parameter_count());
  model.init_parameters(w, gen);
  const auto batch = full_batch(batch_n);
  const auto result = check_gradients(model, w, data, batch);
  EXPECT_TRUE(result.passed(1e-5))
      << "max rel err " << result.max_relative_error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlpGradCheck,
    ::testing::Values(std::make_tuple(3, 4, 2, 1), std::make_tuple(5, 7, 3, 6),
                      std::make_tuple(2, 2, 2, 3),
                      std::make_tuple(8, 5, 4, 10)));

TEST(MlpModel, InitBiasesAreZeroWeightsAreNot) {
  Mlp model(4, 6, 3);
  Vector w(model.parameter_count());
  Rng rng = make_stream(12, StreamKind::kTest);
  model.init_parameters(w, rng);
  double weight_energy = 0.0;
  for (std::size_t i = 0; i < 24; ++i) weight_energy += std::abs(w[i]);
  EXPECT_GT(weight_energy, 0.0);
  for (std::size_t i = 24; i < 30; ++i) EXPECT_DOUBLE_EQ(w[i], 0.0);  // b1
}

TEST(MlpModel, TrainsOnSeparableData) {
  // Two well-separated Gaussian blobs — a non-convex model should fit them.
  Mlp model(2, 8, 2);
  Rng gen = make_stream(13, StreamKind::kTest);
  Dataset data;
  data.features = Matrix(60, 2);
  data.labels.resize(60);
  for (std::size_t i = 0; i < 60; ++i) {
    const std::int32_t y = i % 2;
    data.labels[i] = y;
    const double cx = y == 0 ? -2.0 : 2.0;
    data.features(i, 0) = cx + 0.3 * gen.normal();
    data.features(i, 1) = 0.3 * gen.normal();
  }
  Vector w(model.parameter_count()), grad(w.size());
  model.init_parameters(w, gen);
  for (int step = 0; step < 200; ++step) {
    model.dataset_loss_and_grad(w, data, grad);
    axpy(-0.5, grad, w);
  }
  EXPECT_GT(model.accuracy(w, data), 0.95);
}

TEST(MlpModel, RejectsBadShapes) {
  EXPECT_THROW(Mlp(0, 4, 2), std::invalid_argument);
  EXPECT_THROW(Mlp(4, 0, 2), std::invalid_argument);
  EXPECT_THROW(Mlp(4, 4, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fed
