#include "data/dataset.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fed {
namespace {

TEST(Dataset, AppendFromDense) {
  Dataset src = testing::make_dense_dataset({{1.0, 2.0}, {3.0, 4.0}});
  src.labels = {0, 1};
  Dataset dst;
  dst.features = Matrix(0, 2);
  dst.append_from(src, 1);
  ASSERT_EQ(dst.size(), 1u);
  EXPECT_DOUBLE_EQ(dst.features(0, 0), 3.0);
  EXPECT_EQ(dst.labels[0], 1);
}

TEST(Dataset, AppendFromSequence) {
  Dataset src;
  src.tokens = {{1, 2, 3}, {4, 5, 6}};
  src.labels = {7, 8};
  Dataset dst;
  dst.append_from(src, 0);
  ASSERT_EQ(dst.size(), 1u);
  EXPECT_EQ(dst.tokens[0], (std::vector<std::int32_t>{1, 2, 3}));
  EXPECT_TRUE(dst.is_sequence());
}

TEST(Dataset, AppendFromOutOfRangeThrows) {
  Dataset src = testing::make_dense_dataset({{1.0}});
  Dataset dst;
  dst.features = Matrix(0, 1);
  EXPECT_THROW(dst.append_from(src, 5), std::out_of_range);
}

TEST(Dataset, ValidateCatchesLabelOutOfRange) {
  Dataset d = testing::make_dense_dataset({{1.0}});
  d.labels = {5};
  EXPECT_THROW(d.validate(3), std::runtime_error);
  EXPECT_NO_THROW(d.validate(6));
}

TEST(Dataset, ValidateCatchesSizeMismatch) {
  Dataset d = testing::make_dense_dataset({{1.0}, {2.0}});
  d.labels = {0};  // only one label for two rows
  EXPECT_THROW(d.validate(), std::runtime_error);
}

TEST(Dataset, ValidateCatchesNonFinite) {
  Dataset d = testing::make_dense_dataset({{std::nan("")}});
  d.labels = {0};
  EXPECT_THROW(d.validate(), std::runtime_error);
}

TEST(TrainTestSplit, PartitionsAllSamples) {
  Rng gen = make_stream(1, StreamKind::kTest);
  Dataset all = testing::make_random_dataset(50, 3, 4, gen);
  Rng rng = make_stream(2, StreamKind::kTest);
  ClientData split = train_test_split(all, 0.8, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), 50u);
  EXPECT_EQ(split.train.size(), 40u);
  split.train.validate(4);
  split.test.validate(4);
}

TEST(TrainTestSplit, BothSidesNonEmptyForTinyData) {
  Rng gen = make_stream(3, StreamKind::kTest);
  Dataset all = testing::make_random_dataset(2, 2, 2, gen);
  Rng rng = make_stream(4, StreamKind::kTest);
  ClientData split = train_test_split(all, 0.99, rng);
  EXPECT_EQ(split.train.size(), 1u);
  EXPECT_EQ(split.test.size(), 1u);
}

TEST(TrainTestSplit, SingleSampleGoesToTrain) {
  Rng gen = make_stream(5, StreamKind::kTest);
  Dataset all = testing::make_random_dataset(1, 2, 2, gen);
  Rng rng = make_stream(6, StreamKind::kTest);
  ClientData split = train_test_split(all, 0.8, rng);
  EXPECT_EQ(split.train.size(), 1u);
  EXPECT_EQ(split.test.size(), 0u);
}

TEST(TrainTestSplit, RejectsBadFraction) {
  Rng gen = make_stream(7, StreamKind::kTest);
  Dataset all = testing::make_random_dataset(4, 2, 2, gen);
  Rng rng = make_stream(8, StreamKind::kTest);
  EXPECT_THROW(train_test_split(all, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(train_test_split(all, 1.0, rng), std::invalid_argument);
}

TEST(TrainTestSplit, SequenceDataSupported) {
  Rng gen = make_stream(9, StreamKind::kTest);
  Dataset all = testing::make_random_sequences(20, 5, 10, 3, gen);
  Rng rng = make_stream(10, StreamKind::kTest);
  ClientData split = train_test_split(all, 0.75, rng);
  EXPECT_EQ(split.train.size(), 15u);
  EXPECT_EQ(split.test.size(), 5u);
  EXPECT_TRUE(split.train.is_sequence());
}

TEST(FederatedDatasetTest, ClientWeightsSumToOne) {
  FederatedDataset fed;
  fed.clients.resize(3);
  Rng gen = make_stream(11, StreamKind::kTest);
  fed.clients[0].train = testing::make_random_dataset(10, 2, 2, gen);
  fed.clients[1].train = testing::make_random_dataset(30, 2, 2, gen);
  fed.clients[2].train = testing::make_random_dataset(60, 2, 2, gen);
  const auto pk = fed.client_weights();
  EXPECT_NEAR(pk[0] + pk[1] + pk[2], 1.0, 1e-12);
  EXPECT_NEAR(pk[2], 0.6, 1e-12);
  EXPECT_EQ(fed.total_train_samples(), 100u);
}

TEST(PowerLaw, CountsRespectFloorAndAreHeavyTailed) {
  Rng rng = make_stream(12, StreamKind::kTest);
  const auto counts = power_law_sample_counts(500, 10, 3.0, 1.5, rng);
  std::size_t max_count = 0, min_count = SIZE_MAX;
  for (auto c : counts) {
    EXPECT_GE(c, 10u);
    max_count = std::max(max_count, c);
    min_count = std::min(min_count, c);
  }
  // Heavy tail: the largest device should dwarf the smallest.
  EXPECT_GT(max_count, 20 * min_count);
}

}  // namespace
}  // namespace fed
