// The headline claim of sharded aggregation: TrainHistory is
// bit-identical across shard counts {1, 2, 8}, across thread counts, and
// under channel faults with quorum recovery — the aggregation tree is a
// pure implementation detail. Plus the plan_shards slicing contract and
// the per-shard trace invariants the lint tool also checks offline.

#include "sim/sharded.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/trace_sink.h"
#include "support/log.h"

namespace fed {
namespace {

TEST(PlanShards, SlicesAreContiguousAndBalanced) {
  for (const std::size_t devices : {0ul, 1ul, 5ul, 8ul, 17ul, 1000ul}) {
    for (const std::size_t shards : {1ul, 2ul, 3ul, 8ul}) {
      const auto slices = plan_shards(devices, shards);
      ASSERT_EQ(slices.size(), shards);
      std::size_t covered = 0, min_size = devices, max_size = 0;
      for (const ShardSlice& s : slices) {
        EXPECT_EQ(s.begin, covered);  // contiguous, in order
        covered = s.end;
        min_size = std::min(min_size, s.size());
        max_size = std::max(max_size, s.size());
      }
      EXPECT_EQ(covered, devices);
      EXPECT_LE(max_size - min_size, 1u);  // balanced to within one
    }
  }
  // Shard count 0 degrades to a single shard.
  const auto fallback = plan_shards(7, 0);
  ASSERT_EQ(fallback.size(), 1u);
  EXPECT_EQ(fallback[0].size(), 7u);
}

class ShardedDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(1.0, 1.0, 31);
      c.num_devices = 24;
      c.min_samples = 12;
      c.mean_log = 2.5;
      c.sigma_log = 0.4;
      return make_synthetic(c);
    }();
    return d;
  }

  static TrainerConfig base_config(Algorithm algorithm) {
    TrainerConfig c;
    c.algorithm = algorithm;
    c.mu = algorithm == Algorithm::kFedAvg ? 0.0 : 1.0;
    c.rounds = 4;
    c.devices_per_round = 10;
    c.systems.epochs = 2;
    c.systems.straggler_fraction = 0.4;
    c.learning_rate = 0.05;
    c.seed = 31;
    return c;
  }

  static TrainHistory run(TrainerConfig config,
                          TraceCollector* collector = nullptr) {
    LogisticRegression model(data().input_dim, data().num_classes);
    Trainer trainer(model, data(), config);
    if (collector) trainer.add_observer(*collector);
    return trainer.run();
  }

  static void expect_bit_identical(const TrainHistory& a,
                                   const TrainHistory& b) {
    EXPECT_EQ(a.final_parameters, b.final_parameters);  // exact doubles
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t i = 0; i < a.rounds.size(); ++i) {
      EXPECT_EQ(a.rounds[i].round, b.rounds[i].round);
      EXPECT_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss);
      EXPECT_EQ(a.rounds[i].train_accuracy, b.rounds[i].train_accuracy);
      EXPECT_EQ(a.rounds[i].test_accuracy, b.rounds[i].test_accuracy);
      EXPECT_EQ(a.rounds[i].mean_gamma, b.rounds[i].mean_gamma);
      EXPECT_EQ(a.rounds[i].contributors, b.rounds[i].contributors);
      EXPECT_EQ(a.rounds[i].stragglers, b.rounds[i].stragglers);
    }
  }
};

TEST_F(ShardedDeterminismTest, HistoryIsBitIdenticalAcrossShardCounts) {
  for (const Algorithm algorithm :
       {Algorithm::kFedAvg, Algorithm::kFedProx, Algorithm::kFedDane}) {
    TrainerConfig c = base_config(algorithm);
    c.shards = 1;
    const TrainHistory baseline = run(c);
    for (const std::size_t shards : {2ul, 8ul}) {
      c.shards = shards;
      expect_bit_identical(baseline, run(c));
    }
  }
}

TEST_F(ShardedDeterminismTest, HistoryIsBitIdenticalAcrossThreadCounts) {
  TrainerConfig c = base_config(Algorithm::kFedProx);
  c.shards = 8;
  c.threads = 1;
  const TrainHistory single = run(c);
  c.threads = 4;
  expect_bit_identical(single, run(c));
}

TEST_F(ShardedDeterminismTest, HistoryIsBitIdenticalUnderFaultsAndQuorum) {
  // Shard-invariance must also hold on a lossy channel with recovery:
  // fault RNG streams are keyed per (round, device, attempt) and the
  // quorum cut stays global at the root, so shard count changes nothing.
  TrainerConfig c = base_config(Algorithm::kFedProx);
  c.faults.drop = 0.2;
  c.faults.corrupt = 0.1;
  c.faults.delay_ms = 15.0;
  c.recovery.max_retries = 2;
  c.recovery.quorum = 0.7;
  c.shards = 1;
  const TrainHistory baseline = run(c);
  for (const std::size_t shards : {2ul, 8ul}) {
    c.shards = shards;
    expect_bit_identical(baseline, run(c));
  }
}

TEST_F(ShardedDeterminismTest, ShardStatsPartitionTheRoundTotals) {
  TrainerConfig c = base_config(Algorithm::kFedAvg);
  c.shards = 3;
  TraceCollector collector;
  run(c, &collector);
  ASSERT_GT(collector.traces().size(), 1u);
  for (std::size_t r = 1; r < collector.traces().size(); ++r) {
    const RoundTrace& t = collector.traces()[r];
    ASSERT_EQ(t.shards.size(), 3u);
    std::size_t devices = 0, contributors = 0;
    std::uint64_t bytes_down = 0, bytes_up = 0;
    for (const ShardStat& s : t.shards) {
      EXPECT_EQ(s.shard, static_cast<std::size_t>(&s - t.shards.data()));
      EXPECT_GT(s.partial_bytes, 0u);  // FPS1 uplink runs every round
      devices += s.devices;
      contributors += s.contributors;
      bytes_down += s.bytes_down;
      bytes_up += s.bytes_up;
    }
    EXPECT_EQ(devices, t.selected);
    EXPECT_EQ(contributors, t.contributors);
    EXPECT_EQ(bytes_down, t.bytes_down);
    EXPECT_EQ(bytes_up, t.bytes_up);
  }
}

TEST_F(ShardedDeterminismTest, MoreShardsThanDevicesIsHarmless) {
  TrainerConfig c = base_config(Algorithm::kFedProx);
  c.shards = 64;  // more shards than selected devices: some slices empty
  const TrainHistory sharded = run(c);
  c.shards = 1;
  expect_bit_identical(run(c), sharded);
}

}  // namespace
}  // namespace fed
