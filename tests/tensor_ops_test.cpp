#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.h"
#include "tensor/tensor.h"

namespace fed {
namespace {

TEST(VectorOps, AxpyAddsScaledVector) {
  Vector x{1.0, 2.0, 3.0};
  Vector y{10.0, 20.0, 30.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(VectorOps, ScaleAndZero) {
  Vector x{1.0, -2.0, 4.0};
  scale(x, 0.5);
  EXPECT_DOUBLE_EQ(x[1], -1.0);
  zero(x);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(VectorOps, DotAndNorms) {
  Vector x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  Vector y{0.0, 0.0};
  EXPECT_DOUBLE_EQ(distance2(x, y), 5.0);
  EXPECT_DOUBLE_EQ(sum(x), 7.0);
}

TEST(VectorOps, ElementwiseOps) {
  Vector a{1.0, 2.0}, b{3.0, 5.0}, out(2);
  subtract(b, a, out);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  add(a, b, out);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  hadamard(a, b, out);
  EXPECT_DOUBLE_EQ(out[1], 10.0);
}

TEST(VectorOps, CopyIsExact) {
  Vector a{1.5, -2.5, 3.5}, b(3);
  copy(a, b);
  EXPECT_EQ(a, b);
}

TEST(MatrixOps, GemvMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Vector x{1.0, 0.0, -1.0}, y(2);
  gemv(ConstMatrixView(a.storage(), 2, 3), x, y);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(MatrixOps, GemvTransposedMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Vector x{1.0, 2.0}, y(3);
  gemv_transposed(ConstMatrixView(a.storage(), 2, 3), x, y);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 15.0);
}

TEST(MatrixOps, GerPerformsRankOneUpdate) {
  Matrix a(2, 2, 1.0);
  Vector x{1.0, 2.0}, y{3.0, 4.0};
  ger(0.5, x, y, MatrixView(a.storage(), 2, 2));
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0 + 0.5 * 3.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0 + 0.5 * 8.0);
}

// Property test: gemm against a naive triple loop on random shapes.
class GemmRandomTest : public ::testing::TestWithParam<
                           std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(GemmRandomTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng = make_stream(42, StreamKind::kTest, m * 100 + k * 10 + n);
  Matrix a(m, k), b(k, n), c(m, n);
  for (double& v : a.storage()) v = rng.normal();
  for (double& v : b.storage()) v = rng.normal();
  gemm(ConstMatrixView(a.storage(), m, k), ConstMatrixView(b.storage(), k, n),
       MatrixView(c.storage(), m, n));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double expect = 0.0;
      for (std::size_t p = 0; p < k; ++p) expect += a(i, p) * b(p, j);
      EXPECT_NEAR(c(i, j), expect, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmRandomTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(1, 20, 5), std::make_tuple(13, 1, 9)));

TEST(MatrixOps, GemmShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 2), c(2, 2);
  EXPECT_THROW(gemm(ConstMatrixView(a.storage(), 2, 3),
                    ConstMatrixView(b.storage(), 2, 2),
                    MatrixView(c.storage(), 2, 2)),
               std::invalid_argument);
}

TEST(Nonlinearities, SigmoidBoundsAndSymmetry) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(5.0) + sigmoid(-5.0), 1.0, 1e-12);
  EXPECT_GT(sigmoid(1000.0), 0.999);   // no overflow
  EXPECT_LT(sigmoid(-1000.0), 0.001);  // no underflow to nan
}

TEST(Nonlinearities, SoftmaxIsDistribution) {
  Vector logits{1.0, 2.0, 3.0};
  softmax_inplace(logits);
  EXPECT_NEAR(sum(logits), 1.0, 1e-12);
  EXPECT_LT(logits[0], logits[1]);
  EXPECT_LT(logits[1], logits[2]);
}

TEST(Nonlinearities, SoftmaxStableAtExtremeLogits) {
  Vector logits{1000.0, 1000.0, -1000.0};
  softmax_inplace(logits);
  EXPECT_TRUE(all_finite(logits));
  EXPECT_NEAR(logits[0], 0.5, 1e-9);
  EXPECT_NEAR(logits[2], 0.0, 1e-9);
}

TEST(Nonlinearities, LogSumExpStable) {
  Vector logits{1000.0, 999.0};
  const double lse = log_sum_exp(logits);
  EXPECT_TRUE(std::isfinite(lse));
  EXPECT_NEAR(lse, 1000.0 + std::log1p(std::exp(-1.0)), 1e-9);
}

TEST(Nonlinearities, ArgmaxBreaksTiesLow) {
  Vector x{1.0, 3.0, 3.0, 2.0};
  EXPECT_EQ(argmax(x), 1u);
}

TEST(Misc, AllFiniteDetectsNanAndInf) {
  Vector ok{1.0, 2.0};
  EXPECT_TRUE(all_finite(ok));
  Vector bad{1.0, std::nan("")};
  EXPECT_FALSE(all_finite(bad));
  Vector inf{1.0, INFINITY};
  EXPECT_FALSE(all_finite(inf));
}

TEST(Misc, WeightedSumCombinesRows) {
  Vector a{1.0, 0.0}, b{0.0, 1.0};
  std::vector<const Vector*> rows{&a, &b};
  Vector weights{0.25, 0.75}, dst(2);
  weighted_sum(rows, weights, dst);
  EXPECT_DOUBLE_EQ(dst[0], 0.25);
  EXPECT_DOUBLE_EQ(dst[1], 0.75);
}

TEST(MatrixType, ConstructorValidatesBuffer) {
  EXPECT_THROW(Matrix(2, 3, Vector(5)), std::invalid_argument);
  Matrix m(2, 3, Vector(6, 1.0));
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.0);
}

TEST(MatrixType, RowSpansAlias) {
  Matrix m(2, 2, 0.0);
  m.row(1)[0] = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 5.0);
}

}  // namespace
}  // namespace fed
