// Tests for the Adam local solver and gradient clipping.

#include <gtest/gtest.h>

#include "optim/adam.h"
#include "optim/prox_sgd.h"
#include "optim/sgd.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace fed {
namespace {

using testing::QuadraticModel;
using testing::make_dense_dataset;

TEST(ClipGradient, NoOpBelowThresholdAndWhenDisabled) {
  Vector g{3.0, 4.0};  // norm 5
  clip_gradient(g, 10.0);
  EXPECT_DOUBLE_EQ(g[0], 3.0);
  clip_gradient(g, 0.0);  // disabled
  EXPECT_DOUBLE_EQ(g[1], 4.0);
}

TEST(ClipGradient, RescalesToThreshold) {
  Vector g{3.0, 4.0};  // norm 5
  clip_gradient(g, 1.0);
  EXPECT_NEAR(norm2(g), 1.0, 1e-12);
  EXPECT_NEAR(g[0] / g[1], 0.75, 1e-12);  // direction preserved
}

struct QuadSetup {
  QuadraticModel model{2};
  Dataset data = make_dense_dataset({{2.0, 2.0}, {4.0, 6.0}});
  Vector anchor{0.0, 0.0};
};

TEST(AdamSolverTest, ConvergesToLocalMinimizer) {
  QuadSetup q;
  LocalProblem problem{&q.model, &q.data, q.anchor, 0.0, {}};
  AdamSolver solver;
  SolveBudget budget{.iterations = 2000, .batch_size = 2,
                     .learning_rate = 0.05};
  Rng rng = make_stream(1, StreamKind::kTest);
  Vector w = q.anchor;
  solver.solve(problem, budget, rng, w);
  EXPECT_NEAR(w[0], 3.0, 1e-2);
  EXPECT_NEAR(w[1], 4.0, 1e-2);
}

TEST(AdamSolverTest, RespectsProximalTerm) {
  QuadSetup q;
  LocalProblem problem{&q.model, &q.data, q.anchor, /*mu=*/1.0, {}};
  AdamSolver solver;
  SolveBudget budget{.iterations = 3000, .batch_size = 2,
                     .learning_rate = 0.05};
  Rng rng = make_stream(2, StreamKind::kTest);
  Vector w = q.anchor;
  solver.solve(problem, budget, rng, w);
  // Prox minimizer: mean / (1 + mu) = (1.5, 2).
  EXPECT_NEAR(w[0], 1.5, 2e-2);
  EXPECT_NEAR(w[1], 2.0, 2e-2);
}

TEST(AdamSolverTest, ZeroBudgetIsNoOp) {
  QuadSetup q;
  LocalProblem problem{&q.model, &q.data, q.anchor, 0.0, {}};
  SolveBudget budget{.iterations = 0, .batch_size = 1, .learning_rate = 0.1};
  Rng rng = make_stream(3, StreamKind::kTest);
  Vector w{7.0, 7.0};
  AdamSolver().solve(problem, budget, rng, w);
  EXPECT_DOUBLE_EQ(w[0], 7.0);
}

TEST(AdamSolverTest, RejectsBadHyperparameters) {
  EXPECT_THROW(AdamSolver(1.0, 0.999), std::invalid_argument);
  EXPECT_THROW(AdamSolver(0.9, -0.1), std::invalid_argument);
  EXPECT_THROW(AdamSolver(0.9, 0.999, 0.0), std::invalid_argument);
}

TEST(AdamSolverTest, DeterministicGivenSameStream) {
  QuadSetup q;
  LocalProblem problem{&q.model, &q.data, q.anchor, 0.5, {}};
  SolveBudget budget{.iterations = 25, .batch_size = 1, .learning_rate = 0.05};
  Vector w1 = q.anchor, w2 = q.anchor;
  Rng rng1 = make_stream(4, StreamKind::kTest, 1);
  Rng rng2 = make_stream(4, StreamKind::kTest, 1);
  AdamSolver().solve(problem, budget, rng1, w1);
  AdamSolver().solve(problem, budget, rng2, w2);
  EXPECT_EQ(w1, w2);
}

TEST(SgdClipping, ClippedStepsAreBounded) {
  // Huge targets make raw gradients enormous; with clip_norm the per-step
  // movement is bounded by lr * clip_norm.
  QuadraticModel model(1);
  Dataset data = make_dense_dataset({{1e6}});
  Vector anchor{0.0};
  LocalProblem problem{&model, &data, anchor, 0.0, {}};
  SolveBudget budget{.iterations = 1, .batch_size = 1, .learning_rate = 0.1,
                     .clip_norm = 1.0};
  Rng rng = make_stream(5, StreamKind::kTest);
  Vector w = anchor;
  SgdSolver().solve(problem, budget, rng, w);
  EXPECT_NEAR(std::abs(w[0]), 0.1, 1e-12);  // exactly lr * clip_norm
}

}  // namespace
}  // namespace fed
