#include "optim/inexactness.h"

#include <gtest/gtest.h>

#include "optim/gd.h"
#include "test_util.h"

namespace fed {
namespace {

using testing::QuadraticModel;
using testing::make_dense_dataset;

struct GammaSetup {
  QuadraticModel model{2};
  Dataset data = make_dense_dataset({{4.0, 2.0}, {6.0, 4.0}});
  Vector anchor{0.0, 0.0};
  LocalProblem problem{&model, &data, anchor, /*mu=*/1.0, {}};
};

TEST(Gamma, NoProgressMeansGammaOne) {
  GammaSetup s;
  EXPECT_NEAR(measure_gamma(s.problem, s.anchor), 1.0, 1e-12);
}

TEST(Gamma, ExactSolutionMeansGammaZero) {
  GammaSetup s;
  // Prox minimizer of 0.5||w - mean||^2 + 0.5||w||^2 with mean (5,3).
  Vector w_star{2.5, 1.5};
  EXPECT_NEAR(measure_gamma(s.problem, w_star), 0.0, 1e-12);
}

TEST(Gamma, MonotonicallyImprovesWithLocalWork) {
  GammaSetup s;
  GdSolver solver;
  Rng rng = make_stream(1, StreamKind::kTest);
  double previous = 1.0;
  for (std::size_t iters : {1u, 3u, 10u, 40u}) {
    SolveBudget budget{.iterations = iters, .batch_size = 2,
                       .learning_rate = 0.2};
    Vector w = s.anchor;
    solver.solve(s.problem, budget, rng, w);
    const double gamma = measure_gamma(s.problem, w);
    EXPECT_LT(gamma, previous);
    EXPECT_GE(gamma, 0.0);
    previous = gamma;
  }
  EXPECT_LT(previous, 0.01);
}

TEST(Gamma, StationaryAnchorReturnsZero) {
  QuadraticModel model(2);
  Dataset data = make_dense_dataset({{1.0, 1.0}});
  Vector anchor{1.0, 1.0};  // gradient of h at the anchor is zero
  LocalProblem problem{&model, &data, anchor, 0.0, {}};
  EXPECT_DOUBLE_EQ(measure_gamma(problem, anchor), 0.0);
}

}  // namespace
}  // namespace fed
