// The fault-injection and recovery layer: profile parsing, deterministic
// chaos (same seed + profile => bit-identical training, regardless of
// thread count), recovery accounting invariants on every trace, quorum
// and deadline semantics, and the degraded-round path that keeps w when
// a round loses every device. The chaos soak here is the repo's standing
// robustness gate: a hostile channel at high fault rates must still
// train, and must do so reproducibly.

#include "comm/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

#include "comm/transport.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "support/log.h"

namespace fed {
namespace {

// Collects every FaultEvent fanned out by the round driver.
struct FaultEventCollector : TrainingObserver {
  std::map<FaultEvent::Kind, std::size_t> counts;
  std::vector<FaultEvent> events;

  void on_fault(const FaultEvent& event) override {
    ++counts[event.kind];
    events.push_back(event);
  }

  std::size_t count(FaultEvent::Kind kind) const {
    const auto it = counts.find(kind);
    return it == counts.end() ? 0 : it->second;
  }
};

class CommFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(1.0, 1.0, 47);
      c.num_devices = 10;
      c.min_samples = 12;
      c.mean_log = 2.5;
      c.sigma_log = 0.4;
      return make_synthetic(c);
    }();
    return d;
  }

  static TrainerConfig chaos_config() {
    TrainerConfig c;
    c.algorithm = Algorithm::kFedProx;
    c.mu = 1.0;
    c.rounds = 40;
    c.devices_per_round = 5;
    c.systems.epochs = 2;
    c.systems.straggler_fraction = 0.3;
    c.learning_rate = 0.05;
    c.seed = 47;
    c.eval_every = 5;
    c.threads = 1;
    c.faults = FaultProfile{.drop = 0.2,
                            .corrupt = 0.05,
                            .duplicate = 0.05,
                            .delay_ms = 50.0};
    c.recovery.max_retries = 2;
    c.recovery.deadline_ms = 45.0;
    c.recovery.quorum = 0.6;
    return c;
  }

  struct RunArtifacts {
    TrainHistory history;
    std::vector<RoundTrace> traces;
    std::map<FaultEvent::Kind, std::size_t> events;
    std::vector<HealthIncident> incidents;
  };

  static RunArtifacts run(TrainerConfig config,
                          MetricsRegistry* registry = nullptr) {
    LogisticRegression model(data().input_dim, data().num_classes);
    Trainer trainer(model, data(), config);
    TraceCollector traces;
    FaultEventCollector events;
    HealthMonitor health(HealthConfig{}, registry);
    std::unique_ptr<MetricsObserver> metrics;
    trainer.add_observer(traces);
    trainer.add_observer(events);
    trainer.add_observer(health);
    if (registry) {
      metrics = std::make_unique<MetricsObserver>(*registry);
      trainer.add_observer(*metrics);
    }
    RunArtifacts out;
    out.history = trainer.run();
    out.traces = traces.traces();
    out.events = events.counts;
    out.incidents = health.incidents();
    return out;
  }

  // The recovery-accounting invariants every round trace must satisfy
  // (the same set tools/trace_lint enforces on JSONL artifacts).
  static void check_trace_invariants(const RoundTrace& t) {
    const CommFaultStats& f = t.faults;
    ASSERT_GE(f.attempts, t.selected);
    EXPECT_EQ(f.retries, f.attempts - t.selected);
    EXPECT_GE(f.drops + f.corruptions + f.timeouts, f.retries);
    EXPECT_LE(t.contributors, t.selected);
    if (t.degraded) {
      EXPECT_EQ(t.contributors, 0u);
    }
    if (t.selected > 0 && t.contributors == 0) {
      EXPECT_TRUE(t.degraded);
    }
    EXPECT_EQ(t.bytes_down > 0, f.attempts > 0);
    EXPECT_EQ(t.bytes_up > 0, f.up_deliveries > 0);
    if (f.attempts > 0) {
      EXPECT_EQ(t.bytes_down % f.attempts, 0u);
    }
    if (f.up_deliveries > 0) {
      EXPECT_EQ(t.bytes_up % f.up_deliveries, 0u);
    }
  }

  static void expect_bit_identical(const TrainHistory& a,
                                   const TrainHistory& b) {
    EXPECT_EQ(a.final_parameters, b.final_parameters);  // exact doubles
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t i = 0; i < a.rounds.size(); ++i) {
      EXPECT_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss);
      EXPECT_EQ(a.rounds[i].contributors, b.rounds[i].contributors);
      EXPECT_EQ(a.rounds[i].stragglers, b.rounds[i].stragglers);
    }
  }
};

TEST_F(CommFaultTest, ProfileParsesValidatesAndPrints) {
  const FaultProfile p =
      parse_fault_profile("drop=0.1,corrupt=0.01,delay_ms=50,duplicate=0.05");
  EXPECT_DOUBLE_EQ(p.drop, 0.1);
  EXPECT_DOUBLE_EQ(p.corrupt, 0.01);
  EXPECT_DOUBLE_EQ(p.duplicate, 0.05);
  EXPECT_DOUBLE_EQ(p.delay_ms, 50.0);
  EXPECT_TRUE(p.any());
  EXPECT_EQ(to_string(p), "drop=0.1,corrupt=0.01,duplicate=0.05,delay_ms=50");

  EXPECT_FALSE(parse_fault_profile("").any());
  EXPECT_EQ(to_string(FaultProfile{}), "none");

  EXPECT_THROW(parse_fault_profile("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_profile("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_profile("delay_ms=-1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_profile("jitter=0.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_profile("drop"), std::invalid_argument);
  EXPECT_THROW(parse_fault_profile("drop=abc"), std::invalid_argument);
  EXPECT_THROW(parse_fault_profile("drop=0.1x"), std::invalid_argument);
}

TEST_F(CommFaultTest, EventKindsHaveStableSlugs) {
  EXPECT_STREQ(to_string(FaultEvent::Kind::kDrop), "drop");
  EXPECT_STREQ(to_string(FaultEvent::Kind::kCorrupt), "corrupt");
  EXPECT_STREQ(to_string(FaultEvent::Kind::kTimeout), "timeout");
  EXPECT_STREQ(to_string(FaultEvent::Kind::kDuplicate), "duplicate");
  EXPECT_STREQ(to_string(FaultEvent::Kind::kDeviceFailed), "device_failed");
  EXPECT_STREQ(to_string(FaultEvent::Kind::kQuorumDrop), "quorum_drop");
  EXPECT_STREQ(to_string(FaultEvent::Kind::kRoundDegraded), "round_degraded");
}

TEST_F(CommFaultTest, RecoveryConfigIsValidatedUpFront) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig c = chaos_config();
  c.recovery.quorum = 0.0;
  EXPECT_THROW(Trainer(model, data(), c), std::invalid_argument);
  c = chaos_config();
  c.recovery.quorum = 1.5;
  EXPECT_THROW(Trainer(model, data(), c), std::invalid_argument);
  c = chaos_config();
  c.recovery.backoff_factor = 0.5;
  EXPECT_THROW(Trainer(model, data(), c), std::invalid_argument);
  c = chaos_config();
  c.faults.drop = 2.0;  // caught when the trainer wraps the transport
  EXPECT_THROW(Trainer(model, data(), c).run(), std::invalid_argument);
}

// The tentpole gate: a hostile channel (20% drop, 5% corruption, 5%
// duplicates, latency against a deadline, quorum aggregation) must still
// train — loss falls, no fatal incidents — and must be bit-reproducible
// run to run and across thread counts.
TEST_F(CommFaultTest, ChaosSoakConvergesWithoutFatalIncidents) {
  MetricsRegistry registry;
  const RunArtifacts a = run(chaos_config(), &registry);

  // Converges: the last evaluated loss improves on the initial model.
  const double first_loss = *a.history.rounds.front().train_loss;
  const double last_loss = *a.history.final_metrics().train_loss;
  EXPECT_LT(last_loss, first_loss);
  EXPECT_FALSE(a.history.diverged());

  // The channel actually was hostile, and recovery actually ran.
  std::size_t drops = 0, corruptions = 0, retries = 0, contributors = 0;
  for (const RoundTrace& t : a.traces) {
    check_trace_invariants(t);
    drops += t.faults.drops;
    corruptions += t.faults.corruptions;
    retries += t.faults.retries;
    contributors += t.contributors;
  }
  EXPECT_GT(drops, 0u);
  EXPECT_GT(corruptions, 0u);
  EXPECT_GT(retries, 0u);
  EXPECT_GT(contributors, 0u);

  // Events fanned out to observers reconcile with the trace counters.
  const auto event_count = [&](FaultEvent::Kind kind) {
    const auto it = a.events.find(kind);
    return it == a.events.end() ? std::size_t{0} : it->second;
  };
  EXPECT_EQ(event_count(FaultEvent::Kind::kDrop), drops);
  EXPECT_EQ(event_count(FaultEvent::Kind::kCorrupt), corruptions);

  // No fatal incidents: the run completed, and anything the health
  // monitor recorded is a non-fatal degraded round.
  for (const HealthIncident& incident : a.incidents) {
    EXPECT_EQ(incident.kind, HealthIncident::Kind::kDegradedRound);
  }

  // Registry counters went where the ISSUE says they go.
  EXPECT_EQ(
      registry.counter("fed_comm_faults_total", {{"kind", "drop"}}).value(),
      drops);
  EXPECT_EQ(
      registry.counter("fed_comm_faults_total", {{"kind", "corrupt"}}).value(),
      corruptions);
  EXPECT_EQ(registry.counter("fed_comm_retries_total").value(), retries);

  // Bit-reproducible: an identical config replays the identical run.
  const RunArtifacts b = run(chaos_config());
  expect_bit_identical(a.history, b.history);
  EXPECT_EQ(a.events, b.events);

  // ... regardless of thread count.
  TrainerConfig threaded = chaos_config();
  threaded.threads = 4;
  const RunArtifacts c = run(threaded);
  expect_bit_identical(a.history, c.history);
  EXPECT_EQ(a.events, c.events);
}

// Satellite regression: a round that loses every device must keep w
// bit-unchanged, mark the trace degraded, and leave the metrics
// well-defined — not crash, not silently reuse stale updates.
TEST_F(CommFaultTest, AllDroppedRoundKeepsParametersAndReportsDegraded) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig c = chaos_config();
  c.rounds = 3;
  c.eval_every = 1;
  c.faults = FaultProfile{.drop = 1.0};
  c.recovery = RecoveryConfig{.max_retries = 1};
  c.initial_parameters = Vector(model.parameter_count(), 0.125);

  MetricsRegistry registry;
  const RunArtifacts a = run(c, &registry);

  EXPECT_EQ(a.history.final_parameters,
            Vector(model.parameter_count(), 0.125));
  ASSERT_EQ(a.traces.size(), c.rounds + 1);  // + the round-0 evaluation
  for (std::size_t i = 1; i < a.traces.size(); ++i) {
    const RoundTrace& t = a.traces[i];
    check_trace_invariants(t);
    EXPECT_TRUE(t.degraded);
    EXPECT_EQ(t.contributors, 0u);
    EXPECT_EQ(t.faults.failed_devices, t.selected);
    EXPECT_EQ(t.faults.attempts, t.selected * 2);  // 1 retry each
    EXPECT_EQ(t.bytes_up, 0u);
    EXPECT_GT(t.bytes_down, 0u);  // broadcasts were still charged
  }
  for (const RoundMetrics& m : a.history.rounds) {
    EXPECT_TRUE(m.evaluated());
    EXPECT_TRUE(std::isfinite(*m.train_loss));
    EXPECT_EQ(m.contributors, 0u);
  }
  const auto degraded_events = a.events.find(FaultEvent::Kind::kRoundDegraded);
  ASSERT_NE(degraded_events, a.events.end());
  EXPECT_EQ(degraded_events->second, c.rounds);
  EXPECT_EQ(a.incidents.size(), c.rounds);  // one non-fatal incident each
  EXPECT_EQ(registry.counter("fed_comm_rounds_degraded_total").value(),
            c.rounds);
}

// Satellite regression: FedAvg with every device straggling degrades the
// round at aggregation even on a perfect channel — previously a silent
// log line, now a degraded trace + incident.
TEST_F(CommFaultTest, FedAvgAllStragglersDegradesWithoutChannelFaults) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig c;
  c.algorithm = Algorithm::kFedAvg;
  c.rounds = 2;
  c.devices_per_round = 5;
  c.systems.epochs = 2;
  c.systems.straggler_fraction = 1.0;
  c.learning_rate = 0.05;
  c.seed = 47;
  c.threads = 1;
  c.initial_parameters = Vector(model.parameter_count(), -0.5);

  const RunArtifacts a = run(c);
  EXPECT_EQ(a.history.final_parameters,
            Vector(model.parameter_count(), -0.5));
  for (std::size_t i = 1; i < a.traces.size(); ++i) {
    const RoundTrace& t = a.traces[i];
    check_trace_invariants(t);
    EXPECT_TRUE(t.degraded);
    EXPECT_EQ(t.stragglers, t.selected);
    // No channel faults: every exchange delivered on the first attempt.
    EXPECT_EQ(t.faults.attempts, t.selected);
    EXPECT_EQ(t.faults.failed_devices, 0u);
    EXPECT_EQ(t.bytes_up, 0u);  // dropped stragglers never report back
  }
  EXPECT_EQ(a.incidents.size(), c.rounds);
  for (const HealthIncident& incident : a.incidents) {
    EXPECT_EQ(incident.kind, HealthIncident::Kind::kDegradedRound);
  }
}

TEST_F(CommFaultTest, QuorumCutsLateArrivalsDeterministically) {
  TrainerConfig c = chaos_config();
  c.rounds = 4;
  c.faults = FaultProfile{.delay_ms = 100.0};  // latency only, no losses
  c.recovery = RecoveryConfig{.max_retries = 0, .quorum = 0.2};

  const RunArtifacts a = run(c);
  std::size_t quorum_drops = 0;
  for (std::size_t i = 1; i < a.traces.size(); ++i) {
    const RoundTrace& t = a.traces[i];
    check_trace_invariants(t);
    // Every exchange succeeds; the quorum cut is the only update killer.
    EXPECT_EQ(t.contributors + t.faults.quorum_drops, t.selected);
    EXPECT_GE(t.contributors, 1u);  // ceil(0.2 * 5)
    quorum_drops += t.faults.quorum_drops;
  }
  EXPECT_GT(quorum_drops, 0u);
  const auto it = a.events.find(FaultEvent::Kind::kQuorumDrop);
  ASSERT_NE(it, a.events.end());
  EXPECT_EQ(it->second, quorum_drops);

  const RunArtifacts b = run(c);
  expect_bit_identical(a.history, b.history);
}

TEST_F(CommFaultTest, DeadlineClassifiesLateDeliveriesAsTimeouts) {
  TrainerConfig c = chaos_config();
  c.rounds = 6;
  c.faults = FaultProfile{.delay_ms = 100.0};
  c.recovery = RecoveryConfig{.max_retries = 2, .deadline_ms = 20.0};

  const RunArtifacts a = run(c);
  std::size_t timeouts = 0;
  for (std::size_t i = 1; i < a.traces.size(); ++i) {
    check_trace_invariants(a.traces[i]);
    timeouts += a.traces[i].faults.timeouts;
    // A timed-out delivery moves no upload bytes and is not a drop or a
    // corruption.
    EXPECT_EQ(a.traces[i].faults.drops, 0u);
    EXPECT_EQ(a.traces[i].faults.corruptions, 0u);
  }
  EXPECT_GT(timeouts, 0u);
  const auto it = a.events.find(FaultEvent::Kind::kTimeout);
  ASSERT_NE(it, a.events.end());
  EXPECT_EQ(it->second, timeouts);
}

TEST_F(CommFaultTest, CorruptionIsAlwaysDetectedAndTyped) {
  // With corruption at 100% and no retries every round degrades: every
  // damaged update must be rejected via a typed event carrying the
  // decoder/checksum message — silent acceptance would train on garbage.
  TrainerConfig c = chaos_config();
  c.rounds = 3;
  c.faults = FaultProfile{.corrupt = 1.0};
  c.recovery = RecoveryConfig{.max_retries = 0};
  LogisticRegression model(data().input_dim, data().num_classes);
  c.initial_parameters = Vector(model.parameter_count(), 0.25);

  for (const TransportKind kind :
       {TransportKind::kInProcess, TransportKind::kSerialized}) {
    TrainerConfig variant = c;
    variant.transport = make_transport(kind);
    const RunArtifacts a = run(variant);
    EXPECT_EQ(a.history.final_parameters,
              Vector(model.parameter_count(), 0.25));
    std::size_t corrupt_events = 0;
    for (const auto& [kind_seen, count] : a.events) {
      if (kind_seen == FaultEvent::Kind::kCorrupt) corrupt_events = count;
    }
    EXPECT_GT(corrupt_events, 0u);
  }
}

}  // namespace
}  // namespace fed
