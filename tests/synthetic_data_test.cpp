#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "core/dissimilarity.h"
#include "nn/logistic.h"
#include "support/rng.h"

namespace fed {
namespace {

TEST(SyntheticData, ShapesAndRanges) {
  SyntheticConfig config = synthetic_config(1.0, 1.0, /*seed=*/3);
  config.num_devices = 10;
  const FederatedDataset fed = make_synthetic(config);
  EXPECT_EQ(fed.num_clients(), 10u);
  EXPECT_EQ(fed.input_dim, 60u);
  EXPECT_EQ(fed.num_classes, 10u);
  for (const auto& c : fed.clients) {
    EXPECT_GE(c.train.size(), 1u);
    c.train.validate(10);
    c.test.validate(10);
    EXPECT_EQ(c.train.features.cols(), 60u);
  }
}

TEST(SyntheticData, DeterministicInSeed) {
  SyntheticConfig config = synthetic_config(0.5, 0.5, 7);
  config.num_devices = 5;
  const FederatedDataset a = make_synthetic(config);
  const FederatedDataset b = make_synthetic(config);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(a.clients[k].train.features, b.clients[k].train.features);
    EXPECT_EQ(a.clients[k].train.labels, b.clients[k].train.labels);
  }
}

TEST(SyntheticData, DifferentSeedsDiffer) {
  SyntheticConfig c1 = synthetic_config(1.0, 1.0, 1);
  SyntheticConfig c2 = synthetic_config(1.0, 1.0, 2);
  c1.num_devices = c2.num_devices = 3;
  const FederatedDataset a = make_synthetic(c1);
  const FederatedDataset b = make_synthetic(c2);
  EXPECT_NE(a.clients[0].train.features, b.clients[0].train.features);
}

TEST(SyntheticData, PowerLawSizesVary) {
  SyntheticConfig config = synthetic_config(1.0, 1.0, 11);
  const FederatedDataset fed = make_synthetic(config);
  std::size_t min_n = SIZE_MAX, max_n = 0;
  for (const auto& c : fed.clients) {
    const std::size_t n = c.train.size() + c.test.size();
    min_n = std::min(min_n, n);
    max_n = std::max(max_n, n);
  }
  EXPECT_GE(min_n, config.min_samples);
  EXPECT_GT(max_n, 2 * min_n);
}

TEST(SyntheticData, IidNamesAndShapes) {
  const FederatedDataset fed = make_synthetic(synthetic_iid_config(1));
  EXPECT_EQ(fed.name, "synthetic_iid");
  EXPECT_EQ(fed.num_clients(), 30u);
}

// The defining property of the family: measured gradient dissimilarity
// grows with (alpha, beta). Checked at the zero initial model of the
// logistic task the data is built for.
TEST(SyntheticData, DissimilarityIncreasesWithHeterogeneity) {
  auto measure = [](const FederatedDataset& fed) {
    LogisticRegression model(fed.input_dim, fed.num_classes);
    Vector w(model.parameter_count(), 0.0);
    return measure_dissimilarity(model, fed, w, nullptr).variance;
  };
  const double v_iid = measure(make_synthetic(synthetic_iid_config(5)));
  const double v_00 = measure(make_synthetic(synthetic_config(0.0, 0.0, 5)));
  const double v_11 = measure(make_synthetic(synthetic_config(1.0, 1.0, 5)));
  EXPECT_LT(v_iid, v_00);
  EXPECT_LT(v_00, v_11);
}

TEST(SyntheticData, RejectsBadConfig) {
  SyntheticConfig config;
  config.num_devices = 0;
  EXPECT_THROW(make_synthetic(config), std::invalid_argument);
}

}  // namespace
}  // namespace fed
