#include "data/sequence.h"

#include <gtest/gtest.h>

namespace fed {
namespace {

NextCharConfig small_next_char() {
  NextCharConfig c;
  c.num_devices = 6;
  c.vocab_size = 12;
  c.seq_len = 8;
  c.min_stream = 80;
  c.mean_log = 3.0;
  c.sigma_log = 0.5;
  c.seed = 5;
  return c;
}

SentimentConfig small_sentiment() {
  SentimentConfig c;
  c.num_devices = 8;
  c.vocab_size = 40;
  c.num_sentiment_tokens = 8;
  c.seq_len = 6;
  c.min_samples = 30;
  c.mean_log = 2.5;
  c.sigma_log = 0.3;
  c.seed = 5;
  return c;
}

TEST(NextChar, ShapesAndTokenRanges) {
  const FederatedDataset fed = make_next_char(small_next_char());
  EXPECT_EQ(fed.num_classes, 12u);
  EXPECT_EQ(fed.vocab_size, 12u);
  for (const auto& client : fed.clients) {
    EXPECT_GE(client.train.size(), 1u);
    for (const auto& seq : client.train.tokens) {
      EXPECT_EQ(seq.size(), 8u);
      for (auto tok : seq) {
        EXPECT_GE(tok, 0);
        EXPECT_LT(tok, 12);
      }
    }
    client.train.validate(12);
    client.test.validate(12);
  }
}

TEST(NextChar, Deterministic) {
  const FederatedDataset a = make_next_char(small_next_char());
  const FederatedDataset b = make_next_char(small_next_char());
  EXPECT_EQ(a.clients[2].train.tokens, b.clients[2].train.tokens);
  EXPECT_EQ(a.clients[2].train.labels, b.clients[2].train.labels);
}

TEST(NextChar, DevicesEmitDifferentText) {
  const FederatedDataset fed = make_next_char(small_next_char());
  // With device-specific transition matrices, unigram frequencies should
  // differ noticeably across devices.
  auto unigram = [&](std::size_t k) {
    std::vector<double> freq(12, 0.0);
    double total = 0.0;
    for (const auto& seq : fed.clients[k].train.tokens) {
      for (auto t : seq) {
        freq[static_cast<std::size_t>(t)] += 1.0;
        total += 1.0;
      }
    }
    for (auto& f : freq) f /= total;
    return freq;
  };
  const auto f0 = unigram(0);
  const auto f1 = unigram(1);
  double l1 = 0.0;
  for (std::size_t i = 0; i < 12; ++i) l1 += std::abs(f0[i] - f1[i]);
  EXPECT_GT(l1, 0.1);
}

TEST(NextChar, PowerLawStreamLengths) {
  NextCharConfig c = small_next_char();
  c.num_devices = 40;
  c.sigma_log = 1.2;
  const FederatedDataset fed = make_next_char(c);
  std::size_t max_n = 0, min_n = SIZE_MAX;
  for (const auto& client : fed.clients) {
    const std::size_t n = client.train.size() + client.test.size();
    max_n = std::max(max_n, n);
    min_n = std::min(min_n, n);
  }
  EXPECT_GT(max_n, 2 * min_n);
}

TEST(Sentiment, ShapesAndBinaryLabels) {
  const FederatedDataset fed = make_sentiment(small_sentiment());
  EXPECT_EQ(fed.num_classes, 2u);
  for (const auto& client : fed.clients) {
    for (auto y : client.train.labels) {
      EXPECT_TRUE(y == 0 || y == 1);
    }
    for (const auto& seq : client.train.tokens) {
      EXPECT_EQ(seq.size(), 6u);
      for (auto tok : seq) {
        EXPECT_GE(tok, 0);
        EXPECT_LT(tok, 40);
      }
    }
  }
}

TEST(Sentiment, Deterministic) {
  const FederatedDataset a = make_sentiment(small_sentiment());
  const FederatedDataset b = make_sentiment(small_sentiment());
  EXPECT_EQ(a.clients[3].train.tokens, b.clients[3].train.tokens);
}

// The sentiment signal must be learnable: counting positive vs negative
// tokens should predict the label much better than chance.
TEST(Sentiment, TokenCountingPredictsLabel) {
  SentimentConfig c = small_sentiment();
  c.num_devices = 20;
  const FederatedDataset fed = make_sentiment(c);
  const std::int32_t n_pos = static_cast<std::int32_t>(
      c.num_sentiment_tokens / 2);
  std::size_t correct = 0, total = 0;
  for (const auto& client : fed.clients) {
    for (std::size_t i = 0; i < client.train.size(); ++i) {
      int score = 0;
      for (auto tok : client.train.tokens[i]) {
        if (tok < n_pos) ++score;
        else if (tok < 2 * n_pos) --score;
      }
      if (score != 0) {
        const std::int32_t pred = score > 0 ? 1 : 0;
        if (pred == client.train.labels[i]) ++correct;
        ++total;
      }
    }
  }
  ASSERT_GT(total, 100u);
  // flip_rate = 0.25 by default, so token counting is right ~3/4 of the
  // time per token; well above the 0.5 chance level either way.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.62);
}

TEST(Sentiment, DeviceClassPriorsVary) {
  SentimentConfig c = small_sentiment();
  c.num_devices = 30;
  const FederatedDataset fed = make_sentiment(c);
  double min_rate = 1.0, max_rate = 0.0;
  for (const auto& client : fed.clients) {
    double pos = 0.0;
    for (auto y : client.train.labels) pos += y;
    const double rate = pos / static_cast<double>(client.train.size());
    min_rate = std::min(min_rate, rate);
    max_rate = std::max(max_rate, rate);
  }
  EXPECT_GT(max_rate - min_rate, 0.2);  // statistical heterogeneity
}

TEST(Sentiment, RejectsOddSentimentTokenCount) {
  SentimentConfig c = small_sentiment();
  c.num_sentiment_tokens = 7;
  EXPECT_THROW(make_sentiment(c), std::invalid_argument);
}

}  // namespace
}  // namespace fed
