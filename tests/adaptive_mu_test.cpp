#include "core/adaptive_mu.h"

#include <gtest/gtest.h>

namespace fed {
namespace {

TEST(AdaptiveMuTest, IncreasesOnLossIncrease) {
  AdaptiveMu controller(0.0);
  controller.update(1.0);
  EXPECT_DOUBLE_EQ(controller.update(1.5), 0.1);
  EXPECT_DOUBLE_EQ(controller.update(2.0), 0.2);
}

TEST(AdaptiveMuTest, FirstObservationDoesNothing) {
  AdaptiveMu controller(0.5);
  EXPECT_DOUBLE_EQ(controller.update(10.0), 0.5);
}

TEST(AdaptiveMuTest, DecreasesAfterFiveConsecutiveDecreases) {
  AdaptiveMu controller(1.0);
  double loss = 10.0;
  controller.update(loss);
  for (int i = 0; i < 4; ++i) {
    loss -= 0.1;
    EXPECT_DOUBLE_EQ(controller.update(loss), 1.0);  // not yet
  }
  loss -= 0.1;  // fifth consecutive decrease
  EXPECT_DOUBLE_EQ(controller.update(loss), 0.9);
}

TEST(AdaptiveMuTest, IncreaseResetsDecreaseCounter) {
  AdaptiveMu controller(1.0);
  controller.update(10.0);
  controller.update(9.0);
  controller.update(8.0);
  controller.update(8.5);  // increase: mu -> 1.1, counter resets
  EXPECT_DOUBLE_EQ(controller.mu(), 1.1);
  double loss = 8.5;
  for (int i = 0; i < 4; ++i) {
    loss -= 0.1;
    controller.update(loss);
  }
  EXPECT_DOUBLE_EQ(controller.mu(), 1.1);  // only 4 decreases so far
  loss -= 0.1;
  controller.update(loss);
  EXPECT_DOUBLE_EQ(controller.mu(), 1.0);
}

TEST(AdaptiveMuTest, FlooredAtZero) {
  AdaptiveMu controller(0.05);
  double loss = 10.0;
  controller.update(loss);
  for (int i = 0; i < 10; ++i) {
    loss -= 1.0;
    controller.update(loss);
  }
  EXPECT_DOUBLE_EQ(controller.mu(), 0.0);
  EXPECT_GE(controller.mu(), 0.0);
}

TEST(AdaptiveMuTest, EqualLossResetsStreak) {
  AdaptiveMu controller(1.0);
  controller.update(5.0);
  controller.update(4.0);
  controller.update(4.0);  // plateau
  controller.update(3.9);
  controller.update(3.8);
  controller.update(3.7);
  controller.update(3.6);
  EXPECT_DOUBLE_EQ(controller.mu(), 1.0);  // plateau broke the streak
  controller.update(3.5);
  EXPECT_DOUBLE_EQ(controller.mu(), 0.9);
}

TEST(AdaptiveMuTest, RejectsBadParameters) {
  EXPECT_THROW(AdaptiveMu(-1.0), std::invalid_argument);
  EXPECT_THROW(AdaptiveMu(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(AdaptiveMu(0.0, 0.1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fed
