// The communication layer: transports are lossless (TrainHistory is
// bit-identical whether payloads stay in-process or round-trip through
// the wire format), byte accounting matches the exact wire sizes, and
// the ClientRuntime reproduces the monolithic trainer's solve exactly.

#include "comm/transport.h"

#include <gtest/gtest.h>

#include <memory>

#include "comm/client_runtime.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/trace_sink.h"
#include "optim/sgd.h"
#include "support/log.h"
#include "support/serialize.h"

namespace fed {
namespace {

class CommTransportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(1.0, 1.0, 31);
      c.num_devices = 10;
      c.min_samples = 12;
      c.mean_log = 2.5;
      c.sigma_log = 0.4;
      return make_synthetic(c);
    }();
    return d;
  }

  static TrainerConfig base_config(Algorithm algorithm) {
    TrainerConfig c;
    c.algorithm = algorithm;
    c.mu = algorithm == Algorithm::kFedAvg ? 0.0 : 1.0;
    c.rounds = 4;
    c.devices_per_round = 5;
    c.systems.epochs = 2;
    c.systems.straggler_fraction = 0.4;
    c.learning_rate = 0.05;
    c.seed = 31;
    return c;
  }

  static TrainHistory run(TrainerConfig config, TransportKind kind,
                          TraceCollector* collector = nullptr) {
    LogisticRegression model(data().input_dim, data().num_classes);
    config.transport = make_transport(kind);
    Trainer trainer(model, data(), config);
    if (collector) trainer.add_observer(*collector);
    return trainer.run();
  }

  static void expect_bit_identical(const TrainHistory& a,
                                   const TrainHistory& b) {
    EXPECT_EQ(a.final_parameters, b.final_parameters);  // exact doubles
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t i = 0; i < a.rounds.size(); ++i) {
      EXPECT_EQ(a.rounds[i].round, b.rounds[i].round);
      EXPECT_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss);
      EXPECT_EQ(a.rounds[i].train_accuracy, b.rounds[i].train_accuracy);
      EXPECT_EQ(a.rounds[i].test_accuracy, b.rounds[i].test_accuracy);
      EXPECT_EQ(a.rounds[i].mean_gamma, b.rounds[i].mean_gamma);
      EXPECT_EQ(a.rounds[i].contributors, b.rounds[i].contributors);
      EXPECT_EQ(a.rounds[i].stragglers, b.rounds[i].stragglers);
    }
  }
};

TEST_F(CommTransportTest, HistoriesAreBitIdenticalAcrossTransports) {
  // The serialized transport round-trips every payload through the wire
  // format; doubles survive bit-exactly, so training is unchanged.
  for (const Algorithm algorithm :
       {Algorithm::kFedAvg, Algorithm::kFedProx, Algorithm::kFedDane}) {
    const TrainerConfig c = base_config(algorithm);
    expect_bit_identical(run(c, TransportKind::kInProcess),
                         run(c, TransportKind::kSerialized));
  }
}

TEST_F(CommTransportTest, BothTransportsReportExactWireBytes) {
  const std::size_t d = data().input_dim * data().num_classes +
                        data().num_classes;  // logistic parameter count
  for (const TransportKind kind :
       {TransportKind::kInProcess, TransportKind::kSerialized}) {
    TraceCollector collector;
    // FedAvg with stragglers: dropped devices are selected (charged a
    // broadcast) but never report back (no upload bytes).
    run(base_config(Algorithm::kFedAvg), kind, &collector);
    for (std::size_t i = 1; i < collector.traces().size(); ++i) {
      const RoundTrace& t = collector.traces()[i];
      EXPECT_EQ(t.bytes_down, t.selected * broadcast_wire_size(d, 0));
      EXPECT_EQ(t.bytes_up, t.contributors * update_wire_size(d));
    }
  }
}

TEST_F(CommTransportTest, FedDaneBroadcastsChargeTheCorrectionPayload) {
  const std::size_t d = data().input_dim * data().num_classes +
                        data().num_classes;
  TraceCollector collector;
  run(base_config(Algorithm::kFedDane), TransportKind::kSerialized,
      &collector);
  for (std::size_t i = 1; i < collector.traces().size(); ++i) {
    const RoundTrace& t = collector.traces()[i];
    EXPECT_EQ(t.bytes_down, t.selected * broadcast_wire_size(d, d));
  }
}

TEST_F(CommTransportTest, ExchangeMatchesDirectClientSolve) {
  LogisticRegression model(data().input_dim, data().num_classes);
  const std::uint64_t seed = 31;
  Vector w(model.parameter_count());
  Rng init = make_stream(seed, StreamKind::kModelInit);
  model.init_parameters(w, init);

  SgdSolver solver;
  ClientRuntime runtime(model, data(), solver, seed);

  const std::size_t t = 2, device = 3;
  OwnedBroadcast b;
  b.round = t + 1;
  b.config = RoundConfig{.mu = 0.5, .batch_size = 10, .learning_rate = 0.05};
  b.budget = DeviceBudget{.device = device, .epochs = 2, .iterations = 8};
  b.parameters = w;

  // What the monolithic trainer used to do inline.
  Rng minibatch = make_stream(seed, StreamKind::kMinibatch, t, device + 1);
  const ClientResult expected =
      run_client(model, data().clients[device], w, solver, b.budget,
                 b.config, {}, minibatch);

  for (const TransportKind kind :
       {TransportKind::kInProcess, TransportKind::kSerialized}) {
    const ExchangeRecord record =
        make_transport(kind)->exchange(b.view(), runtime);
    EXPECT_EQ(record.update.round, b.round);
    EXPECT_EQ(record.result().device, expected.device);
    EXPECT_EQ(record.result().update, expected.update);  // bit-exact
    EXPECT_EQ(record.result().num_samples, expected.num_samples);
    EXPECT_EQ(record.result().iterations, expected.iterations);
    EXPECT_EQ(record.bytes_down, broadcast_wire_size(b.view()));
    EXPECT_EQ(record.bytes_up, update_wire_size(expected.update.size()));
  }
}

TEST_F(CommTransportTest, ClientRuntimeValidatesTheBroadcast) {
  LogisticRegression model(data().input_dim, data().num_classes);
  SgdSolver solver;
  ClientRuntime runtime(model, data(), solver, 31);

  OwnedBroadcast b;
  b.config = RoundConfig{};
  b.parameters = Vector(model.parameter_count());

  b.round = 0;  // rounds are 1-based on the wire
  b.budget.device = 0;
  EXPECT_THROW(runtime.handle(b.view()), std::invalid_argument);

  b.round = 1;
  b.budget.device = data().num_clients();  // out of range
  EXPECT_THROW(runtime.handle(b.view()), std::invalid_argument);
}

TEST_F(CommTransportTest, ZeroFaultWrapperIsBitIdenticalPassThrough) {
  // A FaultInjectingTransport with an all-zero profile must be invisible:
  // wrapping either inner transport leaves TrainHistory bit-identical,
  // so turning the fault layer "on but quiet" can never perturb results.
  for (const TransportKind kind :
       {TransportKind::kInProcess, TransportKind::kSerialized}) {
    const TrainerConfig c = base_config(Algorithm::kFedProx);
    const TrainHistory bare = run(c, kind);

    TrainerConfig wrapped = c;
    wrapped.transport = std::make_shared<FaultInjectingTransport>(
        make_transport(kind), FaultProfile{}, c.seed);
    LogisticRegression model(data().input_dim, data().num_classes);
    const TrainHistory faulty = Trainer(model, data(), wrapped).run();
    expect_bit_identical(bare, faulty);
  }
}

TEST_F(CommTransportTest, FaultWrapperNamesItsInner) {
  const auto wrapped = std::make_shared<FaultInjectingTransport>(
      make_transport(TransportKind::kSerialized), FaultProfile{}, 7);
  EXPECT_EQ(wrapped->name(), "faulty(serialized)");
  EXPECT_THROW(FaultInjectingTransport(nullptr, FaultProfile{}, 7),
               std::invalid_argument);
  EXPECT_THROW(FaultInjectingTransport(make_transport(TransportKind::kInProcess),
                                       FaultProfile{.drop = -0.5}, 7),
               std::invalid_argument);
}

TEST_F(CommTransportTest, KindParsesAndPrints) {
  EXPECT_EQ(parse_transport_kind("inprocess"), TransportKind::kInProcess);
  EXPECT_EQ(parse_transport_kind("serialized"), TransportKind::kSerialized);
  EXPECT_THROW(parse_transport_kind("carrier-pigeon"), std::invalid_argument);
  EXPECT_EQ(to_string(TransportKind::kInProcess), "inprocess");
  EXPECT_EQ(to_string(TransportKind::kSerialized), "serialized");
  EXPECT_EQ(make_transport(TransportKind::kInProcess)->name(), "inprocess");
  EXPECT_EQ(make_transport(TransportKind::kSerialized)->name(), "serialized");
}

}  // namespace
}  // namespace fed
