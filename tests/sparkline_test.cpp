#include "support/sparkline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"

namespace fed {
namespace {

TEST(Sparkline, EmptyIsEmpty) { EXPECT_EQ(sparkline({}), ""); }

TEST(Sparkline, MonotoneSeriesUsesExtremes) {
  Vector v{0.0, 1.0, 2.0, 3.0};
  const std::string s = sparkline(v);
  EXPECT_NE(s.find("▁"), std::string::npos);  // min block present
  EXPECT_NE(s.find("█"), std::string::npos);  // max block present
}

TEST(Sparkline, ConstantSeriesIsMidHeight) {
  Vector v{5.0, 5.0, 5.0};
  EXPECT_EQ(sparkline(v), "▄▄▄");
}

TEST(Sparkline, NonFiniteRendersBang) {
  Vector v{1.0, std::nan(""), 2.0};
  const std::string s = sparkline(v);
  EXPECT_NE(s.find('!'), std::string::npos);
}

TEST(Sparkline, LengthMatchesInput) {
  Vector v{1.0, 4.0, 2.0, 8.0, 0.0};
  // 5 glyphs, each 3 bytes of UTF-8.
  EXPECT_EQ(sparkline(v).size(), 15u);
}

TEST(Sparkline, DecreasingLossLooksDecreasing) {
  Vector v{2.3, 1.1, 0.8, 0.6, 0.5};
  const std::string s = sparkline(v);
  // First glyph is the tallest block, last is the shortest.
  EXPECT_EQ(s.substr(0, 3), "█");
  EXPECT_EQ(s.substr(s.size() - 3), "▁");
}

}  // namespace
}  // namespace fed
