#include "core/feddane.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "test_util.h"

namespace fed {
namespace {

using testing::QuadraticModel;
using testing::make_dense_dataset;

TEST(FedDane, CorrectionsAreWeightedZeroSum) {
  // sum_k n_k (grad~f - grad F_k) = 0 by construction.
  QuadraticModel model(2);
  FederatedDataset fed;
  Rng gen = make_stream(31, StreamKind::kTest);
  fed.clients.resize(4);
  for (std::size_t k = 0; k < 4; ++k) {
    fed.clients[k].train = testing::make_random_dataset(3 + k, 2, 2, gen);
  }
  std::vector<std::size_t> selected{0, 1, 2, 3};
  Vector w{0.4, -0.6};
  const auto corrections =
      feddane_corrections(model, fed, selected, w, nullptr);
  ASSERT_EQ(corrections.size(), 4u);
  Vector weighted_sum(2, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    axpy(static_cast<double>(fed.clients[i].train.size()), corrections[i],
         weighted_sum);
  }
  EXPECT_NEAR(weighted_sum[0], 0.0, 1e-10);
  EXPECT_NEAR(weighted_sum[1], 0.0, 1e-10);
}

TEST(FedDane, IdenticalClientsGiveZeroCorrections) {
  QuadraticModel model(2);
  FederatedDataset fed;
  fed.clients.resize(3);
  for (auto& c : fed.clients) {
    c.train = make_dense_dataset({{1.0, 1.0}, {2.0, 0.0}});
  }
  std::vector<std::size_t> selected{0, 1, 2};
  Vector w{0.0, 0.0};
  const auto corrections =
      feddane_corrections(model, fed, selected, w, nullptr);
  for (const auto& c : corrections) {
    EXPECT_NEAR(norm2(c), 0.0, 1e-12);
  }
}

TEST(FedDane, CorrectionMatchesManualComputation) {
  QuadraticModel model(1);
  FederatedDataset fed;
  fed.clients.resize(2);
  fed.clients[0].train = make_dense_dataset({{0.0}});       // grad = w
  fed.clients[1].train = make_dense_dataset({{4.0}, {4.0}});  // grad = w-4
  std::vector<std::size_t> selected{0, 1};
  Vector w{1.0};
  // grads: 1 and -3; weighted mean = (1*1 + 2*(-3))/3 = -5/3.
  const auto corrections =
      feddane_corrections(model, fed, selected, w, nullptr);
  EXPECT_NEAR(corrections[0][0], -5.0 / 3.0 - 1.0, 1e-12);
  EXPECT_NEAR(corrections[1][0], -5.0 / 3.0 + 3.0, 1e-12);
}

TEST(FedDane, SubsetSelectionUsesOnlySampledDevices) {
  QuadraticModel model(1);
  FederatedDataset fed;
  fed.clients.resize(3);
  fed.clients[0].train = make_dense_dataset({{0.0}});
  fed.clients[1].train = make_dense_dataset({{10.0}});
  fed.clients[2].train = make_dense_dataset({{-10.0}});
  std::vector<std::size_t> selected{0, 1};  // client 2 not sampled
  Vector w{0.0};
  const auto corrections =
      feddane_corrections(model, fed, selected, w, nullptr);
  // grads over selected: 0 and -10, mean -5.
  EXPECT_NEAR(corrections[0][0], -5.0, 1e-12);
  EXPECT_NEAR(corrections[1][0], 5.0, 1e-12);
}

TEST(FedDane, EmptySelectionThrows) {
  QuadraticModel model(1);
  FederatedDataset fed;
  fed.clients.resize(1);
  fed.clients[0].train = make_dense_dataset({{0.0}});
  Vector w{0.0};
  std::vector<std::size_t> none;
  EXPECT_THROW(feddane_corrections(model, fed, none, w, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace fed
