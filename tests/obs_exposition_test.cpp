// Prometheus text exposition: golden document (label escaping and
// ordering, cumulative le buckets, +Inf), shortest-round-trip number
// formatting, the atomic MetricsExporter, concurrent labeled
// registration, and the guarantee that attaching the full telemetry
// stack does not perturb training results.

#include "obs/exposition.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "support/log.h"
#include "support/threadpool.h"

namespace fed {
namespace {

class ExpositionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }
};

TEST_F(ExpositionTest, GoldenDocument) {
  MetricsRegistry registry;
  registry.set_help("requests_total", "Total \\ requests\nacross runs");
  registry.counter("requests_total").add(7);
  registry
      .counter("requests_total", {{"zone", "b"}, {"az", "a\"1\\x\n"}})
      .add(3);
  registry.gauge("temp").set(21.5);
  Histogram& lat = registry.histogram("lat", /*scale=*/1.0, /*num_buckets=*/3);
  lat.observe(1.0);    // bucket 0: <= 2
  lat.observe(3.0);    // bucket 1: [2, 4)
  lat.observe(100.0);  // overflow clamps into the +Inf bucket

  // Families print counters, then gauges, then histograms; the unlabeled
  // member sorts before labeled ones; label keys are sorted; values are
  // escaped; bucket counts are cumulative and end at le="+Inf" == count.
  const std::string want =
      "# HELP requests_total Total \\\\ requests\\nacross runs\n"
      "# TYPE requests_total counter\n"
      "requests_total 7\n"
      "requests_total{az=\"a\\\"1\\\\x\\n\",zone=\"b\"} 3\n"
      "# TYPE temp gauge\n"
      "temp 21.5\n"
      "# TYPE lat histogram\n"
      "lat_bucket{le=\"2\"} 1\n"
      "lat_bucket{le=\"4\"} 2\n"
      "lat_bucket{le=\"+Inf\"} 3\n"
      "lat_sum 104\n"
      "lat_count 3\n";
  EXPECT_EQ(text_exposition(registry), want);
}

TEST_F(ExpositionTest, LabelOrderIsCanonical) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x_total", {{"b", "2"}, {"a", "1"}});
  Counter& b = registry.counter("x_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);  // same label set in any order, same instrument
  a.add(5);
  const std::string text = text_exposition(registry);
  EXPECT_NE(text.find("x_total{a=\"1\",b=\"2\"} 5"), std::string::npos);
}

TEST_F(ExpositionTest, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(format_exposition_number(0.5), "0.5");
  EXPECT_EQ(format_exposition_number(104.0), "104");
  EXPECT_EQ(format_exposition_number(1e-6), "1e-06");
  EXPECT_EQ(format_exposition_number(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(format_exposition_number(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(format_exposition_number(std::nan("")), "NaN");
  const double third = 1.0 / 3.0;
  EXPECT_EQ(std::strtod(format_exposition_number(third).c_str(), nullptr),
            third);
}

TEST_F(ExpositionTest, ExporterPublishesEveryNRoundsAndAtRunEnd) {
  const std::string dir = ::testing::TempDir() + "fedprox_obs_exposition";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/metrics.prom";
  MetricsRegistry registry;
  registry.counter("ticks_total").add(5);
  MetricsExporter exporter(registry, path, /*every=*/2);
  EXPECT_EQ(exporter.path(), path);

  RoundMetrics metrics;
  RoundTrace trace;
  exporter.on_round_end(metrics, trace);
  exporter.flush();  // no-op: round 1 of 2 requested nothing
  EXPECT_EQ(exporter.writes(), 0u);
  exporter.on_round_end(metrics, trace);
  exporter.flush();  // publishes run on the writer thread
  EXPECT_EQ(exporter.writes(), 1u);

  // Published atomically: the final file exists, the temp file does not.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("ticks_total 5"), std::string::npos);

  exporter.on_run_end(TrainHistory{});  // run end always re-publishes
  EXPECT_EQ(exporter.writes(), 2u);
  std::filesystem::remove_all(dir);
}

TEST_F(ExpositionTest, ConcurrentLabeledRegistrationIsLossless) {
  // Hammers find-or-create on one family from every pool worker: the
  // registry mutex covers only the lookup, and the returned addresses
  // must be stable and shared per label set.
  MetricsRegistry registry;
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kMembers = 8;
  constexpr std::size_t kPerTask = 200;
  ThreadPool pool(8);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    Counter& c = registry.counter(
        "events_total", {{"worker", std::to_string(i % kMembers)}});
    for (std::size_t j = 0; j < kPerTask; ++j) c.add();
  });
  std::uint64_t total = 0;
  for (std::size_t m = 0; m < kMembers; ++m) {
    total +=
        registry.counter("events_total", {{"worker", std::to_string(m)}})
            .value();
  }
  EXPECT_EQ(total, kTasks * kPerTask);
}

TEST_F(ExpositionTest, TelemetryStackDoesNotPerturbTraining) {
  SyntheticConfig sc = synthetic_config(0.5, 0.5, 41);
  sc.num_devices = 10;
  sc.min_samples = 12;
  sc.mean_log = 2.5;
  sc.sigma_log = 0.4;
  const FederatedDataset data = make_synthetic(sc);

  TrainerConfig c = fedprox_config(0.5);
  c.rounds = 6;
  c.devices_per_round = 4;
  c.systems.epochs = 3;
  c.systems.straggler_fraction = 0.5;
  c.learning_rate = 0.03;
  c.seed = 41;

  LogisticRegression model(data.input_dim, data.num_classes);
  const auto bare = Trainer(model, data, c).run();

  // Same seed with the profiler recording, a metrics feeder, and the
  // file exporter attached: trace contexts are minted either way, so
  // the wire bytes and the history must be bit-identical.
  const std::string dir = ::testing::TempDir() + "fedprox_obs_identity";
  std::filesystem::create_directories(dir);
  MetricsRegistry registry;
  MetricsObserver metrics(registry);
  MetricsExporter exporter(registry, dir + "/metrics.prom", /*every=*/2);
  Profiler::instance().enable();
  Trainer traced(model, data, c);
  traced.add_observer(metrics);
  traced.add_observer(exporter);
  const auto full = traced.run();
  Profiler::instance().disable();
  (void)Profiler::instance().drain();  // discard this test's spans

  // Coalescing may merge the per-round publishes, but the run-end flush
  // guarantees at least one completed write.
  EXPECT_GE(exporter.writes(), 1u);
  EXPECT_EQ(bare.final_parameters, full.final_parameters);
  ASSERT_EQ(bare.rounds.size(), full.rounds.size());
  for (std::size_t i = 0; i < bare.rounds.size(); ++i) {
    EXPECT_EQ(bare.rounds[i].train_loss, full.rounds[i].train_loss);
    EXPECT_EQ(bare.rounds[i].contributors, full.rounds[i].contributors);
    EXPECT_EQ(bare.rounds[i].stragglers, full.rounds[i].stragglers);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fed
