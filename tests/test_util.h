// Shared helpers for the test suite.

#pragma once

#include <cmath>
#include <memory>

#include "data/dataset.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace fed::testing {

// Quadratic model: per-sample loss 0.5 ||w - x_i||^2 over dense rows x_i.
// F(w) = 0.5 ||w - mean(x)||^2 + const, so minimizers, prox points and
// gradients all have closed forms — ideal for solver/aggregation checks.
class QuadraticModel final : public Model {
 public:
  explicit QuadraticModel(std::size_t dim) : dim_(dim) {}

  std::string name() const override { return "quadratic"; }
  std::size_t parameter_count() const override { return dim_; }

  void init_parameters(std::span<double> w, Rng&) const override { zero(w); }

  double loss_and_grad(std::span<const double> w, const Dataset& data,
                       std::span<const std::size_t> batch,
                       std::span<double> grad) const override {
    zero(grad);
    double loss = 0.0;
    for (std::size_t idx : batch) {
      auto x = data.features.row(idx);
      for (std::size_t j = 0; j < dim_; ++j) {
        const double diff = w[j] - x[j];
        grad[j] += diff;
        loss += 0.5 * diff * diff;
      }
    }
    const double inv = 1.0 / static_cast<double>(batch.size());
    scale(grad, inv);
    return loss * inv;
  }

  void predict(std::span<const double>, const Dataset& data,
               std::span<const std::size_t> batch,
               std::vector<std::int32_t>& out) const override {
    out.assign(batch.size(), 0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i] = data.labels[batch[i]];  // trivially "correct"
    }
  }

 private:
  std::size_t dim_;
};

// Dense dataset with the given rows as both features and (label 0) targets.
inline Dataset make_dense_dataset(const std::vector<Vector>& rows) {
  Dataset d;
  const std::size_t dim = rows.empty() ? 0 : rows.front().size();
  d.features = Matrix(0, dim);
  for (const auto& r : rows) {
    Vector& buf = d.features.storage();
    buf.insert(buf.end(), r.begin(), r.end());
    d.features = Matrix(d.features.rows() + 1, dim, std::move(buf));
    d.labels.push_back(0);
  }
  return d;
}

// Random dense classification dataset (labels uniform).
inline Dataset make_random_dataset(std::size_t n, std::size_t dim,
                                   std::size_t classes, Rng& rng) {
  Dataset d;
  d.features = Matrix(n, dim);
  for (double& v : d.features.storage()) v = rng.normal();
  d.labels.resize(n);
  for (auto& y : d.labels) {
    y = static_cast<std::int32_t>(rng.uniform_int(classes));
  }
  return d;
}

// Random token-sequence dataset.
inline Dataset make_random_sequences(std::size_t n, std::size_t seq_len,
                                     std::size_t vocab, std::size_t classes,
                                     Rng& rng) {
  Dataset d;
  d.tokens.resize(n);
  d.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.tokens[i].resize(seq_len);
    for (auto& t : d.tokens[i]) {
      t = static_cast<std::int32_t>(rng.uniform_int(vocab));
    }
    d.labels[i] = static_cast<std::int32_t>(rng.uniform_int(classes));
  }
  return d;
}

}  // namespace fed::testing
