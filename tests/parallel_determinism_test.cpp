// The library's central reproducibility contract: results depend only on
// the seed — never on the thread count, the sharing of thread pools, or
// which algorithm ran first. These tests pin that contract down.

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "support/log.h"

namespace fed {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(0.5, 0.5, 31);
      c.num_devices = 10;
      c.min_samples = 15;
      c.mean_log = 2.5;
      c.sigma_log = 0.5;
      return make_synthetic(c);
    }();
    return d;
  }

  static TrainerConfig config() {
    TrainerConfig c = fedprox_config(0.5);
    c.rounds = 8;
    c.devices_per_round = 4;
    c.systems.epochs = 4;
    c.systems.straggler_fraction = 0.5;
    c.learning_rate = 0.03;
    c.seed = 31;
    c.eval_every = 8;
    return c;
  }
};

class ThreadCountTest : public DeterminismTest,
                        public ::testing::WithParamInterface<std::size_t> {};

TEST_P(ThreadCountTest, IdenticalResultsAcrossThreadCounts) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig reference_config = config();
  reference_config.threads = 1;
  const auto reference = Trainer(model, data(), reference_config).run();

  TrainerConfig c = config();
  c.threads = GetParam();
  const auto run = Trainer(model, data(), c).run();
  EXPECT_EQ(reference.final_parameters, run.final_parameters);
  EXPECT_DOUBLE_EQ(reference.final_metrics().train_loss,
                   run.final_metrics().train_loss);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest,
                         ::testing::Values(2, 4, 8));

TEST_F(DeterminismTest, SharedExternalPoolMatchesOwnedPool) {
  LogisticRegression model(data().input_dim, data().num_classes);
  const auto owned = Trainer(model, data(), config()).run();
  ThreadPool pool(3);
  const auto shared = Trainer(model, data(), config(), &pool).run();
  EXPECT_EQ(owned.final_parameters, shared.final_parameters);
}

TEST_F(DeterminismTest, RunOrderDoesNotLeakBetweenTrainers) {
  // Running FedAvg before FedProx must not change FedProx's trajectory
  // (all randomness is derived from (seed, purpose, round, device), not
  // from shared mutable state).
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig prox = config();

  const auto solo = Trainer(model, data(), prox).run();

  TrainerConfig avg = config();
  avg.algorithm = Algorithm::kFedAvg;
  avg.mu = 0.0;
  Trainer(model, data(), avg).run();  // interleaved unrelated run
  const auto after = Trainer(model, data(), prox).run();

  EXPECT_EQ(solo.final_parameters, after.final_parameters);
}

TEST_F(DeterminismTest, DifferentSeedsDiverge) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig a = config();
  TrainerConfig b = config();
  b.seed = 32;
  const auto ra = Trainer(model, data(), a).run();
  const auto rb = Trainer(model, data(), b).run();
  EXPECT_NE(ra.final_parameters, rb.final_parameters);
}

}  // namespace
}  // namespace fed
