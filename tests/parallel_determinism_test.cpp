// The library's central reproducibility contract: results depend only on
// the seed — never on the thread count, the sharing of thread pools, or
// which algorithm ran first. These tests pin that contract down.

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/observer.h"
#include "support/log.h"

namespace fed {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(0.5, 0.5, 31);
      c.num_devices = 10;
      c.min_samples = 15;
      c.mean_log = 2.5;
      c.sigma_log = 0.5;
      return make_synthetic(c);
    }();
    return d;
  }

  static TrainerConfig config() {
    TrainerConfig c = fedprox_config(0.5);
    c.rounds = 8;
    c.devices_per_round = 4;
    c.systems.epochs = 4;
    c.systems.straggler_fraction = 0.5;
    c.learning_rate = 0.03;
    c.seed = 31;
    c.eval_every = 8;
    return c;
  }
};

class ThreadCountTest : public DeterminismTest,
                        public ::testing::WithParamInterface<std::size_t> {};

TEST_P(ThreadCountTest, IdenticalResultsAcrossThreadCounts) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig reference_config = config();
  reference_config.threads = 1;
  const auto reference = Trainer(model, data(), reference_config).run();

  TrainerConfig c = config();
  c.threads = GetParam();
  const auto run = Trainer(model, data(), c).run();
  EXPECT_EQ(reference.final_parameters, run.final_parameters);
  EXPECT_EQ(reference.final_metrics().train_loss,
            run.final_metrics().train_loss);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest,
                         ::testing::Values(2, 4, 8));

TEST_F(DeterminismTest, SharedExternalPoolMatchesOwnedPool) {
  LogisticRegression model(data().input_dim, data().num_classes);
  const auto owned = Trainer(model, data(), config()).run();
  ThreadPool pool(3);
  const auto shared = Trainer(model, data(), config(), &pool).run();
  EXPECT_EQ(owned.final_parameters, shared.final_parameters);
}

TEST_F(DeterminismTest, RunOrderDoesNotLeakBetweenTrainers) {
  // Running FedAvg before FedProx must not change FedProx's trajectory
  // (all randomness is derived from (seed, purpose, round, device), not
  // from shared mutable state).
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig prox = config();

  const auto solo = Trainer(model, data(), prox).run();

  TrainerConfig avg = config();
  avg.algorithm = Algorithm::kFedAvg;
  avg.mu = 0.0;
  Trainer(model, data(), avg).run();  // interleaved unrelated run
  const auto after = Trainer(model, data(), prox).run();

  EXPECT_EQ(solo.final_parameters, after.final_parameters);
}

namespace {

// Full per-round equality of the deterministic RoundMetrics fields.
void expect_histories_equal(const TrainHistory& a, const TrainHistory& b) {
  EXPECT_EQ(a.final_parameters, b.final_parameters);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    const auto& x = a.rounds[i];
    const auto& y = b.rounds[i];
    EXPECT_EQ(x.round, y.round);
    EXPECT_EQ(x.train_loss, y.train_loss);
    EXPECT_EQ(x.train_accuracy, y.train_accuracy);
    EXPECT_EQ(x.test_accuracy, y.test_accuracy);
    EXPECT_EQ(x.grad_variance, y.grad_variance);
    EXPECT_EQ(x.dissimilarity_b, y.dissimilarity_b);
    EXPECT_EQ(x.mu, y.mu);
    EXPECT_EQ(x.mean_gamma, y.mean_gamma);
    EXPECT_EQ(x.contributors, y.contributors);
    EXPECT_EQ(x.stragglers, y.stragglers);
  }
}

}  // namespace

// Attaching observers must not perturb training, and the structural trace
// fields (everything except wall times) must themselves be thread-count
// invariant.
TEST_F(DeterminismTest, ObserversDoNotPerturbTraining) {
  LogisticRegression model(data().input_dim, data().num_classes);

  const auto bare = Trainer(model, data(), config()).run();

  TraceCollector collector;
  Trainer observed(model, data(), config());
  observed.add_observer(collector);
  const auto with_observer = observed.run();

  expect_histories_equal(bare, with_observer);
  EXPECT_EQ(collector.traces().size(), bare.rounds.size());
}

TEST_F(DeterminismTest, TracesStructurallyIdenticalAcrossThreadCounts) {
  LogisticRegression model(data().input_dim, data().num_classes);

  auto run_with_threads = [&](std::size_t threads) {
    TrainerConfig c = config();
    c.threads = threads;
    TraceCollector collector;
    Trainer trainer(model, data(), c);
    trainer.add_observer(collector);
    auto history = trainer.run();
    return std::make_pair(std::move(history), collector.traces());
  };

  const auto [h1, t1] = run_with_threads(1);
  const auto [h4, t4] = run_with_threads(4);

  expect_histories_equal(h1, h4);
  ASSERT_EQ(t1.size(), t4.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].round, t4[i].round);
    EXPECT_EQ(t1[i].evaluated, t4[i].evaluated);
    EXPECT_EQ(t1[i].selected, t4[i].selected);
    EXPECT_EQ(t1[i].contributors, t4[i].contributors);
    EXPECT_EQ(t1[i].stragglers, t4[i].stragglers);
    EXPECT_EQ(t1[i].solve.count, t4[i].solve.count);
    EXPECT_EQ(t1[i].bytes_down, t4[i].bytes_down);
    EXPECT_EQ(t1[i].bytes_up, t4[i].bytes_up);
  }
}

TEST_F(DeterminismTest, DifferentSeedsDiverge) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig a = config();
  TrainerConfig b = config();
  b.seed = 32;
  const auto ra = Trainer(model, data(), a).run();
  const auto rb = Trainer(model, data(), b).run();
  EXPECT_NE(ra.final_parameters, rb.final_parameters);
}

}  // namespace
}  // namespace fed
