#include "nn/lstm.h"

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace fed {
namespace {

LstmConfig tiny_config(std::size_t layers, bool trainable) {
  LstmConfig c;
  c.vocab_size = 7;
  c.embed_dim = 3;
  c.hidden_dim = 4;
  c.num_layers = layers;
  c.num_classes = 3;
  c.trainable_embedding = trainable;
  if (!trainable) {
    c.frozen_embedding = std::make_shared<EmbeddingTable>(7, 3, /*seed=*/9);
  }
  return c;
}

TEST(LstmModel, ParameterCountTrainableEmbedding) {
  LstmClassifier model(tiny_config(2, true));
  const std::size_t h = 4, e = 3, v = 7, c = 3;
  const std::size_t layer0 = 4 * h * e + 4 * h * h + 4 * h;
  const std::size_t layer1 = 4 * h * h + 4 * h * h + 4 * h;
  EXPECT_EQ(model.parameter_count(), v * e + layer0 + layer1 + c * h + c);
}

TEST(LstmModel, ParameterCountFrozenEmbedding) {
  LstmClassifier trainable(tiny_config(1, true));
  LstmClassifier frozen(tiny_config(1, false));
  EXPECT_EQ(trainable.parameter_count() - frozen.parameter_count(), 7u * 3u);
}

class LstmGradCheck
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool,
                                                 std::size_t>> {};

TEST_P(LstmGradCheck, AnalyticMatchesNumeric) {
  const auto [layers, trainable, seq_len] = GetParam();
  LstmClassifier model(tiny_config(layers, trainable));
  Rng gen = make_stream(21, StreamKind::kTest, layers, seq_len);
  Dataset data = testing::make_random_sequences(3, seq_len, 7, 3, gen);
  Vector w(model.parameter_count());
  model.init_parameters(w, gen);
  const auto batch = full_batch(3);
  // Probe a subset of coordinates: full probing of every weight is slow
  // and redundant — the probe set includes the largest-gradient entries.
  const auto result = check_gradients(model, w, data, batch, 1e-5, 160);
  EXPECT_TRUE(result.passed(1e-5))
      << "max rel err " << result.max_relative_error << " at index "
      << result.worst_index << " (analytic " << result.analytic_at_worst
      << " numeric " << result.numeric_at_worst << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LstmGradCheck,
    ::testing::Values(std::make_tuple(1, true, 1),
                      std::make_tuple(1, true, 5),
                      std::make_tuple(2, true, 4),
                      std::make_tuple(1, false, 5),
                      std::make_tuple(2, false, 6)));

TEST(LstmModel, ForgetBiasInitialized) {
  LstmConfig config = tiny_config(1, false);
  config.forget_bias = 1.0;
  LstmClassifier model(config);
  Vector w(model.parameter_count());
  Rng rng = make_stream(22, StreamKind::kTest);
  model.init_parameters(w, rng);
  // Layer 0 biases start after Wx (4h x e) and Wh (4h x h).
  const std::size_t h = 4;
  const std::size_t bias_off = 4 * h * 3 + 4 * h * h;
  // Forget-gate block is the second quarter of the bias vector.
  for (std::size_t j = 0; j < h; ++j) {
    EXPECT_DOUBLE_EQ(w[bias_off + h + j], 1.0);   // forget
    EXPECT_DOUBLE_EQ(w[bias_off + j], 0.0);       // input
  }
}

TEST(LstmModel, LearnsLastTokenRule) {
  // Task: the label equals the last token's class bucket — learnable by
  // an LSTM reading the sequence.
  LstmConfig config;
  config.vocab_size = 6;
  config.embed_dim = 4;
  config.hidden_dim = 8;
  config.num_layers = 1;
  config.num_classes = 3;
  config.trainable_embedding = true;
  LstmClassifier model(config);

  Rng gen = make_stream(23, StreamKind::kTest);
  Dataset data;
  for (std::size_t i = 0; i < 90; ++i) {
    std::vector<std::int32_t> seq(4);
    for (auto& t : seq) t = static_cast<std::int32_t>(gen.uniform_int(6));
    data.labels.push_back(seq.back() / 2);  // buckets {0,1},{2,3},{4,5}
    data.tokens.push_back(std::move(seq));
  }
  Vector w(model.parameter_count()), grad(w.size());
  model.init_parameters(w, gen);
  const double initial = model.dataset_loss(w, data);
  for (int step = 0; step < 150; ++step) {
    model.dataset_loss_and_grad(w, data, grad);
    axpy(-0.5, grad, w);
  }
  EXPECT_LT(model.dataset_loss(w, data), initial);
  EXPECT_GT(model.accuracy(w, data), 0.9);
}

TEST(LstmModel, RejectsEmptySequence) {
  LstmClassifier model(tiny_config(1, true));
  Dataset data;
  data.tokens = {{}};
  data.labels = {0};
  Vector w(model.parameter_count(), 0.0), grad(w.size());
  const std::vector<std::size_t> batch{0};
  EXPECT_THROW(model.loss_and_grad(w, data, batch, grad),
               std::invalid_argument);
}

TEST(LstmModel, RejectsOutOfRangeToken) {
  LstmClassifier model(tiny_config(1, true));
  Dataset data;
  data.tokens = {{99}};
  data.labels = {0};
  Vector w(model.parameter_count(), 0.0);
  const std::vector<std::size_t> batch{0};
  EXPECT_THROW(model.loss(w, data, batch), std::out_of_range);
}

TEST(LstmModel, RejectsBadConfig) {
  LstmConfig config = tiny_config(1, false);
  config.frozen_embedding.reset();
  EXPECT_THROW(LstmClassifier{config}, std::invalid_argument);
  LstmConfig mismatch = tiny_config(1, false);
  mismatch.frozen_embedding = std::make_shared<EmbeddingTable>(7, 5, 1);
  EXPECT_THROW(LstmClassifier{mismatch}, std::invalid_argument);
}

TEST(EmbeddingTableTest, DeterministicAndBounded) {
  EmbeddingTable a(10, 4, 5), b(10, 4, 5), c(10, 4, 6);
  for (std::int32_t t = 0; t < 10; ++t) {
    auto ra = a.lookup(t), rb = b.lookup(t);
    for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(ra[j], rb[j]);
  }
  EXPECT_NE(a.lookup(0)[0], c.lookup(0)[0]);
  EXPECT_THROW(a.lookup(-1), std::out_of_range);
  EXPECT_THROW(a.lookup(10), std::out_of_range);
}

}  // namespace
}  // namespace fed
