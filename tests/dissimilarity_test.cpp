#include "core/dissimilarity.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fed {
namespace {

using testing::QuadraticModel;
using testing::make_dense_dataset;

TEST(Dissimilarity, IdenticalClientsGiveBOneAndZeroVariance) {
  QuadraticModel model(2);
  FederatedDataset fed;
  fed.clients.resize(4);
  for (auto& c : fed.clients) {
    c.train = make_dense_dataset({{1.0, 2.0}, {3.0, 4.0}});
  }
  Vector w{0.0, 0.0};
  const auto m = measure_dissimilarity(model, fed, w, nullptr);
  EXPECT_NEAR(m.b, 1.0, 1e-9);
  EXPECT_NEAR(m.variance, 0.0, 1e-12);
  EXPECT_GT(m.grad_norm_f, 0.0);
}

TEST(Dissimilarity, HeterogeneousClientsGiveBAboveOne) {
  QuadraticModel model(1);
  FederatedDataset fed;
  fed.clients.resize(2);
  fed.clients[0].train = make_dense_dataset({{-3.0}});
  fed.clients[1].train = make_dense_dataset({{3.0}});
  Vector w{1.0};  // grad F_0 = 4, grad F_1 = -2, grad f = 1
  const auto m = measure_dissimilarity(model, fed, w, nullptr);
  EXPECT_GT(m.b, 1.0);
  EXPECT_GT(m.variance, 0.0);
}

TEST(Dissimilarity, Corollary10IdentityHolds) {
  // Var = E||grad F_k||^2 - ||grad f||^2 = (B^2 - 1) ||grad f||^2.
  QuadraticModel model(3);
  FederatedDataset fed;
  Rng gen = make_stream(17, StreamKind::kTest);
  fed.clients.resize(5);
  for (auto& c : fed.clients) {
    c.train = testing::make_random_dataset(
        4 + static_cast<std::size_t>(gen.uniform_int(std::uint64_t{6})), 3, 2,
        gen);
  }
  Vector w{0.5, -0.2, 0.8};
  const auto m = measure_dissimilarity(model, fed, w, nullptr);
  const double f_sq = m.grad_norm_f * m.grad_norm_f;
  EXPECT_NEAR(m.variance, m.expected_sq_norm - f_sq, 1e-9);
  EXPECT_NEAR(m.variance, (m.b * m.b - 1.0) * f_sq, 1e-9);
}

TEST(Dissimilarity, StationaryAgreementDefinesBOne) {
  QuadraticModel model(1);
  FederatedDataset fed;
  fed.clients.resize(2);
  fed.clients[0].train = make_dense_dataset({{2.0}});
  fed.clients[1].train = make_dense_dataset({{2.0}});
  Vector w{2.0};  // every local gradient is zero
  const auto m = measure_dissimilarity(model, fed, w, nullptr);
  EXPECT_DOUBLE_EQ(m.b, 1.0);
  EXPECT_NEAR(m.grad_norm_f, 0.0, 1e-12);
}

TEST(Dissimilarity, ParallelMatchesSerial) {
  QuadraticModel model(2);
  FederatedDataset fed;
  Rng gen = make_stream(18, StreamKind::kTest);
  fed.clients.resize(6);
  for (auto& c : fed.clients) {
    c.train = testing::make_random_dataset(8, 2, 2, gen);
  }
  Vector w{0.1, 0.9};
  ThreadPool pool(3);
  const auto serial = measure_dissimilarity(model, fed, w, nullptr);
  const auto parallel = measure_dissimilarity(model, fed, w, &pool);
  EXPECT_NEAR(serial.b, parallel.b, 1e-12);
  EXPECT_NEAR(serial.variance, parallel.variance, 1e-12);
}

}  // namespace
}  // namespace fed
