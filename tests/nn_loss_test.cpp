#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace fed {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  Vector logits(4, 0.0);
  EXPECT_NEAR(softmax_cross_entropy(logits, 2), std::log(4.0), 1e-12);
}

TEST(SoftmaxCrossEntropy, GradIsSoftmaxMinusOnehot) {
  Vector logits{1.0, 2.0, 0.5};
  Vector probs = logits;
  softmax_inplace(probs);
  Vector grad = logits;
  const double loss = softmax_cross_entropy_grad(grad, 1);
  EXPECT_NEAR(loss, softmax_cross_entropy(logits, 1), 1e-12);
  EXPECT_NEAR(grad[0], probs[0], 1e-12);
  EXPECT_NEAR(grad[1], probs[1] - 1.0, 1e-12);
  EXPECT_NEAR(grad[2], probs[2], 1e-12);
}

TEST(SoftmaxCrossEntropy, GradSumsToZero) {
  Vector grad{3.0, -1.0, 0.2, 7.0};
  softmax_cross_entropy_grad(grad, 3);
  EXPECT_NEAR(sum(grad), 0.0, 1e-12);
}

TEST(SoftmaxCrossEntropy, StableAtHugeLogits) {
  Vector logits{1000.0, -1000.0};
  const double loss_correct = softmax_cross_entropy(logits, 0);
  EXPECT_NEAR(loss_correct, 0.0, 1e-9);
  const double loss_wrong = softmax_cross_entropy(logits, 1);
  EXPECT_NEAR(loss_wrong, 2000.0, 1e-6);
  EXPECT_TRUE(std::isfinite(loss_wrong));
}

TEST(BinaryCrossEntropy, MatchesClosedForm) {
  const double logit = 0.7;
  const double expected = -std::log(sigmoid(logit));
  EXPECT_NEAR(binary_cross_entropy(logit, 1), expected, 1e-12);
  const double expected0 = -std::log(1.0 - sigmoid(logit));
  EXPECT_NEAR(binary_cross_entropy(logit, 0), expected0, 1e-12);
}

TEST(BinaryCrossEntropy, GradIsSigmoidMinusLabel) {
  double grad = 0.0;
  binary_cross_entropy_grad(0.3, 1, grad);
  EXPECT_NEAR(grad, sigmoid(0.3) - 1.0, 1e-12);
  binary_cross_entropy_grad(-0.8, 0, grad);
  EXPECT_NEAR(grad, sigmoid(-0.8), 1e-12);
}

TEST(BinaryCrossEntropy, StableAtExtremeLogits) {
  EXPECT_TRUE(std::isfinite(binary_cross_entropy(1000.0, 0)));
  EXPECT_NEAR(binary_cross_entropy(1000.0, 1), 0.0, 1e-9);
  EXPECT_NEAR(binary_cross_entropy(-1000.0, 0), 0.0, 1e-9);
}

// Central-difference sanity of the two loss gradients.
TEST(LossGradients, FiniteDifferenceAgreement) {
  const double eps = 1e-6;
  {
    Vector base{0.4, -0.3, 1.1};
    for (std::size_t i = 0; i < base.size(); ++i) {
      Vector up = base, down = base;
      up[i] += eps;
      down[i] -= eps;
      const double numeric = (softmax_cross_entropy(up, 2) -
                              softmax_cross_entropy(down, 2)) /
                             (2 * eps);
      Vector grad = base;
      softmax_cross_entropy_grad(grad, 2);
      EXPECT_NEAR(grad[i], numeric, 1e-7);
    }
  }
  {
    double grad = 0.0;
    binary_cross_entropy_grad(0.37, 1, grad);
    const double numeric = (binary_cross_entropy(0.37 + eps, 1) -
                            binary_cross_entropy(0.37 - eps, 1)) /
                           (2 * eps);
    EXPECT_NEAR(grad, numeric, 1e-7);
  }
}

}  // namespace
}  // namespace fed
