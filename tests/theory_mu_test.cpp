// Tests for the theory-guided mu controller (mu ~ B^2 - 1, Corollary 7)
// and its integration with the Trainer, plus checkpoint/resume
// bit-exactness (which relies on the same round-keyed determinism).

#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptive_mu.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "support/log.h"
#include "support/serialize.h"

namespace fed {
namespace {

TEST(DissimilarityMuTest, IidMapsToZeroMu) {
  DissimilarityMu controller(0.1);
  EXPECT_DOUBLE_EQ(controller.update(1.0), 0.0);  // B = 1: no penalty
}

TEST(DissimilarityMuTest, MuScalesWithBSquared) {
  DissimilarityMu controller(0.5, /*max_mu=*/100.0, /*smoothing=*/0.0);
  EXPECT_DOUBLE_EQ(controller.update(2.0), 0.5 * (4.0 - 1.0));
  EXPECT_DOUBLE_EQ(controller.update(3.0), 0.5 * (9.0 - 1.0));
}

TEST(DissimilarityMuTest, ClampedAtMaxMu) {
  DissimilarityMu controller(1.0, /*max_mu=*/2.0, /*smoothing=*/0.0);
  EXPECT_DOUBLE_EQ(controller.update(100.0), 2.0);
}

TEST(DissimilarityMuTest, SmoothingAveragesEstimates) {
  DissimilarityMu controller(1.0, 100.0, /*smoothing=*/0.5);
  controller.update(1.0);  // ema = 1
  // ema = 0.5*1 + 0.5*9 = 5 -> mu = 4.
  EXPECT_DOUBLE_EQ(controller.update(3.0), 4.0);
}

TEST(DissimilarityMuTest, BBelowOneFloorsAtZero) {
  DissimilarityMu controller(1.0, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(controller.update(0.5), 0.0);
}

TEST(DissimilarityMuTest, RejectsBadInput) {
  EXPECT_THROW(DissimilarityMu(0.0), std::invalid_argument);
  EXPECT_THROW(DissimilarityMu(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(DissimilarityMu(1.0, 1.0, 1.0), std::invalid_argument);
  DissimilarityMu ok(1.0);
  EXPECT_THROW(ok.update(-1.0), std::invalid_argument);
  EXPECT_THROW(ok.update(std::nan("")), std::invalid_argument);
}

class TheoryMuTrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(1.0, 1.0, 13);
      c.num_devices = 12;
      c.min_samples = 20;
      c.mean_log = 3.0;
      c.sigma_log = 0.5;
      return make_synthetic(c);
    }();
    return d;
  }
};

TEST_F(TheoryMuTrainerTest, TheoryPolicyRaisesMuOnHeterogeneousData) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig c;
  c.rounds = 10;
  c.devices_per_round = 5;
  c.systems.epochs = 5;
  c.learning_rate = 0.03;
  c.seed = 13;
  c.theory_mu.enabled = true;
  c.theory_mu.coefficient = 0.05;
  auto h = Trainer(model, data(), c).run();
  // The controller must have measured B > 1 and produced a positive mu.
  bool positive_mu = false;
  for (const auto& m : h.rounds) {
    if (m.mu > 0.0) positive_mu = true;
    if (m.evaluated()) {
      EXPECT_TRUE(m.dissimilarity_b.has_value());
    }
  }
  EXPECT_TRUE(positive_mu);
}

TEST_F(TheoryMuTrainerTest, MutuallyExclusiveWithAdaptive) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig c;
  c.rounds = 2;
  c.devices_per_round = 2;
  c.adaptive_mu.enabled = true;
  c.theory_mu.enabled = true;
  EXPECT_THROW(Trainer(model, data(), c), std::invalid_argument);
}

TEST_F(TheoryMuTrainerTest, CheckpointResumeIsBitExact) {
  LogisticRegression model(data().input_dim, data().num_classes);
  auto base = [&] {
    TrainerConfig c;
    c.mu = 0.5;
    c.devices_per_round = 5;
    c.systems.epochs = 5;
    c.systems.straggler_fraction = 0.5;
    c.learning_rate = 0.03;
    c.seed = 13;
    c.eval_every = 100;
    return c;
  };
  TrainerConfig whole = base();
  whole.rounds = 12;
  const auto reference = Trainer(model, data(), whole).run();

  TrainerConfig first = base();
  first.rounds = 7;
  const auto part1 = Trainer(model, data(), first).run();

  save_checkpoint("/tmp/fedprox_theory_mu_ckpt.bin", part1.final_parameters);
  TrainerConfig second = base();
  second.rounds = 5;
  second.first_round = 7;
  second.initial_parameters =
      load_checkpoint("/tmp/fedprox_theory_mu_ckpt.bin");
  const auto part2 = Trainer(model, data(), second).run();

  EXPECT_EQ(reference.final_parameters, part2.final_parameters);
}

TEST_F(TheoryMuTrainerTest, WarmStartDimensionValidated) {
  LogisticRegression model(data().input_dim, data().num_classes);
  TrainerConfig c;
  c.rounds = 1;
  c.devices_per_round = 2;
  c.initial_parameters = Vector{1.0, 2.0};  // wrong dimension
  EXPECT_THROW(Trainer(model, data(), c).run(), std::invalid_argument);
}

}  // namespace
}  // namespace fed
