// Trace plumbing: JSONL sink output (one parseable line per round with
// every phase key), the bytes-moved arithmetic, SolveStats/TraceSummary,
// and the stdout summary sink.

#include "obs/trace_sink.h"

#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/trace.h"
#include "support/json.h"
#include "support/log.h"
#include "support/serialize.h"

namespace fed {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(1.0, 1.0, 29);
      c.num_devices = 8;
      c.min_samples = 12;
      c.mean_log = 2.5;
      c.sigma_log = 0.4;
      return make_synthetic(c);
    }();
    return d;
  }

  static TrainerConfig config(std::size_t rounds) {
    TrainerConfig c = fedprox_config(1.0);
    c.rounds = rounds;
    c.devices_per_round = 4;
    c.systems.epochs = 3;
    c.systems.straggler_fraction = 0.5;
    c.learning_rate = 0.03;
    c.seed = 29;
    return c;
  }

  // Runs a traced training and returns the JSONL lines.
  static std::vector<std::string> traced_lines(std::size_t rounds) {
    LogisticRegression model(data().input_dim, data().num_classes);
    std::ostringstream out;
    JsonlTraceSink sink(out);
    TraceObserver tracer(sink);
    Trainer trainer(model, data(), config(rounds));
    trainer.add_observer(tracer);
    trainer.run();

    std::vector<std::string> lines;
    std::istringstream in(out.str());
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    return lines;
  }
};

TEST_F(TraceTest, SolveStatsFromSamples) {
  const std::array<double, 4> samples = {0.4, 0.1, 0.3, 0.2};
  const SolveStats s = SolveStats::from_samples(samples);
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.total_seconds, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min_seconds, 0.1);
  EXPECT_DOUBLE_EQ(s.max_seconds, 0.4);
  EXPECT_NEAR(s.mean_seconds, 0.25, 1e-12);

  const SolveStats empty = SolveStats::from_samples({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.total_seconds, 0.0);
}

TEST_F(TraceTest, SummaryAccumulatesAcrossRounds) {
  RoundTrace a;
  a.sampling_seconds = 0.1;
  a.aggregate_seconds = 0.2;
  a.round_seconds = 1.0;
  a.bytes_down = 100;
  a.bytes_up = 50;
  RoundTrace b;
  b.eval_seconds = 0.4;
  b.round_seconds = 0.5;
  b.bytes_down = 10;

  const std::vector<RoundTrace> traces{a, b};
  const TraceSummary s = summarize(traces);
  EXPECT_EQ(s.rounds, 2u);
  EXPECT_NEAR(s.total_seconds, 1.5, 1e-12);
  EXPECT_NEAR(s.sampling_seconds, 0.1, 1e-12);
  EXPECT_NEAR(s.aggregate_seconds, 0.2, 1e-12);
  EXPECT_NEAR(s.eval_seconds, 0.4, 1e-12);
  EXPECT_EQ(s.bytes_down, 110u);
  EXPECT_EQ(s.bytes_up, 50u);
}

TEST_F(TraceTest, JsonlSinkWritesHeaderPlusOneLinePerRecord) {
  constexpr std::size_t kRounds = 20;
  const auto lines = traced_lines(kRounds);
  // Header + round-0 record + one line per training round.
  ASSERT_EQ(lines.size(), 1 + kRounds + 1);

  const JsonValue header = parse_json(lines.front());
  ASSERT_TRUE(header.contains("run"));
  const auto& run = header.at("run");
  EXPECT_EQ(run.at("algorithm").as_string(), "FedProx");
  EXPECT_DOUBLE_EQ(run.at("rounds").as_number(), kRounds);
  EXPECT_DOUBLE_EQ(run.at("devices_per_round").as_number(), 4.0);

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonValue v = parse_json(lines[i]);  // every line parses
    EXPECT_DOUBLE_EQ(v.at("round").as_number(),
                     static_cast<double>(i - 1));
    const auto& phases = v.at("phases");
    EXPECT_TRUE(phases.contains("sampling_s"));
    EXPECT_TRUE(phases.contains("solve_wall_s"));
    EXPECT_TRUE(phases.contains("aggregate_s"));
    EXPECT_TRUE(phases.contains("eval_s"));
    EXPECT_TRUE(phases.at("solve").contains("mean_s"));
    EXPECT_GE(v.at("round_s").as_number(), 0.0);
    EXPECT_TRUE(v.contains("metrics"));
  }
}

TEST_F(TraceTest, TraceCountsAndBytesFollowTheConfig) {
  constexpr std::size_t kRounds = 5;
  LogisticRegression model(data().input_dim, data().num_classes);
  TraceCollector collector;
  Trainer trainer(model, data(), config(kRounds));
  trainer.add_observer(collector);
  const auto history = trainer.run();

  const std::size_t d = model.parameter_count();
  const auto& traces = collector.traces();
  ASSERT_EQ(traces.size(), kRounds + 1);

  // Round-0 record: evaluation only, no devices, no traffic.
  EXPECT_TRUE(traces.front().evaluated);
  EXPECT_EQ(traces.front().selected, 0u);
  EXPECT_EQ(traces.front().bytes_down, 0u);
  EXPECT_EQ(traces.front().bytes_up, 0u);

  for (std::size_t i = 1; i < traces.size(); ++i) {
    const auto& t = traces[i];
    // FedProx keeps stragglers: every selected device contributes.
    EXPECT_EQ(t.selected, 4u);
    EXPECT_EQ(t.contributors, t.selected);
    EXPECT_LE(t.stragglers, t.selected);
    EXPECT_EQ(t.contributors, history.rounds[i].contributors);
    // Transport-measured: exact broadcast/update wire sizes (FedProx has
    // no correction payload), not the bare parameter-vector estimate.
    EXPECT_EQ(t.bytes_down, t.selected * broadcast_wire_size(d, 0));
    EXPECT_EQ(t.bytes_up, t.contributors * update_wire_size(d));
    // Phase wall times are measured, non-negative, and bounded by the
    // whole-round time.
    EXPECT_GT(t.solve.count, 0u);
    EXPECT_GE(t.solve.min_seconds, 0.0);
    EXPECT_LE(t.solve.min_seconds, t.solve.max_seconds);
    EXPECT_GE(t.round_seconds,
              t.sampling_seconds + t.aggregate_seconds + t.eval_seconds);
  }
}

TEST_F(TraceTest, TraceToJsonRoundTripsStructuralFields) {
  RoundTrace t;
  t.round = 7;
  t.evaluated = true;
  t.selected = 10;
  t.contributors = 9;
  t.stragglers = 1;
  t.sampling_seconds = 0.001;
  t.solve_wall_seconds = 0.25;
  t.aggregate_seconds = 0.003;
  t.eval_seconds = 0.02;
  t.round_seconds = 0.3;
  t.bytes_down = 8080;
  t.bytes_up = 7272;

  const JsonValue v = trace_to_json(t);
  EXPECT_DOUBLE_EQ(v.at("round").as_number(), 7.0);
  EXPECT_TRUE(v.at("evaluated").as_bool());
  EXPECT_DOUBLE_EQ(v.at("selected").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(v.at("contributors").as_number(), 9.0);
  EXPECT_DOUBLE_EQ(v.at("stragglers").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v.at("bytes_down").as_number(), 8080.0);
  EXPECT_DOUBLE_EQ(v.at("bytes_up").as_number(), 7272.0);
  EXPECT_DOUBLE_EQ(v.at("phases").at("solve_wall_s").as_number(), 0.25);
  // The JSON serializer round-trips numbers exactly.
  const JsonValue reparsed = parse_json(serialize_json(v));
  EXPECT_EQ(reparsed, v);
}

TEST_F(TraceTest, StdoutSummarySinkRendersPhaseTable) {
  LogisticRegression model(data().input_dim, data().num_classes);
  std::ostringstream out;
  StdoutSummarySink sink(out);
  TraceObserver tracer(sink);
  Trainer trainer(model, data(), config(3));
  trainer.add_observer(tracer);
  trainer.run();

  const std::string text = out.str();
  EXPECT_NE(text.find("FedProx run: 4 rounds"), std::string::npos);
  EXPECT_NE(text.find("12 client solves"), std::string::npos);
  EXPECT_NE(text.find("sampling"), std::string::npos);
  EXPECT_NE(text.find("local solve"), std::string::npos);
  EXPECT_NE(text.find("aggregate"), std::string::npos);
  EXPECT_NE(text.find("evaluation"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
}

TEST_F(TraceTest, JsonlFileSinkCreatesParentDirectories) {
  const std::string dir = ::testing::TempDir() + "fedprox_obs_trace";
  const std::string path = dir + "/nested/trace.jsonl";
  {
    JsonlTraceSink sink(path);
    EXPECT_EQ(sink.path(), path);
    RunInfo info;
    info.algorithm = "FedProx";
    sink.begin_run(info);
    RoundMetrics m;
    RoundTrace t;
    sink.write(m, t);
    sink.end_run(TrainHistory{});
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_NO_THROW(parse_json(line));
    ++parsed;
  }
  EXPECT_EQ(parsed, 2u);  // header + one trace line
  std::filesystem::remove_all(dir);
}

TEST_F(TraceTest, JsonlSinkRotatesWithBoundedGenerations) {
  const std::string dir = ::testing::TempDir() + "fedprox_obs_rotate";
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/trace.jsonl";
  RotationPolicy policy;
  policy.max_bytes = 4096;
  policy.max_generations = 2;
  {
    JsonlTraceSink sink(path, policy);
    RunInfo info;
    info.algorithm = "FedProx";
    sink.begin_run(info);
    RoundMetrics m;
    RoundTrace t;
    for (std::size_t r = 0; r < 100; ++r) {
      t.round = r;
      sink.write(m, t);
    }
    sink.end_run(TrainHistory{});
    EXPECT_GE(sink.rotations(), 2u);  // enough data to cycle generations
  }
  // Bounded: the active file plus at most max_generations rotated ones.
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));
  EXPECT_TRUE(std::filesystem::exists(path + ".2"));
  EXPECT_FALSE(std::filesystem::exists(path + ".3"));
  // Every generation is a self-contained trace: the run header line
  // first (re-written at each rotation), then round lines, within the
  // byte budget.
  for (const std::string& p : {path, path + ".1", path + ".2"}) {
    EXPECT_LE(std::filesystem::file_size(p), policy.max_bytes);
    std::ifstream in(p);
    ASSERT_TRUE(in.good()) << p;
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const JsonValue v = parse_json(line);
      if (lines == 0) {
        EXPECT_TRUE(v.contains("run")) << p << " does not start with a header";
      } else {
        EXPECT_TRUE(v.contains("round"));
      }
      ++lines;
    }
    EXPECT_GE(lines, 2u) << p;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fed
