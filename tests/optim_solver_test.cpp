#include <gtest/gtest.h>

#include "optim/gd.h"
#include "optim/prox_sgd.h"
#include "optim/sgd.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace fed {
namespace {

using testing::QuadraticModel;
using testing::make_dense_dataset;

// For the quadratic model, F(w) = 0.5||w - x̄||^2 + const and the prox
// subproblem minimizer is w* = (x̄ + mu * anchor) / (1 + mu).
Vector prox_minimizer(const Vector& mean, const Vector& anchor, double mu) {
  Vector w(mean.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = (mean[i] + mu * anchor[i]) / (1.0 + mu);
  }
  return w;
}

struct QuadSetup {
  QuadraticModel model{3};
  Dataset data = make_dense_dataset({{1.0, 2.0, 3.0}, {3.0, 4.0, 7.0}});
  Vector mean{2.0, 3.0, 5.0};
  Vector anchor{0.0, 0.0, 0.0};
};

TEST(IterationsForEpochs, CeilingDivision) {
  EXPECT_EQ(iterations_for_epochs(1, 10, 10), 1u);
  EXPECT_EQ(iterations_for_epochs(1, 11, 10), 2u);
  EXPECT_EQ(iterations_for_epochs(20, 35, 10), 80u);
  EXPECT_THROW(iterations_for_epochs(1, 10, 0), std::invalid_argument);
}

TEST(LocalObjectiveTest, ProxTermAddsQuadraticPenalty) {
  QuadSetup q;
  LocalProblem problem{&q.model, &q.data, q.anchor, /*mu=*/2.0, {}};
  LocalObjective objective(problem);
  Vector w{1.0, 1.0, 1.0}, grad(3);
  const double loss = objective.full_loss_and_grad(w, grad);
  // F grad = w - mean; prox grad = mu (w - anchor).
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(grad[i], (w[i] - q.mean[i]) + 2.0 * w[i], 1e-12);
  }
  EXPECT_NEAR(loss, objective.full_loss(w), 1e-12);
}

TEST(LocalObjectiveTest, LinearCorrectionTermApplied) {
  QuadSetup q;
  Vector correction{1.0, -1.0, 0.5};
  LocalProblem problem{&q.model, &q.data, q.anchor, 0.0, correction};
  LocalObjective objective(problem);
  Vector w{0.0, 0.0, 0.0}, grad(3);
  objective.full_loss_and_grad(w, grad);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(grad[i], (w[i] - q.mean[i]) + correction[i], 1e-12);
  }
}

TEST(LocalObjectiveTest, ValidatesDimensions) {
  QuadSetup q;
  Vector short_anchor{1.0};
  LocalProblem bad{&q.model, &q.data, short_anchor, 0.0, {}};
  EXPECT_THROW(LocalObjective{bad}, std::invalid_argument);
}

TEST(GdSolverTest, ConvergesToProxMinimizer) {
  QuadSetup q;
  const double mu = 1.5;
  LocalProblem problem{&q.model, &q.data, q.anchor, mu, {}};
  GdSolver solver;
  SolveBudget budget{.iterations = 200, .batch_size = 2, .learning_rate = 0.3};
  Rng rng = make_stream(1, StreamKind::kTest);
  Vector w = q.anchor;
  solver.solve(problem, budget, rng, w);
  const Vector expected = prox_minimizer(q.mean, q.anchor, mu);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(w[i], expected[i], 1e-6);
}

TEST(GdSolverTest, MuZeroConvergesToLocalMinimizer) {
  QuadSetup q;
  LocalProblem problem{&q.model, &q.data, q.anchor, 0.0, {}};
  GdSolver solver;
  SolveBudget budget{.iterations = 300, .batch_size = 2, .learning_rate = 0.3};
  Rng rng = make_stream(2, StreamKind::kTest);
  Vector w = q.anchor;
  solver.solve(problem, budget, rng, w);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(w[i], q.mean[i], 1e-6);
}

TEST(SgdSolverTest, FullBatchSgdMatchesGd) {
  QuadSetup q;
  LocalProblem problem{&q.model, &q.data, q.anchor, 1.0, {}};
  SolveBudget budget{.iterations = 50, .batch_size = 2,  // = dataset size
                     .learning_rate = 0.2};
  Rng rng1 = make_stream(3, StreamKind::kTest);
  Rng rng2 = make_stream(4, StreamKind::kTest);
  Vector w_sgd = q.anchor, w_gd = q.anchor;
  SgdSolver().solve(problem, budget, rng1, w_sgd);
  GdSolver().solve(problem, budget, rng2, w_gd);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(w_sgd[i], w_gd[i], 1e-10);
}

TEST(SgdSolverTest, ZeroIterationsIsNoOp) {
  QuadSetup q;
  LocalProblem problem{&q.model, &q.data, q.anchor, 0.0, {}};
  SolveBudget budget{.iterations = 0, .batch_size = 1, .learning_rate = 0.1};
  Rng rng = make_stream(5, StreamKind::kTest);
  Vector w{9.0, 9.0, 9.0};
  SgdSolver().solve(problem, budget, rng, w);
  EXPECT_DOUBLE_EQ(w[0], 9.0);
}

TEST(SgdSolverTest, DeterministicGivenSameStream) {
  QuadSetup q;
  LocalProblem problem{&q.model, &q.data, q.anchor, 0.5, {}};
  SolveBudget budget{.iterations = 13, .batch_size = 1, .learning_rate = 0.1};
  Vector w1 = q.anchor, w2 = q.anchor;
  Rng rng1 = make_stream(6, StreamKind::kTest, 7);
  Rng rng2 = make_stream(6, StreamKind::kTest, 7);
  SgdSolver().solve(problem, budget, rng1, w1);
  SgdSolver().solve(problem, budget, rng2, w2);
  EXPECT_EQ(w1, w2);
}

TEST(SgdSolverTest, ProgressIncreasesWithBudget) {
  QuadSetup q;
  LocalProblem problem{&q.model, &q.data, q.anchor, 0.0, {}};
  LocalObjective objective(problem);
  auto run = [&](std::size_t iters) {
    SolveBudget budget{.iterations = iters, .batch_size = 1,
                       .learning_rate = 0.05};
    Rng rng = make_stream(7, StreamKind::kTest, iters);
    Vector w = q.anchor;
    SgdSolver().solve(problem, budget, rng, w);
    return objective.full_loss(w);
  };
  const double l2 = run(2), l20 = run(20), l200 = run(200);
  EXPECT_GT(l2, l20);
  EXPECT_GT(l20, l200);
}

TEST(SgdSolverTest, EmptyDatasetIsNoOp) {
  QuadraticModel model(2);
  Dataset empty;
  empty.features = Matrix(0, 2);
  Vector anchor{1.0, 1.0};
  LocalProblem problem{&model, &empty, anchor, 0.0, {}};
  SolveBudget budget{.iterations = 5, .batch_size = 1, .learning_rate = 0.1};
  Rng rng = make_stream(8, StreamKind::kTest);
  Vector w = anchor;
  SgdSolver().solve(problem, budget, rng, w);
  EXPECT_EQ(w, anchor);
}

}  // namespace
}  // namespace fed
