#include "support/json.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace fed {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse_json("\"hello\"").as_string(), "hello");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = parse_json(
      R"({"users": ["a", "b"], "n": [1, 2], "data": {"a": {"x": [[1,2]]}}})");
  EXPECT_EQ(v.at("users").as_array().size(), 2u);
  EXPECT_EQ(v.at("users").as_array()[1].as_string(), "b");
  EXPECT_DOUBLE_EQ(
      v.at("data").at("a").at("x").as_array()[0].as_array()[1].as_number(),
      2.0);
}

TEST(Json, HandlesWhitespaceEverywhere) {
  const JsonValue v = parse_json("  { \"a\" :\n [ 1 ,\t2 ] }  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd\t")").as_string(), "a\"b\\c\nd\t");
  EXPECT_EQ(parse_json(R"("Aé")").as_string(), "A\xC3\xA9");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse_json("tru"), std::runtime_error);
  EXPECT_THROW(parse_json("1 2"), std::runtime_error);  // trailing garbage
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("1.2.3"), std::runtime_error);
}

TEST(Json, TypeMismatchThrows) {
  const JsonValue v = parse_json("[1]");
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.at("x"), std::runtime_error);
}

TEST(Json, SerializeRoundTrip) {
  const std::string doc =
      R"({"arr":[1,2.5,true,null,"s"],"num":-7,"obj":{"inner":"va\"l"}})";
  const JsonValue v = parse_json(doc);
  const JsonValue again = parse_json(serialize_json(v));
  EXPECT_EQ(v, again);
}

TEST(Json, SerializesIntegersWithoutFraction) {
  JsonValue v(1234.0);
  EXPECT_EQ(serialize_json(v), "1234");
}

TEST(Json, SerializesControlCharactersEscaped) {
  JsonValue v(std::string("a\x01z"));
  EXPECT_EQ(serialize_json(v), "\"a\\u0001z\"");
}

TEST(Json, RejectsNonFiniteNumbers) {
  JsonValue v(std::numeric_limits<double>::infinity());
  EXPECT_THROW(serialize_json(v), std::runtime_error);
}

TEST(Json, FileRoundTrip) {
  const std::string path = "/tmp/fedprox_json_test/doc.json";
  JsonObject root;
  root["k"] = JsonValue(JsonArray{JsonValue(1.0), JsonValue("two")});
  save_json_file(path, JsonValue(root));
  const JsonValue loaded = load_json_file(path);
  EXPECT_EQ(loaded.at("k").as_array()[1].as_string(), "two");
  std::filesystem::remove_all("/tmp/fedprox_json_test");
}

TEST(Json, MissingFileThrows) {
  EXPECT_THROW(load_json_file("/tmp/definitely_missing_9f2.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace fed
