#include "core/registry.h"

#include <gtest/gtest.h>

namespace fed {
namespace {

class WorkloadNameTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadNameTest, ConstructsConsistentWorkload) {
  // Small scale keeps this fast; structure must stay consistent.
  const Workload w = make_workload(GetParam(), /*seed=*/1, /*scale=*/0.05);
  EXPECT_EQ(w.name, GetParam());
  EXPECT_GT(w.data.num_clients(), 0u);
  EXPECT_TRUE(w.model != nullptr);
  EXPECT_GT(w.model->parameter_count(), 0u);
  EXPECT_GT(w.learning_rate, 0.0);
  EXPECT_GT(w.default_rounds, 0u);
  // Model input must match the data modality.
  if (!w.data.clients[0].train.is_sequence()) {
    EXPECT_GT(w.data.input_dim, 0u);
  } else {
    EXPECT_GT(w.data.vocab_size, 0u);
  }
  // Every client has training data.
  for (const auto& c : w.data.clients) EXPECT_GE(c.train.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllNames, WorkloadNameTest,
                         ::testing::ValuesIn(workload_names()));

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_workload("not_a_dataset"), std::invalid_argument);
}

TEST(Registry, ScaleShrinksDeviceCount) {
  const Workload full = make_workload("mnist", 1, 0.2);
  const Workload small = make_workload("mnist", 1, 0.05);
  EXPECT_GT(full.data.num_clients(), small.data.num_clients());
}

TEST(Registry, NameListsAreConsistent) {
  const auto all = workload_names();
  EXPECT_EQ(all.size(), 8u);
  for (const auto& n : synthetic_workload_names()) {
    EXPECT_NE(std::find(all.begin(), all.end(), n), all.end());
  }
  const auto fig1 = figure1_workload_names();
  EXPECT_EQ(fig1.size(), 5u);
  EXPECT_EQ(fig1.front(), "synthetic_1_1");
}

TEST(Registry, TunedHyperparameters) {
  // Learning rates follow the paper's tuning protocol (grid search on
  // FedAvg with E=1) applied to this repo's generators — values recorded
  // in EXPERIMENTS.md. The best-mu values are the paper's (Section 5.3.2).
  EXPECT_DOUBLE_EQ(make_workload("synthetic_1_1", 1, 0.2).learning_rate, 0.03);
  EXPECT_DOUBLE_EQ(make_workload("mnist", 1, 0.05).learning_rate, 0.03);
  EXPECT_DOUBLE_EQ(make_workload("femnist", 1, 0.05).learning_rate, 0.03);
  EXPECT_DOUBLE_EQ(make_workload("shakespeare", 1, 0.05).learning_rate, 0.3);
  EXPECT_DOUBLE_EQ(make_workload("sent140", 1, 0.05).learning_rate, 0.1);
  EXPECT_DOUBLE_EQ(make_workload("synthetic_1_1", 1, 0.2).best_mu, 1.0);
  EXPECT_DOUBLE_EQ(make_workload("mnist", 1, 0.05).best_mu, 1.0);
  EXPECT_DOUBLE_EQ(make_workload("femnist", 1, 0.05).best_mu, 1.0);
  EXPECT_DOUBLE_EQ(make_workload("shakespeare", 1, 0.05).best_mu, 0.001);
  EXPECT_DOUBLE_EQ(make_workload("sent140", 1, 0.05).best_mu, 0.01);
}

TEST(Registry, SequenceModelsMatchVocab) {
  const Workload shakespeare = make_workload("shakespeare", 1, 0.05);
  EXPECT_EQ(shakespeare.data.num_classes, shakespeare.data.vocab_size);
  const Workload sent = make_workload("sent140", 1, 0.05);
  EXPECT_EQ(sent.data.num_classes, 2u);
}

}  // namespace
}  // namespace fed
