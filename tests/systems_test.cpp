#include "sim/systems.h"

#include <gtest/gtest.h>

namespace fed {
namespace {

std::vector<std::size_t> sizes(std::size_t k, std::size_t n) {
  return std::vector<std::size_t>(k, n);
}

TEST(StragglerCount, RoundsToNearest) {
  EXPECT_EQ(straggler_count(0.0, 10), 0u);
  EXPECT_EQ(straggler_count(0.5, 10), 5u);
  EXPECT_EQ(straggler_count(0.9, 10), 9u);
  EXPECT_EQ(straggler_count(1.0, 10), 10u);
  EXPECT_THROW(straggler_count(-0.1, 10), std::invalid_argument);
  EXPECT_THROW(straggler_count(1.1, 10), std::invalid_argument);
}

class BudgetFractionTest : public ::testing::TestWithParam<double> {};

TEST_P(BudgetFractionTest, ExactStragglerFraction) {
  const double fraction = GetParam();
  SystemsConfig config{.straggler_fraction = fraction, .epochs = 20, .profile = {}};
  std::vector<std::size_t> selected{3, 1, 4, 1, 5, 9, 2, 6, 8, 7};
  // device ids may repeat across positions in this synthetic list; the
  // budget is per-position.
  const auto budgets =
      assign_budgets(config, /*seed=*/1, /*round=*/0, selected, sizes(10, 40),
                     /*batch_size=*/10);
  std::size_t stragglers = 0;
  for (const auto& b : budgets) stragglers += b.straggler ? 1 : 0;
  EXPECT_EQ(stragglers, straggler_count(fraction, 10));
}

INSTANTIATE_TEST_SUITE_P(Fractions, BudgetFractionTest,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

TEST(AssignBudgets, NonStragglersGetFullWork) {
  SystemsConfig config{.straggler_fraction = 0.5, .epochs = 20, .profile = {}};
  std::vector<std::size_t> selected{0, 1, 2, 3};
  const auto budgets =
      assign_budgets(config, 7, 3, selected, sizes(4, 35), 10);
  for (const auto& b : budgets) {
    if (!b.straggler) {
      EXPECT_EQ(b.epochs, 20u);
      EXPECT_EQ(b.iterations, 20u * 4u);  // ceil(35/10) = 4 per epoch
    } else {
      EXPECT_GE(b.epochs, 1u);
      EXPECT_LE(b.epochs, 20u);
      EXPECT_EQ(b.iterations, b.epochs * 4u);
    }
  }
}

TEST(AssignBudgets, DeterministicInSeedAndRound) {
  SystemsConfig config{.straggler_fraction = 0.9, .epochs = 20, .profile = {}};
  std::vector<std::size_t> selected{5, 6, 7, 8, 9};
  const auto a = assign_budgets(config, 11, 4, selected, sizes(5, 20), 10);
  const auto b = assign_budgets(config, 11, 4, selected, sizes(5, 20), 10);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i].straggler, b[i].straggler);
    EXPECT_EQ(a[i].iterations, b[i].iterations);
  }
  // A different round produces a different assignment eventually.
  bool any_difference = false;
  for (std::uint64_t round = 0; round < 20 && !any_difference; ++round) {
    const auto c = assign_budgets(config, 11, round, selected, sizes(5, 20), 10);
    for (std::size_t i = 0; i < 5; ++i) {
      if (c[i].straggler != a[i].straggler ||
          c[i].iterations != a[i].iterations) {
        any_difference = true;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(AssignBudgets, EpochOneDrawsPartialIterations) {
  SystemsConfig config{.straggler_fraction = 1.0, .epochs = 1, .profile = {}};
  std::vector<std::size_t> selected{0};
  bool saw_partial = false;
  for (std::uint64_t round = 0; round < 50; ++round) {
    const auto budgets =
        assign_budgets(config, 3, round, selected, sizes(1, 100), 10);
    EXPECT_EQ(budgets[0].epochs, 1u);
    EXPECT_GE(budgets[0].iterations, 1u);
    EXPECT_LE(budgets[0].iterations, 10u);  // one epoch = 10 iterations
    if (budgets[0].iterations < 10) saw_partial = true;
  }
  EXPECT_TRUE(saw_partial);
}

TEST(AssignBudgets, StragglerEpochsCoverFullRange) {
  SystemsConfig config{.straggler_fraction = 1.0, .epochs = 5, .profile = {}};
  std::vector<std::size_t> selected{0, 1, 2};
  std::vector<bool> seen(6, false);
  for (std::uint64_t round = 0; round < 200; ++round) {
    for (const auto& b :
         assign_budgets(config, 13, round, selected, sizes(3, 10), 10)) {
      seen[b.epochs] = true;
    }
  }
  for (std::size_t e = 1; e <= 5; ++e) EXPECT_TRUE(seen[e]) << "epoch " << e;
}

TEST(DeviceProfile, SpeedFactorPersistentAndBounded) {
  DeviceProfileConfig profile{.enabled = true, .speed_sigma_log = 1.0};
  for (std::size_t device = 0; device < 50; ++device) {
    const double s1 = device_speed_factor(profile, 7, device);
    const double s2 = device_speed_factor(profile, 7, device);
    EXPECT_DOUBLE_EQ(s1, s2);  // persistent across calls/rounds
    EXPECT_GT(s1, 0.0);
    EXPECT_LE(s1, 1.0);
  }
  // Speeds vary across devices.
  EXPECT_NE(device_speed_factor(profile, 7, 0),
            device_speed_factor(profile, 7, 1));
}

TEST(DeviceProfile, BudgetsFollowPersistentSpeeds) {
  SystemsConfig config{.straggler_fraction = 0.9,  // ignored under profile
                       .epochs = 10,
                       .profile = {.enabled = true, .speed_sigma_log = 1.5}};
  std::vector<std::size_t> selected{0, 1, 2, 3, 4};
  const auto round0 =
      assign_budgets(config, 7, 0, selected, sizes(5, 40), 10);
  const auto round9 =
      assign_budgets(config, 7, 9, selected, sizes(5, 40), 10);
  for (std::size_t i = 0; i < 5; ++i) {
    // Same device, same speed: identical budgets in every round.
    EXPECT_EQ(round0[i].iterations, round9[i].iterations);
    EXPECT_GE(round0[i].iterations, 1u);
    EXPECT_LE(round0[i].iterations, 10u * 4u);
    EXPECT_EQ(round0[i].straggler, round0[i].iterations < 40u);
  }
}

TEST(DeviceProfile, FullSpeedDeviceGetsFullBudget) {
  SystemsConfig config{.straggler_fraction = 0.0,
                       .epochs = 6,
                       .profile = {.enabled = true, .speed_sigma_log = 0.0}};
  // sigma 0: every device has speed exactly 1.0 (min(1, e^0)).
  std::vector<std::size_t> selected{3};
  const auto budgets = assign_budgets(config, 1, 0, selected, sizes(1, 25), 10);
  EXPECT_FALSE(budgets[0].straggler);
  EXPECT_EQ(budgets[0].epochs, 6u);
  EXPECT_EQ(budgets[0].iterations, 6u * 3u);
}

TEST(AssignBudgets, ValidatesInput) {
  SystemsConfig config{.straggler_fraction = 0.0, .epochs = 0, .profile = {}};
  std::vector<std::size_t> selected{0};
  EXPECT_THROW(assign_budgets(config, 1, 0, selected, sizes(1, 10), 10),
               std::invalid_argument);
  SystemsConfig ok{.straggler_fraction = 0.0, .epochs = 1, .profile = {}};
  EXPECT_THROW(assign_budgets(ok, 1, 0, selected, sizes(2, 10), 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace fed
