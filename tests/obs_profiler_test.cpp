// Span profiler contract: no events while disabled, per-thread nesting,
// Chrome trace-event export shape, the span hierarchy a real Trainer run
// emits, and the pool utilization gauges.

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "support/json.h"
#include "support/log.h"
#include "support/threadpool.h"

namespace fed {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kWarn); }

  // The profiler is process-wide; make each test start from a clean,
  // disabled state whatever ran before it.
  void SetUp() override {
    Profiler::instance().disable();
    Profiler::instance().discard();
  }
  void TearDown() override {
    Profiler::instance().disable();
    Profiler::instance().discard();
  }

  static const FederatedDataset& data() {
    static const FederatedDataset d = [] {
      SyntheticConfig c = synthetic_config(0.5, 0.5, 23);
      c.num_devices = 8;
      c.min_samples = 12;
      c.mean_log = 2.5;
      c.sigma_log = 0.4;
      return make_synthetic(c);
    }();
    return d;
  }

  static TrainerConfig config() {
    TrainerConfig c = fedprox_config(0.5);
    c.rounds = 3;
    c.devices_per_round = 4;
    c.systems.epochs = 2;
    c.systems.straggler_fraction = 0.5;
    c.learning_rate = 0.03;
    c.seed = 23;
    c.eval_every = 1;
    c.threads = 2;
    return c;
  }

  static Profiler::Snapshot run_profiled_trainer() {
    LogisticRegression model(data().input_dim, data().num_classes);
    Trainer trainer(model, data(), config());
    Profiler::instance().set_thread_name("main");
    Profiler::instance().enable();
    trainer.run();
    Profiler::instance().disable();
    return Profiler::instance().drain();
  }
};

TEST_F(ProfilerTest, DisabledProfilerRecordsNothing) {
  {
    Span outer("outer", "test");
    Span inner("inner", "test", "value", 7);
    EXPECT_FALSE(outer.active());
    EXPECT_FALSE(inner.active());
  }
  EXPECT_TRUE(Profiler::instance().drain().events.empty());
}

TEST_F(ProfilerTest, SpansNestAndCarryArgs) {
  Profiler::instance().enable();
  {
    Span outer("outer", "test", "round", 3);
    {
      Span inner("inner", "test", "device", 5, "iterations", 40);
    }
  }
  Profiler::instance().disable();

  const auto snapshot = Profiler::instance().drain();
  ASSERT_EQ(snapshot.events.size(), 2u);
  // Drain orders parents before the children they contain.
  const ProfileEvent& outer = snapshot.events[0];
  const ProfileEvent& inner = snapshot.events[1];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(outer.tid, inner.tid);
  EXPECT_LE(outer.start_us, inner.start_us);
  EXPECT_GE(outer.start_us + outer.dur_us, inner.start_us + inner.dur_us);
  ASSERT_EQ(outer.num_args, 1);
  EXPECT_STREQ(outer.arg_names[0], "round");
  EXPECT_EQ(outer.arg_values[0], 3);
  ASSERT_EQ(inner.num_args, 2);
  EXPECT_STREQ(inner.arg_names[0], "device");
  EXPECT_EQ(inner.arg_values[0], 5);
  EXPECT_STREQ(inner.arg_names[1], "iterations");
  EXPECT_EQ(inner.arg_values[1], 40);
}

TEST_F(ProfilerTest, ChromeTraceJsonRoundTripsThroughParser) {
  Profiler::instance().set_thread_name("main");
  Profiler::instance().enable();
  {
    Span span("unit_span", "test", "x", 1);
  }
  Profiler::instance().disable();

  const JsonValue doc = chrome_trace_json(Profiler::instance().drain());
  // Serialize + reparse: the artifact a tool would actually read.
  const JsonValue parsed = parse_json(serialize_json(doc));
  ASSERT_TRUE(parsed.contains("traceEvents"));
  EXPECT_EQ(parsed.at("displayTimeUnit").as_string(), "ms");

  bool saw_process_name = false, saw_main_thread = false, saw_span = false;
  for (const JsonValue& event : parsed.at("traceEvents").as_array()) {
    const std::string& name = event.at("name").as_string();
    const std::string& ph = event.at("ph").as_string();
    if (ph == "M" && name == "process_name") saw_process_name = true;
    if (ph == "M" && name == "thread_name" &&
        event.at("args").at("name").as_string() == "main") {
      saw_main_thread = true;
    }
    if (ph == "X" && name == "unit_span") {
      saw_span = true;
      EXPECT_GE(event.at("dur").as_number(), 0.0);
      EXPECT_EQ(event.at("args").at("x").as_number(), 1.0);
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_main_thread);
  EXPECT_TRUE(saw_span);
}

TEST_F(ProfilerTest, TrainerRunEmitsTheDocumentedSpanHierarchy) {
  const auto snapshot = run_profiled_trainer();

  std::set<std::string> names;
  for (const ProfileEvent& e : snapshot.events) {
    if (e.type == ProfileEvent::Type::kComplete) names.insert(e.name);
  }
  for (const char* required :
       {"run", "round", "sampling", "solve_parallel", "aggregate", "eval",
        "exchange", "local_epoch", "task"}) {
    EXPECT_TRUE(names.count(required)) << "missing span: " << required;
  }

  // Worker threads register named tracks.
  bool saw_pool_thread = false;
  for (const auto& [tid, name] : snapshot.threads) {
    if (name.rfind("pool-", 0) == 0) saw_pool_thread = true;
  }
  EXPECT_TRUE(saw_pool_thread);

  // Every exchange carries round/device args.
  std::size_t exchange_spans = 0;
  for (const ProfileEvent& e : snapshot.events) {
    if (e.type != ProfileEvent::Type::kComplete ||
        std::string(e.name) != "exchange") {
      continue;
    }
    ++exchange_spans;
    ASSERT_EQ(e.num_args, 3);
    EXPECT_STREQ(e.arg_names[0], "round");
    EXPECT_STREQ(e.arg_names[1], "device");
  }
  EXPECT_EQ(exchange_spans, config().rounds * config().devices_per_round);
}

TEST_F(ProfilerTest, CompleteEventsNestPerThreadAndAsyncPairsMatch) {
  const auto snapshot = run_profiled_trainer();

  // X events: stack check per thread (drain order is parent-first).
  std::map<std::uint32_t, std::vector<const ProfileEvent*>> by_tid;
  std::map<std::uint64_t, int> async_open;
  for (const ProfileEvent& e : snapshot.events) {
    switch (e.type) {
      case ProfileEvent::Type::kComplete: by_tid[e.tid].push_back(&e); break;
      case ProfileEvent::Type::kAsyncBegin: ++async_open[e.id]; break;
      case ProfileEvent::Type::kAsyncEnd: --async_open[e.id]; break;
      case ProfileEvent::Type::kFlowStart:
      case ProfileEvent::Type::kFlowEnd: break;  // paired by FlowPairsBalance
    }
  }
  for (const auto& [tid, events] : by_tid) {
    std::vector<std::uint64_t> open_ends;
    for (const ProfileEvent* e : events) {
      while (!open_ends.empty() && open_ends.back() <= e->start_us) {
        open_ends.pop_back();
      }
      const std::uint64_t end = e->start_us + e->dur_us;
      if (!open_ends.empty()) {
        EXPECT_LE(end, open_ends.back())
            << "span " << e->name << " overlaps without nesting on tid "
            << tid;
      }
      open_ends.push_back(end);
    }
  }
  for (const auto& [id, open] : async_open) {
    EXPECT_EQ(open, 0) << "unbalanced async pair id " << id;
  }
}

TEST_F(ProfilerTest, ProfilingDoesNotChangeTrainingResults) {
  LogisticRegression model(data().input_dim, data().num_classes);
  const TrainHistory plain = Trainer(model, data(), config()).run();
  Profiler::instance().enable();
  const TrainHistory profiled = Trainer(model, data(), config()).run();
  Profiler::instance().disable();
  Profiler::instance().discard();

  ASSERT_EQ(plain.final_parameters.size(), profiled.final_parameters.size());
  for (std::size_t i = 0; i < plain.final_parameters.size(); ++i) {
    EXPECT_EQ(plain.final_parameters[i], profiled.final_parameters[i]);
  }
}

TEST_F(ProfilerTest, RecordPoolStatsExposesWorkerGauges) {
  ThreadPool pool(2);
  Profiler::instance().enable();
  pool.parallel_for(8, [](std::size_t) {
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  });
  Profiler::instance().disable();

  MetricsRegistry registry;
  record_pool_stats(pool, registry);
  double tasks = 0.0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const MetricLabels worker{{"worker", std::to_string(i)}};
    tasks += registry.gauge("fed_pool_worker_tasks", worker).value();
    EXPECT_GE(registry.gauge("fed_pool_worker_busy_seconds", worker).value(),
              0.0);
    EXPECT_GE(
        registry.gauge("fed_pool_worker_queue_wait_seconds", worker).value(),
        0.0);
  }
  EXPECT_GE(tasks, 8.0);
  EXPECT_GE(registry.gauge("fed_pool_busy_seconds").value(), 0.0);
  EXPECT_GE(registry.gauge("fed_pool_queue_wait_seconds").value(), 0.0);
}

TEST_F(ProfilerTest, KernelSpanMacroMatchesBuildMode) {
  Profiler::instance().enable();
  {
    FED_PROFILE_KERNEL_SPAN("kernel_probe", "kernel");
  }
  Profiler::instance().disable();
  const auto snapshot = Profiler::instance().drain();
  std::size_t kernel_events = 0;
  for (const ProfileEvent& e : snapshot.events) {
    if (std::string(e.name) == "kernel_probe") ++kernel_events;
  }
  EXPECT_EQ(kernel_events, kProfileKernels ? 1u : 0u);
}

}  // namespace
}  // namespace fed
