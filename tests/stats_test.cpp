#include "data/stats.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fed {
namespace {

TEST(Stats, ComputesMeanAndPopulationStdev) {
  FederatedDataset fed;
  fed.name = "toy";
  Rng gen = make_stream(1, StreamKind::kTest);
  fed.clients.resize(3);
  // Device totals (train+test): 10, 20, 30.
  fed.clients[0].train = testing::make_random_dataset(8, 2, 2, gen);
  fed.clients[0].test = testing::make_random_dataset(2, 2, 2, gen);
  fed.clients[1].train = testing::make_random_dataset(16, 2, 2, gen);
  fed.clients[1].test = testing::make_random_dataset(4, 2, 2, gen);
  fed.clients[2].train = testing::make_random_dataset(24, 2, 2, gen);
  fed.clients[2].test = testing::make_random_dataset(6, 2, 2, gen);
  const DatasetStats s = compute_stats(fed);
  EXPECT_EQ(s.name, "toy");
  EXPECT_EQ(s.devices, 3u);
  EXPECT_EQ(s.samples, 60u);
  EXPECT_DOUBLE_EQ(s.mean_per_device, 20.0);
  EXPECT_NEAR(s.stdev_per_device, std::sqrt(200.0 / 3.0), 1e-9);
}

TEST(Stats, EmptyFederationIsZero) {
  FederatedDataset fed;
  const DatasetStats s = compute_stats(fed);
  EXPECT_EQ(s.devices, 0u);
  EXPECT_EQ(s.samples, 0u);
  EXPECT_DOUBLE_EQ(s.mean_per_device, 0.0);
}

TEST(Stats, TableRendersAllRows) {
  std::vector<DatasetStats> rows(2);
  rows[0].name = "alpha";
  rows[0].devices = 5;
  rows[1].name = "beta";
  rows[1].devices = 7;
  const std::string table = format_stats_table(rows);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("Samples/device mean"), std::string::npos);
}

}  // namespace
}  // namespace fed
