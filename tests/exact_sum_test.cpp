#include "tensor/exact_sum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

namespace fed {
namespace {

TEST(ExactSum, EmptyIsZero) {
  ExactSum s;
  EXPECT_TRUE(s.is_zero());
  EXPECT_EQ(s.value(), 0.0);
}

TEST(ExactSum, SingleValueRoundTripsExactly) {
  const double cases[] = {1.0,
                          -1.0,
                          0.5,
                          3.141592653589793,
                          -2.2250738585072014e-308,  // smallest normal
                          5e-324,                    // smallest subnormal
                          -5e-324,
                          1.7976931348623157e308,    // largest finite
                          123456789.123456789,
                          -0.1};
  for (const double v : cases) {
    ExactSum s;
    s.add(v);
    EXPECT_EQ(s.value(), v) << "value " << v;
  }
}

TEST(ExactSum, CancellationIsExact) {
  // 1e16 + 1 - 1e16 loses the 1 in plain double arithmetic when summed
  // left to right as (1e16 + 1) happens to round, but here every addend
  // is held exactly.
  ExactSum s;
  s.add(1e16);
  s.add(1.0);
  s.add(-1e16);
  EXPECT_EQ(s.value(), 1.0);

  s = ExactSum();
  s.add(1e308);
  s.add(-1e308);
  s.add(5e-324);
  EXPECT_EQ(s.value(), 5e-324);
  EXPECT_FALSE(s.is_zero());
}

TEST(ExactSum, SumIsIndependentOfOrderAndPartition) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> coord(-1.0, 1.0);
  std::uniform_int_distribution<int> mag(-200, 200);
  std::vector<double> values(257);
  for (auto& v : values) v = std::ldexp(coord(rng), mag(rng));

  ExactSum forward;
  for (const double v : values) forward.add(v);
  const double expected = forward.value();

  // Reversed order.
  ExactSum reversed;
  for (auto it = values.rbegin(); it != values.rend(); ++it) reversed.add(*it);
  EXPECT_EQ(reversed.value(), expected);

  // Random shard partitions merged in shuffled order.
  for (int trial = 0; trial < 10; ++trial) {
    std::uniform_int_distribution<std::size_t> pick(0, 6);
    std::vector<ExactSum> shards(7);
    std::shuffle(values.begin(), values.end(), rng);
    for (const double v : values) shards[pick(rng)].add(v);
    std::shuffle(shards.begin(), shards.end(), rng);
    ExactSum merged;
    for (const ExactSum& s : shards) merged.merge(s);
    EXPECT_EQ(merged.value(), expected) << "trial " << trial;
  }
}

TEST(ExactSum, ValueIsCorrectlyRounded) {
  // 2^60 + 1: needs 61 significant bits, so rounding must drop the 1
  // (round half even lands on the even mantissa).
  ExactSum s;
  s.add(std::ldexp(1.0, 60));
  s.add(1.0);
  EXPECT_EQ(s.value(), std::ldexp(1.0, 60));

  // 2^60 + 2^7 + 1: the tail is just past half an ulp (ulp = 2^8), so it
  // rounds up.
  s = ExactSum();
  s.add(std::ldexp(1.0, 60));
  s.add(128.0);
  s.add(1.0);
  EXPECT_EQ(s.value(), std::ldexp(1.0, 60) + 256.0);

  // Exactly half an ulp with an even mantissa: ties to even, stays.
  s = ExactSum();
  s.add(std::ldexp(1.0, 60));
  s.add(128.0);
  EXPECT_EQ(s.value(), std::ldexp(1.0, 60));
}

TEST(ExactSum, MatchesPlainSummationOnBenignData) {
  // When every addend has the same exponent scale, plain summation is
  // well-conditioned; the exact sum must agree with long double accuracy.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  ExactSum s;
  long double reference = 0.0L;
  for (int i = 0; i < 10000; ++i) {
    const double v = dist(rng);
    s.add(v);
    reference += static_cast<long double>(v);
  }
  EXPECT_NEAR(s.value(), static_cast<double>(reference), 1e-12);
}

TEST(ExactSum, NonFiniteAddendsPropagateLikeIeee) {
  const double inf = std::numeric_limits<double>::infinity();
  ExactSum s;
  s.add(1.0);
  s.add(inf);
  EXPECT_EQ(s.value(), inf);
  EXPECT_FALSE(s.is_zero());

  // inf + (-inf) is NaN, exactly as plain summation would produce.
  s.add(-inf);
  EXPECT_TRUE(std::isnan(s.value()));

  ExactSum nan_side;
  nan_side.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(std::isnan(nan_side.value()));

  // Merging carries the side-channel across shards.
  ExactSum finite;
  finite.add(2.0);
  finite.merge(nan_side);
  EXPECT_TRUE(std::isnan(finite.value()));
}

TEST(ExactSum, OverflowOfTheExactSumReturnsInfinity) {
  ExactSum s;
  const double huge = 1.7976931348623157e308;
  s.add(huge);
  s.add(huge);
  EXPECT_EQ(s.value(), std::numeric_limits<double>::infinity());
  // But it is still exact underneath: subtracting one addend recovers
  // the other, where plain double arithmetic would be stuck at inf.
  s.add(-huge);
  EXPECT_EQ(s.value(), huge);
}

TEST(ExactSum, RestoreRoundTripsRawState) {
  ExactSum s;
  s.add(0.1);
  s.add(-3e200);
  s.add(5e-324);
  const ExactSum r = ExactSum::restore(
      {s.limbs().begin(), s.limbs().end()}, s.has_nonfinite(), s.nonfinite());
  EXPECT_EQ(r.value(), s.value());
  std::vector<std::uint64_t> short_limbs(ExactSum::kLimbs - 1, 0);
  EXPECT_THROW(ExactSum::restore(short_limbs, false, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace fed
