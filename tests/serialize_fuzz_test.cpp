// Corruption fuzz for the FPB1/FPU1/FPS1/FPC1 wire decoders: feed
// thousands of randomly mutated (bit-flipped, truncated, extended,
// spliced) valid encodings through decode_broadcast/decode_update/
// decode_partial_sum/decode_checkpoint_state and require that every
// outcome is either a successful decode or a clean std::runtime_error —
// never any other exception type, crash, or sanitizer finding. The
// ASan/UBSan and TSan CI jobs run this test, so out-of-bounds reads in
// the decoders' length handling fail loudly. The checkpoint frame is
// held to a stricter bar: its FNV-1a trailer covers the whole frame, so
// EVERY mutation that changes the bytes must be rejected (a silently
// accepted mutation could resume training from corrupt state).

#include <gtest/gtest.h>

#include <span>
#include <stdexcept>

#include "support/rng.h"
#include "support/serialize.h"

namespace fed {
namespace {

// What happened when a mutated buffer hit a decoder.
enum class DecodeOutcome { kAccepted, kRejected };

template <typename Decoder>
DecodeOutcome run_decoder(const Decoder& decode, const WireBuffer& buffer) {
  try {
    decode(std::span<const std::uint8_t>(buffer));
    return DecodeOutcome::kAccepted;
  } catch (const std::runtime_error&) {
    return DecodeOutcome::kRejected;  // the only acceptable failure mode
  }
  // Any other exception type propagates and fails the test.
}

// One deterministic mutation of `wire`, chosen and parameterized by `rng`.
WireBuffer mutate(const WireBuffer& wire, Rng& rng) {
  WireBuffer out = wire;
  switch (rng.uniform_int(std::uint64_t{5})) {
    case 0: {  // flip 1..8 random bits
      const std::uint64_t flips = 1 + rng.uniform_int(std::uint64_t{8});
      for (std::uint64_t i = 0; i < flips; ++i) {
        const std::uint64_t bit = rng.uniform_int(out.size() * 8);
        out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
    }
    case 1:  // truncate to a strictly shorter prefix (possibly empty)
      out.resize(rng.uniform_int(out.size()));
      break;
    case 2: {  // append trailing garbage
      const std::uint64_t extra = 1 + rng.uniform_int(std::uint64_t{64});
      for (std::uint64_t i = 0; i < extra; ++i) {
        out.push_back(
            static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{256})));
      }
      break;
    }
    case 3: {  // overwrite a random 8-byte window (length fields, magic)
      const std::uint64_t at =
          rng.uniform_int(std::uint64_t{out.size()});
      for (std::uint64_t i = at; i < out.size() && i < at + 8; ++i) {
        out[i] = static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{256}));
      }
      break;
    }
    default: {  // random cut-and-shift splice: drop a middle chunk
      const std::uint64_t begin = rng.uniform_int(out.size());
      const std::uint64_t len =
          1 + rng.uniform_int(std::uint64_t{out.size() - begin});
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(begin),
                out.begin() + static_cast<std::ptrdiff_t>(begin + len));
      break;
    }
  }
  return out;
}

class SerializeFuzzTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kSeeds = 4000;

  static WireBuffer valid_broadcast() {
    ModelBroadcast b;
    b.round = 3;
    b.config = RoundConfig{.mu = 0.5,
                           .batch_size = 10,
                           .learning_rate = 0.05,
                           .clip_norm = 1.0,
                           .measure_gamma = true};
    b.budget = DeviceBudget{.device = 4,
                            .straggler = true,
                            .epochs = 2,
                            .iterations = 17};
    static const Vector params = [] {
      Vector v(37);
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = 0.25 * static_cast<double>(i) - 3.0;
      }
      return v;
    }();
    b.parameters = params;
    b.correction = std::span<const double>(params).subspan(0, 5);
    return encode_broadcast(b);
  }

  static WireBuffer valid_update() {
    ClientUpdate u;
    u.round = 3;
    u.result.device = 4;
    u.result.num_samples = 123;
    u.result.straggler = true;
    u.result.iterations = 17;
    u.result.gamma = 0.125;
    u.result.gamma_measured = true;
    u.result.solve_seconds = 0.001;
    u.result.update = Vector(37);
    for (std::size_t i = 0; i < u.result.update.size(); ++i) {
      u.result.update[i] = -1.5 + 0.5 * static_cast<double>(i);
    }
    return encode_update(u);
  }

  static WireBuffer valid_partial() {
    PartialSumUpdate p;
    p.round = 3;
    p.shard = 2;
    p.partial =
        PartialAggregate(SamplingScheme::kUniformThenWeightedAverage, 9);
    static const Vector update = [] {
      Vector v(9);
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = 0.75 - 0.3 * static_cast<double>(i);
      }
      return v;
    }();
    p.partial.accumulate({4, &update, 123.0});
    p.partial.accumulate({5, &update, 7.0});
    return encode_partial_sum(p);
  }

  static WireBuffer valid_checkpoint() {
    CheckpointState state;
    state.fingerprint = 0xfeedfacecafebeefull;
    state.seed = 7;
    state.next_round = 41;
    state.mu = 0.5;
    state.has_adaptive = true;
    state.adaptive_mu = 0.25;
    state.adaptive_last_loss = 1.5;
    state.adaptive_has_last = true;
    state.adaptive_consecutive_decreases = 2;
    state.parameters = Vector(23);
    for (std::size_t i = 0; i < state.parameters.size(); ++i) {
      state.parameters[i] = 0.5 * static_cast<double>(i) - 4.0;
    }
    state.population = 30;
    state.churn_arrivals = 11;
    state.churn_departures = 9;
    state.active = std::vector<std::uint8_t>(4, 0xB7);
    RoundMetrics m;
    m.round = 40;
    m.train_loss = 0.75;
    m.train_accuracy = 0.5;
    m.test_accuracy = 0.625;
    m.mu = 0.5;
    m.contributors = 8;
    m.stragglers = 3;
    state.rounds = {RoundMetrics{.round = 39, .mu = 0.5}, m};
    return encode_checkpoint_state(state);
  }
};

TEST_F(SerializeFuzzTest, MutatedBroadcastsDecodeOrRejectCleanly) {
  const WireBuffer wire = valid_broadcast();
  std::size_t rejected = 0;
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed, {static_cast<std::uint64_t>(StreamKind::kTest), 1});
    const WireBuffer damaged = mutate(wire, rng);
    const auto outcome = run_decoder(
        [](std::span<const std::uint8_t> b) { return decode_broadcast(b); },
        damaged);
    if (outcome == DecodeOutcome::kRejected) ++rejected;
  }
  // Structural mutations (truncation, splices, magic damage) dominate;
  // most of the corpus must be rejected, and none may escape as another
  // exception type (which would have failed the decode call above).
  EXPECT_GT(rejected, kSeeds / 2);
}

TEST_F(SerializeFuzzTest, MutatedUpdatesDecodeOrRejectCleanly) {
  const WireBuffer wire = valid_update();
  std::size_t rejected = 0;
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed, {static_cast<std::uint64_t>(StreamKind::kTest), 2});
    const WireBuffer damaged = mutate(wire, rng);
    const auto outcome = run_decoder(
        [](std::span<const std::uint8_t> b) { return decode_update(b); },
        damaged);
    if (outcome == DecodeOutcome::kRejected) ++rejected;
  }
  EXPECT_GT(rejected, kSeeds / 2);
}

TEST_F(SerializeFuzzTest, MutatedPartialSumsDecodeOrRejectCleanly) {
  const WireBuffer wire = valid_partial();
  std::size_t rejected = 0;
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed, {static_cast<std::uint64_t>(StreamKind::kTest), 3});
    const WireBuffer damaged = mutate(wire, rng);
    const auto outcome = run_decoder(
        [](std::span<const std::uint8_t> b) { return decode_partial_sum(b); },
        damaged);
    if (outcome == DecodeOutcome::kRejected) ++rejected;
  }
  EXPECT_GT(rejected, kSeeds / 2);
}

TEST_F(SerializeFuzzTest, MutatedCheckpointsAreAlwaysRejected) {
  // Unlike the channel frames, the checkpoint trailer checksums the
  // whole frame, so NO byte-changing mutation may survive: a mutation
  // either leaves the buffer bit-identical or the decode throws.
  const WireBuffer wire = valid_checkpoint();
  std::size_t unchanged = 0;
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed, {static_cast<std::uint64_t>(StreamKind::kTest), 4});
    const WireBuffer damaged = mutate(wire, rng);
    if (damaged == wire) {
      ++unchanged;  // e.g. an 8-byte window overwritten with itself
      continue;
    }
    EXPECT_THROW((void)decode_checkpoint_state(
                     std::span<const std::uint8_t>(damaged)),
                 std::runtime_error)
        << "mutation seed " << seed << " survived the checksum";
  }
  EXPECT_LT(unchanged, kSeeds / 10);
}

TEST_F(SerializeFuzzTest, CheckpointChecksumTrailerCatchesTargetedFlips) {
  // Flip exactly one bit in the trailer itself and in the first payload
  // byte after the header — the two cheapest-to-miss spots.
  const WireBuffer wire = valid_checkpoint();
  for (const std::size_t byte :
       {wire.size() - 1, wire.size() - 8, std::size_t{12}, std::size_t{4}}) {
    for (int bit = 0; bit < 8; ++bit) {
      WireBuffer damaged = wire;
      damaged[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_THROW((void)decode_checkpoint_state(
                       std::span<const std::uint8_t>(damaged)),
                   std::runtime_error)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST_F(SerializeFuzzTest, CheckpointTruncationsAreAllRejected) {
  const WireBuffer wire = valid_checkpoint();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    WireBuffer prefix(wire.begin(),
                      wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)decode_checkpoint_state(
                     std::span<const std::uint8_t>(prefix)),
                 std::runtime_error)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST_F(SerializeFuzzTest, DegenerateBuffersAreRejected) {
  for (const WireBuffer& buffer :
       {WireBuffer{}, WireBuffer{0x00}, WireBuffer{'F', 'P', 'B', '1'},
        WireBuffer{'F', 'P', 'U', '1'}, WireBuffer{'F', 'P', 'S', '1'},
        WireBuffer{'F', 'P', 'C', '1'}, WireBuffer(3, 0xFF),
        WireBuffer(11, 0xAB)}) {
    EXPECT_THROW((void)decode_broadcast(buffer), std::runtime_error);
    EXPECT_THROW((void)decode_update(buffer), std::runtime_error);
    EXPECT_THROW((void)decode_partial_sum(buffer), std::runtime_error);
    EXPECT_THROW((void)decode_checkpoint_state(buffer), std::runtime_error);
  }
}

TEST_F(SerializeFuzzTest, IntactBuffersStillRoundTrip) {
  // The fuzz corpus is anchored on these encodings; make sure they are
  // actually valid, so a rejection above means the mutation was caught.
  const OwnedBroadcast b =
      decode_broadcast(std::span<const std::uint8_t>(valid_broadcast()));
  EXPECT_EQ(b.round, 3u);
  EXPECT_EQ(b.parameters.size(), 37u);
  EXPECT_EQ(b.correction.size(), 5u);
  const ClientUpdate u =
      decode_update(std::span<const std::uint8_t>(valid_update()));
  EXPECT_EQ(u.result.device, 4u);
  EXPECT_EQ(u.result.update.size(), 37u);
  const PartialSumUpdate p =
      decode_partial_sum(std::span<const std::uint8_t>(valid_partial()));
  EXPECT_EQ(p.shard, 2u);
  EXPECT_EQ(p.partial.dim(), 9u);
  EXPECT_EQ(p.partial.contributors(), 2u);
  const CheckpointState s =
      decode_checkpoint_state(std::span<const std::uint8_t>(valid_checkpoint()));
  EXPECT_EQ(s.next_round, 41u);
  EXPECT_EQ(s.parameters.size(), 23u);
  EXPECT_EQ(s.rounds.size(), 2u);
}

}  // namespace
}  // namespace fed
