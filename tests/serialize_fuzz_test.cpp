// Corruption fuzz for the FPB1/FPU1/FPS1 wire decoders: feed thousands
// of randomly mutated (bit-flipped, truncated, extended, spliced) valid
// encodings through decode_broadcast/decode_update/decode_partial_sum
// and require that every outcome is either a successful decode or a
// clean std::runtime_error — never any other exception type, crash, or
// sanitizer finding. The ASan/UBSan and TSan CI jobs run this test, so
// out-of-bounds reads in the decoders' length handling fail loudly.

#include <gtest/gtest.h>

#include <span>
#include <stdexcept>

#include "support/rng.h"
#include "support/serialize.h"

namespace fed {
namespace {

// What happened when a mutated buffer hit a decoder.
enum class DecodeOutcome { kAccepted, kRejected };

template <typename Decoder>
DecodeOutcome run_decoder(const Decoder& decode, const WireBuffer& buffer) {
  try {
    decode(std::span<const std::uint8_t>(buffer));
    return DecodeOutcome::kAccepted;
  } catch (const std::runtime_error&) {
    return DecodeOutcome::kRejected;  // the only acceptable failure mode
  }
  // Any other exception type propagates and fails the test.
}

// One deterministic mutation of `wire`, chosen and parameterized by `rng`.
WireBuffer mutate(const WireBuffer& wire, Rng& rng) {
  WireBuffer out = wire;
  switch (rng.uniform_int(std::uint64_t{5})) {
    case 0: {  // flip 1..8 random bits
      const std::uint64_t flips = 1 + rng.uniform_int(std::uint64_t{8});
      for (std::uint64_t i = 0; i < flips; ++i) {
        const std::uint64_t bit = rng.uniform_int(out.size() * 8);
        out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
    }
    case 1:  // truncate to a strictly shorter prefix (possibly empty)
      out.resize(rng.uniform_int(out.size()));
      break;
    case 2: {  // append trailing garbage
      const std::uint64_t extra = 1 + rng.uniform_int(std::uint64_t{64});
      for (std::uint64_t i = 0; i < extra; ++i) {
        out.push_back(
            static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{256})));
      }
      break;
    }
    case 3: {  // overwrite a random 8-byte window (length fields, magic)
      const std::uint64_t at =
          rng.uniform_int(std::uint64_t{out.size()});
      for (std::uint64_t i = at; i < out.size() && i < at + 8; ++i) {
        out[i] = static_cast<std::uint8_t>(rng.uniform_int(std::uint64_t{256}));
      }
      break;
    }
    default: {  // random cut-and-shift splice: drop a middle chunk
      const std::uint64_t begin = rng.uniform_int(out.size());
      const std::uint64_t len =
          1 + rng.uniform_int(std::uint64_t{out.size() - begin});
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(begin),
                out.begin() + static_cast<std::ptrdiff_t>(begin + len));
      break;
    }
  }
  return out;
}

class SerializeFuzzTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kSeeds = 4000;

  static WireBuffer valid_broadcast() {
    ModelBroadcast b;
    b.round = 3;
    b.config = RoundConfig{.mu = 0.5,
                           .batch_size = 10,
                           .learning_rate = 0.05,
                           .clip_norm = 1.0,
                           .measure_gamma = true};
    b.budget = DeviceBudget{.device = 4,
                            .straggler = true,
                            .epochs = 2,
                            .iterations = 17};
    static const Vector params = [] {
      Vector v(37);
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = 0.25 * static_cast<double>(i) - 3.0;
      }
      return v;
    }();
    b.parameters = params;
    b.correction = std::span<const double>(params).subspan(0, 5);
    return encode_broadcast(b);
  }

  static WireBuffer valid_update() {
    ClientUpdate u;
    u.round = 3;
    u.result.device = 4;
    u.result.num_samples = 123;
    u.result.straggler = true;
    u.result.iterations = 17;
    u.result.gamma = 0.125;
    u.result.gamma_measured = true;
    u.result.solve_seconds = 0.001;
    u.result.update = Vector(37);
    for (std::size_t i = 0; i < u.result.update.size(); ++i) {
      u.result.update[i] = -1.5 + 0.5 * static_cast<double>(i);
    }
    return encode_update(u);
  }

  static WireBuffer valid_partial() {
    PartialSumUpdate p;
    p.round = 3;
    p.shard = 2;
    p.partial =
        PartialAggregate(SamplingScheme::kUniformThenWeightedAverage, 9);
    static const Vector update = [] {
      Vector v(9);
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = 0.75 - 0.3 * static_cast<double>(i);
      }
      return v;
    }();
    p.partial.accumulate({4, &update, 123.0});
    p.partial.accumulate({5, &update, 7.0});
    return encode_partial_sum(p);
  }
};

TEST_F(SerializeFuzzTest, MutatedBroadcastsDecodeOrRejectCleanly) {
  const WireBuffer wire = valid_broadcast();
  std::size_t rejected = 0;
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed, {static_cast<std::uint64_t>(StreamKind::kTest), 1});
    const WireBuffer damaged = mutate(wire, rng);
    const auto outcome = run_decoder(
        [](std::span<const std::uint8_t> b) { return decode_broadcast(b); },
        damaged);
    if (outcome == DecodeOutcome::kRejected) ++rejected;
  }
  // Structural mutations (truncation, splices, magic damage) dominate;
  // most of the corpus must be rejected, and none may escape as another
  // exception type (which would have failed the decode call above).
  EXPECT_GT(rejected, kSeeds / 2);
}

TEST_F(SerializeFuzzTest, MutatedUpdatesDecodeOrRejectCleanly) {
  const WireBuffer wire = valid_update();
  std::size_t rejected = 0;
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed, {static_cast<std::uint64_t>(StreamKind::kTest), 2});
    const WireBuffer damaged = mutate(wire, rng);
    const auto outcome = run_decoder(
        [](std::span<const std::uint8_t> b) { return decode_update(b); },
        damaged);
    if (outcome == DecodeOutcome::kRejected) ++rejected;
  }
  EXPECT_GT(rejected, kSeeds / 2);
}

TEST_F(SerializeFuzzTest, MutatedPartialSumsDecodeOrRejectCleanly) {
  const WireBuffer wire = valid_partial();
  std::size_t rejected = 0;
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed, {static_cast<std::uint64_t>(StreamKind::kTest), 3});
    const WireBuffer damaged = mutate(wire, rng);
    const auto outcome = run_decoder(
        [](std::span<const std::uint8_t> b) { return decode_partial_sum(b); },
        damaged);
    if (outcome == DecodeOutcome::kRejected) ++rejected;
  }
  EXPECT_GT(rejected, kSeeds / 2);
}

TEST_F(SerializeFuzzTest, DegenerateBuffersAreRejected) {
  for (const WireBuffer& buffer :
       {WireBuffer{}, WireBuffer{0x00}, WireBuffer{'F', 'P', 'B', '1'},
        WireBuffer{'F', 'P', 'U', '1'}, WireBuffer{'F', 'P', 'S', '1'},
        WireBuffer(3, 0xFF), WireBuffer(11, 0xAB)}) {
    EXPECT_THROW((void)decode_broadcast(buffer), std::runtime_error);
    EXPECT_THROW((void)decode_update(buffer), std::runtime_error);
    EXPECT_THROW((void)decode_partial_sum(buffer), std::runtime_error);
  }
}

TEST_F(SerializeFuzzTest, IntactBuffersStillRoundTrip) {
  // The fuzz corpus is anchored on these encodings; make sure they are
  // actually valid, so a rejection above means the mutation was caught.
  const OwnedBroadcast b =
      decode_broadcast(std::span<const std::uint8_t>(valid_broadcast()));
  EXPECT_EQ(b.round, 3u);
  EXPECT_EQ(b.parameters.size(), 37u);
  EXPECT_EQ(b.correction.size(), 5u);
  const ClientUpdate u =
      decode_update(std::span<const std::uint8_t>(valid_update()));
  EXPECT_EQ(u.result.device, 4u);
  EXPECT_EQ(u.result.update.size(), 37u);
  const PartialSumUpdate p =
      decode_partial_sum(std::span<const std::uint8_t>(valid_partial()));
  EXPECT_EQ(p.shard, 2u);
  EXPECT_EQ(p.partial.dim(), 9u);
  EXPECT_EQ(p.partial.contributors(), 2u);
}

}  // namespace
}  // namespace fed
