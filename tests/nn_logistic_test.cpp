#include "nn/logistic.h"

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace fed {
namespace {

TEST(LogisticRegressionModel, ParameterCount) {
  LogisticRegression model(60, 10);
  EXPECT_EQ(model.parameter_count(), 60u * 10u + 10u);
}

TEST(LogisticRegressionModel, ZeroInitGivesUniformPredictions) {
  LogisticRegression model(4, 3);
  Vector w(model.parameter_count());
  Rng rng = make_stream(1, StreamKind::kTest);
  model.init_parameters(w, rng);
  Rng gen = make_stream(2, StreamKind::kTest);
  Dataset data = testing::make_random_dataset(5, 4, 3, gen);
  EXPECT_NEAR(model.dataset_loss(w, data), std::log(3.0), 1e-12);
}

class LogisticGradCheck
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(LogisticGradCheck, AnalyticMatchesNumeric) {
  const auto [dim, classes, batch_n] = GetParam();
  LogisticRegression model(dim, classes);
  Rng gen = make_stream(3, StreamKind::kTest, dim, classes);
  Dataset data = testing::make_random_dataset(batch_n, dim, classes, gen);
  Vector w(model.parameter_count());
  for (auto& v : w) v = gen.normal(0.0, 0.5);
  const auto batch = full_batch(batch_n);
  const auto result = check_gradients(model, w, data, batch);
  EXPECT_TRUE(result.passed(1e-6))
      << "worst index " << result.worst_index << ": analytic "
      << result.analytic_at_worst << " vs numeric "
      << result.numeric_at_worst;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LogisticGradCheck,
    ::testing::Values(std::make_tuple(3, 2, 1), std::make_tuple(5, 4, 7),
                      std::make_tuple(10, 3, 16), std::make_tuple(1, 2, 4)));

TEST(LogisticRegressionModel, GradientDescentReducesLoss) {
  LogisticRegression model(6, 3);
  Rng gen = make_stream(4, StreamKind::kTest);
  Dataset data = testing::make_random_dataset(40, 6, 3, gen);
  Vector w(model.parameter_count(), 0.0), grad(w.size());
  const double initial = model.dataset_loss(w, data);
  for (int step = 0; step < 50; ++step) {
    model.dataset_loss_and_grad(w, data, grad);
    axpy(-0.5, grad, w);
  }
  EXPECT_LT(model.dataset_loss(w, data), initial - 0.05);
}

TEST(LogisticRegressionModel, PredictArgmaxOfLogits) {
  LogisticRegression model(2, 2);
  // W = [[1,0],[0,1]], b = 0: predicts argmax(x).
  Vector w{1.0, 0.0, 0.0, 1.0, 0.0, 0.0};
  Dataset data = testing::make_dense_dataset({{2.0, 1.0}, {0.0, 3.0}});
  data.labels = {0, 1};
  std::vector<std::int32_t> pred;
  const auto batch = full_batch(2);
  model.predict(w, data, batch, pred);
  EXPECT_EQ(pred[0], 0);
  EXPECT_EQ(pred[1], 1);
  EXPECT_DOUBLE_EQ(model.accuracy(w, data), 1.0);
}

TEST(LogisticRegressionModel, LossAndLossGradAgree) {
  LogisticRegression model(5, 4);
  Rng gen = make_stream(5, StreamKind::kTest);
  Dataset data = testing::make_random_dataset(9, 5, 4, gen);
  Vector w(model.parameter_count());
  for (auto& v : w) v = gen.normal();
  Vector grad(w.size());
  const auto batch = full_batch(9);
  EXPECT_NEAR(model.loss(w, data, batch),
              model.loss_and_grad(w, data, batch, grad), 1e-12);
}

TEST(LogisticRegressionModel, RejectsBadShapes) {
  EXPECT_THROW(LogisticRegression(0, 3), std::invalid_argument);
  EXPECT_THROW(LogisticRegression(5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fed
