#include "support/serialize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace fed {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::filesystem::remove_all("/tmp/fedprox_serialize_test");
  }
  const std::string dir = "/tmp/fedprox_serialize_test";
};

TEST_F(SerializeTest, CheckpointRoundTripsExactly) {
  Vector w{1.5, -2.25, 0.0, 1e-300, 1e300, 3.141592653589793};
  const std::string path = dir + "/model.bin";
  save_checkpoint(path, w);
  const Vector loaded = load_checkpoint(path);
  EXPECT_EQ(w, loaded);
}

TEST_F(SerializeTest, EmptyCheckpointSupported) {
  const std::string path = dir + "/empty.bin";
  save_checkpoint(path, {});
  EXPECT_TRUE(load_checkpoint(path).empty());
}

TEST_F(SerializeTest, DimensionValidation) {
  const std::string path = dir + "/model.bin";
  save_checkpoint(path, Vector{1.0, 2.0});
  EXPECT_NO_THROW(load_checkpoint(path, 2));
  EXPECT_THROW(load_checkpoint(path, 3), std::runtime_error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint(dir + "/nope.bin"), std::runtime_error);
}

TEST_F(SerializeTest, BadMagicThrows) {
  const std::string path = dir + "/bad.bin";
  std::filesystem::create_directories(dir);
  std::ofstream(path) << "not a checkpoint at all";
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST_F(SerializeTest, TruncatedPayloadThrows) {
  const std::string path = dir + "/model.bin";
  save_checkpoint(path, Vector{1.0, 2.0, 3.0});
  // Chop the last 8 bytes off.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 8);
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST_F(SerializeTest, TrailingBytesThrow) {
  const std::string path = dir + "/model.bin";
  save_checkpoint(path, Vector{1.0});
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "junk";
  out.close();
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST_F(SerializeTest, HistoryRoundTrip) {
  TrainHistory h;
  for (std::size_t i = 0; i < 4; ++i) {
    RoundMetrics m;
    m.round = i;
    if (i % 2 == 0) {  // evaluated rounds carry the three eval metrics
      m.train_loss = 1.0 / (i + 1);
      m.train_accuracy = 0.25 * i;
      m.test_accuracy = 0.2 * i;
    }
    if (i == 2) {  // dissimilarity measured this round
      m.grad_variance = 10.0 * i;
      m.dissimilarity_b = 1.0 + 0.1 * i;
    }
    m.mu = 0.1 * i;
    if (i == 1) m.mean_gamma = 0.5;
    m.contributors = i;
    m.stragglers = 4 - i;
    h.rounds.push_back(m);
  }
  const std::string path = dir + "/history.csv";
  save_history(path, h);
  const TrainHistory loaded = load_history(path);
  ASSERT_EQ(loaded.rounds.size(), h.rounds.size());
  for (std::size_t i = 0; i < h.rounds.size(); ++i) {
    EXPECT_EQ(loaded.rounds[i].round, h.rounds[i].round);
    EXPECT_EQ(loaded.rounds[i].evaluated(), h.rounds[i].evaluated());
    EXPECT_EQ(loaded.rounds[i].train_loss, h.rounds[i].train_loss);
    EXPECT_EQ(loaded.rounds[i].train_accuracy, h.rounds[i].train_accuracy);
    EXPECT_EQ(loaded.rounds[i].test_accuracy, h.rounds[i].test_accuracy);
    EXPECT_EQ(loaded.rounds[i].grad_variance, h.rounds[i].grad_variance);
    EXPECT_EQ(loaded.rounds[i].dissimilarity_b, h.rounds[i].dissimilarity_b);
    EXPECT_DOUBLE_EQ(loaded.rounds[i].mu, h.rounds[i].mu);
    EXPECT_EQ(loaded.rounds[i].mean_gamma, h.rounds[i].mean_gamma);
    EXPECT_EQ(loaded.rounds[i].contributors, h.rounds[i].contributors);
    EXPECT_EQ(loaded.rounds[i].stragglers, h.rounds[i].stragglers);
  }
}

TEST_F(SerializeTest, LoadHistoryRejectsMalformedRow) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/bad.csv";
  std::ofstream(path) << "header\n1,2,3\n";
  EXPECT_THROW(load_history(path), std::runtime_error);
}

// --- Federation payload codecs -------------------------------------------

// A broadcast with every field off its default, including doubles that
// only survive a bit-exact round trip.
OwnedBroadcast sample_broadcast() {
  OwnedBroadcast b;
  b.round = 17;
  b.config = RoundConfig{.mu = 0.1 + 0.2,  // not representable exactly
                         .batch_size = 32,
                         .learning_rate = 1e-3,
                         .clip_norm = 5.5,
                         .measure_gamma = true};
  b.budget = DeviceBudget{
      .device = 6, .straggler = true, .epochs = 3, .iterations = 41};
  b.parameters = Vector{1.5, -2.25, 0.0, 1e-300, 1e300, 3.141592653589793};
  b.correction = Vector{-0.5, 0.125};
  return b;
}

ClientUpdate sample_update() {
  ClientUpdate u;
  u.round = 17;
  u.result.device = 6;
  u.result.update = Vector{0.75, -1e-20, 42.0};
  u.result.num_samples = 128;
  u.result.straggler = true;
  u.result.iterations = 41;
  u.result.gamma = 0.01;
  u.result.gamma_measured = true;
  u.result.solve_seconds = 0.0025;
  return u;
}

TEST_F(SerializeTest, BroadcastRoundTripsExactly) {
  const OwnedBroadcast b = sample_broadcast();
  const WireBuffer wire = encode_broadcast(b.view());
  EXPECT_EQ(wire.size(), broadcast_wire_size(b.view()));
  const OwnedBroadcast back = decode_broadcast(wire);
  EXPECT_EQ(back.round, b.round);
  EXPECT_EQ(back.config.mu, b.config.mu);
  EXPECT_EQ(back.config.batch_size, b.config.batch_size);
  EXPECT_EQ(back.config.learning_rate, b.config.learning_rate);
  EXPECT_EQ(back.config.clip_norm, b.config.clip_norm);
  EXPECT_EQ(back.config.measure_gamma, b.config.measure_gamma);
  EXPECT_EQ(back.budget.device, b.budget.device);
  EXPECT_EQ(back.budget.straggler, b.budget.straggler);
  EXPECT_EQ(back.budget.epochs, b.budget.epochs);
  EXPECT_EQ(back.budget.iterations, b.budget.iterations);
  EXPECT_EQ(back.parameters, b.parameters);  // bit-exact doubles
  EXPECT_EQ(back.correction, b.correction);
}

TEST_F(SerializeTest, UpdateRoundTripsExactly) {
  const ClientUpdate u = sample_update();
  const WireBuffer wire = encode_update(u);
  EXPECT_EQ(wire.size(), update_wire_size(u));
  const ClientUpdate back = decode_update(wire);
  EXPECT_EQ(back.round, u.round);
  EXPECT_EQ(back.result.device, u.result.device);
  EXPECT_EQ(back.result.update, u.result.update);
  EXPECT_EQ(back.result.num_samples, u.result.num_samples);
  EXPECT_EQ(back.result.straggler, u.result.straggler);
  EXPECT_EQ(back.result.iterations, u.result.iterations);
  EXPECT_EQ(back.result.gamma, u.result.gamma);
  EXPECT_EQ(back.result.gamma_measured, u.result.gamma_measured);
  EXPECT_EQ(back.result.solve_seconds, u.result.solve_seconds);
}

TEST_F(SerializeTest, WirePayloadMatchesOldAnalyticalEstimate) {
  // Regression for the byte-accounting switch: for the uncompressed
  // float64 wire format, the payload past the fixed envelope is exactly
  // the d * sizeof(double) proxy the traces used to estimate.
  for (const std::size_t d : {0u, 1u, 61u, 7850u}) {
    EXPECT_EQ(broadcast_wire_size(d, 0) - kBroadcastEnvelopeBytes,
              d * sizeof(double));
    EXPECT_EQ(update_wire_size(d) - kUpdateEnvelopeBytes,
              d * sizeof(double));
  }
  // A FedDane correction rides as a second payload of the same shape.
  EXPECT_EQ(broadcast_wire_size(10, 10) - kBroadcastEnvelopeBytes,
            2 * 10 * sizeof(double));
}

// A shard partial with cancellation-heavy state: only an exact register
// round trip reproduces the finalized model bit-for-bit.
PartialSumUpdate sample_partial() {
  PartialSumUpdate p;
  p.round = 17;
  p.shard = 3;
  p.partial = PartialAggregate(SamplingScheme::kUniformThenWeightedAverage, 4);
  const Vector a{1e16, -2.25, 1e-300, 3.141592653589793};
  const Vector b{1.0, 2.25, -1e-300, -3.141592653589793};
  p.partial.accumulate({0, &a, 30.0});
  p.partial.accumulate({1, &b, 10.0});
  return p;
}

TEST_F(SerializeTest, PartialSumRoundTripsExactly) {
  const PartialSumUpdate p = sample_partial();
  const WireBuffer wire = encode_partial_sum(p);
  EXPECT_EQ(wire.size(), partial_sum_wire_size(p));
  const PartialSumUpdate back = decode_partial_sum(wire);
  EXPECT_EQ(back.round, p.round);
  EXPECT_EQ(back.shard, p.shard);
  EXPECT_EQ(back.partial.scheme(), p.partial.scheme());
  EXPECT_EQ(back.partial.dim(), p.partial.dim());
  EXPECT_EQ(back.partial.contributors(), p.partial.contributors());
  // The registers round-trip verbatim...
  for (std::size_t i = 0; i < p.partial.dim(); ++i) {
    const auto sent = p.partial.coordinate_sums()[i].limbs();
    const auto got = back.partial.coordinate_sums()[i].limbs();
    EXPECT_TRUE(std::equal(sent.begin(), sent.end(), got.begin())) << i;
  }
  // ...so the finalized model is bit-identical.
  Vector expected(p.partial.dim()), decoded(p.partial.dim());
  ASSERT_TRUE(p.partial.finalize(expected));
  ASSERT_TRUE(back.partial.finalize(decoded));
  EXPECT_EQ(expected, decoded);
}

TEST_F(SerializeTest, TraceContextRoundTripsOnAllEnvelopes) {
  // Every envelope carries the 16-byte trace context right after the
  // round, whether or not profiling is on; ids survive all three codecs.
  OwnedBroadcast b = sample_broadcast();
  b.trace = {0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(decode_broadcast(encode_broadcast(b.view())).trace, b.trace);

  ClientUpdate u = sample_update();
  u.trace = {0xdeadbeefdeadbeefULL, 0x1ULL};
  EXPECT_EQ(decode_update(encode_update(u)).trace, u.trace);

  PartialSumUpdate p = sample_partial();
  p.trace = {0x42ULL, 0xffffffffffffffffULL};
  EXPECT_EQ(decode_partial_sum(encode_partial_sum(p)).trace, p.trace);

  // The default (untraced) context is all zeros and also round-trips.
  const PartialSumUpdate untraced = sample_partial();
  EXPECT_FALSE(untraced.trace.traced());
  EXPECT_FALSE(decode_partial_sum(encode_partial_sum(untraced)).trace.traced());
}

TEST_F(SerializeTest, EmptyPartialSumRoundTrips) {
  PartialSumUpdate p;
  p.partial = PartialAggregate(SamplingScheme::kWeightedThenSimpleAverage, 2);
  const PartialSumUpdate back = decode_partial_sum(encode_partial_sum(p));
  EXPECT_EQ(back.partial.scheme(), p.partial.scheme());
  EXPECT_EQ(back.partial.contributors(), 0u);
  Vector w{5.0, 6.0};
  EXPECT_FALSE(back.partial.finalize(w));  // still degraded after the wire
}

TEST_F(SerializeTest, DecodePartialSumRejectsCorruptBuffers) {
  const WireBuffer wire = encode_partial_sum(sample_partial());

  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{19}, wire.size() / 2,
        wire.size() - 1}) {
    WireBuffer cut(wire.begin(), wire.begin() + keep);
    EXPECT_THROW(decode_partial_sum(cut), std::runtime_error) << keep;
  }

  WireBuffer bad_magic = wire;
  bad_magic[2] = 'Q';
  EXPECT_THROW(decode_partial_sum(bad_magic), std::runtime_error);

  WireBuffer trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(decode_partial_sum(trailing), std::runtime_error);

  WireBuffer bad_scheme = wire;
  bad_scheme[4 + 8 + 16 + 8] = 9;  // scheme byte: not 0/1
  EXPECT_THROW(decode_partial_sum(bad_scheme), std::runtime_error);
}

TEST_F(SerializeTest, DecodeBroadcastRejectsCorruptBuffers) {
  const WireBuffer wire = encode_broadcast(sample_broadcast().view());

  // Truncation: every proper prefix must throw, never read past the end.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{11}, wire.size() / 2,
        wire.size() - 1}) {
    WireBuffer cut(wire.begin(), wire.begin() + keep);
    EXPECT_THROW(decode_broadcast(cut), std::runtime_error) << keep;
  }

  WireBuffer bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_broadcast(bad_magic), std::runtime_error);

  WireBuffer trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(decode_broadcast(trailing), std::runtime_error);

  WireBuffer bad_flag = wire;
  bad_flag[4 + 8 + 16 + 8 + 8 + 8 + 8] = 7;  // measure_gamma byte: not 0/1
  EXPECT_THROW(decode_broadcast(bad_flag), std::runtime_error);
}

TEST_F(SerializeTest, DecodeUpdateRejectsCorruptBuffers) {
  const WireBuffer wire = encode_update(sample_update());

  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, wire.size() / 2, wire.size() - 1}) {
    WireBuffer cut(wire.begin(), wire.begin() + keep);
    EXPECT_THROW(decode_update(cut), std::runtime_error) << keep;
  }

  WireBuffer bad_magic = wire;
  bad_magic[3] = '9';
  EXPECT_THROW(decode_update(bad_magic), std::runtime_error);

  WireBuffer trailing = wire;
  trailing.push_back(1);
  EXPECT_THROW(decode_update(trailing), std::runtime_error);

  WireBuffer bad_flag = wire;
  bad_flag[4 + 8 + 16 + 8 + 8] = 0xFF;  // straggler byte: not 0/1
  EXPECT_THROW(decode_update(bad_flag), std::runtime_error);
}

}  // namespace
}  // namespace fed
