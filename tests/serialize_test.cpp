#include "support/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace fed {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::filesystem::remove_all("/tmp/fedprox_serialize_test");
  }
  const std::string dir = "/tmp/fedprox_serialize_test";
};

TEST_F(SerializeTest, CheckpointRoundTripsExactly) {
  Vector w{1.5, -2.25, 0.0, 1e-300, 1e300, 3.141592653589793};
  const std::string path = dir + "/model.bin";
  save_checkpoint(path, w);
  const Vector loaded = load_checkpoint(path);
  EXPECT_EQ(w, loaded);
}

TEST_F(SerializeTest, EmptyCheckpointSupported) {
  const std::string path = dir + "/empty.bin";
  save_checkpoint(path, {});
  EXPECT_TRUE(load_checkpoint(path).empty());
}

TEST_F(SerializeTest, DimensionValidation) {
  const std::string path = dir + "/model.bin";
  save_checkpoint(path, Vector{1.0, 2.0});
  EXPECT_NO_THROW(load_checkpoint(path, 2));
  EXPECT_THROW(load_checkpoint(path, 3), std::runtime_error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint(dir + "/nope.bin"), std::runtime_error);
}

TEST_F(SerializeTest, BadMagicThrows) {
  const std::string path = dir + "/bad.bin";
  std::filesystem::create_directories(dir);
  std::ofstream(path) << "not a checkpoint at all";
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST_F(SerializeTest, TruncatedPayloadThrows) {
  const std::string path = dir + "/model.bin";
  save_checkpoint(path, Vector{1.0, 2.0, 3.0});
  // Chop the last 8 bytes off.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 8);
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST_F(SerializeTest, TrailingBytesThrow) {
  const std::string path = dir + "/model.bin";
  save_checkpoint(path, Vector{1.0});
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "junk";
  out.close();
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
}

TEST_F(SerializeTest, HistoryRoundTrip) {
  TrainHistory h;
  for (std::size_t i = 0; i < 4; ++i) {
    RoundMetrics m;
    m.round = i;
    if (i % 2 == 0) {  // evaluated rounds carry the three eval metrics
      m.train_loss = 1.0 / (i + 1);
      m.train_accuracy = 0.25 * i;
      m.test_accuracy = 0.2 * i;
    }
    if (i == 2) {  // dissimilarity measured this round
      m.grad_variance = 10.0 * i;
      m.dissimilarity_b = 1.0 + 0.1 * i;
    }
    m.mu = 0.1 * i;
    if (i == 1) m.mean_gamma = 0.5;
    m.contributors = i;
    m.stragglers = 4 - i;
    h.rounds.push_back(m);
  }
  const std::string path = dir + "/history.csv";
  save_history(path, h);
  const TrainHistory loaded = load_history(path);
  ASSERT_EQ(loaded.rounds.size(), h.rounds.size());
  for (std::size_t i = 0; i < h.rounds.size(); ++i) {
    EXPECT_EQ(loaded.rounds[i].round, h.rounds[i].round);
    EXPECT_EQ(loaded.rounds[i].evaluated(), h.rounds[i].evaluated());
    EXPECT_EQ(loaded.rounds[i].train_loss, h.rounds[i].train_loss);
    EXPECT_EQ(loaded.rounds[i].train_accuracy, h.rounds[i].train_accuracy);
    EXPECT_EQ(loaded.rounds[i].test_accuracy, h.rounds[i].test_accuracy);
    EXPECT_EQ(loaded.rounds[i].grad_variance, h.rounds[i].grad_variance);
    EXPECT_EQ(loaded.rounds[i].dissimilarity_b, h.rounds[i].dissimilarity_b);
    EXPECT_DOUBLE_EQ(loaded.rounds[i].mu, h.rounds[i].mu);
    EXPECT_EQ(loaded.rounds[i].mean_gamma, h.rounds[i].mean_gamma);
    EXPECT_EQ(loaded.rounds[i].contributors, h.rounds[i].contributors);
    EXPECT_EQ(loaded.rounds[i].stragglers, h.rounds[i].stragglers);
  }
}

TEST_F(SerializeTest, LoadHistoryRejectsMalformedRow) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/bad.csv";
  std::ofstream(path) << "header\n1,2,3\n";
  EXPECT_THROW(load_history(path), std::runtime_error);
}

}  // namespace
}  // namespace fed
