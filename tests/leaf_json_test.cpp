#include "data/leaf_json.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "data/sequence.h"
#include "data/synthetic.h"
#include "support/json.h"

namespace fed {
namespace {

class LeafJsonTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::filesystem::remove_all("/tmp/fedprox_leaf_test");
  }
  const std::string prefix = "/tmp/fedprox_leaf_test/data";
};

TEST_F(LeafJsonTest, DenseRoundTripIsExact) {
  SyntheticConfig c = synthetic_config(1.0, 1.0, 17);
  c.num_devices = 4;
  c.min_samples = 8;
  c.mean_log = 2.0;
  c.sigma_log = 0.3;
  const FederatedDataset original = make_synthetic(c);
  export_leaf(original, prefix);
  const FederatedDataset loaded = import_leaf(prefix);

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.num_classes, original.num_classes);
  EXPECT_EQ(loaded.input_dim, original.input_dim);
  ASSERT_EQ(loaded.num_clients(), original.num_clients());
  for (std::size_t k = 0; k < original.num_clients(); ++k) {
    EXPECT_EQ(loaded.clients[k].train.labels, original.clients[k].train.labels);
    EXPECT_EQ(loaded.clients[k].test.labels, original.clients[k].test.labels);
    ASSERT_EQ(loaded.clients[k].train.features.rows(),
              original.clients[k].train.features.rows());
    const auto& a = loaded.clients[k].train.features.storage();
    const auto& b = original.clients[k].train.features.storage();
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i], b[i]);
    }
  }
}

TEST_F(LeafJsonTest, SequenceRoundTripIsExact) {
  NextCharConfig c;
  c.num_devices = 3;
  c.vocab_size = 9;
  c.seq_len = 5;
  c.min_stream = 30;
  c.mean_log = 2.0;
  c.sigma_log = 0.2;
  c.seed = 17;
  const FederatedDataset original = make_next_char(c);
  export_leaf(original, prefix);
  const FederatedDataset loaded = import_leaf(prefix);

  EXPECT_EQ(loaded.vocab_size, original.vocab_size);
  ASSERT_EQ(loaded.num_clients(), original.num_clients());
  for (std::size_t k = 0; k < original.num_clients(); ++k) {
    EXPECT_EQ(loaded.clients[k].train.tokens, original.clients[k].train.tokens);
    EXPECT_EQ(loaded.clients[k].test.labels, original.clients[k].test.labels);
  }
}

TEST_F(LeafJsonTest, WritesLeafSchemaFields) {
  SyntheticConfig c = synthetic_iid_config(17);
  c.num_devices = 2;
  c.min_samples = 4;
  c.mean_log = 1.0;
  c.sigma_log = 0.1;
  export_leaf(make_synthetic(c), prefix);
  const JsonValue train = load_json_file(prefix + "_train.json");
  EXPECT_TRUE(train.contains("users"));
  EXPECT_TRUE(train.contains("num_samples"));
  EXPECT_TRUE(train.contains("user_data"));
  const auto& users = train.at("users").as_array();
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0].as_string(), "u0");
  // num_samples agrees with the per-user record length.
  const auto n0 =
      static_cast<std::size_t>(train.at("num_samples").as_array()[0].as_number());
  EXPECT_EQ(train.at("user_data").at("u0").at("y").as_array().size(), n0);
}

TEST_F(LeafJsonTest, ImportValidatesLabels) {
  SyntheticConfig c = synthetic_iid_config(17);
  c.num_devices = 2;
  c.min_samples = 4;
  c.mean_log = 1.0;
  c.sigma_log = 0.1;
  export_leaf(make_synthetic(c), prefix);
  // Corrupt a label beyond num_classes.
  JsonValue train = load_json_file(prefix + "_train.json");
  train.as_object()["user_data"].as_object()["u0"].as_object()["y"]
      .as_array()[0] = JsonValue(99.0);
  save_json_file(prefix + "_train.json", train);
  EXPECT_THROW(import_leaf(prefix), std::runtime_error);
}

TEST_F(LeafJsonTest, MissingMetadataThrows) {
  EXPECT_THROW(import_leaf("/tmp/fedprox_leaf_test/nothing"),
               std::runtime_error);
}

}  // namespace
}  // namespace fed
