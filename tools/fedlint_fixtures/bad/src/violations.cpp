// fedlint bad fixture: one seeded violation per rule (except
// float-accumulation, which lives in ../tensor/). The fedlint_bad ctest
// asserts fedlint exits non-zero on this tree and names each rule.

#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace fixture {

inline int nondeterministic_seed() {
  std::random_device rd;  // randomness
  return static_cast<int>(rd()) + rand();
}

inline long long wall_now() {
  return std::chrono::system_clock::now()  // wall-clock
      .time_since_epoch()
      .count();
}

inline std::unordered_map<int, int> unordered() {  // unordered-container
  return {};
}

inline int* leak() { return new int(7); }  // raw-new

}  // namespace fixture
