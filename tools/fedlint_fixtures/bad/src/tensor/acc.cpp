// fedlint bad fixture: float accumulation inside a tensor/ reduce path.

namespace fixture {

inline float reduce(const float* xs, int n) {  // float-accumulation
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += xs[i];
  return acc;
}

}  // namespace fixture
