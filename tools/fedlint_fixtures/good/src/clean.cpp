// fedlint good fixture: deterministic idioms only. The fedlint_good
// ctest asserts this tree lints clean with no allowlist.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace fixture {

// Counter-keyed randomness: the draw depends only on (seed, round,
// device), the way support/rng.h streams do.
inline std::uint64_t keyed_draw(std::uint64_t seed, std::uint64_t round,
                                std::uint64_t device) {
  std::uint64_t x = seed ^ (round * 0x9e3779b97f4a7c15ull) ^ device;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

// Ordered containers and owned allocation pass every rule.
struct Registry {
  std::map<int, double> ordered;
  std::unique_ptr<std::vector<double>> owned =
      std::make_unique<std::vector<double>>();
};

// Double accumulation is the reduce-path contract.
inline double reduce(const std::vector<double>& xs) {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc;
}

}  // namespace fixture
