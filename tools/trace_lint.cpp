// Validates the observability artifacts a run can produce:
//
//   trace_lint --jsonl run.jsonl         # JSONL round trace (obs/trace_sink)
//   trace_lint --chrome run.trace.json   # Chrome trace-event span profile
//   trace_lint --metrics metrics.prom    # Prometheus exposition (obs/
//                                        # exposition); cross-checked
//                                        # against --jsonl when both given
//   trace_lint --jsonl run.jsonl --checkpoint
//                                        # additionally audit the
//                                        # checkpoint/resume manifest
//                                        # embedded in the round trace
//
// JSONL checks: every line parses as a JSON object, the first line is a
// run header ({"run":{...}}), every later line carries a "round" or is a
// new segment header (a crashed-and-resumed run appends one header per
// segment; mid-file headers must carry "resumed": true and a
// "first_round", and the first round line after one must continue at
// first_round + 1), and the transport byte/fault accounting holds —
// bytes_down/bytes_up and the "faults" object present on every round
// line, bytes non-zero exactly when attempts were made / deliveries
// charged, and divisible by the attempt / delivery count (every device
// moves the same wire-format payload within a round, per attempt);
// retries reconcile with the failed-attempt counts, and a degraded round
// has zero contributors.
// The per-shard block ("shards") must partition the round: shard device,
// contributor, and byte columns sum to the round totals, and every shard
// ships a non-empty FPS1 partial to the root.
// Checkpoint checks (--checkpoint, needs --jsonl): every "checkpoint"
// block names the round of its own line, reports non-zero bytes, and
// honors the generation bound (generations <= retain); checkpoint rounds
// are strictly increasing across the whole trace; every resumed segment
// starts from the newest checkpoint written before it (resume round ==
// checkpoint round, first executed round == checkpoint round + 1); and
// at least one checkpoint was written.
// Chrome checks: the document parses, traceEvents is non-empty, "X"
// events nest properly per thread (a stack check over ts/dur), async
// "b"/"e" pairs match up by id, flow "s"/"f" pairs balance per id with
// the start never after the finish (the round -> exchange -> shard ->
// merge arrows of obs/trace_context.h), the run/round/exchange spans are
// present, and at least one thread is named "pool-<i>".
// Metrics checks: every line is a valid 0.0.4 HELP/TYPE/sample line,
// sample families are typed before use, histogram `_bucket` series are
// cumulative and end in an `le="+Inf"` bucket equal to `_count`. With
// --jsonl in the same invocation, the registry counters must reconcile
// with the summed per-round trace blocks: fed_comm_bytes_{up,down}_total,
// fed_shard_partial_bytes_total, and every fed_comm_faults_total{kind=...}
// member against its trace fault column.
//
// Exits non-zero with a message on the first failed check; used by the
// quickstart observability smoke test (examples/CMakeLists.txt).

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/cli.h"
#include "support/json.h"

namespace {

using fed::JsonValue;

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "trace_lint: " << message << "\n";
  std::exit(1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Whole-run sums over the JSONL round lines, for reconciling against the
// cumulative registry counters in a --metrics exposition file.
struct JsonlTotals {
  std::uint64_t bytes_down = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t partial_bytes = 0;
  std::uint64_t retries = 0;
  std::uint64_t degraded_rounds = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t checkpoint_writes = 0;
  std::uint64_t checkpoint_bytes = 0;
  // Keyed by the FaultEvent kind slug used in the metrics `kind` label.
  std::map<std::string, std::uint64_t> faults;
};

// Transport byte and fault accounting on one JSONL round line. Both
// bundled transports report exact wire bytes, and the fault layer
// charges them per attempt/delivery, so the counts obey hard
// invariants: traffic moves iff an attempt was made / a delivery was
// charged, every attempt moves the same broadcast bytes, every charged
// delivery moves the same update bytes, retries reconcile with the
// failed-attempt counts, and a degraded round aggregated nothing.
void check_round_line(const std::string& path, std::size_t lineno,
                      const JsonValue& value, JsonlTotals& totals) {
  const std::string where = path + ":" + std::to_string(lineno);
  for (const char* key : {"bytes_down", "bytes_up", "selected", "contributors",
                          "faults", "degraded", "shards"}) {
    if (!value.contains(key)) {
      fail(where + ": round line lacks \"" + std::string(key) + "\"");
    }
  }
  const JsonValue& faults = value.at("faults");
  for (const char* key :
       {"attempts", "retries", "drops", "corruptions", "timeouts",
        "duplicates", "quorum_drops", "departs", "failed_devices",
        "up_deliveries"}) {
    if (!faults.contains(key)) {
      fail(where + ": faults object lacks \"" + std::string(key) + "\"");
    }
  }
  const auto count = [&](const JsonValue& obj, const char* key) {
    return static_cast<std::uint64_t>(obj.at(key).as_number());
  };
  const std::uint64_t bytes_down = count(value, "bytes_down");
  const std::uint64_t bytes_up = count(value, "bytes_up");
  const std::uint64_t selected = count(value, "selected");
  const std::uint64_t contributors = count(value, "contributors");
  const bool degraded = value.at("degraded").as_bool();
  const std::uint64_t attempts = count(faults, "attempts");
  const std::uint64_t retries = count(faults, "retries");
  const std::uint64_t failed_attempts = count(faults, "drops") +
                                        count(faults, "corruptions") +
                                        count(faults, "timeouts");
  const std::uint64_t up_deliveries = count(faults, "up_deliveries");

  if (attempts < selected) {
    fail(where + ": attempts=" + std::to_string(attempts) +
         " < selected=" + std::to_string(selected) +
         " (every selected device attempts at least once)");
  }
  if (retries != attempts - selected) {
    fail(where + ": retries=" + std::to_string(retries) +
         " != attempts-selected=" + std::to_string(attempts - selected));
  }
  if (failed_attempts < retries) {
    fail(where + ": drops+corruptions+timeouts=" +
         std::to_string(failed_attempts) + " < retries=" +
         std::to_string(retries) + " (every retry follows a failed attempt)");
  }
  if (contributors > selected) {
    fail(where + ": contributors=" + std::to_string(contributors) +
         " > selected=" + std::to_string(selected));
  }
  if (degraded && contributors != 0) {
    fail(where + ": degraded round has contributors=" +
         std::to_string(contributors));
  }
  if (selected > 0 && contributors == 0 && !degraded) {
    fail(where + ": zero contributors but the round is not marked degraded");
  }
  if ((bytes_down > 0) != (attempts > 0)) {
    fail(where + ": bytes_down=" + std::to_string(bytes_down) +
         " inconsistent with attempts=" + std::to_string(attempts));
  }
  if ((bytes_up > 0) != (up_deliveries > 0)) {
    fail(where + ": bytes_up=" + std::to_string(bytes_up) +
         " inconsistent with up_deliveries=" + std::to_string(up_deliveries));
  }
  if (attempts > 0 && bytes_down % attempts != 0) {
    fail(where + ": bytes_down=" + std::to_string(bytes_down) +
         " not divisible by attempts=" + std::to_string(attempts));
  }
  if (up_deliveries > 0 && bytes_up % up_deliveries != 0) {
    fail(where + ": bytes_up=" + std::to_string(bytes_up) +
         " not divisible by up_deliveries=" + std::to_string(up_deliveries));
  }

  // Per-shard partition: the shard columns must sum back to the round
  // totals, the shard indices must be dense, and every shard must have
  // shipped a non-empty FPS1 partial to the root.
  const auto& shards = value.at("shards").as_array();
  if (shards.empty() && selected > 0) {
    fail(where + ": round selected devices but has an empty \"shards\" array");
  }
  std::uint64_t shard_devices = 0;
  std::uint64_t shard_contributors = 0;
  std::uint64_t shard_bytes_down = 0;
  std::uint64_t shard_bytes_up = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const JsonValue& shard = shards[s];
    if (!shard.is_object()) {
      fail(where + ": shards[" + std::to_string(s) + "] is not an object");
    }
    for (const char* key : {"shard", "devices", "contributors", "bytes_down",
                            "bytes_up", "partial_bytes"}) {
      if (!shard.contains(key)) {
        fail(where + ": shards[" + std::to_string(s) + "] lacks \"" +
             std::string(key) + "\"");
      }
    }
    if (count(shard, "shard") != s) {
      fail(where + ": shards[" + std::to_string(s) + "] carries index " +
           std::to_string(count(shard, "shard")) +
           " (shard indices must be dense)");
    }
    shard_devices += count(shard, "devices");
    shard_contributors += count(shard, "contributors");
    shard_bytes_down += count(shard, "bytes_down");
    shard_bytes_up += count(shard, "bytes_up");
    if (count(shard, "partial_bytes") == 0) {
      fail(where + ": shards[" + std::to_string(s) +
           "] shipped zero partial bytes to the root");
    }
  }
  if (shard_devices != selected) {
    fail(where + ": shard devices sum to " + std::to_string(shard_devices) +
         " != selected=" + std::to_string(selected));
  }
  if (shard_contributors != contributors) {
    fail(where + ": shard contributors sum to " +
         std::to_string(shard_contributors) +
         " != contributors=" + std::to_string(contributors));
  }
  if (shard_bytes_down != bytes_down) {
    fail(where + ": shard bytes_down sum to " +
         std::to_string(shard_bytes_down) +
         " != bytes_down=" + std::to_string(bytes_down));
  }
  if (shard_bytes_up != bytes_up) {
    fail(where + ": shard bytes_up sum to " + std::to_string(shard_bytes_up) +
         " != bytes_up=" + std::to_string(bytes_up));
  }

  totals.bytes_down += bytes_down;
  totals.bytes_up += bytes_up;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    totals.partial_bytes += count(shards[s], "partial_bytes");
  }
  totals.retries += retries;
  if (degraded) ++totals.degraded_rounds;
  if (value.contains("arrivals")) totals.arrivals += count(value, "arrivals");
  if (value.contains("departures")) {
    totals.departures += count(value, "departures");
  }
  totals.faults["drop"] += count(faults, "drops");
  totals.faults["corrupt"] += count(faults, "corruptions");
  totals.faults["timeout"] += count(faults, "timeouts");
  totals.faults["duplicate"] += count(faults, "duplicates");
  totals.faults["quorum_drop"] += count(faults, "quorum_drops");
  totals.faults["depart"] += count(faults, "departs");
  totals.faults["device_failed"] += count(faults, "failed_devices");
  totals.faults["round_degraded"] += degraded ? 1 : 0;
}

// Audits one round line's embedded "checkpoint" block and the
// cross-segment manifest invariants it participates in.
void check_checkpoint_block(const std::string& where, const JsonValue& value,
                            std::uint64_t round_id, bool& have_checkpoint,
                            std::uint64_t& last_checkpoint_round,
                            std::set<std::uint64_t>& checkpoint_rounds,
                            JsonlTotals& totals) {
  const JsonValue& ckpt = value.at("checkpoint");
  for (const char* key : {"round", "bytes", "generations", "retain",
                          "write_s"}) {
    if (!ckpt.contains(key)) {
      fail(where + ": checkpoint block lacks \"" + std::string(key) + "\"");
    }
  }
  const auto count = [&](const char* key) {
    return static_cast<std::uint64_t>(ckpt.at(key).as_number());
  };
  const std::uint64_t ckpt_round = count("round");
  const std::uint64_t bytes = count("bytes");
  const std::uint64_t generations = count("generations");
  const std::uint64_t retain = count("retain");
  if (ckpt_round != round_id) {
    fail(where + ": checkpoint.round=" + std::to_string(ckpt_round) +
         " != the line's round=" + std::to_string(round_id));
  }
  if (bytes == 0) fail(where + ": checkpoint block reports zero bytes");
  if (generations == 0) {
    fail(where + ": checkpoint block reports zero retained generations");
  }
  if (retain > 0 && generations > retain) {
    fail(where + ": " + std::to_string(generations) +
         " checkpoint generations on disk, above the retain bound " +
         std::to_string(retain));
  }
  // Strictly increasing within a segment; lint_jsonl rewinds
  // last_checkpoint_round at a resume boundary, because a segment
  // resumed from an older generation legitimately re-writes rounds the
  // crashed segment already checkpointed.
  if (have_checkpoint && ckpt_round <= last_checkpoint_round) {
    fail(where + ": checkpoint rounds are not strictly increasing (" +
         std::to_string(ckpt_round) + " after " +
         std::to_string(last_checkpoint_round) + ")");
  }
  have_checkpoint = true;
  last_checkpoint_round = ckpt_round;
  checkpoint_rounds.insert(ckpt_round);
  ++totals.checkpoint_writes;
  totals.checkpoint_bytes += bytes;
}

// Multi-segment aware: a crashed-and-resumed run appends one run header
// per segment to the same file; mid-file headers must be marked
// "resumed" and the resumed segment must pick up exactly one round after
// the checkpoint it restarted from. With `checkpoint_mode`, the embedded
// checkpoint blocks are audited as a manifest (see the file comment).
JsonlTotals lint_jsonl(const std::string& path, bool checkpoint_mode) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  JsonlTotals totals;
  std::string line;
  std::size_t lineno = 0;
  std::size_t rounds = 0;
  std::size_t segments = 0;
  bool have_checkpoint = false;
  std::uint64_t last_checkpoint_round = 0;
  std::set<std::uint64_t> checkpoint_rounds;
  bool expect_resume_round = false;  // next round line opens a resumed segment
  std::uint64_t resume_first_round = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string where = path + ":" + std::to_string(lineno);
    JsonValue value;
    try {
      value = fed::parse_json(line);
    } catch (const std::exception& e) {
      fail(where + ": parse error: " + e.what());
    }
    if (!value.is_object()) {
      fail(where + ": line is not an object");
    }
    if (value.contains("run")) {
      ++segments;
      const JsonValue& run = value.at("run");
      const bool resumed =
          run.contains("resumed") && run.at("resumed").as_bool();
      if (segments > 1 && !resumed) {
        fail(where + ": mid-file run header is not marked \"resumed\" "
                     "(only a resumed run may append a new segment)");
      }
      if (resumed) {
        if (!run.contains("first_round")) {
          fail(where + ": resumed run header lacks \"first_round\"");
        }
        resume_first_round =
            static_cast<std::uint64_t>(run.at("first_round").as_number());
        expect_resume_round = true;
        if (checkpoint_mode) {
          if (!have_checkpoint) {
            fail(where + ": segment resumed from round " +
                 std::to_string(resume_first_round) +
                 " but no checkpoint was written before it");
          }
          // Any recorded generation is a legal resume point — retention
          // keeps several precisely so a run can fall back past a lost
          // or corrupted newest checkpoint.
          if (!checkpoint_rounds.contains(resume_first_round)) {
            fail(where + ": segment resumed from round " +
                 std::to_string(resume_first_round) +
                 " but no prior segment checkpointed that round (newest "
                 "recorded: " +
                 std::to_string(last_checkpoint_round) + ")");
          }
          // Rewind the monotonicity cursor: the resumed segment re-runs
          // rounds after the resume point and may re-write checkpoints
          // the crashed segment already recorded.
          last_checkpoint_round = resume_first_round;
        }
      }
      continue;
    }
    if (segments == 0) fail(path + ":1: header line lacks \"run\"");
    if (!value.contains("round")) fail(where + ": line lacks \"round\"");
    ++rounds;
    const auto round_id =
        static_cast<std::uint64_t>(value.at("round").as_number());
    if (expect_resume_round) {
      if (round_id != resume_first_round + 1) {
        fail(where + ": resumed segment opens with round " +
             std::to_string(round_id) + " but resumed from round " +
             std::to_string(resume_first_round) + " (must continue at " +
             std::to_string(resume_first_round + 1) + ")");
      }
      expect_resume_round = false;
    }
    check_round_line(path, lineno, value, totals);
    if (value.contains("checkpoint")) {
      check_checkpoint_block(where, value, round_id, have_checkpoint,
                             last_checkpoint_round, checkpoint_rounds,
                             totals);
    }
  }
  if (lineno == 0) fail(path + ": empty file");
  if (rounds == 0) fail(path + ": no round lines after the header");
  if (expect_resume_round) fail(path + ": resumed segment has no round lines");
  if (checkpoint_mode && totals.checkpoint_writes == 0) {
    fail(path + ": --checkpoint: the trace has no checkpoint blocks");
  }
  std::cout << "trace_lint: " << path << " ok (" << rounds << " round lines";
  if (segments > 1) std::cout << " across " << segments << " segments";
  if (checkpoint_mode) {
    std::cout << ", " << totals.checkpoint_writes << " checkpoint writes";
  }
  std::cout << ")\n";
  return totals;
}

struct XEvent {
  double ts = 0.0;
  double dur = 0.0;
  std::string name;
};

void check_nesting(std::size_t tid, std::vector<XEvent>& events) {
  // Parent-before-child order: earlier start first, longer span first on
  // ties (matches the profiler's drain order).
  std::stable_sort(events.begin(), events.end(),
                   [](const XEvent& a, const XEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.dur > b.dur;
                   });
  std::vector<double> open_ends;  // stack of enclosing spans' end times
  for (const XEvent& e : events) {
    while (!open_ends.empty() && open_ends.back() <= e.ts) {
      open_ends.pop_back();
    }
    const double end = e.ts + e.dur;
    if (!open_ends.empty() && end > open_ends.back()) {
      std::ostringstream msg;
      msg << "tid " << tid << ": X event \"" << e.name << "\" [" << e.ts
          << ", " << end << ") overlaps but does not nest inside enclosing "
          << "span ending at " << open_ends.back();
      fail(msg.str());
    }
    open_ends.push_back(end);
  }
}

void lint_chrome(const std::string& path) {
  JsonValue doc;
  try {
    doc = fed::parse_json(read_file(path));
  } catch (const std::exception& e) {
    fail(path + ": parse error: " + std::string(e.what()));
  }
  if (!doc.is_object() || !doc.contains("traceEvents")) {
    fail(path + ": no traceEvents array");
  }
  const auto& events = doc.at("traceEvents").as_array();
  if (events.empty()) fail(path + ": traceEvents is empty");

  std::map<std::size_t, std::vector<XEvent>> x_by_tid;
  std::map<std::size_t, std::size_t> async_open;  // id -> open "b" count
  // Flow arrows pair by id; the file order is per-thread drain order, so
  // an "f" can appear before its "s" and the check must run at the end.
  struct FlowInfo {
    std::string name;
    std::vector<double> starts;
    std::vector<double> finishes;
  };
  std::map<double, FlowInfo> flows;  // keyed on the JSON-decoded id
  std::set<std::string> span_names;
  bool pool_thread = false;
  for (const JsonValue& ev : events) {
    if (!ev.is_object()) fail(path + ": traceEvents entry is not an object");
    const std::string& ph = ev.at("ph").as_string();
    const std::string& name = ev.at("name").as_string();
    if (ph == "M") {
      if (name == "thread_name" &&
          ev.at("args").at("name").as_string().rfind("pool-", 0) == 0) {
        pool_thread = true;
      }
      continue;
    }
    const auto tid = static_cast<std::size_t>(ev.at("tid").as_number());
    if (ph == "X") {
      span_names.insert(name);
      x_by_tid[tid].push_back(
          {ev.at("ts").as_number(), ev.at("dur").as_number(), name});
    } else if (ph == "b") {
      ++async_open[static_cast<std::size_t>(ev.at("id").as_number())];
    } else if (ph == "e") {
      const auto id = static_cast<std::size_t>(ev.at("id").as_number());
      auto it = async_open.find(id);
      if (it == async_open.end() || it->second == 0) {
        fail(path + ": async \"e\" event (id " + std::to_string(id) +
             ") without a matching \"b\"");
      }
      --it->second;
    } else if (ph == "s" || ph == "f") {
      FlowInfo& flow = flows[ev.at("id").as_number()];
      if (flow.name.empty()) {
        flow.name = name;
      } else if (flow.name != name) {
        fail(path + ": flow id carries two names (\"" + flow.name +
             "\" and \"" + name + "\"); ends of an arrow must match");
      }
      (ph == "s" ? flow.starts : flow.finishes)
          .push_back(ev.at("ts").as_number());
    } else {
      fail(path + ": unexpected event phase \"" + ph + "\"");
    }
  }
  for (const auto& [id, open] : async_open) {
    if (open != 0) {
      fail(path + ": async \"b\" event (id " + std::to_string(id) +
           ") never closed");
    }
  }
  std::size_t flow_arrows = 0;
  for (auto& [id, flow] : flows) {
    if (flow.starts.size() != flow.finishes.size()) {
      fail(path + ": flow \"" + flow.name + "\" has " +
           std::to_string(flow.starts.size()) + " \"s\" but " +
           std::to_string(flow.finishes.size()) + " \"f\" events");
    }
    // Greedy earliest-to-earliest matching: valid iff every start can be
    // paired with a finish that does not precede it.
    std::sort(flow.starts.begin(), flow.starts.end());
    std::sort(flow.finishes.begin(), flow.finishes.end());
    for (std::size_t i = 0; i < flow.starts.size(); ++i) {
      if (flow.finishes[i] < flow.starts[i]) {
        fail(path + ": flow \"" + flow.name + "\" finishes at " +
             std::to_string(flow.finishes[i]) + " before it starts at " +
             std::to_string(flow.starts[i]));
      }
    }
    flow_arrows += flow.starts.size();
  }
  for (auto& [tid, tid_events] : x_by_tid) {
    check_nesting(tid, tid_events);
  }
  for (const char* required : {"run", "round", "exchange"}) {
    if (!span_names.contains(required)) {
      fail(path + ": missing required span \"" + std::string(required) +
           "\"");
    }
  }
  if (!pool_thread) fail(path + ": no \"pool-<i>\" thread_name metadata");

  std::size_t x_total = 0;
  for (const auto& [tid, tid_events] : x_by_tid) x_total += tid_events.size();
  std::cout << "trace_lint: " << path << " ok (" << x_total << " X events on "
            << x_by_tid.size() << " threads, " << span_names.size()
            << " distinct spans, " << flow_arrows << " flow arrows)\n";
}

// One `name{labels} value` line of the exposition, labels in file order.
struct MetricSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

struct Exposition {
  std::map<std::string, std::string> types;  // family name -> counter|...
  std::vector<MetricSample> samples;
};

// Label-set key for grouping/lookup: sorted k=v pairs joined with
// unit-separator bytes (cannot appear in UTF-8 label text unescaped).
std::string label_key(std::vector<std::pair<std::string, std::string>> labels) {
  std::sort(labels.begin(), labels.end());
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1f';
  }
  return key;
}

// Parses `name{k="v",...} value` (or `name value`). Label values use the
// 0.0.4 escapes \\ \" \n; the value must consume the rest of the line
// (the writer never emits the optional timestamp).
MetricSample parse_sample_line(const std::string& where,
                               const std::string& line) {
  MetricSample sample;
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  sample.name = line.substr(0, i);
  if (sample.name.empty()) fail(where + ": sample line lacks a metric name");
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        fail(where + ": malformed label pair (expected k=\"v\")");
      }
      std::string key = line.substr(i, eq - i);
      std::string val;
      std::size_t j = eq + 2;
      while (j < line.size() && line[j] != '"') {
        if (line[j] == '\\') {
          if (j + 1 >= line.size()) fail(where + ": dangling escape");
          const char c = line[j + 1];
          if (c == '\\') val += '\\';
          else if (c == '"') val += '"';
          else if (c == 'n') val += '\n';
          else fail(where + ": unknown escape \\" + std::string(1, c));
          j += 2;
        } else {
          val += line[j++];
        }
      }
      if (j >= line.size()) fail(where + ": unterminated label value");
      sample.labels.emplace_back(std::move(key), std::move(val));
      i = j + 1;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size()) fail(where + ": unterminated label set");
    ++i;  // consume '}'
  }
  if (i >= line.size() || line[i] != ' ') {
    fail(where + ": no value after the metric name/labels");
  }
  const std::string value_text = line.substr(i + 1);
  char* end = nullptr;
  sample.value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str() ||
      static_cast<std::size_t>(end - value_text.c_str()) !=
          value_text.size()) {
    fail(where + ": unparseable sample value \"" + value_text + "\"");
  }
  return sample;
}

// The family a sample belongs to: histogram series drop their
// _bucket/_sum/_count suffix when the base name is a typed histogram.
std::string family_of(const Exposition& exposition, const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      const std::string base = name.substr(0, name.size() - s.size());
      auto it = exposition.types.find(base);
      if (it != exposition.types.end() && it->second == "histogram") {
        return base;
      }
    }
  }
  return name;
}

Exposition lint_metrics(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  Exposition exposition;
  std::set<std::string> sampled_families;
  std::set<std::string> seen_series;  // name + labels, to reject duplicates
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string where = path + ":" + std::to_string(lineno);
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family, type, extra;
      fields >> family >> type;
      if (family.empty() || type.empty() || (fields >> extra)) {
        fail(where + ": malformed TYPE line");
      }
      if (type != "counter" && type != "gauge" && type != "histogram") {
        fail(where + ": unknown metric type \"" + type + "\"");
      }
      if (!exposition.types.emplace(family, type).second) {
        fail(where + ": duplicate TYPE for family \"" + family + "\"");
      }
      continue;
    }
    if (line[0] == '#') continue;  // other comments are legal
    MetricSample sample = parse_sample_line(where, line);
    const std::string family = family_of(exposition, sample.name);
    if (!exposition.types.contains(family)) {
      fail(where + ": sample for \"" + sample.name +
           "\" has no preceding TYPE line");
    }
    sampled_families.insert(family);
    if (!seen_series.insert(sample.name + '\x1e' + label_key(sample.labels))
             .second) {
      fail(where + ": duplicate series for \"" + sample.name + "\"");
    }
    exposition.samples.push_back(std::move(sample));
  }
  if (exposition.samples.empty()) fail(path + ": no samples");

  // Histogram structure: per (family, non-le labels), buckets appear in
  // file order, counts non-decreasing, edges ascending, the last bucket
  // is le="+Inf" and equals the series' _count.
  struct HistogramSeries {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    bool last_is_inf = false;
    double count = 0.0;
    bool has_count = false;
  };
  std::map<std::string, HistogramSeries> histograms;
  for (const MetricSample& sample : exposition.samples) {
    const std::string family = family_of(exposition, sample.name);
    if (exposition.types.at(family) != "histogram" || family == sample.name) {
      continue;
    }
    if (sample.name == family + "_bucket") {
      std::vector<std::pair<std::string, std::string>> rest;
      std::string le;
      bool has_le = false;
      for (const auto& [k, v] : sample.labels) {
        if (k == "le") {
          le = v;
          has_le = true;
        } else {
          rest.emplace_back(k, v);
        }
      }
      if (!has_le) fail(path + ": _bucket sample without an le label");
      char* end = nullptr;
      const double edge = std::strtod(le.c_str(), &end);
      if (end == le.c_str()) fail(path + ": unparseable le \"" + le + "\"");
      HistogramSeries& series = histograms[family + '\x1e' + label_key(rest)];
      if (!series.buckets.empty()) {
        if (series.buckets.back().first >= edge) {
          fail(path + ": histogram \"" + family +
               "\" bucket edges are not ascending");
        }
        if (series.buckets.back().second > sample.value) {
          fail(path + ": histogram \"" + family +
               "\" bucket counts are not cumulative");
        }
      }
      series.buckets.emplace_back(edge, sample.value);
      series.last_is_inf = (le == "+Inf");
    } else if (sample.name == family + "_count") {
      HistogramSeries& series =
          histograms[family + '\x1e' + label_key(sample.labels)];
      series.count = sample.value;
      series.has_count = true;
    }
  }
  for (const auto& [key, series] : histograms) {
    const std::string family = key.substr(0, key.find('\x1e'));
    if (series.buckets.empty() || !series.last_is_inf) {
      fail(path + ": histogram \"" + family +
           "\" does not end in an le=\"+Inf\" bucket");
    }
    if (!series.has_count) {
      fail(path + ": histogram \"" + family + "\" lacks a _count sample");
    }
    if (series.buckets.back().second != series.count) {
      fail(path + ": histogram \"" + family + "\" +Inf bucket " +
           std::to_string(series.buckets.back().second) + " != _count " +
           std::to_string(series.count));
    }
  }

  std::cout << "trace_lint: " << path << " ok (" << exposition.samples.size()
            << " samples across " << sampled_families.size()
            << " families)\n";
  return exposition;
}

// Reconciles the cumulative registry counters against the per-round
// JSONL trace: two independent observers of the same run must agree.
void cross_check(const std::string& path, const Exposition& exposition,
                 const JsonlTotals& totals) {
  const auto counter = [&](const std::string& name,
                           std::vector<std::pair<std::string, std::string>>
                               labels) -> double {
    const std::string want = label_key(std::move(labels));
    for (const MetricSample& sample : exposition.samples) {
      if (sample.name == name && label_key(sample.labels) == want) {
        return sample.value;
      }
    }
    fail(path + ": missing counter \"" + name +
         "\" needed for the --jsonl cross-check");
  };
  const auto expect = [&](const std::string& name,
                          std::vector<std::pair<std::string, std::string>>
                              labels,
                          std::uint64_t jsonl_value) {
    const double metric = counter(name, labels);
    if (metric != static_cast<double>(jsonl_value)) {
      std::string selector = name;
      if (!labels.empty()) {
        selector += "{" + labels[0].first + "=\"" + labels[0].second + "\"}";
      }
      fail(path + ": " + selector + "=" + std::to_string(metric) +
           " but the JSONL trace sums to " + std::to_string(jsonl_value));
    }
  };
  expect("fed_comm_bytes_down_total", {}, totals.bytes_down);
  expect("fed_comm_bytes_up_total", {}, totals.bytes_up);
  expect("fed_shard_partial_bytes_total", {}, totals.partial_bytes);
  expect("fed_comm_retries_total", {}, totals.retries);
  expect("fed_comm_rounds_degraded_total", {}, totals.degraded_rounds);
  expect("fed_churn_arrivals_total", {}, totals.arrivals);
  expect("fed_churn_departures_total", {}, totals.departures);
  expect("fed_checkpoint_writes_total", {}, totals.checkpoint_writes);
  expect("fed_checkpoint_bytes_total", {}, totals.checkpoint_bytes);
  for (const auto& [kind, count] : totals.faults) {
    expect("fed_comm_faults_total", {{"kind", kind}}, count);
  }
  std::cout << "trace_lint: metrics reconcile with the JSONL trace ("
            << totals.faults.size() << " fault kinds checked)\n";
}

}  // namespace

int main(int argc, char** argv) {
  fed::CliFlags flags(argc, argv);
  const auto jsonl = flags.get_optional_string("jsonl");
  const auto chrome = flags.get_optional_string("chrome");
  const auto metrics = flags.get_optional_string("metrics");
  const bool checkpoint = flags.get_bool("checkpoint", false);
  if (!jsonl && !chrome && !metrics) {
    fail(
        "usage: trace_lint [--jsonl run.jsonl [--checkpoint]] "
        "[--chrome run.trace.json] [--metrics metrics.prom]");
  }
  if (checkpoint && !jsonl) {
    fail("--checkpoint audits the JSONL round trace; pass --jsonl too");
  }
  JsonlTotals totals;
  if (jsonl) totals = lint_jsonl(*jsonl, checkpoint);
  if (chrome) lint_chrome(*chrome);
  if (metrics) {
    const Exposition exposition = lint_metrics(*metrics);
    if (jsonl) cross_check(*metrics, exposition, totals);
  }
  return 0;
}
