// Validates the two observability artifacts a run can produce:
//
//   trace_lint --jsonl run.jsonl         # JSONL round trace (obs/trace_sink)
//   trace_lint --chrome run.trace.json   # Chrome trace-event span profile
//
// JSONL checks: every line parses as a JSON object, the first line is the
// run header ({"run":{...}}), every later line carries a "round", and the
// transport byte/fault accounting holds — bytes_down/bytes_up and the
// "faults" object present on every round line, bytes non-zero exactly
// when attempts were made / deliveries charged, and divisible by the
// attempt / delivery count (every device moves the same wire-format
// payload within a round, per attempt); retries reconcile with the
// failed-attempt counts, and a degraded round has zero contributors.
// The per-shard block ("shards") must partition the round: shard device,
// contributor, and byte columns sum to the round totals, and every shard
// ships a non-empty FPS1 partial to the root.
// Chrome checks: the document parses, traceEvents is non-empty, "X"
// events nest properly per thread (a stack check over ts/dur), async
// "b"/"e" pairs match up by id, the run/round/exchange spans are
// present, and at least one thread is named "pool-<i>".
//
// Exits non-zero with a message on the first failed check; used by the
// quickstart observability smoke test (examples/CMakeLists.txt).

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/cli.h"
#include "support/json.h"

namespace {

using fed::JsonValue;

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "trace_lint: " << message << "\n";
  std::exit(1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Transport byte and fault accounting on one JSONL round line. Both
// bundled transports report exact wire bytes, and the fault layer
// charges them per attempt/delivery, so the counts obey hard
// invariants: traffic moves iff an attempt was made / a delivery was
// charged, every attempt moves the same broadcast bytes, every charged
// delivery moves the same update bytes, retries reconcile with the
// failed-attempt counts, and a degraded round aggregated nothing.
void check_round_line(const std::string& path, std::size_t lineno,
                      const JsonValue& value) {
  const std::string where = path + ":" + std::to_string(lineno);
  for (const char* key : {"bytes_down", "bytes_up", "selected", "contributors",
                          "faults", "degraded", "shards"}) {
    if (!value.contains(key)) {
      fail(where + ": round line lacks \"" + std::string(key) + "\"");
    }
  }
  const JsonValue& faults = value.at("faults");
  for (const char* key :
       {"attempts", "retries", "drops", "corruptions", "timeouts",
        "duplicates", "quorum_drops", "failed_devices", "up_deliveries"}) {
    if (!faults.contains(key)) {
      fail(where + ": faults object lacks \"" + std::string(key) + "\"");
    }
  }
  const auto count = [&](const JsonValue& obj, const char* key) {
    return static_cast<std::uint64_t>(obj.at(key).as_number());
  };
  const std::uint64_t bytes_down = count(value, "bytes_down");
  const std::uint64_t bytes_up = count(value, "bytes_up");
  const std::uint64_t selected = count(value, "selected");
  const std::uint64_t contributors = count(value, "contributors");
  const bool degraded = value.at("degraded").as_bool();
  const std::uint64_t attempts = count(faults, "attempts");
  const std::uint64_t retries = count(faults, "retries");
  const std::uint64_t failed_attempts = count(faults, "drops") +
                                        count(faults, "corruptions") +
                                        count(faults, "timeouts");
  const std::uint64_t up_deliveries = count(faults, "up_deliveries");

  if (attempts < selected) {
    fail(where + ": attempts=" + std::to_string(attempts) +
         " < selected=" + std::to_string(selected) +
         " (every selected device attempts at least once)");
  }
  if (retries != attempts - selected) {
    fail(where + ": retries=" + std::to_string(retries) +
         " != attempts-selected=" + std::to_string(attempts - selected));
  }
  if (failed_attempts < retries) {
    fail(where + ": drops+corruptions+timeouts=" +
         std::to_string(failed_attempts) + " < retries=" +
         std::to_string(retries) + " (every retry follows a failed attempt)");
  }
  if (contributors > selected) {
    fail(where + ": contributors=" + std::to_string(contributors) +
         " > selected=" + std::to_string(selected));
  }
  if (degraded && contributors != 0) {
    fail(where + ": degraded round has contributors=" +
         std::to_string(contributors));
  }
  if (selected > 0 && contributors == 0 && !degraded) {
    fail(where + ": zero contributors but the round is not marked degraded");
  }
  if ((bytes_down > 0) != (attempts > 0)) {
    fail(where + ": bytes_down=" + std::to_string(bytes_down) +
         " inconsistent with attempts=" + std::to_string(attempts));
  }
  if ((bytes_up > 0) != (up_deliveries > 0)) {
    fail(where + ": bytes_up=" + std::to_string(bytes_up) +
         " inconsistent with up_deliveries=" + std::to_string(up_deliveries));
  }
  if (attempts > 0 && bytes_down % attempts != 0) {
    fail(where + ": bytes_down=" + std::to_string(bytes_down) +
         " not divisible by attempts=" + std::to_string(attempts));
  }
  if (up_deliveries > 0 && bytes_up % up_deliveries != 0) {
    fail(where + ": bytes_up=" + std::to_string(bytes_up) +
         " not divisible by up_deliveries=" + std::to_string(up_deliveries));
  }

  // Per-shard partition: the shard columns must sum back to the round
  // totals, the shard indices must be dense, and every shard must have
  // shipped a non-empty FPS1 partial to the root.
  const auto& shards = value.at("shards").as_array();
  if (shards.empty() && selected > 0) {
    fail(where + ": round selected devices but has an empty \"shards\" array");
  }
  std::uint64_t shard_devices = 0;
  std::uint64_t shard_contributors = 0;
  std::uint64_t shard_bytes_down = 0;
  std::uint64_t shard_bytes_up = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const JsonValue& shard = shards[s];
    if (!shard.is_object()) {
      fail(where + ": shards[" + std::to_string(s) + "] is not an object");
    }
    for (const char* key : {"shard", "devices", "contributors", "bytes_down",
                            "bytes_up", "partial_bytes"}) {
      if (!shard.contains(key)) {
        fail(where + ": shards[" + std::to_string(s) + "] lacks \"" +
             std::string(key) + "\"");
      }
    }
    if (count(shard, "shard") != s) {
      fail(where + ": shards[" + std::to_string(s) + "] carries index " +
           std::to_string(count(shard, "shard")) +
           " (shard indices must be dense)");
    }
    shard_devices += count(shard, "devices");
    shard_contributors += count(shard, "contributors");
    shard_bytes_down += count(shard, "bytes_down");
    shard_bytes_up += count(shard, "bytes_up");
    if (count(shard, "partial_bytes") == 0) {
      fail(where + ": shards[" + std::to_string(s) +
           "] shipped zero partial bytes to the root");
    }
  }
  if (shard_devices != selected) {
    fail(where + ": shard devices sum to " + std::to_string(shard_devices) +
         " != selected=" + std::to_string(selected));
  }
  if (shard_contributors != contributors) {
    fail(where + ": shard contributors sum to " +
         std::to_string(shard_contributors) +
         " != contributors=" + std::to_string(contributors));
  }
  if (shard_bytes_down != bytes_down) {
    fail(where + ": shard bytes_down sum to " +
         std::to_string(shard_bytes_down) +
         " != bytes_down=" + std::to_string(bytes_down));
  }
  if (shard_bytes_up != bytes_up) {
    fail(where + ": shard bytes_up sum to " + std::to_string(shard_bytes_up) +
         " != bytes_up=" + std::to_string(bytes_up));
  }
}

void lint_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  std::string line;
  std::size_t lineno = 0;
  std::size_t rounds = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue value;
    try {
      value = fed::parse_json(line);
    } catch (const std::exception& e) {
      fail(path + ":" + std::to_string(lineno) + ": parse error: " + e.what());
    }
    if (!value.is_object()) {
      fail(path + ":" + std::to_string(lineno) + ": line is not an object");
    }
    if (lineno == 1) {
      if (!value.contains("run")) {
        fail(path + ":1: header line lacks \"run\"");
      }
    } else if (!value.contains("round")) {
      fail(path + ":" + std::to_string(lineno) + ": line lacks \"round\"");
    } else {
      ++rounds;
      check_round_line(path, lineno, value);
    }
  }
  if (lineno == 0) fail(path + ": empty file");
  if (rounds == 0) fail(path + ": no round lines after the header");
  std::cout << "trace_lint: " << path << " ok (" << rounds
            << " round lines)\n";
}

struct XEvent {
  double ts = 0.0;
  double dur = 0.0;
  std::string name;
};

void check_nesting(std::size_t tid, std::vector<XEvent>& events) {
  // Parent-before-child order: earlier start first, longer span first on
  // ties (matches the profiler's drain order).
  std::stable_sort(events.begin(), events.end(),
                   [](const XEvent& a, const XEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.dur > b.dur;
                   });
  std::vector<double> open_ends;  // stack of enclosing spans' end times
  for (const XEvent& e : events) {
    while (!open_ends.empty() && open_ends.back() <= e.ts) {
      open_ends.pop_back();
    }
    const double end = e.ts + e.dur;
    if (!open_ends.empty() && end > open_ends.back()) {
      std::ostringstream msg;
      msg << "tid " << tid << ": X event \"" << e.name << "\" [" << e.ts
          << ", " << end << ") overlaps but does not nest inside enclosing "
          << "span ending at " << open_ends.back();
      fail(msg.str());
    }
    open_ends.push_back(end);
  }
}

void lint_chrome(const std::string& path) {
  JsonValue doc;
  try {
    doc = fed::parse_json(read_file(path));
  } catch (const std::exception& e) {
    fail(path + ": parse error: " + std::string(e.what()));
  }
  if (!doc.is_object() || !doc.contains("traceEvents")) {
    fail(path + ": no traceEvents array");
  }
  const auto& events = doc.at("traceEvents").as_array();
  if (events.empty()) fail(path + ": traceEvents is empty");

  std::map<std::size_t, std::vector<XEvent>> x_by_tid;
  std::map<std::size_t, std::size_t> async_open;  // id -> open "b" count
  std::set<std::string> span_names;
  bool pool_thread = false;
  for (const JsonValue& ev : events) {
    if (!ev.is_object()) fail(path + ": traceEvents entry is not an object");
    const std::string& ph = ev.at("ph").as_string();
    const std::string& name = ev.at("name").as_string();
    if (ph == "M") {
      if (name == "thread_name" &&
          ev.at("args").at("name").as_string().rfind("pool-", 0) == 0) {
        pool_thread = true;
      }
      continue;
    }
    const auto tid = static_cast<std::size_t>(ev.at("tid").as_number());
    if (ph == "X") {
      span_names.insert(name);
      x_by_tid[tid].push_back(
          {ev.at("ts").as_number(), ev.at("dur").as_number(), name});
    } else if (ph == "b") {
      ++async_open[static_cast<std::size_t>(ev.at("id").as_number())];
    } else if (ph == "e") {
      const auto id = static_cast<std::size_t>(ev.at("id").as_number());
      auto it = async_open.find(id);
      if (it == async_open.end() || it->second == 0) {
        fail(path + ": async \"e\" event (id " + std::to_string(id) +
             ") without a matching \"b\"");
      }
      --it->second;
    } else {
      fail(path + ": unexpected event phase \"" + ph + "\"");
    }
  }
  for (const auto& [id, open] : async_open) {
    if (open != 0) {
      fail(path + ": async \"b\" event (id " + std::to_string(id) +
           ") never closed");
    }
  }
  for (auto& [tid, tid_events] : x_by_tid) {
    check_nesting(tid, tid_events);
  }
  for (const char* required : {"run", "round", "exchange"}) {
    if (!span_names.count(required)) {
      fail(path + ": missing required span \"" + std::string(required) +
           "\"");
    }
  }
  if (!pool_thread) fail(path + ": no \"pool-<i>\" thread_name metadata");

  std::size_t x_total = 0;
  for (const auto& [tid, tid_events] : x_by_tid) x_total += tid_events.size();
  std::cout << "trace_lint: " << path << " ok (" << x_total << " X events on "
            << x_by_tid.size() << " threads, " << span_names.size()
            << " distinct spans)\n";
}

}  // namespace

int main(int argc, char** argv) {
  fed::CliFlags flags(argc, argv);
  const auto jsonl = flags.get_optional_string("jsonl");
  const auto chrome = flags.get_optional_string("chrome");
  if (!jsonl && !chrome) {
    fail("usage: trace_lint [--jsonl run.jsonl] [--chrome run.trace.json]");
  }
  if (jsonl) lint_jsonl(*jsonl);
  if (chrome) lint_chrome(*chrome);
  return 0;
}
