// fedlint: repo-specific determinism & resource-discipline checker.
//
// The reproduction's headline guarantee is a bit-identical TrainHistory
// across transports, shard counts, and thread counts — which only holds
// if no code path reads a nondeterministic source. TSan and the chaos
// tests catch interleaving bugs at runtime when they happen to fire;
// fedlint makes the underlying *rules* static properties of the tree,
// in the same spirit as tools/trace_lint for run artifacts:
//
//   fedlint --root . --allowlist tools/fedlint_allow.txt   # whole repo
//   fedlint --root some/dir                                # any subtree
//   fedlint --self-test                                    # rule engine
//   fedlint --list-rules
//
// Rules (token/regex over comment- and string-stripped source):
//   randomness            std::random_device, rand()/srand(), *rand48,
//                         getentropy/getrandom — every draw must come
//                         from a counter-keyed, seeded stream
//                         (support/rng.h) or reruns stop reproducing.
//   wall-clock            system_clock/steady_clock/high_resolution_-
//                         clock, gettimeofday, clock_gettime, time(0),
//                         localtime/gmtime/strftime — simulation logic
//                         runs on the simulated clock; wall time may
//                         only feed measurement (bench timing, profiler
//                         timestamps), which is what the allowlist is
//                         for.
//   unordered-container   std::unordered_{map,set,multimap,multiset} —
//                         iteration order is unspecified and varies
//                         across libstdc++/libc++ and seeds, so any
//                         iteration feeding traces, wire encodings, or
//                         aggregation breaks bit-identity. Use std::map
//                         or sorted vectors.
//   float-accumulation    `float` inside tensor/ or sim/ — reduce paths
//                         accumulate in double or tensor/exact_sum;
//                         f32 belongs only in explicit wire codecs.
//   raw-new               raw new/delete — ownership goes through
//                         make_unique/containers so sanitizer and
//                         fault-injection paths can't leak.
//
// Allowlist file: one `path-prefix rule-id` pair per line (# comments),
// paths relative to --root with forward slashes. An entry that matches
// no finding is itself an error — the allowlist can only shrink. Policy:
// keep it under 10 entries; a new entry needs a justifying comment.
//
// Exit status: 0 clean, 1 findings (or unused allowlist entries), 2
// usage/configuration errors. Wired into ctest (fedlint_repo,
// fedlint_self_test, fedlint fixture pair) and the default CI job.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/cli.h"

namespace {

namespace fs = std::filesystem;

struct Rule {
  std::string id;
  std::regex pattern;
  // When non-empty, the rule only applies to files whose repo-relative
  // path contains one of these directory segments.
  std::vector<std::string> dir_filter;
  std::string message;
};

struct Finding {
  std::string path;  // relative, forward slashes
  std::size_t line = 0;
  std::string rule;
  std::string excerpt;
};

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = [] {
    std::vector<Rule> r;
    const auto flags = std::regex::ECMAScript | std::regex::optimize;
    r.push_back({"randomness",
                 std::regex(R"(\brandom_device\b|\bsrand\s*\(|\brand\s*\(|\bdrand48\b|\blrand48\b|\bmrand48\b|\bgetentropy\b|\bgetrandom\b)",
                            flags),
                 {},
                 "nondeterministic randomness source; draw from a seeded, "
                 "counter-keyed stream (support/rng.h) instead"});
    r.push_back({"wall-clock",
                 std::regex(R"(\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b|\bstrftime\b|\basctime\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\))",
                            flags),
                 {},
                 "wall-clock read; simulation logic must use the simulated "
                 "clock — wall time is allowlisted only for measurement "
                 "(bench timing, profiler timestamps)"});
    r.push_back({"unordered-container",
                 std::regex(R"(\bunordered_(map|set|multimap|multiset)\b)",
                            flags),
                 {},
                 "unspecified iteration order can leak into traces, wire "
                 "bytes, or aggregation and break bit-identity; use "
                 "std::map or a sorted vector"});
    r.push_back({"float-accumulation",
                 std::regex(R"(\bfloat\b)", flags),
                 {"tensor", "sim"},
                 "single-precision in a reduce path; accumulate in double "
                 "or tensor/exact_sum (f32 belongs only in wire codecs)"});
    r.push_back({"raw-new",
                 std::regex(R"(\bnew\b|\bdelete\b)", flags),
                 {},
                 "raw new/delete; use std::make_unique / containers so "
                 "ownership survives exceptions and fault injection"});
    return r;
  }();
  return kRules;
}

// Replaces comments and string/char literal *contents* with spaces,
// preserving line structure so findings report real line numbers.
// Handles //, /* */, "..." with escapes, '...', and R"delim(...)delim".
std::string strip_comments_and_strings(const std::string& src) {
  std::string out = src;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_terminator;  // )delim" for the active raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // Raw string: R"delim( ... )delim"
          std::size_t open = src.find('(', i + 2);
          if (open == std::string::npos) break;  // malformed; give up
          raw_terminator =
              ")" + src.substr(i + 2, open - (i + 2)) + "\"";
          for (std::size_t j = i; j <= open; ++j) out[j] = ' ';
          i = open;
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (src.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          for (std::size_t j = 0; j < raw_terminator.size(); ++j) {
            out[i + j] = ' ';
          }
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool path_has_dir(const std::string& rel_path,
                  const std::vector<std::string>& dirs) {
  if (dirs.empty()) return true;
  for (const std::string& d : dirs) {
    if (rel_path.rfind(d + "/", 0) == 0 ||
        rel_path.find("/" + d + "/") != std::string::npos) {
      return true;
    }
  }
  return false;
}

// `delete` has one legitimate token-level use the regex cannot see:
// deleted special members (`= delete`). `new` has none.
bool is_deleted_function(const std::string& line, std::size_t match_pos,
                         const std::string& match) {
  if (match.rfind("delete", 0) != 0) return false;
  for (std::size_t i = match_pos; i-- > 0;) {
    const char c = line[i];
    if (c == ' ' || c == '\t') continue;
    return c == '=';
  }
  return false;
}

void scan_content(const std::string& rel_path, const std::string& content,
                  std::vector<Finding>& findings) {
  const std::string stripped = strip_comments_and_strings(content);
  std::istringstream lines(stripped);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    for (const Rule& rule : rules()) {
      if (!path_has_dir(rel_path, rule.dir_filter)) continue;
      auto begin =
          std::sregex_iterator(line.begin(), line.end(), rule.pattern);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        if (is_deleted_function(line, static_cast<std::size_t>(it->position()),
                                it->str())) {
          continue;
        }
        findings.push_back({rel_path, line_no, rule.id, it->str()});
        break;  // one finding per rule per line is enough
      }
    }
  }
}

bool scannable_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool skip_dir(const std::string& name) {
  return name.rfind("build", 0) == 0 || name == ".git" || name == "tests" ||
         name == "fedlint_fixtures" || name == "bench_out" ||
         name == ".github";
}

std::string to_rel(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

// Scans every source file under `start`; findings report paths relative
// to `rel_root` (the repo root), so allowlist prefixes like
// "src/support/stopwatch.h" match regardless of which subtree the file
// was reached through.
void scan_tree(const fs::path& start, const fs::path& rel_root,
               std::vector<Finding>& findings) {
  std::vector<fs::path> files;
  auto it = fs::recursive_directory_iterator(start);
  for (auto end = fs::recursive_directory_iterator(); it != end; ++it) {
    if (it->is_directory()) {
      if (skip_dir(it->path().filename().string())) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file() && scannable_file(it->path())) {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "fedlint: cannot read " << file << "\n";
      std::exit(2);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    scan_content(to_rel(file, rel_root), buffer.str(), findings);
  }
}

struct AllowEntry {
  std::string prefix;
  std::string rule;
  bool used = false;
};

std::vector<AllowEntry> load_allowlist(const std::string& path) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fedlint: cannot open allowlist " << path << "\n";
    std::exit(2);
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    std::string prefix, rule, extra;
    if (!(fields >> prefix)) continue;  // blank/comment line
    if (!(fields >> rule) || (fields >> extra)) {
      std::cerr << "fedlint: " << path << ":" << line_no
                << ": expected `path-prefix rule-id`\n";
      std::exit(2);
    }
    entries.push_back({prefix, rule, false});
  }
  return entries;
}

bool allowed(const Finding& f, std::vector<AllowEntry>& allowlist) {
  bool hit = false;
  for (AllowEntry& entry : allowlist) {
    if (entry.rule == f.rule && f.path.rfind(entry.prefix, 0) == 0) {
      entry.used = true;
      hit = true;  // keep scanning so every matching entry is marked used
    }
  }
  return hit;
}

// ---------------------------------------------------------------------
// Self-test: seeded snippets, each annotated with the rules it must (or
// must not) trigger. Runs the real scanner on in-memory content, so the
// fixture pair in tools/fedlint_fixtures and this check exercise the
// same engine.

struct SelfCase {
  std::string path;
  std::string content;
  std::set<std::string> expect;  // rule ids that must fire, exactly
};

int run_self_test() {
  const std::vector<SelfCase> cases = {
      {"src/a.cpp", "#include <random>\nstd::random_device rd;\n",
       {"randomness"}},
      {"src/b.cpp", "int x = rand();\nvoid f() { srand(7); }\n",
       {"randomness"}},
      {"src/c.cpp",
       "auto t = std::chrono::system_clock::now();\n", {"wall-clock"}},
      {"src/c2.cpp", "auto t = time(nullptr);\n", {"wall-clock"}},
      {"src/d.cpp", "#include <unordered_map>\nstd::unordered_map<int,int> m;\n",
       {"unordered-container"}},
      {"tensor/e.cpp", "float acc = 0.f;\n", {"float-accumulation"}},
      {"sim/e2.cpp", "float acc = 0.f;\n", {"float-accumulation"}},
      // float outside tensor//sim/ is somebody else's policy problem.
      {"src/e3.cpp", "float ok = 1.0f;\n", {}},
      {"src/f.cpp", "int* p = new int(3);\ndelete p;\n", {"raw-new"}},
      // Deleted special members are not raw delete.
      {"src/g.cpp", "struct S { S(const S&) = delete; };\n", {}},
      // Comments and strings never trigger.
      {"src/h.cpp",
       "// rand() and new and steady_clock in a comment\n"
       "const char* s = \"std::random_device\";\n",
       {}},
      // A raw string holding banned tokens stays inert.
      {"src/i.cpp", "const char* r = R\"(rand() new delete)\";\n", {}},
      // The seeded-good snippet: deterministic idioms pass everything.
      {"src/good.cpp",
       "#include <map>\n#include <memory>\n"
       "std::map<int, int> ordered;\n"
       "auto owned = std::make_unique<int>(4);\n"
       "// simulated clock, counter-keyed rng only\n",
       {}},
  };

  int failures = 0;
  for (const SelfCase& c : cases) {
    std::vector<Finding> findings;
    scan_content(c.path, c.content, findings);
    std::set<std::string> fired;
    for (const Finding& f : findings) fired.insert(f.rule);
    if (fired != c.expect) {
      ++failures;
      std::cerr << "fedlint self-test FAIL: " << c.path << " fired {";
      for (const auto& r : fired) std::cerr << r << ",";
      std::cerr << "} expected {";
      for (const auto& r : c.expect) std::cerr << r << ",";
      std::cerr << "}\n";
    }
  }
  if (failures) {
    std::cerr << "fedlint --self-test: " << failures << " case(s) failed\n";
    return 1;
  }
  std::cout << "fedlint --self-test: " << cases.size() << " cases ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const fed::CliFlags flags(argc, argv);

  if (flags.get_bool("list-rules", false)) {
    for (const Rule& rule : rules()) {
      std::cout << rule.id << ": " << rule.message << "\n";
    }
    return 0;
  }
  if (flags.get_bool("self-test", false)) return run_self_test();

  const fs::path root = flags.get_string("root", ".");
  if (!fs::is_directory(root)) {
    std::cerr << "fedlint: --root " << root << " is not a directory\n";
    return 2;
  }

  std::vector<AllowEntry> allowlist;
  if (const auto path = flags.get_optional_string("allowlist")) {
    allowlist = load_allowlist(*path);
  }

  std::vector<Finding> findings;
  // Repo layout: scan the source dirs (tests/ and build*/ stay out by
  // construction). Arbitrary --root (fixtures): scan everything under it.
  if (fs::is_directory(root / "src")) {
    for (const char* dir : {"src", "bench", "tools", "examples"}) {
      if (fs::is_directory(root / dir)) scan_tree(root / dir, root, findings);
    }
  } else {
    scan_tree(root, root, findings);
  }

  int status = 0;
  std::size_t reported = 0;
  for (const Finding& f : findings) {
    if (allowed(f, allowlist)) continue;
    std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] `"
              << f.excerpt << "` — ";
    for (const Rule& rule : rules()) {
      if (rule.id == f.rule) std::cerr << rule.message;
    }
    std::cerr << "\n";
    ++reported;
    status = 1;
  }
  for (const AllowEntry& entry : allowlist) {
    if (!entry.used) {
      std::cerr << "fedlint: unused allowlist entry `" << entry.prefix << " "
                << entry.rule << "` — remove it (the allowlist only shrinks)\n";
      status = 1;
    }
  }
  if (status == 0) {
    std::cout << "fedlint: clean\n";
  } else {
    std::cerr << "fedlint: " << reported << " finding(s)\n";
  }
  return status;
}
