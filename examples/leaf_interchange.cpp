// LEAF-format interchange: export a federated dataset to the JSON layout
// used by the LEAF benchmark suite (the source of the paper's real
// datasets), re-import it, and verify training proceeds identically. To
// run on *real* LEAF data, tokenize/flatten it into the same layout plus
// a `<prefix>_meta.json` and point --prefix at it.
//
//   ./leaf_interchange [--prefix /tmp/fedprox_leaf_demo]

#include <filesystem>
#include <iostream>

#include "core/registry.h"
#include "core/trainer.h"
#include "data/leaf_json.h"
#include "data/stats.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace fed;
  CliFlags flags(argc, argv);
  const std::string prefix =
      flags.get_string("prefix", "/tmp/fedprox_leaf_demo");

  const Workload w = make_workload("synthetic_1_1", /*seed=*/12);
  export_leaf(w.data, prefix);
  std::cout << "exported " << w.data.num_clients() << " devices to "
            << prefix << "_{train,test,meta}.json\n";

  const FederatedDataset imported = import_leaf(prefix);
  std::cout << format_stats_table({compute_stats(imported)}) << "\n";

  // Train on the imported copy; with identical data and seeds the
  // trajectory matches training on the original exactly.
  TrainerConfig config = fedprox_config(1.0);
  config.rounds = static_cast<std::size_t>(flags.get_int("rounds", 10));
  config.devices_per_round = 10;
  config.systems.epochs = 5;
  config.learning_rate = w.learning_rate;
  config.eval_every = config.rounds;
  config.seed = 12;

  const auto original = Trainer(*w.model, w.data, config).run();
  const auto roundtrip = Trainer(*w.model, imported, config).run();
  std::cout << "final loss on original: "
            << *original.final_metrics().train_loss << "\n"
            << "final loss on imported: "
            << *roundtrip.final_metrics().train_loss << "\n"
            << (original.final_parameters == roundtrip.final_parameters
                    ? "round-trip training is bit-exact\n"
                    : "WARNING: trajectories differ\n");
  std::filesystem::remove(prefix + "_train.json");
  std::filesystem::remove(prefix + "_test.json");
  std::filesystem::remove(prefix + "_meta.json");
  return original.final_parameters == roundtrip.final_parameters ? 0 : 1;
}
