// Checkpoint/resume demo: train half the rounds, save the global model,
// reload it, and finish training in a second Trainer. Because every
// random stream is keyed by (seed, round, device), the resumed run
// continues the exact same trajectory: the split run ends bit-identical
// to an unbroken run.
//
//   ./checkpoint_resume [--rounds 40]

#include <cstdio>
#include <iostream>

#include "core/registry.h"
#include "core/trainer.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/serialize.h"

int main(int argc, char** argv) {
  using namespace fed;
  CliFlags flags(argc, argv);
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 40));
  const std::size_t half = rounds / 2;
  const std::string path = "/tmp/fedprox_checkpoint.bin";

  const Workload w = make_workload("synthetic_1_1", /*seed=*/8);
  auto base = [&] {
    TrainerConfig c = fedprox_config(/*mu=*/1.0);
    c.devices_per_round = 10;
    c.systems.epochs = 20;
    c.systems.straggler_fraction = 0.5;
    c.learning_rate = w.learning_rate;
    c.seed = 8;
    c.eval_every = rounds;
    return c;
  };

  // Unbroken reference run.
  TrainerConfig whole = base();
  whole.rounds = rounds;
  const TrainHistory reference = Trainer(*w.model, w.data, whole).run();

  // First half, then checkpoint.
  TrainerConfig first = base();
  first.rounds = half;
  const TrainHistory part1 = Trainer(*w.model, w.data, first).run();
  save_checkpoint(path, part1.final_parameters);
  std::cout << "saved " << part1.final_parameters.size()
            << "-parameter checkpoint after round " << half << " to " << path
            << "\n";

  // Resume: load, warm-start, continue with the round counter offset so
  // the (seed, round, device) streams line up with the unbroken run.
  TrainerConfig second = base();
  second.rounds = rounds - half;
  second.first_round = half;
  second.initial_parameters =
      load_checkpoint(path, w.model->parameter_count());
  const TrainHistory part2 = Trainer(*w.model, w.data, second).run();

  double max_diff = 0.0;
  for (std::size_t i = 0; i < reference.final_parameters.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(reference.final_parameters[i] -
                                 part2.final_parameters[i]));
  }
  std::cout << "final loss (unbroken run):  "
            << *reference.final_metrics().train_loss << "\n"
            << "final loss (resumed run):   "
            << *part2.final_metrics().train_loss << "\n"
            << "max |param difference|:     " << max_diff << "\n"
            << (max_diff == 0.0 ? "resume is bit-exact\n"
                                : "WARNING: trajectories diverged\n");
  std::remove(path.c_str());
  return max_diff == 0.0 ? 0 : 1;
}
