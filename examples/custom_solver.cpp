// Solver-agnosticism demo: FedProx only requires each device to return a
// gamma-inexact minimizer of its proximal subproblem — *any* local solver
// works (paper Section 3.2). This example plugs in a user-defined
// momentum-SGD solver and compares it with the built-in plain SGD,
// measuring the realized gamma-inexactness of each.
//
//   ./custom_solver [--rounds 40]

#include <iostream>
#include <numeric>

#include "core/registry.h"
#include "core/trainer.h"
#include "optim/prox_sgd.h"
#include "support/cli.h"
#include "support/csv.h"
#include "tensor/ops.h"

namespace {

using namespace fed;

// Mini-batch SGD with heavy-ball momentum on the proximal objective.
// Only `solve` is required; the framework supplies the subproblem
// (model, data, anchor w^t, mu) and a deterministic mini-batch stream.
class MomentumSgdSolver final : public LocalSolver {
 public:
  explicit MomentumSgdSolver(double beta) : beta_(beta) {}
  std::string name() const override { return "momentum_sgd"; }

  void solve(const LocalProblem& problem, const SolveBudget& budget, Rng& rng,
             std::span<double> w) const override {
    const LocalObjective objective(problem);
    const std::size_t n = objective.num_samples();
    if (n == 0 || budget.iterations == 0) return;
    Vector grad(objective.dimension()), velocity(objective.dimension(), 0.0);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::size_t cursor = n;
    for (std::size_t it = 0; it < budget.iterations; ++it) {
      if (cursor >= n) {
        rng.shuffle(order);
        cursor = 0;
      }
      const std::size_t take = std::min(budget.batch_size, n - cursor);
      std::span<const std::size_t> batch(order.data() + cursor, take);
      cursor += take;
      objective.loss_and_grad(w, batch, grad);
      for (std::size_t i = 0; i < w.size(); ++i) {
        velocity[i] = beta_ * velocity[i] - budget.learning_rate * grad[i];
        w[i] += velocity[i];
      }
    }
  }

 private:
  double beta_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fed;
  CliFlags flags(argc, argv);
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 40));

  const Workload w = make_workload("synthetic_0.5_0.5", /*seed=*/3);

  auto run = [&](std::shared_ptr<const LocalSolver> solver) {
    TrainerConfig config = fedprox_config(/*mu=*/1.0);
    config.rounds = rounds;
    config.devices_per_round = 10;
    config.systems.epochs = 20;
    config.learning_rate = w.learning_rate;
    config.eval_every = rounds;
    config.measure_gamma = true;  // log realized inexactness (Definition 2)
    config.seed = 3;
    config.solver = std::move(solver);
    return Trainer(*w.model, w.data, config).run();
  };

  const auto plain = run(nullptr);  // default: built-in SGD
  const auto momentum = run(std::make_shared<MomentumSgdSolver>(0.9));

  auto mean_gamma = [](const TrainHistory& h) {
    double total = 0.0;
    std::size_t count = 0;
    for (const auto& m : h.rounds) {
      if (m.mean_gamma) {
        total += *m.mean_gamma;
        ++count;
      }
    }
    return count ? total / static_cast<double>(count) : 0.0;
  };

  TablePrinter table({"local solver", "final loss", "final test accuracy",
                      "mean realized gamma"});
  table.add_row({"sgd (built-in)",
                 TablePrinter::fmt(*plain.final_metrics().train_loss),
                 TablePrinter::fmt(*plain.final_metrics().test_accuracy),
                 TablePrinter::fmt(mean_gamma(plain))});
  table.add_row({"momentum_sgd (user-defined)",
                 TablePrinter::fmt(*momentum.final_metrics().train_loss),
                 TablePrinter::fmt(*momentum.final_metrics().test_accuracy),
                 TablePrinter::fmt(mean_gamma(momentum))});
  std::cout << table.render()
            << "\nSmaller gamma = more exact local solves (Definition 2).\n"
               "Both solvers trained through the identical federated\n"
               "pipeline — swapping the local solver is the only change, and\n"
               "its realized inexactness is measured rather than assumed.\n";
  return 0;
}
