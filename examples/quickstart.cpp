// Quickstart: train FedProx on the paper's Synthetic(1,1) dataset and
// watch the global loss fall.
//
//   ./quickstart [--rounds 50] [--mu 1.0] [--stragglers 0.5]
//                [--transport inprocess|serialized] [--shards N]
//                [--faults drop=0.1,corrupt=0.01,delay_ms=50]
//                [--retries 2] [--deadline-ms 0] [--quorum 1.0]
//                [--trace-out trace.jsonl] [--trace-rotate-mb N]
//                [--profile-out run.trace.json]
//                [--metrics-out metrics.prom] [--metrics-every N]
//                [--churn arrive=0.05,depart=0.05]
//                [--checkpoint-every N] [--checkpoint-dir DIR]
//                [--checkpoint-retain G] [--resume]
//
// The channel/server flags are the shared bench set (bench/bench_common.h):
// quickstart only adds --mu/--rounds/--stragglers on top.

#include <iostream>
#include <stdexcept>

#include "bench_common.h"
#include "comm/transport.h"
#include "core/checkpoint.h"
#include "core/registry.h"
#include "core/trainer.h"
#include "obs/health.h"
#include "obs/observer.h"
#include "support/cli.h"
#include "support/csv.h"

namespace {

// Observers receive every round's metrics on the round thread; this one
// prints the evaluated ones (the old RoundCallback, as an observer).
struct ProgressPrinter : fed::TrainingObserver {
  void on_round_end(const fed::RoundMetrics& m,
                    const fed::RoundTrace&) override {
    if (!m.evaluated()) return;
    std::cout << "round " << m.round << ": loss "
              << fed::TablePrinter::fmt(*m.train_loss) << ", test accuracy "
              << fed::TablePrinter::fmt(*m.test_accuracy) << "\n";
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fed;
  CliFlags flags(argc, argv);

  // Quickstart-specific flags, read before parse_options so the shared
  // parser's unknown-flag warning stays quiet about them.
  const double mu = flags.get_double("mu", 1.0);
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 50));
  const double stragglers = flags.get_double("stragglers", 0.5);
  const bench::BenchOptions options = bench::parse_options(flags);

  // 1. Build a federated dataset and its model. Workloads bundle the
  //    paper's hyper-parameters; you can also construct datasets and
  //    models directly (see the other examples).
  const Workload workload = make_workload("synthetic_1_1", /*seed=*/1);
  std::cout << "dataset: " << workload.data.name << " with "
            << workload.data.num_clients() << " devices, "
            << workload.data.total_train_samples() << " training samples\n";

  // 2. Configure FedProx: K=10 devices per round, E=20 local epochs,
  //    proximal coefficient mu, and a straggler fraction to simulate
  //    systems heterogeneity. apply_common_flags installs the shared
  //    channel/server options: --transport (serialized round-trips every
  //    payload through the binary wire format, bit-identically),
  //    --shards (hierarchical aggregation, also bit-identical), and the
  //    fault/recovery knobs.
  TrainerConfig config = fedprox_config(mu);
  config.rounds = rounds;
  config.devices_per_round = 10;
  config.systems.epochs = 20;
  config.systems.straggler_fraction = stragglers;
  config.learning_rate = workload.learning_rate;
  config.eval_every = 5;
  bench::apply_common_flags(config, options);
  std::cout << "transport: " << config.transport->name() << "\n";
  if (config.shards > 1) {
    std::cout << "aggregator shards: " << config.shards << "\n";
  }
  if (config.faults.any()) {
    std::cout << "faults: " << to_string(config.faults) << " (retries "
              << config.recovery.max_retries << ", deadline "
              << config.recovery.deadline_ms << " ms, quorum "
              << config.recovery.quorum << ")\n";
  }

  // 3. Train, printing each evaluated round. TraceCapture owns the
  //    --trace-out JSONL sink (per-phase wall times for every round) and
  //    the --profile-out span profiler session (nested run -> round ->
  //    phase -> exchange spans, written as a Chrome trace-event file on
  //    destruction). A HealthMonitor watches every round for numeric
  //    trouble.
  bench::TraceCapture capture(options);
  Trainer trainer(*workload.model, workload.data, config);
  ProgressPrinter printer;
  trainer.add_observer(printer);

  HealthMonitor health;
  trainer.add_observer(health);
  if (capture.observer()) trainer.add_observer(*capture.observer());

  // --resume continues from the newest FPC1 checkpoint in the checkpoint
  // dir (telemetry already switched to append mode in TraceCapture);
  // without one there is nothing to continue and bailing out loudly
  // beats silently retraining from round 0.
  TrainHistory history;
  try {
    if (options.resume) {
      if (!config.checkpoint.enabled()) {
        std::cerr << "--resume requires --checkpoint-every/--checkpoint-dir\n";
        return 1;
      }
      const auto latest = latest_checkpoint(config.checkpoint.dir);
      if (!latest) {
        std::cerr << "--resume: no checkpoint found in "
                  << config.checkpoint.dir << "\n";
        return 1;
      }
      history = trainer.resume(*latest);
    } else {
      history = trainer.run();
    }
  } catch (const HealthError& error) {
    std::cerr << error.what() << "\n";
    return 1;
  } catch (const std::runtime_error& error) {
    // e.g. a fingerprint mismatch: resuming under different
    // determinism-relevant settings than the checkpointed run.
    std::cerr << error.what() << "\n";
    return 1;
  }

  std::cout << "\nfinal loss " << *history.final_metrics().train_loss
            << ", final test accuracy "
            << *history.final_metrics().test_accuracy << "\n";
  return 0;
}
