// Quickstart: train FedProx on the paper's Synthetic(1,1) dataset and
// watch the global loss fall.
//
//   ./quickstart [--rounds 50] [--mu 1.0] [--stragglers 0.5]
//                [--transport inprocess|serialized]
//                [--faults drop=0.1,corrupt=0.01,delay_ms=50]
//                [--retries 2] [--deadline-ms 0] [--quorum 1.0]
//                [--trace-out trace.jsonl] [--profile-out run.trace.json]

#include <iostream>
#include <memory>

#include "comm/transport.h"
#include "core/registry.h"
#include "core/trainer.h"
#include "obs/chrome_trace.h"
#include "obs/health.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "obs/trace_sink.h"
#include "support/cli.h"
#include "support/csv.h"

namespace {

// Observers receive every round's metrics on the round thread; this one
// prints the evaluated ones (the old RoundCallback, as an observer).
struct ProgressPrinter : fed::TrainingObserver {
  void on_round_end(const fed::RoundMetrics& m,
                    const fed::RoundTrace&) override {
    if (!m.evaluated()) return;
    std::cout << "round " << m.round << ": loss "
              << fed::TablePrinter::fmt(*m.train_loss) << ", test accuracy "
              << fed::TablePrinter::fmt(*m.test_accuracy) << "\n";
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fed;
  CliFlags flags(argc, argv);

  // 1. Build a federated dataset and its model. Workloads bundle the
  //    paper's hyper-parameters; you can also construct datasets and
  //    models directly (see the other examples).
  const Workload workload = make_workload("synthetic_1_1", /*seed=*/1);
  std::cout << "dataset: " << workload.data.name << " with "
            << workload.data.num_clients() << " devices, "
            << workload.data.total_train_samples() << " training samples\n";

  // 2. Configure FedProx: K=10 devices per round, E=20 local epochs,
  //    proximal coefficient mu, and a straggler fraction to simulate
  //    systems heterogeneity.
  TrainerConfig config = fedprox_config(flags.get_double("mu", 1.0));
  config.rounds = static_cast<std::size_t>(flags.get_int("rounds", 50));
  config.devices_per_round = 10;
  config.systems.epochs = 20;
  config.systems.straggler_fraction = flags.get_double("stragglers", 0.5);
  config.learning_rate = workload.learning_rate;
  config.eval_every = 5;

  // --transport serialized round-trips every broadcast/update through
  // the binary wire format (what a networked deployment would send);
  // results are bit-identical to the default zero-copy transport.
  const std::string transport = flags.get_string("transport", "inprocess");
  config.transport = make_transport(parse_transport_kind(transport));
  std::cout << "transport: " << config.transport->name() << "\n";

  // --faults injects deterministic channel faults (drops, corruption,
  // duplicates, latency) into the transport above; the recovery flags
  // tune how the round driver rides them out. Same seed, same faults.
  if (auto faults = flags.get_optional_string("faults")) {
    config.faults = parse_fault_profile(*faults);
    config.recovery.max_retries =
        static_cast<std::size_t>(flags.get_int("retries", 2));
    config.recovery.deadline_ms = flags.get_double("deadline-ms", 0.0);
    config.recovery.quorum = flags.get_double("quorum", 1.0);
    std::cout << "faults: " << to_string(config.faults) << " (retries "
              << config.recovery.max_retries << ", deadline "
              << config.recovery.deadline_ms << " ms, quorum "
              << config.recovery.quorum << ")\n";
  }

  // 3. Train, printing each evaluated round. With --trace-out a JSONL
  //    sink records per-phase wall times for every round; with
  //    --profile-out the span profiler captures nested
  //    run -> round -> phase -> exchange spans into a Chrome
  //    trace-event file (open in chrome://tracing or ui.perfetto.dev).
  //    A HealthMonitor watches every round for numeric trouble.
  Trainer trainer(*workload.model, workload.data, config);
  ProgressPrinter printer;
  trainer.add_observer(printer);

  HealthMonitor health;
  trainer.add_observer(health);

  std::unique_ptr<JsonlTraceSink> sink;
  std::unique_ptr<TraceObserver> tracer;
  if (auto path = flags.get_optional_string("trace-out")) {
    sink = std::make_unique<JsonlTraceSink>(*path);
    tracer = std::make_unique<TraceObserver>(*sink);
    trainer.add_observer(*tracer);
    std::cout << "streaming round traces to " << *path << "\n";
  }

  const auto profile_path = flags.get_optional_string("profile-out");
  if (profile_path) {
    Profiler::instance().set_thread_name("main");
    Profiler::instance().enable();
  }

  TrainHistory history;
  try {
    history = trainer.run();
  } catch (const HealthError& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }

  if (profile_path) {
    Profiler::instance().disable();
    write_chrome_trace(*profile_path);
    std::cout << "wrote span profile to " << *profile_path
              << " (open in chrome://tracing or ui.perfetto.dev)\n";
  }

  std::cout << "\nfinal loss " << *history.final_metrics().train_loss
            << ", final test accuracy "
            << *history.final_metrics().test_accuracy << "\n";
  return 0;
}
