// Systems heterogeneity demo: the same network, the same stragglers —
// FedAvg drops them, FedProx aggregates their partial work. Reproduces
// the qualitative Figure 1 story on one dataset in under a minute.
//
//   ./straggler_tolerance [--stragglers 0.9] [--rounds 60]

#include <iostream>

#include "core/registry.h"
#include "core/trainer.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/sparkline.h"

int main(int argc, char** argv) {
  using namespace fed;
  CliFlags flags(argc, argv);
  const double stragglers = flags.get_double("stragglers", 0.9);
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 60));

  const Workload w = make_workload("synthetic_1_1", /*seed=*/2);

  auto run = [&](Algorithm algorithm, double mu) {
    TrainerConfig config;
    config.algorithm = algorithm;
    config.mu = mu;
    config.rounds = rounds;
    config.devices_per_round = 10;
    config.systems.epochs = 20;
    config.systems.straggler_fraction = stragglers;
    config.learning_rate = w.learning_rate;
    config.eval_every = std::max<std::size_t>(1, rounds / 25);
    config.seed = 2;             // identical selection/stragglers/batches
    return Trainer(*w.model, w.data, config).run();
  };

  std::cout << "Synthetic(1,1), " << static_cast<int>(stragglers * 100)
            << "% stragglers, " << rounds << " rounds, E=20\n\n";

  const auto fedavg = run(Algorithm::kFedAvg, 0.0);
  const auto prox0 = run(Algorithm::kFedProx, 0.0);
  const auto prox1 = run(Algorithm::kFedProx, 1.0);

  TablePrinter table({"method", "straggler policy", "final loss",
                      "final test accuracy", "loss trajectory"});
  auto row = [&](const std::string& name, const std::string& policy,
                 const TrainHistory& h) {
    std::vector<double> losses;
    for (const auto& [_, loss] : h.loss_series()) losses.push_back(loss);
    table.add_row({name, policy,
                   TablePrinter::fmt(*h.final_metrics().train_loss),
                   TablePrinter::fmt(*h.final_metrics().test_accuracy),
                   sparkline(losses)});
  };
  row("FedAvg", "drop stragglers", fedavg);
  row("FedProx (mu=0)", "keep partial work", prox0);
  row("FedProx (mu=1)", "keep partial work + prox", prox1);
  std::cout << table.render()
            << "\nAll three runs saw the *same* device selections, straggler\n"
               "assignments, and mini-batch orders (the paper's paired-run\n"
               "protocol) — only the aggregation policy and mu differ.\n";
  return 0;
}
