// Ablation of the three mu policies on heterogeneous synthetic data:
//   fixed mu       — the paper's main method (grid-tuned constant)
//   adaptive mu    — the paper's loss-reactive heuristic (Figure 3)
//   theory mu      — this repo's extension of the paper's future-work
//                    note: mu_t proportional to the measured B(w^t)^2 - 1
//                    (Corollary 7 suggests mu ~ 6 L B^2)
//
//   ./mu_policies [--rounds 100] [--dataset synthetic_1_1]

#include <iostream>

#include "core/registry.h"
#include "core/trainer.h"
#include "support/cli.h"
#include "support/csv.h"

int main(int argc, char** argv) {
  using namespace fed;
  CliFlags flags(argc, argv);
  const std::string dataset = flags.get_string("dataset", "synthetic_1_1");
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 100));

  const Workload w = make_workload(dataset, /*seed=*/6);

  auto base = [&] {
    TrainerConfig c;
    c.algorithm = Algorithm::kFedProx;
    c.rounds = rounds;
    c.devices_per_round = 10;
    c.systems.epochs = 20;
    c.learning_rate = w.learning_rate;
    c.eval_every = rounds / 10 ? rounds / 10 : 1;
    c.seed = 6;
    return c;
  };

  TrainerConfig fixed = base();
  fixed.mu = w.best_mu;

  TrainerConfig adaptive = base();
  adaptive.adaptive_mu.enabled = true;
  adaptive.adaptive_mu.initial_mu = 0.0;

  TrainerConfig theory = base();
  theory.theory_mu.enabled = true;
  theory.theory_mu.coefficient = 0.05;

  TablePrinter table({"policy", "final mu", "final loss", "final test acc"});
  auto run = [&](const std::string& label, const TrainerConfig& config) {
    auto h = Trainer(*w.model, w.data, config).run();
    const auto& fin = h.final_metrics();
    table.add_row({label, TablePrinter::fmt(fin.mu, 3),
                   TablePrinter::fmt(*fin.train_loss),
                   TablePrinter::fmt(*fin.test_accuracy)});
  };
  run("fixed mu=" + std::to_string(w.best_mu), fixed);
  run("adaptive (loss heuristic)", adaptive);
  run("theory (mu ~ B^2 - 1)", theory);
  std::cout << "dataset " << dataset << ", " << rounds << " rounds, E=20\n\n"
            << table.render();
  return 0;
}
