// Adaptive-mu demo (paper Section 5.3.2, Figure 3): start from an
// adversarial mu and let the +0.1/-0.1 heuristic find its way.
//
//   ./adaptive_mu_demo [--dataset synthetic_1_1] [--initial-mu 0]

#include <iostream>

#include "core/registry.h"
#include "core/trainer.h"
#include "obs/observer.h"
#include "support/cli.h"
#include "support/csv.h"

namespace {

struct MuTableObserver : fed::TrainingObserver {
  explicit MuTableObserver(fed::TablePrinter& out) : table(out) {}
  void on_round_end(const fed::RoundMetrics& m,
                    const fed::RoundTrace&) override {
    if (!m.evaluated()) return;
    table.add_row({std::to_string(m.round), fed::TablePrinter::fmt(m.mu, 2),
                   fed::TablePrinter::fmt(*m.train_loss),
                   fed::TablePrinter::fmt(*m.test_accuracy)});
  }
  fed::TablePrinter& table;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fed;
  CliFlags flags(argc, argv);
  const std::string dataset = flags.get_string("dataset", "synthetic_1_1");
  const double initial_mu = flags.get_double("initial-mu", 0.0);

  const Workload w = make_workload(dataset, /*seed=*/5);

  TrainerConfig config;
  config.algorithm = Algorithm::kFedProx;
  config.adaptive_mu.enabled = true;
  config.adaptive_mu.initial_mu = initial_mu;
  config.adaptive_mu.step = 0.1;      // the paper's increments
  config.adaptive_mu.patience = 5;    // decreases before relaxing mu
  config.rounds = static_cast<std::size_t>(flags.get_int("rounds", 80));
  config.devices_per_round = 10;
  config.systems.epochs = 20;
  config.learning_rate = w.learning_rate;
  config.eval_every = 4;
  config.seed = 5;

  std::cout << "dataset " << dataset << ", initial mu " << initial_mu
            << " (heuristic: +0.1 on loss increase, -0.1 after 5 "
               "consecutive decreases)\n\n";

  Trainer trainer(*w.model, w.data, config);
  TablePrinter table({"round", "mu", "train loss", "test accuracy"});
  MuTableObserver observer(table);
  trainer.add_observer(observer);
  trainer.run();
  std::cout << table.render();
  return 0;
}
