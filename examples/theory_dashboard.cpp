// Theory dashboard: measure, on a real federated problem, every quantity
// the FedProx analysis is stated in — B(w) (Definition 3), realized gamma
// (Definition 2), empirical smoothness constants — then evaluate
// Theorem 4's rho over a mu grid and report the smallest certified mu and
// Corollary 7's prescription.
//
//   ./theory_dashboard [--dataset synthetic_1_1] [--epochs 20]

#include <iostream>

#include "core/convergence.h"
#include "core/dissimilarity.h"
#include "core/registry.h"
#include "optim/inexactness.h"
#include "optim/sgd.h"
#include "support/cli.h"
#include "support/csv.h"

int main(int argc, char** argv) {
  using namespace fed;
  CliFlags flags(argc, argv);
  const std::string dataset = flags.get_string("dataset", "synthetic_1_1");
  const auto epochs = static_cast<std::size_t>(flags.get_int("epochs", 20));

  const Workload w = make_workload(dataset, /*seed=*/11);
  const Model& model = *w.model;

  Vector params(model.parameter_count());
  Rng init = make_stream(11, StreamKind::kModelInit);
  model.init_parameters(params, init);

  // 1. Dissimilarity B(w) over the federation (Definition 3).
  const auto dis = measure_dissimilarity(model, w.data, params, nullptr);

  // 2. Realized gamma for a typical local solve at this model (Def. 2):
  //    run the paper's local solver on a handful of devices and take the
  //    worst gamma (Corollary 9 uses gamma^t = max over the round).
  const double mu_probe = w.best_mu;
  SgdSolver solver;
  double worst_gamma = 0.0;
  const std::size_t probe_devices = std::min<std::size_t>(5, w.data.num_clients());
  for (std::size_t k = 0; k < probe_devices; ++k) {
    const Dataset& train = w.data.clients[k].train;
    if (train.empty()) continue;
    LocalProblem problem{&model, &train, params, mu_probe, {}};
    SolveBudget budget{
        .iterations = iterations_for_epochs(epochs, train.size(), w.batch_size),
        .batch_size = w.batch_size,
        .learning_rate = w.learning_rate};
    Rng rng = make_stream(11, StreamKind::kMinibatch, 0, k + 1);
    Vector local(params);
    solver.solve(problem, budget, rng, local);
    worst_gamma = std::max(worst_gamma, measure_gamma(problem, local));
  }

  // 3. Smoothness constants, estimated on a subset of devices.
  FederatedDataset subset;
  subset.clients.assign(w.data.clients.begin(),
                        w.data.clients.begin() + probe_devices);
  const auto smooth = estimate_federated_smoothness(model, subset, params,
                                                    /*probes=*/8,
                                                    /*step=*/1e-3, 11);

  std::cout << "dataset " << dataset << " (" << w.data.num_clients()
            << " devices)\n\n"
            << "measured at the initial model w0:\n"
            << "  B(w0)                 = " << TablePrinter::fmt(dis.b) << "\n"
            << "  grad variance         = " << TablePrinter::fmt(dis.variance)
            << "\n"
            << "  worst gamma (E=" << epochs << ", mu=" << mu_probe
            << ")   = " << TablePrinter::fmt(worst_gamma) << "\n"
            << "  L (estimated)         = " << TablePrinter::fmt(smooth.l)
            << "\n"
            << "  L_minus (estimated)   = " << TablePrinter::fmt(smooth.l_minus)
            << "\n\n";

  ConvergenceInputs in;
  in.gamma = worst_gamma;
  in.b = dis.b;
  in.k = 10.0;
  in.l = smooth.l;
  in.l_minus = smooth.l_minus;

  std::cout << "Remark 5 conditions (gamma*B < 1, B < sqrt(K)): "
            << (remark5_conditions(in.gamma, in.b, in.k) ? "satisfied"
                                                         : "NOT satisfied")
            << "\n\n";

  TablePrinter table({"mu", "Theorem 4 rho", "certifies decrease?"});
  for (double mu : {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0}) {
    if (mu <= in.l_minus) {
      table.add_row({TablePrinter::fmt(mu, 2), "-", "mu <= L_minus"});
      continue;
    }
    in.mu = mu;
    const double rho = theorem4_rho(in);
    table.add_row({TablePrinter::fmt(mu, 2), TablePrinter::fmt(rho, 6),
                   rho > 0 ? "yes" : "no"});
  }
  std::cout << table.render() << "\n";

  const double smallest = smallest_certified_mu(in);
  if (smallest > 0) {
    std::cout << "smallest certified mu  ~= " << TablePrinter::fmt(smallest, 3)
              << "\n";
  } else {
    std::cout << "no mu in range is certified by Theorem 4 for these "
                 "constants\n(the theorem is sufficient, not necessary — "
                 "practice converges far earlier)\n";
  }
  std::cout << "Corollary 7 mu (6 L B^2) = "
            << TablePrinter::fmt(corollary7_mu(in.l, in.b), 3) << "\n";
  return 0;
}
