#include "sim/sharded.h"

#include <utility>

#include "comm/message.h"
#include "obs/profiler.h"
#include "support/serialize.h"

namespace fed {

std::vector<ShardSlice> plan_shards(std::size_t devices, std::size_t shards) {
  if (shards == 0) shards = 1;
  std::vector<ShardSlice> slices(shards);
  const std::size_t base = devices / shards;
  const std::size_t extra = devices % shards;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    slices[s] = {begin, begin + size};
    begin += size;
  }
  return slices;
}

ShardedServer::ShardedServer(SamplingScheme scheme, std::size_t dim,
                             std::size_t shards)
    : contributors_(shards == 0 ? 1 : shards, 0),
      partial_bytes_(shards == 0 ? 1 : shards, 0) {
  partials_.reserve(contributors_.size());
  for (std::size_t s = 0; s < contributors_.size(); ++s) {
    partials_.emplace_back(scheme, dim);
  }
}

void ShardedServer::accumulate(std::size_t shard,
                               const Contribution& contribution) {
  partials_[shard].accumulate(contribution);
  ++contributors_[shard];
}

std::size_t ShardedServer::total_contributors() const {
  std::size_t total = 0;
  for (const std::size_t c : contributors_) total += c;
  return total;
}

bool ShardedServer::reduce(std::size_t round, std::span<double> w) {
  PartialAggregate root(partials_.front().scheme(), partials_.front().dim());
  for (std::size_t s = 0; s < partials_.size(); ++s) {
    Span span("shard_reduce", "phase", "round",
              static_cast<std::int64_t>(round), "shard",
              static_cast<std::int64_t>(s), "contributors",
              static_cast<std::int64_t>(partials_[s].contributors()));
    // The uplink always round-trips the wire format, even with one
    // shard: partial_bytes_ is then real traffic, and a codec regression
    // cannot hide behind an in-process shortcut.
    const WireBuffer wire = encode_partial_sum(
        {.round = round, .shard = s, .partial = std::move(partials_[s])});
    partial_bytes_[s] = wire.size();
    root.merge(std::move(decode_partial_sum(wire).partial));
  }
  return root.finalize(w);
}

}  // namespace fed
