#include "sim/sharded.h"

#include <utility>

#include "comm/message.h"
#include "obs/profiler.h"
#include "support/serialize.h"

namespace fed {

std::vector<ShardSlice> plan_shards(std::size_t devices, std::size_t shards) {
  if (shards == 0) shards = 1;
  std::vector<ShardSlice> slices(shards);
  const std::size_t base = devices / shards;
  const std::size_t extra = devices % shards;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    slices[s] = {begin, begin + size};
    begin += size;
  }
  return slices;
}

ShardedServer::ShardedServer(SamplingScheme scheme, std::size_t dim,
                             std::size_t shards)
    : contributors_(shards == 0 ? 1 : shards, 0),
      partial_bytes_(shards == 0 ? 1 : shards, 0) {
  partials_.reserve(contributors_.size());
  for (std::size_t s = 0; s < contributors_.size(); ++s) {
    partials_.emplace_back(scheme, dim);
  }
}

void ShardedServer::accumulate(std::size_t shard,
                               const Contribution& contribution) {
  partials_[shard].accumulate(contribution);
  ++contributors_[shard];
}

std::size_t ShardedServer::total_contributors() const {
  std::size_t total = 0;
  for (const std::size_t c : contributors_) total += c;
  return total;
}

bool ShardedServer::reduce(std::size_t round, std::span<double> w,
                           const TraceContext& trace) {
  // Two phases, mirroring the eventual multi-process layout: each shard
  // encodes its partial (shard-side work), then the root decodes and
  // merges them all (root-side work). A flow arrow per shard links its
  // uplink to the root merge.
  std::vector<WireBuffer> wires;
  wires.reserve(partials_.size());
  for (std::size_t s = 0; s < partials_.size(); ++s) {
    Span span("shard_reduce", "phase", "round",
              static_cast<std::int64_t>(round), "shard",
              static_cast<std::int64_t>(s), "contributors",
              static_cast<std::int64_t>(partials_[s].contributors()));
    // The uplink always round-trips the wire format, even with one
    // shard: partial_bytes_ is then real traffic, and a codec regression
    // cannot hide behind an in-process shortcut.
    PartialSumUpdate message{.round = round,
                             .trace = trace,
                             .shard = s,
                             .partial = std::move(partials_[s])};
    message.trace.span_id =
        derive_trace_span(trace.trace_id, TraceSpanKind::kShardPartial, s);
    wires.push_back(encode_partial_sum(message));
    partial_bytes_[s] = wires.back().size();
    flow_start("partial_flow", "flow", message.trace.span_id, "shard",
               static_cast<std::int64_t>(s));
  }
  Span merge_span("root_merge", "phase", "round",
                  static_cast<std::int64_t>(round), "shards",
                  static_cast<std::int64_t>(wires.size()), "trace_id",
                  static_cast<std::int64_t>(trace.trace_id));
  PartialAggregate root(partials_.front().scheme(), partials_.front().dim());
  for (std::size_t s = 0; s < wires.size(); ++s) {
    PartialSumUpdate received = decode_partial_sum(wires[s]);
    flow_end("partial_flow", "flow", received.trace.span_id, "shard",
             static_cast<std::int64_t>(s));
    root.merge(std::move(received.partial));
  }
  return root.finalize(w);
}

}  // namespace fed
