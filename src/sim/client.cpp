#include "sim/client.h"

#include "optim/inexactness.h"
#include "support/stopwatch.h"
#include "tensor/ops.h"

namespace fed {

ClientResult run_client(const Model& model, const ClientData& data,
                        std::span<const double> w_global,
                        const LocalSolver& solver, const DeviceBudget& budget,
                        const RoundConfig& config,
                        std::span<const double> correction,
                        Rng& minibatch_rng) {
  ClientResult result;
  result.device = budget.device;
  result.num_samples = data.train.size();
  result.straggler = budget.straggler;
  result.iterations = budget.iterations;

  LocalProblem problem{.model = &model,
                       .data = &data.train,
                       .anchor = w_global,
                       .mu = config.mu,
                       .correction = correction};
  SolveBudget solve_budget{.iterations = budget.iterations,
                           .batch_size = config.batch_size,
                           .learning_rate = config.learning_rate,
                           .clip_norm = config.clip_norm};

  result.update.assign(w_global.begin(), w_global.end());
  Stopwatch solve_timer;
  solver.solve(problem, solve_budget, minibatch_rng, result.update);
  result.solve_seconds = solve_timer.seconds();

  if (config.measure_gamma && !data.train.empty()) {
    result.gamma = measure_gamma(problem, result.update);
    result.gamma_measured = true;
  }
  return result;
}

}  // namespace fed
