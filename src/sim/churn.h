// Open-world device churn (the robustness premise of Section 2: devices
// "may drop out" and the active population is never fixed).
//
// The bundled simulation is closed-world: every device in the dataset is
// reachable every round. A DeviceRegistry lifts that assumption. Devices
// arrive and depart on a deterministic counter-keyed schedule — one
// Rng(seed, {kChurn, round, device}) draw per device per round, nothing
// else — so the live population at round t is a pure function of
// (seed, churn config, t), identical across threads, shards, and
// transports. Sampling, shard planning, and quorum all operate on the
// live population each round (core/round_driver).
//
// Timeline of one round t:
//   begin_round(t)  inactive devices may arrive (selectable immediately);
//                   active devices may be marked departing — they stay
//                   selectable but fail mid-round (every exchange attempt
//                   is lost, like a crashed phone mid-exchange)
//   ...selection, exchanges, aggregation over active_devices()...
//   end_round(t)    departures take effect; the device is gone next round
//
// Departures are capped so the population never falls below
// max(min_active, 1): the cap is applied in ascending device order, so
// the capped set is itself deterministic. With a zero ChurnConfig the
// registry is inert — everyone active forever — and the round driver
// takes the closed-world fast path, keeping history bit-identical to a
// registry-free build.
//
// The registry is driven from the round thread only; pool workers may
// call the const accessors during the exchange barrier (the round thread
// does not mutate between begin_round and end_round).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fed {

// Per-round, per-device churn probabilities. Parsed from the --churn
// flag: "arrive=0.05,depart=0.02[,initial=100][,min_active=10]".
struct ChurnConfig {
  double arrive = 0.0;   // P(inactive device joins this round)
  double depart = 0.0;   // P(active device leaves mid-round)
  // Devices [0, initial) start active; 0 means the whole population does
  // (the closed-world default, so an all-zero config changes nothing).
  std::size_t initial = 0;
  // Departure floor: the active population never drops below this. The
  // trainer raises it to devices_per_round so sampling stays well-defined.
  std::size_t min_active = 0;

  bool any() const { return arrive > 0.0 || depart > 0.0 || initial > 0; }
};

// Parses "key=value[,key=value...]" with keys arrive/depart/initial/
// min_active; probabilities must lie in [0, 1]. Throws
// std::invalid_argument on unknown keys or out-of-range values.
ChurnConfig parse_churn_config(const std::string& spec);
// Canonical "arrive=0.05,depart=0.02,..." form (only the non-zero knobs).
std::string to_string(const ChurnConfig& config);

// The live device population under a churn schedule. See file comment.
class DeviceRegistry {
 public:
  // `population` is the dataset's device count. Throws on a bad config
  // (probabilities outside [0, 1], initial/min_active > population).
  DeviceRegistry(std::size_t population, ChurnConfig config,
                 std::uint64_t seed);

  // Draws this round's arrivals (effective immediately) and the capped
  // set of mid-round departures. Idempotent per round is NOT promised;
  // call exactly once per training round, before selection.
  void begin_round(std::uint64_t round);
  // Applies the departures drawn by begin_round(round).
  void end_round(std::uint64_t round);

  // Sorted ids of the currently-active devices.
  const std::vector<std::size_t>& active_devices() const { return active_ids_; }
  std::size_t active_count() const { return active_ids_.size(); }
  std::size_t population() const { return active_.size(); }
  bool active(std::size_t device) const { return active_[device] != 0; }
  // True between begin_round and end_round for a device that leaves this
  // round. Safe to call from pool workers during the exchange barrier.
  bool departing(std::size_t device) const { return departing_[device] != 0; }
  // Devices leaving at the end of the current round (valid between
  // begin_round and end_round; zero between rounds).
  std::size_t departing_count() const { return departing_ids_.size(); }

  // Lifetime totals, for traces and the soak report.
  std::uint64_t total_arrivals() const { return total_arrivals_; }
  std::uint64_t total_departures() const { return total_departures_; }

  const ChurnConfig& config() const { return config_; }

  // Checkpoint support: the full mutable state is the active bitmask plus
  // the lifetime totals (departing_ is always empty between rounds).
  std::vector<std::uint8_t> pack_active() const;
  void restore(std::span<const std::uint8_t> packed_active,
               std::uint64_t arrivals, std::uint64_t departures);

 private:
  void rebuild_active_ids();

  ChurnConfig config_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> active_;     // 1 = device is live
  std::vector<std::uint8_t> departing_;  // 1 = leaves at end_round
  std::vector<std::size_t> active_ids_;  // sorted cache of active_
  std::vector<std::size_t> departing_ids_;  // this round's capped set
  std::uint64_t total_arrivals_ = 0;
  std::uint64_t total_departures_ = 0;
};

}  // namespace fed
