#include "sim/churn.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "support/rng.h"

namespace fed {

namespace {

void check_probability(const char* key, double value) {
  if (value < 0.0 || value > 1.0) {
    throw std::invalid_argument("churn config: " + std::string(key) + "=" +
                                std::to_string(value) + " outside [0, 1]");
  }
}

void validate(const ChurnConfig& config) {
  check_probability("arrive", config.arrive);
  check_probability("depart", config.depart);
}

}  // namespace

ChurnConfig parse_churn_config(const std::string& spec) {
  ChurnConfig config;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("churn config: expected key=value, got \"" +
                                  item + "\"");
    }
    const std::string key = item.substr(0, eq);
    double value = 0.0;
    try {
      std::size_t used = 0;
      value = std::stod(item.substr(eq + 1), &used);
      if (used != item.size() - eq - 1) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      throw std::invalid_argument("churn config: bad value in \"" + item +
                                  "\"");
    }
    if (key == "arrive") {
      config.arrive = value;
    } else if (key == "depart") {
      config.depart = value;
    } else if (key == "initial") {
      if (value < 0.0) throw std::invalid_argument("churn config: initial < 0");
      config.initial = static_cast<std::size_t>(value);
    } else if (key == "min_active") {
      if (value < 0.0) {
        throw std::invalid_argument("churn config: min_active < 0");
      }
      config.min_active = static_cast<std::size_t>(value);
    } else {
      throw std::invalid_argument(
          "churn config: unknown key \"" + key +
          "\" (expected arrive, depart, initial, or min_active)");
    }
  }
  validate(config);
  return config;
}

std::string to_string(const ChurnConfig& config) {
  std::ostringstream out;
  const auto emit = [&out](const char* key, double value) {
    if (value <= 0.0) return;
    if (out.tellp() > 0) out << ",";
    out << key << "=" << value;
  };
  emit("arrive", config.arrive);
  emit("depart", config.depart);
  emit("initial", static_cast<double>(config.initial));
  emit("min_active", static_cast<double>(config.min_active));
  const std::string s = out.str();
  return s.empty() ? "none" : s;
}

DeviceRegistry::DeviceRegistry(std::size_t population, ChurnConfig config,
                               std::uint64_t seed)
    : config_(config), seed_(seed) {
  validate(config_);
  if (population == 0) {
    throw std::invalid_argument("DeviceRegistry: empty population");
  }
  if (config_.initial > population || config_.min_active > population) {
    throw std::invalid_argument(
        "DeviceRegistry: initial/min_active exceed the population");
  }
  const std::size_t initially_active =
      config_.initial == 0 ? population
                           : std::max(config_.initial, config_.min_active);
  active_.assign(population, 0);
  for (std::size_t k = 0; k < initially_active; ++k) active_[k] = 1;
  departing_.assign(population, 0);
  rebuild_active_ids();
}

void DeviceRegistry::begin_round(std::uint64_t round) {
  if (!config_.any()) return;
  // One stream per (round, device); a single uniform draw decides the
  // device's transition, so arrivals and departures never perturb each
  // other and the schedule is independent of every other subsystem.
  // Pass 1: arrivals (a device that arrives cannot depart the same round).
  std::vector<std::uint8_t> arrived(active_.size(), 0);
  for (std::size_t k = 0; k < active_.size(); ++k) {
    if (active_[k]) continue;
    Rng rng(seed_, {static_cast<std::uint64_t>(StreamKind::kChurn), round,
                    static_cast<std::uint64_t>(k)});
    if (rng.uniform() < config_.arrive) {
      active_[k] = 1;
      arrived[k] = 1;
      ++total_arrivals_;
    }
  }
  // Pass 2: departure draws over the devices active before this round,
  // capped in ascending id order so the population never drops below the
  // floor (the floor counts post-arrival actives, so an arrival can
  // "make room" for a departure — still a pure function of the draws).
  std::size_t live = 0;
  for (std::size_t k = 0; k < active_.size(); ++k) live += active_[k] ? 1u : 0u;
  const std::size_t floor = std::max<std::size_t>(config_.min_active, 1);
  departing_ids_.clear();
  for (std::size_t k = 0; k < active_.size() && live > floor; ++k) {
    if (!active_[k] || arrived[k]) continue;
    Rng rng(seed_, {static_cast<std::uint64_t>(StreamKind::kChurn), round,
                    static_cast<std::uint64_t>(k)});
    if (rng.uniform() < config_.depart) {
      departing_[k] = 1;
      departing_ids_.push_back(k);
      --live;
    }
  }
  rebuild_active_ids();
}

void DeviceRegistry::end_round(std::uint64_t round) {
  (void)round;
  if (!config_.any()) return;
  if (departing_ids_.empty()) return;
  for (std::size_t k : departing_ids_) {
    active_[k] = 0;
    departing_[k] = 0;
    ++total_departures_;
  }
  departing_ids_.clear();
  rebuild_active_ids();
}

void DeviceRegistry::rebuild_active_ids() {
  active_ids_.clear();
  for (std::size_t k = 0; k < active_.size(); ++k) {
    if (active_[k]) active_ids_.push_back(k);
  }
}

std::vector<std::uint8_t> DeviceRegistry::pack_active() const {
  std::vector<std::uint8_t> packed((active_.size() + 7) / 8, 0);
  for (std::size_t k = 0; k < active_.size(); ++k) {
    if (active_[k]) packed[k / 8] |= static_cast<std::uint8_t>(1u << (k % 8));
  }
  return packed;
}

void DeviceRegistry::restore(std::span<const std::uint8_t> packed_active,
                             std::uint64_t arrivals,
                             std::uint64_t departures) {
  if (packed_active.size() != (active_.size() + 7) / 8) {
    throw std::invalid_argument(
        "DeviceRegistry: packed active bitmask does not match population");
  }
  for (std::size_t k = 0; k < active_.size(); ++k) {
    active_[k] = (packed_active[k / 8] >> (k % 8)) & 1u;
    departing_[k] = 0;
  }
  departing_ids_.clear();
  total_arrivals_ = arrivals;
  total_departures_ = departures;
  rebuild_active_ids();
}

}  // namespace fed
