// Systems-heterogeneity model (paper Section 5.2).
//
// Each round has a fixed global clock cycle. A configured fraction of the
// selected devices are "stragglers": they only complete x epochs of local
// work, x drawn uniformly from {1, .., E} (for E = 1, a uniformly drawn
// partial epoch measured in mini-batch iterations — the Figure 9 setting).
// Non-stragglers complete the full E epochs. FedAvg drops stragglers at
// aggregation; FedProx incorporates their partial solutions.
//
// Straggler identity and workloads depend only on (seed, round, device),
// never on the algorithm, so compared methods face identical conditions —
// the paper's paired-run protocol.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"

namespace fed {

// Alternative systems model: persistent per-device capability profiles.
// The paper's simulation redraws stragglers each round; real fleets have
// *persistently* slow devices ("the storage, computational, and
// communication capabilities of each device ... may differ due to
// variability in hardware", Section 2). With this model, device k has a
// fixed speed factor s_k = min(1, exp(N(0, speed_sigma_log))) relative to
// a reference device that completes exactly E epochs per clock cycle;
// device k completes floor(s_k * E * iters_per_epoch) iterations
// (at least 1). straggler_fraction is ignored while enabled.
struct DeviceProfileConfig {
  bool enabled = false;
  double speed_sigma_log = 1.0;
};

struct SystemsConfig {
  double straggler_fraction = 0.0;  // 0.0, 0.5, 0.9 in the paper
  std::size_t epochs = 20;          // E, the full workload per round
  DeviceProfileConfig profile;      // persistent-capability alternative
};

// The persistent speed factor of `device` under the profile model;
// deterministic in (seed, device), in (0, 1].
double device_speed_factor(const DeviceProfileConfig& config,
                           std::uint64_t seed, std::size_t device);

struct DeviceBudget {
  std::size_t device = 0;
  bool straggler = false;
  // Epochs completed (== config.epochs for non-stragglers; for E == 1
  // stragglers this stays 1 and `iterations` carries the partial epoch).
  std::size_t epochs = 0;
  // Mini-batch iterations completed within the clock cycle.
  std::size_t iterations = 0;
};

// Computes per-device budgets for one round. `train_sizes[i]` is the
// number of training samples on selected device `selected[i]`.
std::vector<DeviceBudget> assign_budgets(const SystemsConfig& config,
                                         std::uint64_t seed,
                                         std::uint64_t round,
                                         std::span<const std::size_t> selected,
                                         std::span<const std::size_t> train_sizes,
                                         std::size_t batch_size);

// Number of stragglers for a selection of size k (paper assigns the exact
// fraction, rounded to nearest).
std::size_t straggler_count(double fraction, std::size_t k);

}  // namespace fed
