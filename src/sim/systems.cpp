#include "sim/systems.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "optim/solver.h"

namespace fed {

std::size_t straggler_count(double fraction, std::size_t k) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("straggler fraction must be in [0,1]");
  }
  return static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(k)));
}

double device_speed_factor(const DeviceProfileConfig& config,
                           std::uint64_t seed, std::size_t device) {
  if (config.speed_sigma_log < 0.0) {
    throw std::invalid_argument("device_speed_factor: negative sigma");
  }
  // Keyed only by (seed, device): the profile persists across rounds.
  // Salt 0xd01ce distinguishes profile draws from per-round straggler draws.
  Rng rng = make_stream(seed, StreamKind::kStraggler, 0xd01ce, device + 1);
  const double factor = std::exp(rng.normal(0.0, config.speed_sigma_log));
  return std::min(1.0, factor);
}

namespace {

std::vector<DeviceBudget> assign_profile_budgets(
    const SystemsConfig& config, std::uint64_t seed,
    std::span<const std::size_t> selected,
    std::span<const std::size_t> train_sizes, std::size_t batch_size) {
  std::vector<DeviceBudget> budgets(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    DeviceBudget& b = budgets[i];
    b.device = selected[i];
    const double speed = device_speed_factor(config.profile, seed, selected[i]);
    const std::size_t per_epoch =
        iterations_for_epochs(1, train_sizes[i], batch_size);
    const std::size_t full = config.epochs * per_epoch;
    b.iterations = std::max<std::size_t>(
        1, static_cast<std::size_t>(speed * static_cast<double>(full)));
    b.straggler = b.iterations < full;
    b.epochs = std::max<std::size_t>(1, b.iterations / per_epoch);
    if (!b.straggler) b.epochs = config.epochs;
  }
  return budgets;
}

}  // namespace

std::vector<DeviceBudget> assign_budgets(
    const SystemsConfig& config, std::uint64_t seed, std::uint64_t round,
    std::span<const std::size_t> selected,
    std::span<const std::size_t> train_sizes, std::size_t batch_size) {
  if (selected.size() != train_sizes.size()) {
    throw std::invalid_argument("assign_budgets: size mismatch");
  }
  if (config.epochs == 0) {
    throw std::invalid_argument("assign_budgets: epochs must be > 0");
  }
  if (config.profile.enabled) {
    return assign_profile_budgets(config, seed, selected, train_sizes,
                                  batch_size);
  }
  const std::size_t k = selected.size();
  std::vector<DeviceBudget> budgets(k);

  // Which positions straggle this round: depends only on (seed, round).
  Rng pick = make_stream(seed, StreamKind::kStraggler, round);
  const std::size_t n_strag = straggler_count(config.straggler_fraction, k);
  std::vector<bool> is_straggler(k, false);
  for (std::size_t pos : pick.sample_without_replacement(k, n_strag)) {
    is_straggler[pos] = true;
  }

  for (std::size_t i = 0; i < k; ++i) {
    DeviceBudget& b = budgets[i];
    b.device = selected[i];
    b.straggler = is_straggler[i];
    const std::size_t per_epoch =
        iterations_for_epochs(1, train_sizes[i], batch_size);
    if (!b.straggler) {
      b.epochs = config.epochs;
      b.iterations = config.epochs * per_epoch;
      continue;
    }
    // Straggler workload depends only on (seed, round, device).
    Rng work = make_stream(seed, StreamKind::kStraggler, round,
                           selected[i] + 1);
    if (config.epochs > 1) {
      b.epochs = static_cast<std::size_t>(
          work.uniform_int(1, static_cast<std::int64_t>(config.epochs)));
      b.iterations = b.epochs * per_epoch;
    } else {
      // E = 1: a uniformly drawn partial epoch (Figure 9 setting).
      b.epochs = 1;
      b.iterations = static_cast<std::size_t>(
          work.uniform_int(1, static_cast<std::int64_t>(per_epoch)));
    }
  }
  return budgets;
}

}  // namespace fed
