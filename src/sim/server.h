// Server-side global evaluation: the metrics every experiment reports
// (training loss f(w) = sum_k p_k F_k(w) and testing accuracy pooled over
// every device's held-out set). Evaluation runs over the full federation,
// parallelized across devices.

#pragma once

#include "data/dataset.h"
#include "nn/module.h"
#include "support/threadpool.h"

namespace fed {

struct GlobalEval {
  double train_loss = 0.0;      // f(w), weighted by p_k = n_k/n
  double train_accuracy = 0.0;  // pooled over all training samples
  double test_accuracy = 0.0;   // pooled over all test samples
  double seconds = 0.0;         // wall time of this evaluation
};

// `pool` may be nullptr for single-threaded evaluation.
GlobalEval evaluate_global(const Model& model, const FederatedDataset& data,
                           std::span<const double> w, ThreadPool* pool);

}  // namespace fed
