#include "sim/server.h"

#include <vector>

#include "support/stopwatch.h"

namespace fed {

namespace {

struct PerClientEval {
  double train_loss_sum = 0.0;   // loss * n_train
  std::size_t train_correct = 0;
  std::size_t train_total = 0;
  std::size_t test_correct = 0;
  std::size_t test_total = 0;
};

PerClientEval evaluate_client(const Model& model, const ClientData& client,
                              std::span<const double> w) {
  PerClientEval out;
  out.train_total = client.train.size();
  out.test_total = client.test.size();
  if (out.train_total > 0) {
    out.train_loss_sum = model.dataset_loss(w, client.train) *
                         static_cast<double>(out.train_total);
    out.train_correct = model.correct_count(w, client.train);
  }
  if (out.test_total > 0) {
    out.test_correct = model.correct_count(w, client.test);
  }
  return out;
}

}  // namespace

GlobalEval evaluate_global(const Model& model, const FederatedDataset& data,
                           std::span<const double> w, ThreadPool* pool) {
  Stopwatch timer;
  const std::size_t n_clients = data.num_clients();
  std::vector<PerClientEval> per_client(n_clients);
  if (pool) {
    pool->parallel_for(n_clients, [&](std::size_t k) {
      per_client[k] = evaluate_client(model, data.clients[k], w);
    });
  } else {
    for (std::size_t k = 0; k < n_clients; ++k) {
      per_client[k] = evaluate_client(model, data.clients[k], w);
    }
  }

  GlobalEval eval;
  double loss_sum = 0.0;
  std::size_t train_total = 0, train_correct = 0;
  std::size_t test_total = 0, test_correct = 0;
  for (const auto& c : per_client) {
    loss_sum += c.train_loss_sum;
    train_total += c.train_total;
    train_correct += c.train_correct;
    test_total += c.test_total;
    test_correct += c.test_correct;
  }
  if (train_total > 0) {
    eval.train_loss = loss_sum / static_cast<double>(train_total);
    eval.train_accuracy =
        static_cast<double>(train_correct) / static_cast<double>(train_total);
  }
  if (test_total > 0) {
    eval.test_accuracy =
        static_cast<double>(test_correct) / static_cast<double>(test_total);
  }
  eval.seconds = timer.seconds();
  return eval;
}

}  // namespace fed
