#include "sim/sampling.h"

#include <stdexcept>

namespace fed {

std::string to_string(SamplingScheme scheme) {
  switch (scheme) {
    case SamplingScheme::kUniformThenWeightedAverage:
      return "uniform_sampling+weighted_average";
    case SamplingScheme::kWeightedThenSimpleAverage:
      return "weighted_sampling+simple_average";
  }
  return "?";
}

std::vector<std::size_t> select_devices(SamplingScheme scheme,
                                        std::span<const double> pk,
                                        std::size_t devices_per_round,
                                        std::uint64_t seed,
                                        std::uint64_t round) {
  const std::size_t n = pk.size();
  if (devices_per_round == 0 || devices_per_round > n) {
    throw std::invalid_argument("select_devices: bad devices_per_round");
  }
  Rng rng = make_stream(seed, StreamKind::kDeviceSampling, round);
  switch (scheme) {
    case SamplingScheme::kUniformThenWeightedAverage:
      return rng.sample_without_replacement(n, devices_per_round);
    case SamplingScheme::kWeightedThenSimpleAverage:
      return rng.weighted_sample_without_replacement(pk, devices_per_round);
  }
  throw std::logic_error("select_devices: unknown scheme");
}

}  // namespace fed
