// One simulated device executing its share of a federated round.

#pragma once

#include <span>

#include "data/dataset.h"
#include "nn/module.h"
#include "optim/solver.h"
#include "sim/systems.h"

namespace fed {

// The per-round hyper-parameters the server sends every selected device.
// One struct shared by TrainerConfig (which derives it per round, with
// the effective mu), the ModelBroadcast that carries it over the wire
// (comm/message.h), and the local solve that consumes it — replacing the
// old TrainerConfig/ClientRoundConfig field duplication.
struct RoundConfig {
  double mu = 0.0;
  std::size_t batch_size = 10;
  double learning_rate = 0.01;
  double clip_norm = 0.0;
  // When true, the client evaluates gamma-inexactness of its solution
  // (an extra pair of full-batch gradient evaluations).
  bool measure_gamma = false;
};

struct ClientResult {
  std::size_t device = 0;
  Vector update;               // w_k^{t+1}
  std::size_t num_samples = 0;  // n_k
  bool straggler = false;
  std::size_t iterations = 0;
  double gamma = 0.0;          // valid iff gamma_measured
  bool gamma_measured = false;
  // Wall time of the local solve, measured on the worker that ran it
  // (feeds the RoundTrace solve-time distribution; not deterministic).
  double solve_seconds = 0.0;
};

// Runs the device's local solve starting from `w_global` with the given
// budget. `correction` is the FedDane linear term (empty otherwise).
// `minibatch_rng` must be the (seed, round, device)-keyed stream.
ClientResult run_client(const Model& model, const ClientData& data,
                        std::span<const double> w_global,
                        const LocalSolver& solver, const DeviceBudget& budget,
                        const RoundConfig& config,
                        std::span<const double> correction,
                        Rng& minibatch_rng);

}  // namespace fed
