// Device sampling schemes (Section 5.1 / Appendix C.3.4, Figure 12).
//
// The analysis (Algorithms 1-2) samples device k with probability
// p_k = n_k/n and aggregates with a simple average over the K updates.
// The experiments instead sample uniformly and aggregate with weights
// proportional to n_k (McMahan et al.'s original scheme). Both are
// implemented; Figure 12 compares them.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/rng.h"

namespace fed {

enum class SamplingScheme {
  // Experiments' scheme: uniform sampling + n_k-weighted aggregation.
  kUniformThenWeightedAverage,
  // Analysis' scheme: p_k-weighted sampling + simple average.
  kWeightedThenSimpleAverage,
};

std::string to_string(SamplingScheme scheme);

// Selects K distinct devices for round `round`, deterministically in
// (seed, round) — identical across compared algorithms. `pk` are the
// n_k/n masses (used only by the weighted scheme).
std::vector<std::size_t> select_devices(SamplingScheme scheme,
                                        std::span<const double> pk,
                                        std::size_t devices_per_round,
                                        std::uint64_t seed,
                                        std::uint64_t round);

}  // namespace fed
