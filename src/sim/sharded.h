// Hierarchical sharded aggregation: N aggregator shards, one root.
//
// At 10^5–10^6 registered devices a single aggregator is the server's
// bottleneck (cf. Bonawitz et al., "Towards Federated Learning at
// Scale": an actor-per-aggregator tree). This layer splits each round's
// selected devices across `shards` sub-aggregators; every shard
// accumulate()s the updates it owns into a PartialAggregate
// (sim/aggregate.h), ships its exact partial sum to the root through the
// FPS1 wire codec (support/serialize.h), and the root merges and
// finalizes. Because the partials are exact, the shard topology is
// unobservable in the result: any shard count, merge order, or thread
// count produces a bit-identical global model — the property the
// ShardedDeterminism tests pin down.
//
// Shard slices are contiguous in selection order (plan_shards), so fan
// out order, fault-RNG streams, and the root-level quorum cut are all
// independent of the shard count by construction.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/trace_context.h"
#include "sim/aggregate.h"

namespace fed {

// Half-open slice [begin, end) of the round's selection-ordered devices
// owned by one shard.
struct ShardSlice {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
};

// Partitions `devices` selected devices into `shards` contiguous slices
// whose sizes differ by at most one (earlier shards take the remainder).
// A shard count of 0 is treated as 1; slices beyond the device count are
// empty. The mapping depends only on (devices, shards), never on the
// round's outcomes, so it is deterministic.
std::vector<ShardSlice> plan_shards(std::size_t devices, std::size_t shards);

// The aggregation tree for one round: `shards` leaf aggregators and a
// root merge. accumulate() may be called for any shard in any order (the
// round driver calls it on the round thread, in selection order);
// reduce() then encodes every shard's partial, merges at the root, and
// finalizes into `w`.
class ShardedServer {
 public:
  ShardedServer(SamplingScheme scheme, std::size_t dim, std::size_t shards);

  // Folds one contribution into shard `shard`'s partial sum.
  void accumulate(std::size_t shard, const Contribution& contribution);

  // Ships each shard's partial to the root (always through the FPS1
  // codec, so the uplink is exercised — and byte-accounted — every
  // round), merges exactly, and finalizes the weighted average into `w`.
  // Returns false, leaving `w` untouched, when no shard accumulated any
  // contribution. Call once, after all accumulate() calls.
  //
  // `trace` is the round's context (obs/trace_context.h): each FPS1
  // partial is stamped with its derived shard span, and when profiling
  // is enabled the shard_reduce -> root_merge handoffs are drawn as
  // Chrome flow arrows. A default (zero) context means untraced.
  bool reduce(std::size_t round, std::span<double> w,
              const TraceContext& trace = {});

  std::size_t shard_count() const { return partials_.size(); }
  std::size_t contributors(std::size_t shard) const {
    return contributors_[shard];
  }
  std::size_t total_contributors() const;

  // FPS1 bytes shard -> root; populated by reduce(), zero before.
  std::uint64_t partial_bytes(std::size_t shard) const {
    return partial_bytes_[shard];
  }

 private:
  std::vector<PartialAggregate> partials_;  // consumed by reduce()
  std::vector<std::size_t> contributors_;   // survives reduce()
  std::vector<std::uint64_t> partial_bytes_;
};

}  // namespace fed
