#include "sim/aggregate.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace fed {

bool aggregate(SamplingScheme scheme,
               std::span<const Contribution> contributions,
               std::span<double> w) {
  if (contributions.empty()) return false;

  std::vector<double> weights(contributions.size());
  switch (scheme) {
    case SamplingScheme::kUniformThenWeightedAverage: {
      double total = 0.0;
      for (const auto& c : contributions) total += c.num_samples;
      if (total <= 0.0) {
        throw std::invalid_argument("aggregate: non-positive sample total");
      }
      for (std::size_t i = 0; i < contributions.size(); ++i) {
        weights[i] = contributions[i].num_samples / total;
      }
      break;
    }
    case SamplingScheme::kWeightedThenSimpleAverage: {
      const double inv = 1.0 / static_cast<double>(contributions.size());
      for (auto& value : weights) value = inv;
      break;
    }
  }

  zero(w);
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    const Vector& update = *contributions[i].update;
    if (update.size() != w.size()) {
      throw std::invalid_argument("aggregate: update dimension mismatch");
    }
    axpy(weights[i], update, w);
  }
  return true;
}

}  // namespace fed
