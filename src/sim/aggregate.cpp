#include "sim/aggregate.h"

#include <stdexcept>
#include <utility>

namespace fed {

PartialAggregate::PartialAggregate(SamplingScheme scheme, std::size_t dim)
    : scheme_(scheme), dim_(dim), sum_(dim) {}

void PartialAggregate::accumulate(const Contribution& contribution) {
  const Vector& u = *contribution.update;
  if (u.size() != dim_) {
    throw std::invalid_argument(
        "PartialAggregate::accumulate: update dimension mismatch");
  }
  // kUniformThenWeightedAverage weighs each device by n_k; the simple
  // scheme gives every contributor coefficient 1 (divided by the
  // contributor count at finalize). coeff * u[i] is one correctly
  // rounded multiply whose result does not depend on which shard
  // performs it — partition-independence starts here.
  const double coeff = scheme_ == SamplingScheme::kUniformThenWeightedAverage
                           ? contribution.num_samples
                           : 1.0;
  weight_.add(coeff);
  for (std::size_t i = 0; i < dim_; ++i) sum_[i].add(coeff * u[i]);
  ++contributors_;
}

void PartialAggregate::merge(PartialAggregate&& other) {
  if (other.scheme_ != scheme_ || other.dim_ != dim_) {
    throw std::invalid_argument(
        "PartialAggregate::merge: incompatible partial (scheme or dim)");
  }
  weight_.merge(other.weight_);
  for (std::size_t i = 0; i < dim_; ++i) sum_[i].merge(other.sum_[i]);
  contributors_ += other.contributors_;
}

bool PartialAggregate::finalize(std::span<double> w) const {
  if (w.size() != dim_) {
    throw std::invalid_argument(
        "PartialAggregate::finalize: model dimension mismatch");
  }
  if (contributors_ == 0) return false;
  const double total = weight_.value();
  if (scheme_ == SamplingScheme::kUniformThenWeightedAverage && total <= 0.0) {
    throw std::invalid_argument(
        "PartialAggregate::finalize: non-positive sample total under the "
        "weighted-average scheme");
  }
  for (std::size_t i = 0; i < dim_; ++i) w[i] = sum_[i].value() / total;
  return true;
}

PartialAggregate PartialAggregate::restore(SamplingScheme scheme,
                                           std::size_t contributors,
                                           ExactSum weight,
                                           std::vector<ExactSum> coordinates) {
  PartialAggregate p(scheme, coordinates.size());
  p.contributors_ = contributors;
  p.weight_ = std::move(weight);
  p.sum_ = std::move(coordinates);
  return p;
}

}  // namespace fed
