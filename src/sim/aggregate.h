// Server-side aggregation of local updates, as mergeable partial sums.
//
// FedProx's server step (Algorithm 2) is a weighted average — an
// associative reduction — so it does not have to happen in one place.
// PartialAggregate is the unit of that reduction: a sub-aggregator
// accumulate()s the contributions of the devices it owns, partials
// merge() into bigger partials, and the root finalize()s the fully
// merged sum into the next global model. Every coordinate (and the
// weight total) accumulates in an ExactSum (tensor/exact_sum.h), so
// merge is *exactly* associative and commutative: any shard topology,
// merge order, or thread count produces bit-identical results —
// hierarchical sharded aggregation cannot change the math.
//
//   PartialAggregate shard(scheme, dim);   // one per aggregator shard
//   for (const Contribution& c : mine) shard.accumulate(c);
//   root.merge(std::move(shard));          // sub-aggregator -> root
//   bool updated = root.finalize(w);       // false: nobody contributed
//
// Weighting follows the sampling scheme (see sim/sampling.h):
//   kUniformThenWeightedAverage  -> weights proportional to n_k
//   kWeightedThenSimpleAverage   -> equal weights 1/|contributions|
// finalize returns false (leaving w untouched) when no device
// contributed — the paper's FedAvg keeps the previous model when every
// selected device straggles and is dropped.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/sampling.h"
#include "tensor/exact_sum.h"
#include "tensor/tensor.h"

namespace fed {

struct Contribution {
  std::size_t device = 0;
  const Vector* update = nullptr;  // the device's local solution w_k^{t+1}
  double num_samples = 0.0;        // n_k, used by the weighted scheme
};

class PartialAggregate {
 public:
  PartialAggregate(SamplingScheme scheme, std::size_t dim);

  // Folds one device's contribution in. Throws std::invalid_argument on
  // a dimension mismatch.
  void accumulate(const Contribution& contribution);

  // Absorbs another partial covering a disjoint device set. Exactly
  // associative and commutative. Throws std::invalid_argument when the
  // scheme or dimension disagrees.
  void merge(PartialAggregate&& other);

  // Writes the weighted average into `w` and returns true, or returns
  // false leaving `w` untouched when no contribution was accumulated.
  // Throws std::invalid_argument on a dimension mismatch, or when the
  // weighted scheme's sample total is not positive.
  bool finalize(std::span<double> w) const;

  SamplingScheme scheme() const { return scheme_; }
  std::size_t dim() const { return dim_; }
  std::size_t contributors() const { return contributors_; }

  // Raw state, for the FPS1 wire codec (support/serialize.h).
  const ExactSum& weight_sum() const { return weight_; }
  std::span<const ExactSum> coordinate_sums() const { return sum_; }
  static PartialAggregate restore(SamplingScheme scheme,
                                  std::size_t contributors, ExactSum weight,
                                  std::vector<ExactSum> coordinates);

 private:
  SamplingScheme scheme_;
  std::size_t dim_;
  std::size_t contributors_ = 0;
  ExactSum weight_;            // sum of the per-contribution coefficients
  std::vector<ExactSum> sum_;  // per-coordinate sum of coeff * update
};

}  // namespace fed
