// Server-side aggregation of local updates.

#pragma once

#include <span>
#include <vector>

#include "sim/sampling.h"
#include "tensor/tensor.h"

namespace fed {

struct Contribution {
  std::size_t device = 0;
  const Vector* update = nullptr;  // the device's local solution w_k^{t+1}
  double num_samples = 0.0;        // n_k, used by the weighted scheme
};

// Combines contributions into the next global model. Weighting follows
// the sampling scheme (see sim/sampling.h):
//   kUniformThenWeightedAverage  -> weights proportional to n_k
//   kWeightedThenSimpleAverage   -> equal weights 1/|contributions|
// Returns false (leaving w untouched) when no device contributed — the
// paper's FedAvg keeps the previous model when every selected device
// straggles and is dropped.
bool aggregate(SamplingScheme scheme,
               std::span<const Contribution> contributions,
               std::span<double> w);

}  // namespace fed
