// The device side of the federation: receives a ModelBroadcast, runs the
// local solve it requests (sim/client), and returns the ClientUpdate.
// Everything the solve needs — effective mu, systems budget, solver
// hyper-parameters, the FedDane correction — arrives in the broadcast;
// the runtime holds only the per-device data shards and the solver
// implementation, plus the experiment seed from which it derives the
// (seed, round, device)-keyed mini-batch stream.
//
// One runtime serves every simulated device: handle() is const and
// thread-safe, so the server's ThreadPool calls it concurrently for the
// selected devices of a round.

#pragma once

#include <cstdint>

#include "comm/message.h"
#include "data/dataset.h"
#include "nn/module.h"
#include "optim/solver.h"

namespace fed {

class ClientRuntime {
 public:
  // `model`, `data`, and `solver` must outlive the runtime.
  ClientRuntime(const Model& model, const FederatedDataset& data,
                const LocalSolver& solver, std::uint64_t seed);

  // Executes the broadcast's local solve and returns the update.
  ClientUpdate handle(const ModelBroadcast& broadcast) const;

 private:
  const Model& model_;
  const FederatedDataset& data_;
  const LocalSolver& solver_;
  std::uint64_t seed_;
};

}  // namespace fed
