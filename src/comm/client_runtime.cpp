#include "comm/client_runtime.h"

#include <stdexcept>

#include "obs/profiler.h"
#include "obs/trace_context.h"
#include "sim/client.h"

namespace fed {

ClientRuntime::ClientRuntime(const Model& model, const FederatedDataset& data,
                             const LocalSolver& solver, std::uint64_t seed)
    : model_(model), data_(data), solver_(solver), seed_(seed) {}

ClientUpdate ClientRuntime::handle(const ModelBroadcast& broadcast) const {
  const std::size_t device = broadcast.budget.device;
  if (broadcast.round == 0 || device >= data_.num_clients()) {
    throw std::invalid_argument("ClientRuntime: malformed broadcast");
  }
  // Training round t+1 carries the (seed, t, device) mini-batch stream —
  // the same keying the monolithic trainer used, so histories stay
  // bit-identical across the refactor.
  Rng minibatch_rng = make_stream(seed_, StreamKind::kMinibatch,
                                  broadcast.round - 1, device + 1);
  // The device-side span of the distributed exchange. Its id is derived
  // from the broadcast's trace context, so when this runtime moves to
  // another process the span still correlates with the server round; the
  // update carries it back as the parent of the aggregation work.
  ClientUpdate update;
  update.round = broadcast.round;
  update.trace = broadcast.trace;
  update.trace.span_id = derive_trace_span(
      broadcast.trace.trace_id, TraceSpanKind::kClientSolve, device);
  Span solve_span("client_solve", "comm", "round",
                  static_cast<std::int64_t>(broadcast.round), "device",
                  static_cast<std::int64_t>(device), "trace_id",
                  static_cast<std::int64_t>(broadcast.trace.trace_id));
  update.result =
      run_client(model_, data_.clients[device], broadcast.parameters, solver_,
                 broadcast.budget, broadcast.config, broadcast.correction,
                 minibatch_rng);
  return update;
}

}  // namespace fed
