// Fault model for the federation channel (deliberately light-weight: no
// transport include, so core/trainer can carry these by value).
//
// The paper's premise is that real federated networks are unreliable —
// devices straggle, drop out, and return partial work — yet the bundled
// transports deliver every message perfectly. A FaultProfile describes a
// faulty channel: per-exchange probabilities of message drop, payload
// corruption, and duplicate delivery, plus a bounded injected latency.
// FaultInjectingTransport (comm/transport.h) applies the profile to any
// inner transport, drawing every fault decision from a counter-keyed RNG
// stream (seed, kFault, round, device, attempt) so runs with the same
// seed and profile are bit-reproducible regardless of threading.
//
// RecoveryConfig is the server-side answer (core/round_driver): bounded
// retries with exponential backoff on a simulated clock, a per-exchange
// delivery deadline, and quorum aggregation. FaultEvent is the typed
// record of one channel incident, fanned out to TrainingObservers via
// the on_fault hook — faults never escape a pool worker as exceptions.

#pragma once

#include <cstdint>
#include <string>

namespace fed {

// Per-exchange-attempt fault probabilities of the simulated channel.
// Parsed from the --faults flag: "drop=0.1,corrupt=0.01,delay_ms=50".
struct FaultProfile {
  double drop = 0.0;       // P(update lost in flight; nothing returned)
  double corrupt = 0.0;    // P(update payload damaged; must be rejected)
  double duplicate = 0.0;  // P(update delivered twice; bytes charged twice)
  double delay_ms = 0.0;   // injected latency per attempt ~ U[0, delay_ms)

  bool any() const {
    return drop > 0.0 || corrupt > 0.0 || duplicate > 0.0 || delay_ms > 0.0;
  }
};

// Parses "key=value[,key=value...]" with keys drop/corrupt/duplicate/
// delay_ms; probabilities must lie in [0, 1], delay_ms must be >= 0.
// Throws std::invalid_argument on unknown keys or out-of-range values.
FaultProfile parse_fault_profile(const std::string& spec);
// Canonical "drop=0.1,corrupt=0.01,..." form (only the non-zero knobs).
std::string to_string(const FaultProfile& profile);

// The round driver's recovery policy for a faulty channel. All times are
// simulated milliseconds — nothing ever wall-sleeps, so the policy is
// deterministic and free to test at any scale.
struct RecoveryConfig {
  // Extra exchange attempts after the first, per device per round.
  std::size_t max_retries = 2;
  // An update whose injected channel latency exceeds this arrives after
  // the round window and is retried as a timeout. 0 disables the check.
  double deadline_ms = 0.0;
  // Simulated wait before retry k (1-based): base * factor^(k-1).
  double backoff_base_ms = 10.0;
  double backoff_factor = 2.0;
  // Aggregation proceeds once ceil(quorum * selected) devices have
  // reported (by simulated arrival time); later arrivals are counted as
  // dropped. 1.0 (default) waits for every device — no behavior change.
  double quorum = 1.0;
};

// One channel incident, observed by the server. Routed to observers via
// TrainingObserver::on_fault on the round thread, after the parallel
// exchanges complete — never thrown across a pool-worker boundary.
struct FaultEvent {
  enum class Kind {
    kDrop,           // an attempt's update was lost in flight
    kCorrupt,        // an attempt's update arrived damaged and was rejected
    kTimeout,        // an attempt's update arrived after the deadline
    kDuplicate,      // an accepted update was delivered twice
    kDeviceFailed,   // a device produced no accepted update this round
    kQuorumDrop,     // a successful update arrived after the quorum cutoff
    kDepart,         // a selected device left the federation mid-round
    kRoundDegraded,  // the round aggregated zero updates; w was kept
  };

  Kind kind{};
  std::size_t round = 0;
  std::size_t device = 0;   // unset (0) for kRoundDegraded
  std::size_t attempt = 0;  // 0-based attempt index; attempts for kDeviceFailed
  std::string detail;       // one-line human description (decoder error, ...)
};

// Stable snake_case slug ("drop", "corrupt", ...); also names the
// per-kind registry counter fed_comm_faults_<slug>_total.
const char* to_string(FaultEvent::Kind kind);

}  // namespace fed
