#include "comm/transport.h"

#include <stdexcept>

#include "comm/client_runtime.h"
#include "obs/profiler.h"
#include "support/serialize.h"

namespace fed {

ExchangeRecord InProcessTransport::exchange(const ModelBroadcast& broadcast,
                                            const ClientRuntime& client) const {
  ExchangeRecord record;
  record.bytes_down = broadcast_wire_size(broadcast);
  record.update = client.handle(broadcast);
  record.bytes_up = update_wire_size(record.update);
  return record;
}

ExchangeRecord SerializedTransport::exchange(const ModelBroadcast& broadcast,
                                             const ClientRuntime& client) const {
  ExchangeRecord record;
  OwnedBroadcast received;
  {
    Span span("wire_down", "comm", "round",
              static_cast<std::int64_t>(broadcast.round), "device",
              static_cast<std::int64_t>(broadcast.budget.device));
    const WireBuffer down = encode_broadcast(broadcast);
    record.bytes_down = down.size();
    received = decode_broadcast(down);
  }
  ClientUpdate update = client.handle(received.view());
  {
    Span span("wire_up", "comm", "round",
              static_cast<std::int64_t>(broadcast.round), "device",
              static_cast<std::int64_t>(broadcast.budget.device));
    const WireBuffer up = encode_update(update);
    record.bytes_up = up.size();
    record.update = decode_update(up);
  }
  return record;
}

std::string to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess: return "inprocess";
    case TransportKind::kSerialized: return "serialized";
  }
  return "?";
}

TransportKind parse_transport_kind(const std::string& name) {
  if (name == "inprocess") return TransportKind::kInProcess;
  if (name == "serialized") return TransportKind::kSerialized;
  throw std::invalid_argument(
      "unknown transport \"" + name + "\" (expected inprocess or serialized)");
}

std::shared_ptr<const Transport> make_transport(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess:
      return std::make_shared<InProcessTransport>();
    case TransportKind::kSerialized:
      return std::make_shared<SerializedTransport>();
  }
  throw std::invalid_argument("make_transport: bad kind");
}

}  // namespace fed
