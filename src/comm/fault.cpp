#include "comm/fault.h"

#include <sstream>
#include <stdexcept>

#include "comm/transport.h"
#include "support/rng.h"
#include "support/serialize.h"

namespace fed {

namespace {

void check_probability(const char* key, double value) {
  if (value < 0.0 || value > 1.0) {
    throw std::invalid_argument("fault profile: " + std::string(key) + "=" +
                                std::to_string(value) +
                                " outside [0, 1]");
  }
}

void validate(const FaultProfile& profile) {
  check_probability("drop", profile.drop);
  check_probability("corrupt", profile.corrupt);
  check_probability("duplicate", profile.duplicate);
  if (profile.delay_ms < 0.0) {
    throw std::invalid_argument("fault profile: delay_ms < 0");
  }
}

// FNV-1a over the wire buffer: the link-layer integrity check. Bit flips
// inside the float64 payload decode "successfully" (they just change a
// double), so structural validation alone cannot catch them; a real
// network frame carries a CRC for exactly this reason.
std::uint64_t fnv1a(const WireBuffer& buffer) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::uint8_t byte : buffer) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

FaultProfile parse_fault_profile(const std::string& spec) {
  FaultProfile profile;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault profile: expected key=value, got \"" +
                                  item + "\"");
    }
    const std::string key = item.substr(0, eq);
    double value = 0.0;
    try {
      std::size_t used = 0;
      value = std::stod(item.substr(eq + 1), &used);
      if (used != item.size() - eq - 1) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      throw std::invalid_argument("fault profile: bad value in \"" + item +
                                  "\"");
    }
    if (key == "drop") {
      profile.drop = value;
    } else if (key == "corrupt") {
      profile.corrupt = value;
    } else if (key == "duplicate") {
      profile.duplicate = value;
    } else if (key == "delay_ms") {
      profile.delay_ms = value;
    } else {
      throw std::invalid_argument(
          "fault profile: unknown key \"" + key +
          "\" (expected drop, corrupt, duplicate, or delay_ms)");
    }
  }
  validate(profile);
  return profile;
}

std::string to_string(const FaultProfile& profile) {
  std::ostringstream out;
  const auto emit = [&out](const char* key, double value) {
    if (value <= 0.0) return;
    if (out.tellp() > 0) out << ",";
    out << key << "=" << value;
  };
  emit("drop", profile.drop);
  emit("corrupt", profile.corrupt);
  emit("duplicate", profile.duplicate);
  emit("delay_ms", profile.delay_ms);
  const std::string s = out.str();
  return s.empty() ? "none" : s;
}

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kDrop: return "drop";
    case FaultEvent::Kind::kCorrupt: return "corrupt";
    case FaultEvent::Kind::kTimeout: return "timeout";
    case FaultEvent::Kind::kDuplicate: return "duplicate";
    case FaultEvent::Kind::kDeviceFailed: return "device_failed";
    case FaultEvent::Kind::kQuorumDrop: return "quorum_drop";
    case FaultEvent::Kind::kDepart: return "depart";
    case FaultEvent::Kind::kRoundDegraded: return "round_degraded";
  }
  return "?";
}

FaultInjectingTransport::FaultInjectingTransport(
    std::shared_ptr<const Transport> inner, FaultProfile profile,
    std::uint64_t seed)
    : inner_(std::move(inner)), profile_(profile), seed_(seed) {
  if (!inner_) {
    throw std::invalid_argument("FaultInjectingTransport: null inner");
  }
  validate(profile_);
}

ExchangeRecord FaultInjectingTransport::exchange(
    const ModelBroadcast& broadcast, const ClientRuntime& client) const {
  if (!profile_.any()) return inner_->exchange(broadcast, client);

  // One stream per (round, device, attempt): fault decisions depend on
  // nothing else, so retries, threading, and other subsystems' draws
  // never perturb them. Draw order below is fixed.
  Rng rng(seed_, {static_cast<std::uint64_t>(StreamKind::kFault),
                  static_cast<std::uint64_t>(broadcast.round),
                  static_cast<std::uint64_t>(broadcast.budget.device),
                  static_cast<std::uint64_t>(broadcast.attempt)});
  const double delay =
      profile_.delay_ms > 0.0 ? rng.uniform(0.0, profile_.delay_ms) : 0.0;

  if (profile_.drop > 0.0 && rng.bernoulli(profile_.drop)) {
    // The broadcast was transmitted (bytes charged) but the exchange
    // yields nothing; the local solve never runs. A retry re-solves with
    // the same (seed, round, device) minibatch stream, so recovered
    // exchanges stay bit-identical to never-faulted ones.
    ExchangeRecord record;
    record.status = ExchangeStatus::kDropped;
    record.bytes_down = broadcast_wire_size(broadcast);
    record.channel_delay_ms = delay;
    return record;
  }

  ExchangeRecord record = inner_->exchange(broadcast, client);
  record.channel_delay_ms = delay;

  if (profile_.corrupt > 0.0 && rng.bernoulli(profile_.corrupt)) {
    // Damage the real wire encoding and run it through the receive path:
    // structural damage (truncation, extension, envelope flips) is
    // rejected by the FPU1 decoder; payload flips that still decode are
    // caught by the checksum mismatch. Either way the update is
    // discarded and the server sees a typed corruption, never garbage.
    WireBuffer wire = encode_update(record.update);
    const std::uint64_t sent_checksum = fnv1a(wire);
    switch (rng.uniform_int(std::uint64_t{3})) {
      case 0: {  // flip one bit anywhere in the buffer
        const std::uint64_t bit = rng.uniform_int(wire.size() * 8);
        wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        break;
      }
      case 1:  // truncate to a strictly shorter prefix
        wire.resize(rng.uniform_int(wire.size()));
        break;
      default: {  // append trailing garbage
        const std::uint64_t extra = 1 + rng.uniform_int(std::uint64_t{16});
        for (std::uint64_t i = 0; i < extra; ++i) {
          wire.push_back(static_cast<std::uint8_t>(rng.uniform_int(
              std::uint64_t{256})));
        }
        break;
      }
    }
    std::string error;
    try {
      (void)decode_update(wire);
      error = "checksum mismatch";  // decoded, but the frame was damaged
    } catch (const std::exception& e) {
      error = e.what();
    }
    if (error == "checksum mismatch" && fnv1a(wire) == sent_checksum) {
      // Unreachable in practice (64-bit FNV collision on a mutated
      // buffer); kept so corruption can never be silently accepted.
      error = "undetected corruption";
    }
    // The damaged update arrived on the wire (bytes_up stays charged at
    // the nominal size) but is rejected; nothing decoded survives.
    record.status = ExchangeStatus::kCorrupt;
    record.error = std::move(error);
    record.update = ClientUpdate{};
    return record;
  }

  if (profile_.duplicate > 0.0 && rng.bernoulli(profile_.duplicate)) {
    // The same update arrives twice; the server deduplicates, but both
    // copies moved wire bytes.
    record.duplicate = true;
    record.bytes_up *= 2;
  }
  return record;
}

}  // namespace fed
