// Typed messages of the federation exchange (paper Section 2: the server
// broadcasts the global model to the selected devices, each device
// returns its local solution). Everything a round moves between server
// and client is one of these two payloads; the Transport (comm/
// transport.h) decides whether they travel as zero-copy views or through
// the binary wire format in support/serialize.
//
// ModelBroadcast is a *view* struct: parameters/correction alias server
// memory so the in-process path stays copy-free. A transport that
// actually serializes hands the client an OwnedBroadcast, whose view()
// adapts it back to the span-based message.

#pragma once

#include <cstddef>
#include <span>

#include "obs/trace_context.h"
#include "sim/aggregate.h"
#include "sim/client.h"
#include "sim/systems.h"
#include "tensor/tensor.h"

namespace fed {

// Server -> device: everything device `budget.device` needs to run its
// share of training round `round` (1-based; round 0 is the initial
// evaluation and moves no messages).
struct ModelBroadcast {
  std::size_t round = 0;
  TraceContext trace;                  // round trace id + the exchange span
                                       // that sent this (obs/trace_context.h)
  RoundConfig config;                  // effective mu + solve parameters
  DeviceBudget budget;                 // target device id + systems budget
  std::span<const double> parameters;  // the global model w^t
  std::span<const double> correction;  // FedDane linear term; empty otherwise
  // Channel metadata, not payload: 0-based retransmission attempt set by
  // the round driver's recovery loop. Keys the fault-injection RNG stream
  // (comm/fault.h); never serialized, and invisible to the client.
  std::size_t attempt = 0;
};

// A decoded broadcast that owns its buffers (what a serializing transport
// delivers after the wire round trip).
struct OwnedBroadcast {
  std::size_t round = 0;
  TraceContext trace;
  RoundConfig config;
  DeviceBudget budget;
  Vector parameters;
  Vector correction;

  ModelBroadcast view() const {
    return ModelBroadcast{.round = round,
                          .trace = trace,
                          .config = config,
                          .budget = budget,
                          .parameters = parameters,
                          .correction = correction};
  }
};

// Device -> server: the outcome of one local solve. ClientResult already
// owns its update vector, so the same struct serves both transports.
struct ClientUpdate {
  std::size_t round = 0;
  TraceContext trace;  // same trace_id as the broadcast; span_id is the
                       // device's client_solve span
  ClientResult result;
};

// Aggregator shard -> root: one shard's exact partial sum of its owned
// contributions (sim/aggregate.h). Unlike model payloads, partials always
// cross the shard uplink through the FPS1 wire format (support/
// serialize.h) — the exact accumulator state is what makes the root
// merge independent of the shard topology, so the codec must round-trip
// it losslessly every round.
struct PartialSumUpdate {
  std::size_t round = 0;
  TraceContext trace;  // round trace_id; span_id is this shard's partial span
  std::size_t shard = 0;
  PartialAggregate partial{SamplingScheme::kUniformThenWeightedAverage, 0};
};

}  // namespace fed
