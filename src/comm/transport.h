// The federation transport: how a ModelBroadcast reaches a device and
// how its ClientUpdate comes back, with exact byte accounting each way.
//
// The paper's central systems claim is that communication — not compute —
// is the bottleneck in federated networks; this seam is where the
// codebase models it. The round driver (core/round_driver) speaks only in
// messages, so every future scaling mechanism — compression, async
// rounds, dropped-message robustness, real sockets — plugs in as a
// Transport without touching training logic:
//
//   TrainerConfig cfg = fedprox_config(1.0);
//   cfg.transport = make_transport(TransportKind::kSerialized);
//
// Both bundled transports are lossless, so TrainHistory is bit-identical
// across them (enforced by tests/comm_transport_test.cpp), and both
// report identical byte counts: the in-process one computes the wire
// size analytically, the serializing one measures its actual buffers.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "comm/fault.h"
#include "comm/message.h"

namespace fed {

class ClientRuntime;

// How one exchange attempt ended. The bundled lossless transports always
// deliver; only FaultInjectingTransport produces the failure states.
enum class ExchangeStatus {
  kDelivered,  // the update arrived intact
  kDropped,    // the message was lost in flight; no update returned
  kCorrupt,    // the update arrived damaged and was rejected
};

// One device's round trip through the channel (a single attempt; the
// round driver's recovery policy decides whether a failed attempt is
// retried).
struct ExchangeRecord {
  ExchangeStatus status = ExchangeStatus::kDelivered;
  ClientUpdate update;           // as the server received it (kDelivered only)
  std::uint64_t bytes_down = 0;  // broadcast wire bytes, server -> device
  std::uint64_t bytes_up = 0;    // update wire bytes, device -> server (a
                                 // dropped message moves none; a corrupt or
                                 // duplicated one is charged per delivery)
  double channel_delay_ms = 0.0; // injected latency (simulated, never slept)
  bool duplicate = false;        // delivered twice; bytes_up covers both
  std::string error;             // decoder/checksum message when kCorrupt

  bool delivered() const { return status == ExchangeStatus::kDelivered; }
  const ClientResult& result() const { return update.result; }
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Delivers `broadcast` to `client` and returns its update, measuring
  // the exact bytes moved each direction. Called concurrently from
  // ThreadPool workers (one call per selected device per round);
  // implementations must be thread-safe and deterministic.
  //
  // Thread contract (checked convention, not just prose): every bundled
  // transport is immutable after construction — exchange() is const and
  // touches no mutable members, so concurrent calls share nothing and
  // need no lock. An implementation that adds mutable state (caches,
  // sockets, counters) must guard it with a fed::Mutex and declare the
  // fields FED_GUARDED_BY(...) (support/thread_annotations.h) so the
  // FEDPROX_THREAD_SAFETY build enforces its locking; per-exchange
  // randomness must stay counter-keyed (seed, round, device, attempt) —
  // never a shared mutable RNG — or determinism across thread counts
  // breaks (tools/fedlint polices the wall-clock/random_device side).
  virtual ExchangeRecord exchange(const ModelBroadcast& broadcast,
                                  const ClientRuntime& client) const = 0;

  virtual std::string name() const = 0;
};

// Zero-copy: the client sees the server's own parameter/correction
// buffers (today's monolithic-trainer behavior). Bytes are the exact
// sizes the wire format *would* produce, computed without serializing.
class InProcessTransport final : public Transport {
 public:
  ExchangeRecord exchange(const ModelBroadcast& broadcast,
                          const ClientRuntime& client) const override;
  std::string name() const override { return "inprocess"; }
};

// Round-trips every payload through the binary wire format in
// support/serialize — encode, decode, solve on the decoded copy, encode
// the update, decode it server-side — measuring actual buffer sizes.
// What a real network stack would do, minus the socket.
class SerializedTransport final : public Transport {
 public:
  ExchangeRecord exchange(const ModelBroadcast& broadcast,
                          const ClientRuntime& client) const override;
  std::string name() const override { return "serialized"; }
};

// Decorator that injects configurable channel faults into any inner
// transport: message drops, payload corruption (applied to the real wire
// encoding, so the FPB1/FPU1 decoders — plus a link-layer checksum for
// damage inside the float64 payload — reject it), duplicate delivery,
// and bounded latency. Every decision comes from a counter-keyed stream
// (seed, kFault, round, device, attempt), so the same seed and profile
// reproduce the same faults bit-for-bit regardless of threading; a
// zero-fault profile is pass-through and leaves training bit-identical
// to the bare inner transport.
class FaultInjectingTransport final : public Transport {
 public:
  // Throws std::invalid_argument when the profile is out of range
  // (probabilities outside [0, 1] or negative delay). `seed` should be
  // the training seed; Trainer wraps its transport with exactly that.
  FaultInjectingTransport(std::shared_ptr<const Transport> inner,
                          FaultProfile profile, std::uint64_t seed);

  ExchangeRecord exchange(const ModelBroadcast& broadcast,
                          const ClientRuntime& client) const override;
  std::string name() const override { return "faulty(" + inner_->name() + ")"; }

  const FaultProfile& profile() const { return profile_; }
  const Transport& inner() const { return *inner_; }

 private:
  std::shared_ptr<const Transport> inner_;
  FaultProfile profile_;
  std::uint64_t seed_;
};

enum class TransportKind { kInProcess, kSerialized };

std::string to_string(TransportKind kind);
// Accepts "inprocess" or "serialized" (the --transport flag values);
// throws std::invalid_argument otherwise.
TransportKind parse_transport_kind(const std::string& name);
std::shared_ptr<const Transport> make_transport(TransportKind kind);

}  // namespace fed
