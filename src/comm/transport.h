// The federation transport: how a ModelBroadcast reaches a device and
// how its ClientUpdate comes back, with exact byte accounting each way.
//
// The paper's central systems claim is that communication — not compute —
// is the bottleneck in federated networks; this seam is where the
// codebase models it. The round driver (core/round_driver) speaks only in
// messages, so every future scaling mechanism — compression, async
// rounds, dropped-message robustness, real sockets — plugs in as a
// Transport without touching training logic:
//
//   TrainerConfig cfg = fedprox_config(1.0);
//   cfg.transport = make_transport(TransportKind::kSerialized);
//
// Both bundled transports are lossless, so TrainHistory is bit-identical
// across them (enforced by tests/comm_transport_test.cpp), and both
// report identical byte counts: the in-process one computes the wire
// size analytically, the serializing one measures its actual buffers.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "comm/message.h"

namespace fed {

class ClientRuntime;

// One device's completed round trip through the channel.
struct ExchangeRecord {
  ClientUpdate update;           // as the server received it
  std::uint64_t bytes_down = 0;  // broadcast wire bytes, server -> device
  std::uint64_t bytes_up = 0;    // update wire bytes, device -> server

  const ClientResult& result() const { return update.result; }
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Delivers `broadcast` to `client` and returns its update, measuring
  // the exact bytes moved each direction. Called concurrently from
  // ThreadPool workers (one call per selected device per round);
  // implementations must be thread-safe and deterministic.
  virtual ExchangeRecord exchange(const ModelBroadcast& broadcast,
                                  const ClientRuntime& client) const = 0;

  virtual std::string name() const = 0;
};

// Zero-copy: the client sees the server's own parameter/correction
// buffers (today's monolithic-trainer behavior). Bytes are the exact
// sizes the wire format *would* produce, computed without serializing.
class InProcessTransport final : public Transport {
 public:
  ExchangeRecord exchange(const ModelBroadcast& broadcast,
                          const ClientRuntime& client) const override;
  std::string name() const override { return "inprocess"; }
};

// Round-trips every payload through the binary wire format in
// support/serialize — encode, decode, solve on the decoded copy, encode
// the update, decode it server-side — measuring actual buffer sizes.
// What a real network stack would do, minus the socket.
class SerializedTransport final : public Transport {
 public:
  ExchangeRecord exchange(const ModelBroadcast& broadcast,
                          const ClientRuntime& client) const override;
  std::string name() const override { return "serialized"; }
};

enum class TransportKind { kInProcess, kSerialized };

std::string to_string(TransportKind kind);
// Accepts "inprocess" or "serialized" (the --transport flag values);
// throws std::invalid_argument otherwise.
TransportKind parse_transport_kind(const std::string& name);
std::shared_ptr<const Transport> make_transport(TransportKind kind);

}  // namespace fed
