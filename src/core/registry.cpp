#include "core/registry.h"

#include <stdexcept>

#include "data/image_like.h"
#include "data/sequence.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "nn/lstm.h"

namespace fed {

std::vector<std::string> workload_names() {
  return {"synthetic_iid", "synthetic_0_0", "synthetic_0.5_0.5",
          "synthetic_1_1", "mnist",         "femnist",
          "shakespeare",   "sent140"};
}

std::vector<std::string> synthetic_workload_names() {
  return {"synthetic_iid", "synthetic_0_0", "synthetic_0.5_0.5",
          "synthetic_1_1"};
}

std::vector<std::string> figure1_workload_names() {
  return {"synthetic_1_1", "mnist", "femnist", "shakespeare", "sent140"};
}

Workload make_workload(const std::string& name, std::uint64_t seed,
                       double scale) {
  Workload w;
  w.name = name;

  if (name == "synthetic_iid" || name == "synthetic_0_0" ||
      name == "synthetic_0.5_0.5" || name == "synthetic_1_1") {
    SyntheticConfig config;
    if (name == "synthetic_iid") {
      config = synthetic_iid_config(seed);
    } else if (name == "synthetic_0_0") {
      config = synthetic_config(0.0, 0.0, seed);
    } else if (name == "synthetic_0.5_0.5") {
      config = synthetic_config(0.5, 0.5, seed);
    } else {
      config = synthetic_config(1.0, 1.0, seed);
    }
    w.data = make_synthetic(config);
    w.model = std::make_shared<LogisticRegression>(w.data.input_dim,
                                                   w.data.num_classes);
    // The paper tunes the learning rate per dataset via grid search on
    // FedAvg with E=1 (Appendix C.2; 0.01 on their generator's draw).
    // The same protocol on this generator's draw selects 0.03, which also
    // reproduces the paper's E=20 instability shape (see EXPERIMENTS.md).
    w.learning_rate = 0.03;
    w.default_rounds = 200;
    w.best_mu = 1.0;         // Section 5.3.2
    return w;
  }

  if (name == "mnist") {
    w.data = make_image_like(mnist_like_config(seed, scale));
    w.model = std::make_shared<LogisticRegression>(w.data.input_dim,
                                                   w.data.num_classes);
    w.learning_rate = 0.03;  // Appendix C.2
    w.default_rounds = 100;  // paper: 400; scaled for CPU budget
    w.default_eval_every = 2;
    w.best_mu = 1.0;
    return w;
  }

  if (name == "femnist") {
    w.data = make_image_like(femnist_like_config(seed, scale));
    w.model = std::make_shared<LogisticRegression>(w.data.input_dim,
                                                   w.data.num_classes);
    // Tuned on this generator's draw via the paper's protocol (FedAvg,
    // E=1 grid); the paper's own FEMNIST uses 0.003.
    w.learning_rate = 0.03;
    w.default_rounds = 100;   // paper: 200; scaled
    w.default_eval_every = 2;
    w.best_mu = 1.0;
    return w;
  }

  if (name == "shakespeare") {
    w.data = make_next_char(shakespeare_like_config(seed, scale));
    LstmConfig lstm;
    lstm.vocab_size = w.data.vocab_size;
    lstm.embed_dim = 8;       // paper: 8-d learned embedding
    lstm.hidden_dim = 16;     // paper: 100; scaled
    lstm.num_layers = 2;
    lstm.num_classes = w.data.num_classes;
    lstm.trainable_embedding = true;
    w.model = std::make_shared<LstmClassifier>(lstm);
    // Tuned on this generator's draw (paper's own Shakespeare uses 0.8).
    w.learning_rate = 0.3;
    w.default_rounds = 20;    // matches the paper's 20-round horizon
    w.default_eval_every = 2;
    w.best_mu = 0.001;
    return w;
  }

  if (name == "sent140") {
    w.data = make_sentiment(sent140_like_config(seed, scale));
    LstmConfig lstm;
    lstm.vocab_size = w.data.vocab_size;
    lstm.embed_dim = 16;      // paper: frozen 300-d GloVe; scaled
    lstm.hidden_dim = 16;     // paper: 256; scaled
    lstm.num_layers = 2;
    lstm.num_classes = 2;
    lstm.trainable_embedding = false;
    lstm.frozen_embedding =
        std::make_shared<EmbeddingTable>(w.data.vocab_size, 16, seed);
    w.model = std::make_shared<LstmClassifier>(lstm);
    // Tuned on this generator's draw (the paper's own Sent140 uses 0.3;
    // 0.3 here destabilizes even mu > 0 at E = 20).
    w.learning_rate = 0.1;
    w.default_rounds = 21;    // paper: 800; scaled for CPU budget
    w.default_eval_every = 3;
    w.best_mu = 0.01;
    return w;
  }

  throw std::invalid_argument("make_workload: unknown workload '" + name +
                              "'");
}

}  // namespace fed
