#include "core/trainer.h"

#include <cmath>
#include <stdexcept>

#include "core/feddane.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "optim/sgd.h"
#include "sim/aggregate.h"
#include "sim/client.h"
#include "sim/server.h"
#include "support/log.h"
#include "support/stopwatch.h"
#include "tensor/ops.h"

namespace fed {

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFedAvg: return "FedAvg";
    case Algorithm::kFedProx: return "FedProx";
    case Algorithm::kFedDane: return "FedDane";
  }
  return "?";
}

TrainerConfig fedavg_config() {
  TrainerConfig c;
  c.algorithm = Algorithm::kFedAvg;
  c.mu = 0.0;
  return c;
}

TrainerConfig fedprox_config(double mu) {
  TrainerConfig c;
  c.algorithm = Algorithm::kFedProx;
  c.mu = mu;
  return c;
}

TrainerConfig feddane_config(double mu) {
  TrainerConfig c;
  c.algorithm = Algorithm::kFedDane;
  c.mu = mu;
  return c;
}

const RoundMetrics& TrainHistory::final_metrics() const {
  for (auto it = rounds.rbegin(); it != rounds.rend(); ++it) {
    if (it->evaluated()) return *it;
  }
  throw std::logic_error("TrainHistory: no evaluated round");
}

std::vector<std::pair<std::size_t, double>> TrainHistory::loss_series() const {
  std::vector<std::pair<std::size_t, double>> out;
  for (const auto& r : rounds) {
    if (r.evaluated()) out.emplace_back(r.round, *r.train_loss);
  }
  return out;
}

std::vector<std::pair<std::size_t, double>> TrainHistory::accuracy_series()
    const {
  std::vector<std::pair<std::size_t, double>> out;
  for (const auto& r : rounds) {
    if (r.evaluated()) out.emplace_back(r.round, *r.test_accuracy);
  }
  return out;
}

bool TrainHistory::diverged(double threshold) const {
  for (const auto& r : rounds) {
    if (r.evaluated() &&
        (!std::isfinite(*r.train_loss) || *r.train_loss > threshold)) {
      return true;
    }
  }
  return false;
}

Trainer::Trainer(const Model& model, const FederatedDataset& data,
                 TrainerConfig config, ThreadPool* pool)
    : model_(model),
      data_(data),
      config_(std::move(config)),
      external_pool_(pool) {
  if (config_.rounds == 0 || config_.devices_per_round == 0 ||
      config_.devices_per_round > data_.num_clients()) {
    throw std::invalid_argument("Trainer: bad rounds/devices_per_round");
  }
  if (config_.mu < 0.0) throw std::invalid_argument("Trainer: mu < 0");
  if (config_.adaptive_mu.enabled && config_.theory_mu.enabled) {
    throw std::invalid_argument(
        "Trainer: adaptive_mu and theory_mu are mutually exclusive");
  }
  if (config_.theory_mu.enabled) config_.measure_dissimilarity = true;
  if (config_.eval_every == 0) config_.eval_every = 1;
  if (!config_.solver) config_.solver = std::make_shared<SgdSolver>();
}

void Trainer::add_observer(TrainingObserver& observer) {
  if (run_started_) {
    throw std::logic_error(
        "Trainer: add_observer after run() started; register every "
        "observer before running");
  }
  observers_.push_back(&observer);
}

TrainHistory Trainer::run() {
  run_started_ = true;
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = external_pool_;
  if (!pool) {
    owned_pool = std::make_unique<ThreadPool>(config_.threads);
    pool = owned_pool.get();
  }

  const std::size_t d = model_.parameter_count();
  const auto pk = data_.client_weights();
  // The paper's communication proxy: one parameter vector per transfer.
  const std::uint64_t param_bytes =
      static_cast<std::uint64_t>(d) * sizeof(double);

  Vector w(d);
  if (config_.initial_parameters) {
    if (config_.initial_parameters->size() != d) {
      throw std::invalid_argument(
          "Trainer: initial_parameters dimension mismatch");
    }
    w = *config_.initial_parameters;
  } else {
    Rng init_rng = make_stream(config_.seed, StreamKind::kModelInit);
    model_.init_parameters(w, init_rng);
  }

  std::optional<AdaptiveMu> adaptive;
  std::optional<DissimilarityMu> theory;
  double mu = config_.mu;
  if (config_.adaptive_mu.enabled) {
    adaptive.emplace(config_.adaptive_mu.initial_mu, config_.adaptive_mu.step,
                     config_.adaptive_mu.patience);
    mu = adaptive->mu();
  } else if (config_.theory_mu.enabled) {
    theory.emplace(config_.theory_mu.coefficient, config_.theory_mu.max_mu,
                   config_.theory_mu.smoothing);
    mu = theory->mu();
  }

  TrainHistory history;
  history.rounds.reserve(config_.rounds + 1);

  if (!observers_.empty()) {
    RunInfo info;
    info.algorithm = to_string(config_.algorithm);
    info.rounds = config_.rounds;
    info.first_round = config_.first_round;
    info.devices_per_round = config_.devices_per_round;
    info.num_clients = data_.num_clients();
    info.parameter_count = d;
    info.threads = pool->size();
    info.seed = config_.seed;
    for (auto* o : observers_) o->on_run_start(info);
  }

  // Whole-run profiler span; round/phase spans nest under it and client
  // solves land on the pool-worker tracks (all no-ops while disabled).
  Span run_span("run", "trainer", "rounds",
                static_cast<std::int64_t>(config_.rounds), "clients",
                static_cast<std::int64_t>(data_.num_clients()));

  // Evaluation phase: global eval plus (when configured) dissimilarity;
  // both are charged to the trace's eval_seconds.
  auto evaluate_round = [&](RoundMetrics& m, RoundTrace& trace) {
    Span span("eval", "phase", "round", static_cast<std::int64_t>(m.round));
    Stopwatch timer;
    const GlobalEval eval = evaluate_global(model_, data_, w, pool);
    m.train_loss = eval.train_loss;
    m.train_accuracy = eval.train_accuracy;
    m.test_accuracy = eval.test_accuracy;
    if (config_.measure_dissimilarity) {
      const auto dis = measure_dissimilarity(model_, data_, w, pool);
      m.grad_variance = dis.variance;
      m.dissimilarity_b = dis.b;
    }
    trace.eval_seconds = timer.seconds();
    trace.evaluated = true;
  };

  // Round 0 metrics: the initial model (the paper's plots start at w^0).
  {
    Span round_span("round", "trainer", "round",
                    static_cast<std::int64_t>(config_.first_round));
    Stopwatch round_timer;
    RoundMetrics m;
    m.round = config_.first_round;
    m.mu = mu;
    RoundTrace trace;
    trace.round = config_.first_round;
    evaluate_round(m, trace);
    trace.round_seconds = round_timer.seconds();
    history.rounds.push_back(m);
    for (auto* o : observers_) o->on_round_end(history.rounds.back(), trace);
    if (adaptive) mu = adaptive->update(*m.train_loss);
    if (theory && m.dissimilarity_b) mu = theory->update(*m.dissimilarity_b);
  }

  for (std::size_t step = 0; step < config_.rounds; ++step) {
    const std::size_t t = config_.first_round + step;
    Span round_span("round", "trainer", "round",
                    static_cast<std::int64_t>(t + 1));
    Stopwatch round_timer;
    Stopwatch phase_timer;
    RoundTrace trace;
    trace.round = t + 1;

    // 1. Select devices (deterministic in (seed, round); identical across
    //    algorithms under the same seed).
    // 2. Assign systems budgets (who straggles, how much work each gets).
    std::vector<std::size_t> selected;
    std::vector<DeviceBudget> budgets;
    {
      Span span("sampling", "phase", "round",
                static_cast<std::int64_t>(t + 1));
      selected = select_devices(config_.sampling, pk,
                                config_.devices_per_round, config_.seed, t);
      std::vector<std::size_t> train_sizes(selected.size());
      for (std::size_t i = 0; i < selected.size(); ++i) {
        train_sizes[i] = data_.clients[selected[i]].train.size();
      }
      budgets = assign_budgets(config_.systems, config_.seed, t, selected,
                               train_sizes, config_.batch_size);
    }
    trace.sampling_seconds = phase_timer.seconds();

    for (auto* o : observers_) o->on_round_start(t + 1, selected);

    // 3. FedDane: estimate the full gradient from the sampled devices.
    std::vector<Vector> corrections;
    if (config_.algorithm == Algorithm::kFedDane) {
      Span span("feddane_correction", "phase", "round",
                static_cast<std::int64_t>(t + 1));
      phase_timer.reset();
      corrections = feddane_corrections(model_, data_, selected, w, pool);
      trace.correction_seconds = phase_timer.seconds();
    }

    // 4. Local solves, in parallel across devices. Each worker times its
    //    own solve (ClientResult::solve_seconds); the round thread only
    //    reads them after the barrier, so determinism is untouched.
    ClientRoundConfig client_config{.mu = mu,
                                    .batch_size = config_.batch_size,
                                    .learning_rate = config_.learning_rate,
                                    .clip_norm = config_.clip_norm,
                                    .measure_gamma = config_.measure_gamma};
    std::vector<ClientResult> results(selected.size());
    phase_timer.reset();
    {
      Span span("solve_parallel", "phase", "round",
                static_cast<std::int64_t>(t + 1), "devices",
                static_cast<std::int64_t>(selected.size()));
      pool->parallel_for(selected.size(), [&](std::size_t i) {
        // Worker-side span: lands on the pool thread's track. Recording
        // draws no randomness, so determinism is untouched.
        Span solve_span("client_solve", "client", "round",
                        static_cast<std::int64_t>(t + 1), "device",
                        static_cast<std::int64_t>(selected[i]), "iterations",
                        static_cast<std::int64_t>(budgets[i].iterations));
        Rng minibatch_rng = make_stream(config_.seed, StreamKind::kMinibatch,
                                        t, selected[i] + 1);
        std::span<const double> correction;
        if (!corrections.empty()) correction = corrections[i];
        results[i] = run_client(model_, data_.clients[selected[i]], w,
                                *config_.solver, budgets[i], client_config,
                                correction, minibatch_rng);
      });
    }
    trace.solve_wall_seconds = phase_timer.seconds();

    for (auto* o : observers_) {
      for (const auto& r : results) o->on_client_result(t + 1, r);
    }

    // 5. Aggregate. FedAvg drops stragglers; FedProx/FedDane keep them.
    phase_timer.reset();
    std::vector<Contribution> contributions;
    std::size_t straggler_total = 0;
    bool updated = false;
    {
      Span span("aggregate", "phase", "round",
                static_cast<std::int64_t>(t + 1));
      for (const auto& r : results) {
        if (r.straggler) ++straggler_total;
        if (config_.algorithm == Algorithm::kFedAvg && r.straggler) continue;
        contributions.push_back(
            {r.device, &r.update, static_cast<double>(r.num_samples)});
      }
      updated = aggregate(config_.sampling, contributions, w);
    }
    trace.aggregate_seconds = phase_timer.seconds();
    if (!updated) {
      log_debug() << "round " << t
                  << ": every selected device was dropped; keeping w";
    }

    for (auto* o : observers_) {
      o->on_aggregate(t + 1, std::span<const double>(w));
    }

    trace.selected = selected.size();
    trace.contributors = contributions.size();
    trace.stragglers = straggler_total;
    trace.bytes_down = param_bytes * selected.size();
    trace.bytes_up = param_bytes * contributions.size();
    {
      std::vector<double> solve_times;
      solve_times.reserve(results.size());
      for (const auto& r : results) solve_times.push_back(r.solve_seconds);
      trace.solve = SolveStats::from_samples(solve_times);
    }

    // 6. Record metrics.
    RoundMetrics m;
    m.round = t + 1;
    m.mu = mu;
    m.contributors = contributions.size();
    m.stragglers = straggler_total;
    if (config_.measure_gamma) {
      double total = 0.0;
      std::size_t count = 0;
      for (const auto& r : results) {
        if (r.gamma_measured) {
          total += r.gamma;
          ++count;
        }
      }
      if (count > 0) {
        m.mean_gamma = total / static_cast<double>(count);
      }
    }
    const bool do_eval =
        ((t + 1) % config_.eval_every == 0) || (step + 1 == config_.rounds);
    if (do_eval) evaluate_round(m, trace);
    trace.round_seconds = round_timer.seconds();
    history.rounds.push_back(m);
    for (auto* o : observers_) o->on_round_end(history.rounds.back(), trace);

    if (adaptive && m.evaluated()) mu = adaptive->update(*m.train_loss);
    if (theory && m.evaluated() && m.dissimilarity_b) {
      mu = theory->update(*m.dissimilarity_b);
    }
  }

  history.final_parameters = std::move(w);
  for (auto* o : observers_) o->on_run_end(history);
  return history;
}

}  // namespace fed
