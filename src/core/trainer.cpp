#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "comm/client_runtime.h"
#include "comm/transport.h"
#include "core/checkpoint.h"
#include "core/round_driver.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "optim/sgd.h"
#include "support/serialize.h"
#include "support/stopwatch.h"

namespace fed {

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFedAvg: return "FedAvg";
    case Algorithm::kFedProx: return "FedProx";
    case Algorithm::kFedDane: return "FedDane";
  }
  return "?";
}

TrainerConfig fedavg_config() {
  TrainerConfig c;
  c.algorithm = Algorithm::kFedAvg;
  c.mu = 0.0;
  return c;
}

TrainerConfig fedprox_config(double mu) {
  TrainerConfig c;
  c.algorithm = Algorithm::kFedProx;
  c.mu = mu;
  return c;
}

TrainerConfig feddane_config(double mu) {
  TrainerConfig c;
  c.algorithm = Algorithm::kFedDane;
  c.mu = mu;
  return c;
}

const RoundMetrics& TrainHistory::final_metrics() const {
  for (auto it = rounds.rbegin(); it != rounds.rend(); ++it) {
    if (it->evaluated()) return *it;
  }
  throw std::logic_error("TrainHistory: no evaluated round");
}

std::vector<std::pair<std::size_t, double>> TrainHistory::loss_series() const {
  std::vector<std::pair<std::size_t, double>> out;
  for (const auto& r : rounds) {
    if (r.evaluated()) out.emplace_back(r.round, *r.train_loss);
  }
  return out;
}

std::vector<std::pair<std::size_t, double>> TrainHistory::accuracy_series()
    const {
  std::vector<std::pair<std::size_t, double>> out;
  for (const auto& r : rounds) {
    if (r.evaluated()) out.emplace_back(r.round, *r.test_accuracy);
  }
  return out;
}

bool TrainHistory::diverged(double threshold) const {
  for (const auto& r : rounds) {
    if (r.evaluated() &&
        (!std::isfinite(*r.train_loss) || *r.train_loss > threshold)) {
      return true;
    }
  }
  return false;
}

Trainer::Trainer(const Model& model, const FederatedDataset& data,
                 TrainerConfig config, ThreadPool* pool)
    : model_(model),
      data_(data),
      config_(std::move(config)),
      external_pool_(pool) {
  if (config_.rounds == 0 || config_.devices_per_round == 0 ||
      config_.devices_per_round > data_.num_clients()) {
    throw std::invalid_argument("Trainer: bad rounds/devices_per_round");
  }
  if (config_.mu < 0.0) throw std::invalid_argument("Trainer: mu < 0");
  if (config_.adaptive_mu.enabled && config_.theory_mu.enabled) {
    throw std::invalid_argument(
        "Trainer: adaptive_mu and theory_mu are mutually exclusive");
  }
  if (config_.theory_mu.enabled) config_.measure_dissimilarity = true;
  if (config_.eval_every == 0) config_.eval_every = 1;
  if (config_.recovery.quorum <= 0.0 || config_.recovery.quorum > 1.0) {
    throw std::invalid_argument("Trainer: recovery.quorum outside (0, 1]");
  }
  if (config_.recovery.backoff_base_ms < 0.0 ||
      config_.recovery.backoff_factor < 1.0 ||
      config_.recovery.deadline_ms < 0.0) {
    throw std::invalid_argument("Trainer: bad recovery backoff/deadline");
  }
  if (config_.shards == 0) config_.shards = 1;
  if (!config_.solver) config_.solver = std::make_shared<SgdSolver>();
}

void Trainer::add_observer(TrainingObserver& observer) {
  if (run_started_) {
    throw std::logic_error(
        "Trainer: add_observer after run() started; register every "
        "observer before running");
  }
  observers_.push_back(&observer);
}

TrainHistory Trainer::run() { return run_impl(nullptr); }

TrainHistory Trainer::resume(const std::string& checkpoint_path) {
  Span span("resume", "trainer");
  const CheckpointState state = load_checkpoint_state(checkpoint_path);
  const std::uint64_t expected = config_fingerprint(
      config_, data_.num_clients(), model_.parameter_count());
  if (state.fingerprint != expected) {
    throw std::runtime_error(
        "Trainer::resume: checkpoint config fingerprint mismatch — the "
        "checkpoint was produced under different determinism-relevant "
        "settings (threads/shards/transport may differ; everything else "
        "must match)");
  }
  const std::size_t total_end = config_.first_round + config_.rounds;
  if (state.next_round == 0 || state.next_round > total_end + 1) {
    throw std::runtime_error(
        "Trainer::resume: checkpoint round lies outside this run");
  }
  return run_impl(&state);
}

TrainHistory Trainer::run_impl(const CheckpointState* restored) {
  run_started_ = true;
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = external_pool_;
  if (!pool) {
    owned_pool = std::make_unique<ThreadPool>(config_.threads);
    pool = owned_pool.get();
  }

  const std::size_t d = model_.parameter_count();

  // The first `t` the round loop executes and the run's last round id.
  // A resumed run continues at the checkpointed boundary; everything
  // before it is already in the restored history.
  const std::size_t total_end = config_.first_round + config_.rounds;
  const std::size_t start_t =
      restored ? static_cast<std::size_t>(restored->next_round) - 1
               : config_.first_round;

  Vector w(d);
  if (restored) {
    if (restored->parameters.size() != d) {
      throw std::runtime_error(
          "Trainer::resume: checkpoint parameter dimension mismatch");
    }
    w = restored->parameters;
  } else if (config_.initial_parameters) {
    if (config_.initial_parameters->size() != d) {
      throw std::invalid_argument(
          "Trainer: initial_parameters dimension mismatch");
    }
    w = *config_.initial_parameters;
  } else {
    Rng init_rng = make_stream(config_.seed, StreamKind::kModelInit);
    model_.init_parameters(w, init_rng);
  }

  std::optional<AdaptiveMu> adaptive;
  std::optional<DissimilarityMu> theory;
  double mu = config_.mu;
  if (config_.adaptive_mu.enabled) {
    adaptive.emplace(config_.adaptive_mu.initial_mu, config_.adaptive_mu.step,
                     config_.adaptive_mu.patience);
    mu = adaptive->mu();
  } else if (config_.theory_mu.enabled) {
    theory.emplace(config_.theory_mu.coefficient, config_.theory_mu.max_mu,
                   config_.theory_mu.smoothing);
    mu = theory->mu();
  }
  if (restored) {
    mu = restored->mu;
    if (adaptive && restored->has_adaptive) {
      adaptive->restore({restored->adaptive_mu, restored->adaptive_last_loss,
                         restored->adaptive_has_last,
                         static_cast<std::size_t>(
                             restored->adaptive_consecutive_decreases)});
    }
    if (theory && restored->has_theory) {
      theory->restore({restored->theory_mu, restored->theory_b_sq_ema,
                       restored->theory_has_estimate});
    }
  }

  // Open-world population (sim/churn.h). The departure floor is raised
  // to devices_per_round so selection always has a full candidate set.
  std::optional<DeviceRegistry> registry;
  if (config_.churn.any()) {
    ChurnConfig churn = config_.churn;
    churn.min_active = std::max(churn.min_active, config_.devices_per_round);
    registry.emplace(data_.num_clients(), churn, config_.seed);
    if (restored) {
      registry->restore(restored->active, restored->churn_arrivals,
                        restored->churn_departures);
    }
  }

  TrainHistory history;
  history.rounds.reserve(config_.rounds + 1);
  if (restored) history.rounds = restored->rounds;

  if (!observers_.empty()) {
    RunInfo info;
    info.algorithm = to_string(config_.algorithm);
    info.rounds = total_end - start_t;  // rounds this run will execute
    // Resumed: the checkpointed round — the first executed round is + 1.
    info.first_round = restored ? start_t : config_.first_round;
    info.devices_per_round = config_.devices_per_round;
    info.num_clients = data_.num_clients();
    info.parameter_count = d;
    info.threads = pool->size();
    info.seed = config_.seed;
    info.resumed = restored != nullptr;
    for (auto* o : observers_) o->on_run_start(info);
  }

  // Whole-run profiler span; round/phase spans nest under it and client
  // solves land on the pool-worker tracks (all no-ops while disabled).
  Span run_span("run", "trainer", "rounds",
                static_cast<std::int64_t>(config_.rounds), "clients",
                static_cast<std::int64_t>(data_.num_clients()));

  // The federation stack for this run: the device-side runtime, the
  // channel the messages travel through, and the server-side driver that
  // executes each round as a message exchange.
  ClientRuntime runtime(model_, data_, *config_.solver, config_.seed);
  std::shared_ptr<const Transport> transport = config_.transport;
  if (!transport) transport = make_transport(TransportKind::kInProcess);
  if (config_.faults.any()) {
    transport = std::make_shared<FaultInjectingTransport>(
        std::move(transport), config_.faults, config_.seed);
  }
  RoundDriver driver(model_, data_, config_, *transport, runtime, pool,
                     registry ? &*registry : nullptr, observers_);

  std::optional<CheckpointWriter> checkpoints;
  if (config_.checkpoint.enabled()) checkpoints.emplace(config_.checkpoint);
  const std::uint64_t fingerprint =
      config_fingerprint(config_, data_.num_clients(), d);

  // Round 0 metrics: the initial model (the paper's plots start at w^0).
  // A resumed run already recorded it — its history carries over whole.
  if (!restored) {
    Span round_span("round", "trainer", "round",
                    static_cast<std::int64_t>(config_.first_round));
    Stopwatch round_timer;
    RoundMetrics m;
    m.round = config_.first_round;
    m.mu = mu;
    RoundTrace trace;
    trace.round = config_.first_round;
    driver.evaluate(w, m, trace);
    trace.round_seconds = round_timer.seconds();
    history.rounds.push_back(m);
    for (auto* o : observers_) o->on_round_end(history.rounds.back(), trace);
    if (adaptive) mu = adaptive->update(*m.train_loss);
    if (theory && m.dissimilarity_b) mu = theory->update(*m.dissimilarity_b);
  }

  for (std::size_t t = start_t; t < total_end; ++t) {
    Span round_span("round", "trainer", "round",
                    static_cast<std::int64_t>(t + 1));
    Stopwatch round_timer;

    RoundDriver::RoundOutput out = driver.run_round(t, mu, w);

    const bool do_eval =
        ((t + 1) % config_.eval_every == 0) || (t + 1 == total_end);
    if (do_eval) driver.evaluate(w, out.metrics, out.trace);
    history.rounds.push_back(out.metrics);

    // Move mu for the next round *before* the checkpoint is cut, so the
    // snapshot carries exactly the state the next round would see. The
    // reorder relative to on_round_end is observably safe: the emitted
    // metrics/trace only carry this round's mu, never the next one's.
    if (adaptive && out.metrics.evaluated()) {
      mu = adaptive->update(*out.metrics.train_loss);
    }
    if (theory && out.metrics.evaluated() && out.metrics.dissimilarity_b) {
      mu = theory->update(*out.metrics.dissimilarity_b);
    }

    if (checkpoints && (t + 1) % config_.checkpoint.every == 0) {
      Span ckpt_span("checkpoint", "trainer", "round",
                     static_cast<std::int64_t>(t + 1));
      Stopwatch ckpt_timer;
      CheckpointState state;
      state.fingerprint = fingerprint;
      state.seed = config_.seed;
      state.next_round = t + 2;  // 1-based id of the next round to execute
      state.first_round = config_.first_round;
      state.mu = mu;
      if (adaptive) {
        const AdaptiveMu::State s = adaptive->state();
        state.has_adaptive = true;
        state.adaptive_mu = s.mu;
        state.adaptive_last_loss = s.last_loss;
        state.adaptive_has_last = s.has_last;
        state.adaptive_consecutive_decreases = s.consecutive_decreases;
      }
      if (theory) {
        const DissimilarityMu::State s = theory->state();
        state.has_theory = true;
        state.theory_mu = s.mu;
        state.theory_b_sq_ema = s.b_sq_ema;
        state.theory_has_estimate = s.has_estimate;
      }
      state.parameters = w;
      state.population = data_.num_clients();
      if (registry) {
        state.churn_arrivals = registry->total_arrivals();
        state.churn_departures = registry->total_departures();
        state.active = registry->pack_active();
      } else {
        // Closed world: everyone is always live.
        state.active.assign((data_.num_clients() + 7) / 8, 0);
        for (std::size_t k = 0; k < data_.num_clients(); ++k) {
          state.active[k / 8] |= static_cast<std::uint8_t>(1u << (k % 8));
        }
      }
      state.rounds = history.rounds;
      const CheckpointWriter::WriteInfo written = checkpoints->write(state);
      out.trace.checkpoint.written = true;
      out.trace.checkpoint.round = t + 1;
      out.trace.checkpoint.bytes = written.bytes;
      out.trace.checkpoint.generations = written.generations;
      out.trace.checkpoint.retain = config_.checkpoint.retain;
      out.trace.checkpoint.write_seconds = ckpt_timer.seconds();
    }

    out.trace.round_seconds = round_timer.seconds();
    for (auto* o : observers_) {
      o->on_round_end(history.rounds.back(), out.trace);
    }
  }

  history.final_parameters = std::move(w);
  for (auto* o : observers_) o->on_run_end(history);
  return history;
}

}  // namespace fed
