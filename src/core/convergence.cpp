#include "core/convergence.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace fed {

double theorem4_rho(const ConvergenceInputs& in) {
  if (in.k < 1.0) throw std::invalid_argument("theorem4_rho: K < 1");
  if (in.gamma < 0.0 || in.b < 1.0 || in.l <= 0.0 || in.l_minus < 0.0) {
    throw std::invalid_argument("theorem4_rho: bad inputs");
  }
  const double mu_bar = in.mu - in.l_minus;
  if (mu_bar <= 0.0) {
    throw std::invalid_argument("theorem4_rho: requires mu > L_minus");
  }
  const double one_plus_gamma = 1.0 + in.gamma;
  const double sqrt_k = std::sqrt(in.k);
  // rho = 1/mu - gamma B / mu
  //       - B(1+gamma) sqrt(2) / (mu_bar sqrt(K))
  //       - L B (1+gamma) / (mu_bar mu)
  //       - L (1+gamma)^2 B^2 / (2 mu_bar^2)
  //       - L B^2 (1+gamma)^2 (2 sqrt(2K) + 2) / (mu_bar^2 K)
  return 1.0 / in.mu - in.gamma * in.b / in.mu -
         in.b * one_plus_gamma * std::sqrt(2.0) / (mu_bar * sqrt_k) -
         in.l * in.b * one_plus_gamma / (mu_bar * in.mu) -
         in.l * one_plus_gamma * one_plus_gamma * in.b * in.b /
             (2.0 * mu_bar * mu_bar) -
         in.l * in.b * in.b * one_plus_gamma * one_plus_gamma *
             (2.0 * std::sqrt(2.0 * in.k) + 2.0) /
             (mu_bar * mu_bar * in.k);
}

bool remark5_conditions(double gamma, double b, double k) {
  return gamma * b < 1.0 && b / std::sqrt(k) < 1.0;
}

double corollary7_mu(double l, double b) { return 6.0 * l * b * b; }

double corollary10_b(double sigma_sq, double epsilon) {
  if (epsilon <= 0.0) throw std::invalid_argument("corollary10_b: eps <= 0");
  return std::sqrt(1.0 + sigma_sq / epsilon);
}

double smallest_certified_mu(ConvergenceInputs in, double mu_max) {
  auto rho_at = [&](double mu) {
    in.mu = mu;
    return theorem4_rho(in);
  };
  // rho(mu) -> 0+ from the 1/mu term as mu -> inf only if the negative
  // terms shrink faster; in practice rho is negative for tiny mu (the
  // penalty terms blow up via mu_bar) and may become positive beyond some
  // threshold. Scan for a bracket, then bisect to the boundary.
  const double lo_start = in.l_minus + 1e-9;
  double hi = std::max(lo_start * 2.0, 1e-6);
  double certified = -1.0;
  while (hi <= mu_max) {
    if (rho_at(hi) > 0.0) {
      certified = hi;
      break;
    }
    hi *= 2.0;
  }
  if (certified < 0.0) return -1.0;
  // Bisect between the last negative point and `certified`.
  double lo = std::max(lo_start, certified / 2.0);
  if (rho_at(lo) > 0.0) return lo;  // already positive at the low end
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + certified);
    if (rho_at(mid) > 0.0) {
      certified = mid;
    } else {
      lo = mid;
    }
  }
  return certified;
}

SmoothnessEstimate estimate_smoothness(const Model& model, const Dataset& data,
                                       std::span<const double> w,
                                       std::size_t probes, double step,
                                       Rng& rng) {
  if (probes == 0 || step <= 0.0) {
    throw std::invalid_argument("estimate_smoothness: bad probes/step");
  }
  const std::size_t d = model.parameter_count();
  Vector grad0(d), grad1(d), direction(d), w_probe(w.begin(), w.end());
  model.dataset_loss_and_grad(w, data, grad0);

  SmoothnessEstimate estimate;
  for (std::size_t p = 0; p < probes; ++p) {
    for (double& v : direction) v = rng.normal();
    const double norm = norm2(direction);
    if (norm < 1e-12) continue;
    scale(direction, 1.0 / norm);
    for (std::size_t i = 0; i < d; ++i) w_probe[i] = w[i] + step * direction[i];
    model.dataset_loss_and_grad(w_probe, data, grad1);
    subtract(grad1, grad0, grad1);  // grad difference
    estimate.l = std::max(estimate.l, norm2(grad1) / step);
    const double curvature = dot(direction, grad1) / step;
    estimate.l_minus = std::max(estimate.l_minus, -curvature);
  }
  return estimate;
}

SmoothnessEstimate estimate_federated_smoothness(
    const Model& model, const FederatedDataset& data,
    std::span<const double> w, std::size_t probes, double step,
    std::uint64_t seed, ThreadPool* pool) {
  const std::size_t n = data.num_clients();
  std::vector<SmoothnessEstimate> per_client(n);
  auto compute = [&](std::size_t k) {
    if (data.clients[k].train.empty()) return;
    Rng rng = make_stream(seed, StreamKind::kTest, k);
    per_client[k] =
        estimate_smoothness(model, data.clients[k].train, w, probes, step, rng);
  };
  if (pool) {
    pool->parallel_for(n, compute);
  } else {
    for (std::size_t k = 0; k < n; ++k) compute(k);
  }
  SmoothnessEstimate pooled;
  for (const auto& e : per_client) {
    pooled.l = std::max(pooled.l, e.l);
    pooled.l_minus = std::max(pooled.l_minus, e.l_minus);
  }
  return pooled;
}

}  // namespace fed
