#include "core/experiment.h"

#include <cmath>
#include <sstream>

#include "support/log.h"
#include "support/stopwatch.h"

namespace fed {

TrainerConfig base_config(const Workload& workload, Algorithm algorithm,
                          double mu, double straggler_fraction,
                          std::size_t epochs, std::uint64_t seed) {
  TrainerConfig c;
  c.algorithm = algorithm;
  c.mu = mu;
  c.rounds = workload.default_rounds;
  c.devices_per_round = std::min<std::size_t>(10, workload.data.num_clients());
  c.batch_size = workload.batch_size;
  c.learning_rate = workload.learning_rate;
  c.systems.straggler_fraction = straggler_fraction;
  c.systems.epochs = epochs;
  c.seed = seed;
  c.eval_every = workload.default_eval_every;
  return c;
}

std::vector<VariantResult> run_variants(const Workload& workload,
                                        const std::vector<VariantSpec>& specs,
                                        bool verbose) {
  std::vector<VariantResult> results;
  results.reserve(specs.size());
  for (const auto& spec : specs) {
    Stopwatch timer;
    Trainer trainer(*workload.model, workload.data, spec.config);
    VariantResult r{spec.label, trainer.run()};
    if (verbose) {
      const auto& fin = r.history.final_metrics();
      log_info() << workload.name << " | " << spec.label << " | loss "
                 << fin.train_loss << " | test acc " << fin.test_accuracy
                 << " | " << timer.seconds() << "s";
    }
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<std::string> history_csv_header() {
  return {"dataset",     "variant",        "round",
          "train_loss",  "train_accuracy", "test_accuracy",
          "grad_variance", "dissimilarity_b", "mu",
          "contributors", "stragglers"};
}

void append_history_csv(CsvWriter& csv, const std::string& dataset,
                        const std::vector<VariantResult>& results) {
  for (const auto& r : results) {
    for (const auto& m : r.history.rounds) {
      if (!m.evaluated) continue;
      std::ostringstream variance, dis_b;
      if (m.dissimilarity_measured) {
        variance << m.grad_variance;
        dis_b << m.dissimilarity_b;
      }
      csv.write_row({dataset, r.label, std::to_string(m.round),
                     std::to_string(m.train_loss),
                     std::to_string(m.train_accuracy),
                     std::to_string(m.test_accuracy), variance.str(),
                     dis_b.str(), std::to_string(m.mu),
                     std::to_string(m.contributors),
                     std::to_string(m.stragglers)});
    }
  }
}

double settled_accuracy(const TrainHistory& history) {
  std::vector<const RoundMetrics*> evaluated;
  for (const auto& m : history.rounds) {
    if (m.evaluated) evaluated.push_back(&m);
  }
  if (evaluated.empty()) {
    throw std::logic_error("settled_accuracy: no evaluated rounds");
  }
  for (std::size_t i = 1; i < evaluated.size(); ++i) {
    const double f_t = evaluated[i]->train_loss;
    const double f_prev = evaluated[i - 1]->train_loss;
    if (!std::isfinite(f_t)) {
      // Diverged to NaN/inf: read accuracy just before the blow-up.
      return evaluated[i - 1]->test_accuracy;
    }
    if (std::abs(f_t - f_prev) < 1e-4) return evaluated[i]->test_accuracy;
    if (i >= 10 && f_t - evaluated[i - 10]->train_loss > 1.0) {
      return evaluated[i]->test_accuracy;
    }
  }
  return evaluated.back()->test_accuracy;
}

std::string trajectory_string(const TrainHistory& history,
                              std::size_t points) {
  const auto series = history.loss_series();
  if (series.empty()) return "(no evaluations)";
  std::ostringstream out;
  out.precision(4);
  const std::size_t n = series.size();
  const std::size_t count = std::min(points, n);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t idx = (count == 1) ? n - 1 : i * (n - 1) / (count - 1);
    if (i) out << " -> ";
    out << "r" << series[idx].first << ":" << series[idx].second;
  }
  return out.str();
}

}  // namespace fed
