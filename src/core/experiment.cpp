#include "core/experiment.h"

#include <cmath>
#include <sstream>

#include "obs/observer.h"
#include "support/log.h"
#include "support/stopwatch.h"

namespace fed {

TrainerConfig base_config(const Workload& workload, Algorithm algorithm,
                          double mu, double straggler_fraction,
                          std::size_t epochs, std::uint64_t seed) {
  TrainerConfig c;
  c.algorithm = algorithm;
  c.mu = mu;
  c.rounds = workload.default_rounds;
  c.devices_per_round = std::min<std::size_t>(10, workload.data.num_clients());
  c.batch_size = workload.batch_size;
  c.learning_rate = workload.learning_rate;
  c.systems.straggler_fraction = straggler_fraction;
  c.systems.epochs = epochs;
  c.seed = seed;
  c.eval_every = workload.default_eval_every;
  return c;
}

namespace {

// The per-variant summary line, expressed as an observer so run_variants
// reports progress through the same channel as every other consumer.
class VariantLogObserver final : public TrainingObserver {
 public:
  VariantLogObserver(std::string workload, std::string label)
      : workload_(std::move(workload)), label_(std::move(label)) {}

  void on_run_end(const TrainHistory& history) override {
    const auto& fin = history.final_metrics();
    log_info() << workload_ << " | " << label_ << " | loss "
               << fin.train_loss.value_or(0.0) << " | test acc "
               << fin.test_accuracy.value_or(0.0) << " | " << timer_.seconds()
               << "s";
  }

 private:
  std::string workload_;
  std::string label_;
  Stopwatch timer_;
};

}  // namespace

std::vector<VariantResult> run_variants(const Workload& workload,
                                        const std::vector<VariantSpec>& specs,
                                        const RunVariantsOptions& options) {
  std::vector<VariantResult> results;
  results.reserve(specs.size());
  for (const auto& spec : specs) {
    Trainer trainer(*workload.model, workload.data, spec.config);
    std::optional<VariantLogObserver> logger;
    if (options.verbose) {
      logger.emplace(workload.name, spec.label);
      trainer.add_observer(*logger);
    }
    if (options.observer) trainer.add_observer(*options.observer);
    results.push_back(VariantResult{spec.label, trainer.run()});
  }
  return results;
}

std::vector<VariantResult> run_variants(const Workload& workload,
                                        const std::vector<VariantSpec>& specs,
                                        bool verbose) {
  RunVariantsOptions options;
  options.verbose = verbose;
  return run_variants(workload, specs, options);
}

std::vector<std::string> history_csv_header() {
  return {"dataset",     "variant",        "round",
          "train_loss",  "train_accuracy", "test_accuracy",
          "grad_variance", "dissimilarity_b", "mu",
          "contributors", "stragglers"};
}

namespace {

std::string opt_cell(const std::optional<double>& v) {
  if (!v) return {};
  std::ostringstream out;
  out << *v;
  return out.str();
}

}  // namespace

void append_history_csv(CsvWriter& csv, const std::string& dataset,
                        const std::vector<VariantResult>& results) {
  for (const auto& r : results) {
    for (const auto& m : r.history.rounds) {
      if (!m.evaluated()) continue;
      csv.write_row({dataset, r.label, std::to_string(m.round),
                     std::to_string(*m.train_loss),
                     std::to_string(*m.train_accuracy),
                     std::to_string(*m.test_accuracy),
                     opt_cell(m.grad_variance), opt_cell(m.dissimilarity_b),
                     std::to_string(m.mu), std::to_string(m.contributors),
                     std::to_string(m.stragglers)});
    }
  }
}

double settled_accuracy(const TrainHistory& history) {
  std::vector<const RoundMetrics*> evaluated;
  for (const auto& m : history.rounds) {
    if (m.evaluated()) evaluated.push_back(&m);
  }
  if (evaluated.empty()) {
    throw std::logic_error("settled_accuracy: no evaluated rounds");
  }
  for (std::size_t i = 1; i < evaluated.size(); ++i) {
    const double f_t = *evaluated[i]->train_loss;
    const double f_prev = *evaluated[i - 1]->train_loss;
    if (!std::isfinite(f_t)) {
      // Diverged to NaN/inf: read accuracy just before the blow-up.
      return *evaluated[i - 1]->test_accuracy;
    }
    if (std::abs(f_t - f_prev) < 1e-4) return *evaluated[i]->test_accuracy;
    if (i >= 10 && f_t - *evaluated[i - 10]->train_loss > 1.0) {
      return *evaluated[i]->test_accuracy;
    }
  }
  return *evaluated.back()->test_accuracy;
}

std::string trajectory_string(const TrainHistory& history,
                              std::size_t points) {
  const auto series = history.loss_series();
  if (series.empty()) return "(no evaluations)";
  std::ostringstream out;
  out.precision(4);
  const std::size_t n = series.size();
  const std::size_t count = std::min(points, n);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t idx = (count == 1) ? n - 1 : i * (n - 1) / (count - 1);
    if (i) out << " -> ";
    out << "r" << series[idx].first << ":" << series[idx].second;
  }
  return out.str();
}

}  // namespace fed
