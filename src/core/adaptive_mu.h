// The paper's adaptive-mu heuristic (Section 5.3.2, Figures 3 and 11):
// increase mu by `step` whenever the global training loss increases, and
// decrease it by `step` after `patience` consecutive decreases. mu never
// goes below zero.

#pragma once

#include <cstddef>

namespace fed {

class AdaptiveMu {
 public:
  AdaptiveMu(double initial_mu, double step = 0.1, std::size_t patience = 5);

  // Feeds the loss observed after a round; returns the mu to use for the
  // next round.
  double update(double loss);

  double mu() const { return mu_; }

  // The mutable controller state, for checkpointing (core/checkpoint.h):
  // restoring a snapshot makes future update() calls bit-identical to a
  // controller that never stopped. step/patience stay config-side.
  struct State {
    double mu = 0.0;
    double last_loss = 0.0;
    bool has_last = false;
    std::size_t consecutive_decreases = 0;
  };
  State state() const {
    return {mu_, last_loss_, has_last_, consecutive_decreases_};
  }
  void restore(const State& s) {
    mu_ = s.mu;
    last_loss_ = s.last_loss;
    has_last_ = s.has_last;
    consecutive_decreases_ = s.consecutive_decreases;
  }

 private:
  double mu_;
  double step_;
  std::size_t patience_;
  double last_loss_ = 0.0;
  bool has_last_ = false;
  std::size_t consecutive_decreases_ = 0;
};

// Theory-guided mu (the paper's stated future work, "based, e.g., on the
// theoretical groundwork provided here"): Corollary 7 shows convergence
// with mu ~ 6 L B^2, i.e. the penalty should scale with the measured
// dissimilarity. This controller sets
//   mu_t = clamp(coefficient * (B_ema^2 - 1), 0, max_mu)
// where B_ema is an exponential moving average of the measured B(w^t)
// (Definition 3). B = 1 (IID) maps to mu = 0; larger dissimilarity maps
// to a proportionally stronger proximal term. The absolute scale (the
// paper's 6L) is unknown without estimating L, so it is exposed as
// `coefficient`.
class DissimilarityMu {
 public:
  DissimilarityMu(double coefficient, double max_mu = 10.0,
                  double smoothing = 0.5);

  // Feeds a new measurement of B(w^t); returns the mu for the next round.
  double update(double measured_b);

  double mu() const { return mu_; }

  // Checkpoint snapshot of the mutable EMA state (see AdaptiveMu::State).
  struct State {
    double mu = 0.0;
    double b_sq_ema = 1.0;
    bool has_estimate = false;
  };
  State state() const { return {mu_, b_sq_ema_, has_estimate_}; }
  void restore(const State& s) {
    mu_ = s.mu;
    b_sq_ema_ = s.b_sq_ema;
    has_estimate_ = s.has_estimate;
  }

 private:
  double coefficient_;
  double max_mu_;
  double smoothing_;  // EMA weight on the previous estimate, in [0, 1)
  double b_sq_ema_ = 1.0;
  bool has_estimate_ = false;
  double mu_ = 0.0;
};

}  // namespace fed
