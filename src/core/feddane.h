// FedDane gradient correction (Appendix B, Figure 4): DANE/AIDE's local
// objective adapted to federated sampling. Each selected device solves
//
//   h_k(w) = F_k(w) + <grad~f(w^t) - grad F_k(w^t), w> + (mu/2)||w - w^t||^2
//
// where grad~f(w^t) is the full gradient of f estimated from the sampled
// devices only (weighted by n_k). The staleness/inexactness of this
// estimate under low participation is exactly what Figure 4 shows to
// hurt convergence on non-IID data.

#pragma once

#include <span>
#include <vector>

#include "data/dataset.h"
#include "nn/module.h"
#include "support/threadpool.h"
#include "tensor/tensor.h"

namespace fed {

// Computes grad F_k(w) for each selected device (full batch) and the
// n_k-weighted average grad~f(w). Returns per-device correction vectors
// grad~f - grad F_k, indexed like `selected`.
std::vector<Vector> feddane_corrections(const Model& model,
                                        const FederatedDataset& data,
                                        std::span<const std::size_t> selected,
                                        std::span<const double> w,
                                        ThreadPool* pool);

}  // namespace fed
