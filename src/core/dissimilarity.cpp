#include "core/dissimilarity.h"

#include <cmath>

#include "tensor/ops.h"

namespace fed {

DissimilarityMetrics measure_dissimilarity(const Model& model,
                                           const FederatedDataset& data,
                                           std::span<const double> w,
                                           ThreadPool* pool) {
  const std::size_t n_clients = data.num_clients();
  const std::size_t d = model.parameter_count();
  const auto pk = data.client_weights();

  std::vector<Vector> grads(n_clients, Vector(d));
  auto compute = [&](std::size_t k) {
    model.dataset_loss_and_grad(w, data.clients[k].train, grads[k]);
  };
  if (pool) {
    pool->parallel_for(n_clients, compute);
  } else {
    for (std::size_t k = 0; k < n_clients; ++k) compute(k);
  }

  Vector grad_f(d, 0.0);
  for (std::size_t k = 0; k < n_clients; ++k) axpy(pk[k], grads[k], grad_f);

  DissimilarityMetrics m;
  m.grad_norm_f = norm2(grad_f);
  for (std::size_t k = 0; k < n_clients; ++k) {
    const double sq = dot(grads[k], grads[k]);
    m.expected_sq_norm += pk[k] * sq;
    const double dist = distance2(grads[k], grad_f);
    m.variance += pk[k] * dist * dist;
  }
  const double denom = m.grad_norm_f * m.grad_norm_f;
  if (denom > 1e-20) {
    m.b = std::sqrt(m.expected_sq_norm / denom);
  } else {
    // Stationary point all local functions agree on: B defined as 1
    // (Definition 3, footnote 2).
    m.b = 1.0;
  }
  return m;
}

}  // namespace fed
