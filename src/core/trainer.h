// The federated training loop — the public entry point of the library.
//
// One Trainer runs Algorithm 1 (FedAvg) or Algorithm 2 (FedProx), or the
// FedDane baseline, against a FederatedDataset and a Model:
//
//   FederatedDataset data = make_synthetic(synthetic_config(1, 1));
//   LogisticRegression model(data.input_dim, data.num_classes);
//   TrainerConfig cfg = fedprox_config(/*mu=*/1.0);
//   TrainHistory history = Trainer(model, data, cfg).run();
//
// FedAvg is the special case: mu = 0, SGD local solver, and stragglers
// dropped at aggregation (Section 3.2). FedProx keeps partial solutions
// and adds the proximal term. All randomness (device selection,
// stragglers, mini-batches) is keyed by (seed, round, device) so compared
// configurations face identical conditions.

#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/adaptive_mu.h"
#include "core/dissimilarity.h"
#include "data/dataset.h"
#include "nn/module.h"
#include "optim/solver.h"
#include "sim/sampling.h"
#include "sim/systems.h"
#include "support/threadpool.h"

namespace fed {

enum class Algorithm {
  kFedAvg,   // drop stragglers; canonical config also sets mu = 0
  kFedProx,  // aggregate partial work; proximal term mu
  kFedDane,  // FedProx aggregation + DANE gradient correction
};

std::string to_string(Algorithm algorithm);

struct AdaptiveMuConfig {
  bool enabled = false;
  double initial_mu = 0.0;
  double step = 0.1;
  std::size_t patience = 5;
};

// Theory-guided mu from the measured dissimilarity (Corollary 7; see
// DissimilarityMu). Enabling this forces per-evaluation dissimilarity
// measurement. Mutually exclusive with AdaptiveMuConfig.
struct TheoryMuConfig {
  bool enabled = false;
  double coefficient = 0.05;  // mu = coefficient * (B^2 - 1)
  double max_mu = 10.0;
  double smoothing = 0.5;
};

struct TrainerConfig {
  Algorithm algorithm = Algorithm::kFedProx;
  double mu = 0.0;
  AdaptiveMuConfig adaptive_mu;
  TheoryMuConfig theory_mu;

  std::size_t rounds = 200;             // T
  std::size_t devices_per_round = 10;   // K
  std::size_t batch_size = 10;
  double learning_rate = 0.01;
  double clip_norm = 0.0;               // 0 = no gradient clipping

  SystemsConfig systems;                // E and straggler fraction
  SamplingScheme sampling = SamplingScheme::kUniformThenWeightedAverage;

  std::uint64_t seed = 7;

  // Evaluation cadence: round metrics are computed every `eval_every`
  // rounds (and always on the final round).
  std::size_t eval_every = 1;
  bool measure_gamma = false;
  bool measure_dissimilarity = false;

  std::size_t threads = 0;  // 0 = hardware concurrency
  // Local solver; nullptr means SGD (the paper's choice).
  std::shared_ptr<const LocalSolver> solver;
  // Warm start: when set, training begins from these parameters instead
  // of the model's seeded initialization (e.g. a loaded checkpoint).
  // `first_round` offsets the round counter so selection/straggler/batch
  // streams continue where the checkpointed run left off.
  std::optional<Vector> initial_parameters;
  std::size_t first_round = 0;
};

// Canonical configurations used throughout the benches.
TrainerConfig fedavg_config();
TrainerConfig fedprox_config(double mu);
TrainerConfig feddane_config(double mu);

struct RoundMetrics {
  std::size_t round = 0;
  bool evaluated = false;       // the fields below are valid
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double grad_variance = 0.0;   // valid iff dissimilarity measured
  double dissimilarity_b = 0.0;
  bool dissimilarity_measured = false;
  double mu = 0.0;              // mu in effect this round
  double mean_gamma = 0.0;      // valid iff gamma measured
  bool gamma_measured = false;
  std::size_t contributors = 0; // devices aggregated this round
  std::size_t stragglers = 0;   // stragglers among selected
};

struct TrainHistory {
  std::vector<RoundMetrics> rounds;
  Vector final_parameters;

  // Metrics of the last evaluated round. Throws if nothing was evaluated.
  const RoundMetrics& final_metrics() const;
  // Loss/accuracy series restricted to evaluated rounds.
  std::vector<std::pair<std::size_t, double>> loss_series() const;
  std::vector<std::pair<std::size_t, double>> accuracy_series() const;
  // True if any evaluated round saw a non-finite or clearly diverging
  // loss (> threshold).
  bool diverged(double threshold = 1e4) const;
};

class Trainer {
 public:
  // `model` and `data` must outlive the trainer. An external ThreadPool
  // can be shared across trainers; otherwise one is created per run.
  Trainer(const Model& model, const FederatedDataset& data,
          TrainerConfig config, ThreadPool* pool = nullptr);

  TrainHistory run();

  // Optional per-round observer (called after each round's metrics are
  // recorded), e.g. for live printing.
  using RoundCallback = std::function<void(const RoundMetrics&)>;
  void set_round_callback(RoundCallback cb) { callback_ = std::move(cb); }

 private:
  const Model& model_;
  const FederatedDataset& data_;
  TrainerConfig config_;
  ThreadPool* external_pool_;
  RoundCallback callback_;
};

}  // namespace fed
