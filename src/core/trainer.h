// The federated training loop — the public entry point of the library.
//
// One Trainer runs Algorithm 1 (FedAvg) or Algorithm 2 (FedProx), or the
// FedDane baseline, against a FederatedDataset and a Model:
//
//   FederatedDataset data = make_synthetic(synthetic_config(1, 1));
//   LogisticRegression model(data.input_dim, data.num_classes);
//   TrainerConfig cfg = fedprox_config(/*mu=*/1.0);
//   TrainHistory history = Trainer(model, data, cfg).run();
//
// FedAvg is the special case: mu = 0, SGD local solver, and stragglers
// dropped at aggregation (Section 3.2). FedProx keeps partial solutions
// and adds the proximal term. All randomness (device selection,
// stragglers, mini-batches) is keyed by (seed, round, device) so compared
// configurations face identical conditions.
//
// Observability: attach TrainingObserver instances (obs/observer.h) with
// add_observer — before run() starts — to receive run/round/client hooks
// plus a RoundTrace of per-phase wall times. Observers run on the round
// thread only and never affect results — TrainHistory is bit-identical
// with and without them. With the span profiler enabled (obs/profiler.h)
// the run additionally emits nested run -> round -> phase -> exchange
// spans for Chrome-trace export.
//
// Communication: each round is an explicit message exchange — the server
// (core/round_driver) broadcasts the model through a Transport
// (comm/transport.h) and the devices (comm/client_runtime) return their
// updates, with exact bytes up/down measured into the RoundTrace. The
// default InProcessTransport is zero-copy; set TrainerConfig::transport
// to a SerializedTransport to round-trip every payload through the
// binary wire format (TrainHistory stays bit-identical either way).

#pragma once

#include <memory>
#include <optional>

#include "comm/fault.h"
#include "core/adaptive_mu.h"
#include "core/dissimilarity.h"
#include "data/dataset.h"
#include "nn/module.h"
#include "optim/solver.h"
#include "sim/churn.h"
#include "sim/client.h"
#include "sim/sampling.h"
#include "sim/systems.h"
#include "support/threadpool.h"

namespace fed {

class TrainingObserver;  // obs/observer.h
class Transport;         // comm/transport.h

enum class Algorithm {
  kFedAvg,   // drop stragglers; canonical config also sets mu = 0
  kFedProx,  // aggregate partial work; proximal term mu
  kFedDane,  // FedProx aggregation + DANE gradient correction
};

std::string to_string(Algorithm algorithm);

struct AdaptiveMuConfig {
  bool enabled = false;
  double initial_mu = 0.0;
  double step = 0.1;
  std::size_t patience = 5;
};

// Theory-guided mu from the measured dissimilarity (Corollary 7; see
// DissimilarityMu). Enabling this forces per-evaluation dissimilarity
// measurement. Mutually exclusive with AdaptiveMuConfig.
struct TheoryMuConfig {
  bool enabled = false;
  double coefficient = 0.05;  // mu = coefficient * (B^2 - 1)
  double max_mu = 10.0;
  double smoothing = 0.5;
};

// Periodic durable checkpoints (core/checkpoint.h): every `every`
// completed rounds the trainer atomically writes an FPC1 snapshot under
// `dir` and keeps the newest `retain` generations. Checkpointing draws
// no randomness and runs after the round's observers' inputs are fixed,
// so enabling it never changes TrainHistory.
struct CheckpointConfig {
  std::string dir;        // empty = checkpointing disabled
  std::size_t every = 0;  // rounds between checkpoints (0 = disabled)
  std::size_t retain = 3; // newest generations kept on disk

  bool enabled() const { return !dir.empty() && every > 0; }
};

// Deterministic server-crash injection (core/checkpoint.h): the round
// driver throws ServerCrashed mid-aggregation of round `at_round`
// (1-based, matching the trace's round ids), losing that round's work
// exactly like a real server death. 0 disarms the plan.
struct CrashPlan {
  std::size_t at_round = 0;

  bool armed() const { return at_round > 0; }
};

struct TrainerConfig {
  Algorithm algorithm = Algorithm::kFedProx;
  double mu = 0.0;
  AdaptiveMuConfig adaptive_mu;
  TheoryMuConfig theory_mu;

  std::size_t rounds = 200;             // T
  std::size_t devices_per_round = 10;   // K
  std::size_t batch_size = 10;
  double learning_rate = 0.01;
  double clip_norm = 0.0;               // 0 = no gradient clipping

  SystemsConfig systems;                // E and straggler fraction
  SamplingScheme sampling = SamplingScheme::kUniformThenWeightedAverage;

  std::uint64_t seed = 7;

  // Evaluation cadence: round metrics are computed every `eval_every`
  // rounds (and always on the final round).
  std::size_t eval_every = 1;
  bool measure_gamma = false;
  bool measure_dissimilarity = false;

  std::size_t threads = 0;  // 0 = hardware concurrency
  // Aggregator shards per round (sim/sharded.h): the selected devices
  // are split into `shards` contiguous slices, each aggregated into an
  // exact partial sum and merged at the root. Any value produces a
  // bit-identical TrainHistory (0 is treated as 1); the knob trades
  // server-side parallelism/topology against per-round FPS1 uplink
  // bytes, never results.
  std::size_t shards = 1;
  // Local solver; nullptr means SGD (the paper's choice).
  std::shared_ptr<const LocalSolver> solver;
  // Federation transport; nullptr means InProcessTransport (zero-copy).
  std::shared_ptr<const Transport> transport;
  // Channel fault injection (comm/fault.h). When any knob is non-zero the
  // trainer wraps `transport` in a FaultInjectingTransport keyed by
  // `seed`; an all-zero profile changes nothing, bit-for-bit.
  FaultProfile faults;
  // Recovery policy the round driver applies per exchange: bounded
  // retries with simulated exponential backoff, a delivery deadline, and
  // quorum aggregation. Defaults are inert on a faultless channel.
  RecoveryConfig recovery;
  // Open-world device churn (sim/churn.h): devices arrive and depart on
  // a deterministic (seed, round, device)-keyed schedule; sampling and
  // quorum recompute over the live population each round. An all-zero
  // config keeps the closed world, bit-for-bit. The trainer raises the
  // departure floor to devices_per_round so selection stays well-defined.
  ChurnConfig churn;
  // Periodic durable checkpoints + deterministic server-crash injection
  // (core/checkpoint.h). Both are inert by default.
  CheckpointConfig checkpoint;
  CrashPlan crash;
  // Warm start: when set, training begins from these parameters instead
  // of the model's seeded initialization (e.g. a loaded checkpoint).
  // `first_round` offsets the round counter so selection/straggler/batch
  // streams continue where the checkpointed run left off.
  std::optional<Vector> initial_parameters;
  std::size_t first_round = 0;

  // The per-round config a ModelBroadcast carries to every selected
  // device — the trainer-level hyper-parameters plus the round's
  // effective mu (adaptive/theory policies move it between rounds).
  RoundConfig round_config(double effective_mu) const {
    return RoundConfig{.mu = effective_mu,
                       .batch_size = batch_size,
                       .learning_rate = learning_rate,
                       .clip_norm = clip_norm,
                       .measure_gamma = measure_gamma};
  }
};

// Canonical configurations used throughout the benches.
TrainerConfig fedavg_config();
TrainerConfig fedprox_config(double mu);
TrainerConfig feddane_config(double mu);

// Per-round record. Optional fields are engaged only when the quantity
// was actually measured that round: the three evaluation metrics are set
// together when the round was evaluated, the dissimilarity pair when
// measure_dissimilarity ran, mean_gamma when gamma was measured.
struct RoundMetrics {
  std::size_t round = 0;
  std::optional<double> train_loss;
  std::optional<double> train_accuracy;
  std::optional<double> test_accuracy;
  std::optional<double> grad_variance;
  std::optional<double> dissimilarity_b;
  double mu = 0.0;              // mu in effect this round
  std::optional<double> mean_gamma;
  std::size_t contributors = 0; // devices aggregated this round
  std::size_t stragglers = 0;   // stragglers among selected

  bool evaluated() const { return train_loss.has_value(); }
};

struct TrainHistory {
  std::vector<RoundMetrics> rounds;
  Vector final_parameters;

  // Metrics of the last evaluated round. Throws if nothing was evaluated.
  const RoundMetrics& final_metrics() const;
  // Loss/accuracy series restricted to evaluated rounds.
  std::vector<std::pair<std::size_t, double>> loss_series() const;
  std::vector<std::pair<std::size_t, double>> accuracy_series() const;
  // True if any evaluated round saw a non-finite or clearly diverging
  // loss (> threshold).
  bool diverged(double threshold = 1e4) const;
};

struct CheckpointState;  // support/serialize.h (the FPC1 payload)

class Trainer {
 public:
  // `model` and `data` must outlive the trainer. An external ThreadPool
  // can be shared across trainers; otherwise one is created per run.
  Trainer(const Model& model, const FederatedDataset& data,
          TrainerConfig config, ThreadPool* pool = nullptr);

  TrainHistory run();

  // Crash recovery: loads an FPC1 checkpoint (core/checkpoint.h),
  // validates its config fingerprint against this trainer's config, and
  // continues the run from the checkpointed round boundary. The combined
  // history (checkpointed rounds + resumed rounds) is bit-identical to a
  // run that never stopped — regardless of the thread or shard count of
  // either segment. Throws std::runtime_error on a missing, corrupt, or
  // config-mismatched checkpoint.
  TrainHistory resume(const std::string& checkpoint_path);

  // Registers an observer for run/round/client telemetry (obs/observer.h).
  // Observers are invoked from the round thread only, in registration
  // order, and must outlive run(). They cannot affect training results.
  // Throws std::logic_error once run() has started: late registration
  // would skip on_run_start and break the ordering contract.
  void add_observer(TrainingObserver& observer);

 private:
  TrainHistory run_impl(const CheckpointState* restored);

  const Model& model_;
  const FederatedDataset& data_;
  TrainerConfig config_;
  ThreadPool* external_pool_;
  std::vector<TrainingObserver*> observers_;
  bool run_started_ = false;
};

}  // namespace fed
