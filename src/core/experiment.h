// Experiment-harness helpers shared by the bench drivers: run a set of
// method variants on one workload, dump per-round CSV series, render the
// paper-style summary table, and apply the paper's convergence /
// divergence bookkeeping (Appendix C.3.2) for the Figure 7 accuracy
// comparison.

#pragma once

#include <string>
#include <vector>

#include "core/registry.h"
#include "core/trainer.h"
#include "support/csv.h"

namespace fed {

struct VariantSpec {
  std::string label;     // e.g. "FedProx (mu=1)"
  TrainerConfig config;
};

struct VariantResult {
  std::string label;
  TrainHistory history;
};

struct RunVariantsOptions {
  // Log a one-line summary per variant (via an internal observer).
  bool verbose = true;
  // Extra observer attached to every variant's Trainer (e.g. a
  // TraceObserver feeding a JSONL sink). May be nullptr.
  TrainingObserver* observer = nullptr;
};

// Runs each variant on the workload, sequentially (each run parallelizes
// internally over devices). Progress reporting goes through the Trainer's
// observer API: the verbose summary line is itself an observer, and
// `options.observer` stacks alongside it.
std::vector<VariantResult> run_variants(const Workload& workload,
                                        const std::vector<VariantSpec>& specs,
                                        const RunVariantsOptions& options);
std::vector<VariantResult> run_variants(const Workload& workload,
                                        const std::vector<VariantSpec>& specs,
                                        bool verbose = true);

// Builds a TrainerConfig pre-filled from the workload's hyper-parameters.
TrainerConfig base_config(const Workload& workload, Algorithm algorithm,
                          double mu, double straggler_fraction,
                          std::size_t epochs, std::uint64_t seed);

// Appends every evaluated round of every variant to `csv` with rows
// [dataset, variant, round, train_loss, train_acc, test_acc, variance,
//  dissimilarity_b, mu, contributors, stragglers].
void append_history_csv(CsvWriter& csv, const std::string& dataset,
                        const std::vector<VariantResult>& results);
// Header matching append_history_csv.
std::vector<std::string> history_csv_header();

// Paper's Appendix C.3.2 rule for where to read off a method's accuracy:
// the first round where |f_t - f_{t-1}| < 1e-4 (converged) or
// f_t - f_{t-10} > 1 (diverging), else the last evaluated round.
// Returns the test accuracy at that round.
double settled_accuracy(const TrainHistory& history);

// Renders a compact loss trajectory (first/quartile/last evaluated
// points) for stdout summaries.
std::string trajectory_string(const TrainHistory& history,
                              std::size_t points = 5);

}  // namespace fed
