// Crash recovery: durable FPC1 checkpoints and the deterministic crash
// injector.
//
// The Trainer (with TrainerConfig::checkpoint enabled) snapshots its
// full round-boundary state — CheckpointState, support/serialize.h —
// every `every` rounds. CheckpointWriter makes each snapshot durable the
// way a production server would:
//
//   - atomically: encode to `<dir>/.ckpt.tmp`, fsync-free temp+rename,
//     so a reader (or a resuming trainer) never sees a torn file;
//   - integrity-guarded: the FPC1 trailer is an FNV-1a checksum over the
//     whole frame, so a partial or bit-flipped file is rejected at load;
//   - bounded: only the newest `retain` generations stay on disk
//     (`ckpt-<round>.fpc`, round zero-padded so lexicographic order is
//     round order).
//
// Trainer::resume(path) loads a checkpoint, validates its fingerprint
// against the live config (config_fingerprint below — every knob that
// can influence results is mixed in), and continues the run. Because all
// randomness is counter-keyed by (seed, round, ...), the resumed run's
// TrainHistory is bit-identical to one that never crashed — the property
// bench/soak proves at scale.
//
// CrashPlan is the fault injector for the server itself: like a
// FaultProfile for the channel, it deterministically kills the round
// driver mid-aggregation (after the shard accumulate, before the root
// reduce) at a configured round by throwing ServerCrashed. The round's
// work is lost exactly as a real crash would lose it; a harness catches
// the exception and resumes from the latest checkpoint.

#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/serialize.h"

namespace fed {

// Thrown by the round driver when CrashPlan fires. Deliberately NOT a
// std::runtime_error subclass the trainer handles — it unwinds out of
// Trainer::run like a process death would, leaving only the durable
// checkpoints behind.
class ServerCrashed : public std::runtime_error {
 public:
  explicit ServerCrashed(std::size_t round)
      : std::runtime_error("server crashed mid-aggregation at round " +
                           std::to_string(round)),
        round_(round) {}
  std::size_t round() const { return round_; }

 private:
  std::size_t round_;
};

// FNV-1a over every TrainerConfig knob that can influence the training
// trajectory (algorithm, mu policy, schedule, sampling, systems, faults,
// recovery, churn, seed, ...) plus the data/model shape. Knobs that are
// bit-identity-neutral by contract — threads, shards, transport, the
// checkpoint/crash plans themselves — are excluded, so a run may legally
// resume with a different thread or shard count.
std::uint64_t config_fingerprint(const TrainerConfig& config,
                                 std::size_t population,
                                 std::size_t parameter_count);

// Atomic checkpoint file I/O. save encodes FPC1 into `<path>.tmp` and
// renames over `path`; load rejects missing/torn/corrupt files with
// std::runtime_error (the decoder's checksum check).
void save_checkpoint_state(const std::string& path,
                           const CheckpointState& state);
CheckpointState load_checkpoint_state(const std::string& path);

// The `ckpt-<round>.fpc` files under `dir`, sorted by ascending round.
std::vector<std::string> list_checkpoints(const std::string& dir);
// The newest checkpoint under `dir`, or nullopt when none exists.
std::optional<std::string> latest_checkpoint(const std::string& dir);

// Writes checkpoints under config.dir and prunes old generations.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(CheckpointConfig config);

  struct WriteInfo {
    std::string path;          // the durable file just written
    std::uint64_t bytes = 0;   // encoded FPC1 frame size
    std::size_t generations = 0;  // files retained after pruning
  };
  // Atomically writes `state` as ckpt-<next_round - 1>.fpc and deletes
  // generations beyond config.retain (oldest first).
  WriteInfo write(const CheckpointState& state);

  const CheckpointConfig& config() const { return config_; }

 private:
  CheckpointConfig config_;
};

}  // namespace fed
