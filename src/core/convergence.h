// The paper's convergence machinery, computable: Theorem 4's expected
// per-round decrease coefficient rho, Remark 5's sufficient conditions,
// Corollary 7's mu prescription, and Corollary 10's bounded-variance
// conversion — together with empirical estimators for the smoothness
// constants they need. This lets a user check, on their own federated
// problem, whether the theory certifies a given (mu, K, gamma)
// configuration (see examples/theory_dashboard).

#pragma once

#include "data/dataset.h"
#include "nn/module.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace fed {

struct ConvergenceInputs {
  double mu = 1.0;       // proximal coefficient
  double gamma = 0.0;    // gamma-inexactness of local solves (Def. 1)
  double b = 1.0;        // dissimilarity bound B (Def. 3 / Assumption 1)
  double k = 10.0;       // devices per round
  double l = 1.0;        // Lipschitz-smoothness constant of the F_k
  double l_minus = 0.0;  // curvature lower bound: Hessian >= -l_minus I
};

// Theorem 4's rho. Requires mu_bar = mu - l_minus > 0 (throws otherwise);
// rho > 0 certifies E[f(w^{t+1})] <= f(w^t) - rho ||grad f(w^t)||^2.
double theorem4_rho(const ConvergenceInputs& in);

// Remark 5's sufficient conditions for rho > 0 to be achievable:
// gamma * B < 1 and B / sqrt(K) < 1.
bool remark5_conditions(double gamma, double b, double k);

// Corollary 7's prescription for the convex, exactly-solved case:
// mu ~ 6 L B^2 (valid under 1 << B <= 0.5 sqrt(K)).
double corollary7_mu(double l, double b);

// Corollary 10: converts a bounded-variance constant sigma^2 and target
// accuracy epsilon into the dissimilarity bound B <= sqrt(1 + sigma^2/eps).
double corollary10_b(double sigma_sq, double epsilon);

// Finds the smallest mu (binary search over [l_minus + tiny, mu_max])
// with theorem4_rho > 0, or a negative value if none exists in range.
double smallest_certified_mu(ConvergenceInputs in, double mu_max = 1e6);

// Empirical smoothness estimates for F(w) = mean loss of `model` on
// `data`, probed along `probes` random unit directions at `w` with step
// `step`:
//   l       ~ max_u ||grad F(w + step u) - grad F(w)|| / step
//   l_minus ~ max(0, -min_u <u, grad F(w + step u) - grad F(w)> / step)
// Lower bounds of the true constants; adequate for the dashboard's
// order-of-magnitude certification.
struct SmoothnessEstimate {
  double l = 0.0;
  double l_minus = 0.0;
};
SmoothnessEstimate estimate_smoothness(const Model& model, const Dataset& data,
                                       std::span<const double> w,
                                       std::size_t probes, double step,
                                       Rng& rng);

// Pools the per-device smoothness over a federation: max of the
// per-device estimates (the theorem assumes every F_k is L-smooth).
SmoothnessEstimate estimate_federated_smoothness(const Model& model,
                                                 const FederatedDataset& data,
                                                 std::span<const double> w,
                                                 std::size_t probes,
                                                 double step, std::uint64_t seed,
                                                 ThreadPool* pool = nullptr);

}  // namespace fed
