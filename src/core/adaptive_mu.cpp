#include "core/adaptive_mu.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fed {

AdaptiveMu::AdaptiveMu(double initial_mu, double step, std::size_t patience)
    : mu_(initial_mu), step_(step), patience_(patience) {
  if (initial_mu < 0.0 || step <= 0.0 || patience == 0) {
    throw std::invalid_argument("AdaptiveMu: bad parameters");
  }
}

double AdaptiveMu::update(double loss) {
  if (has_last_) {
    if (loss > last_loss_) {
      mu_ += step_;
      consecutive_decreases_ = 0;
    } else if (loss < last_loss_) {
      if (++consecutive_decreases_ >= patience_) {
        mu_ = std::max(0.0, mu_ - step_);
        consecutive_decreases_ = 0;
      }
    } else {
      consecutive_decreases_ = 0;
    }
  }
  last_loss_ = loss;
  has_last_ = true;
  return mu_;
}

DissimilarityMu::DissimilarityMu(double coefficient, double max_mu,
                                 double smoothing)
    : coefficient_(coefficient), max_mu_(max_mu), smoothing_(smoothing) {
  if (coefficient <= 0.0 || max_mu <= 0.0 || smoothing < 0.0 ||
      smoothing >= 1.0) {
    throw std::invalid_argument("DissimilarityMu: bad parameters");
  }
}

double DissimilarityMu::update(double measured_b) {
  if (measured_b < 0.0 || !std::isfinite(measured_b)) {
    throw std::invalid_argument("DissimilarityMu: bad B measurement");
  }
  const double b_sq = measured_b * measured_b;
  if (has_estimate_) {
    b_sq_ema_ = smoothing_ * b_sq_ema_ + (1.0 - smoothing_) * b_sq;
  } else {
    b_sq_ema_ = b_sq;
    has_estimate_ = true;
  }
  mu_ = std::clamp(coefficient_ * (b_sq_ema_ - 1.0), 0.0, max_mu_);
  return mu_;
}

}  // namespace fed
