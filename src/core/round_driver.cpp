#include "core/round_driver.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/checkpoint.h"
#include "core/dissimilarity.h"
#include "core/feddane.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "obs/trace_context.h"
#include "sim/aggregate.h"
#include "sim/server.h"
#include "sim/sharded.h"
#include "support/log.h"
#include "support/stopwatch.h"

namespace fed {

RoundDriver::RoundDriver(const Model& model, const FederatedDataset& data,
                         const TrainerConfig& config,
                         const Transport& transport,
                         const ClientRuntime& runtime, ThreadPool* pool,
                         DeviceRegistry* registry,
                         std::span<TrainingObserver* const> observers)
    : model_(model),
      data_(data),
      config_(config),
      transport_(transport),
      runtime_(runtime),
      pool_(pool),
      registry_(registry),
      observers_(observers),
      pk_(data.client_weights()) {}

void RoundDriver::evaluate(const Vector& w, RoundMetrics& metrics,
                           RoundTrace& trace) {
  Span span("eval", "phase", "round",
            static_cast<std::int64_t>(metrics.round));
  Stopwatch timer;
  const GlobalEval eval = evaluate_global(model_, data_, w, pool_);
  metrics.train_loss = eval.train_loss;
  metrics.train_accuracy = eval.train_accuracy;
  metrics.test_accuracy = eval.test_accuracy;
  if (config_.measure_dissimilarity) {
    const auto dis = measure_dissimilarity(model_, data_, w, pool_);
    metrics.grad_variance = dis.variance;
    metrics.dissimilarity_b = dis.b;
  }
  trace.eval_seconds = timer.seconds();
  trace.evaluated = true;
}

RoundDriver::DeviceOutcome RoundDriver::exchange_with_recovery(
    ModelBroadcast& broadcast, std::size_t round, std::size_t device) const {
  const RecoveryConfig& recovery = config_.recovery;
  DeviceOutcome oc;
  double backoff = recovery.backoff_base_ms;
  for (std::size_t attempt = 0; attempt <= recovery.max_retries; ++attempt) {
    broadcast.attempt = attempt;
    ExchangeRecord record = transport_.exchange(broadcast, runtime_);
    ++oc.attempts;
    oc.bytes_down += record.bytes_down;
    oc.arrival_ms += record.channel_delay_ms;
    switch (record.status) {
      case ExchangeStatus::kDropped:
        ++oc.drops;
        oc.events.push_back({FaultEvent::Kind::kDrop, round, device, attempt,
                             "update lost in flight"});
        break;
      case ExchangeStatus::kCorrupt:
        ++oc.corruptions;
        oc.failed_bytes_up += record.bytes_up;
        oc.events.push_back({FaultEvent::Kind::kCorrupt, round, device,
                             attempt, record.error});
        break;
      case ExchangeStatus::kDelivered:
        if (recovery.deadline_ms > 0.0 &&
            record.channel_delay_ms > recovery.deadline_ms) {
          // Arrived past the round window: the server never saw it, so it
          // moves no measured bytes (the FedAvg dropped-straggler rule).
          ++oc.timeouts;
          std::ostringstream detail;
          detail << "delivery took " << record.channel_delay_ms
                 << " ms, past the " << recovery.deadline_ms
                 << " ms deadline";
          oc.events.push_back({FaultEvent::Kind::kTimeout, round, device,
                               attempt, detail.str()});
          break;
        }
        if (record.duplicate) {
          oc.events.push_back({FaultEvent::Kind::kDuplicate, round, device,
                               attempt,
                               "update delivered twice; deduplicated"});
        }
        oc.accepted = true;
        oc.record = std::move(record);
        return oc;
    }
    if (attempt < recovery.max_retries) {
      oc.arrival_ms += backoff;  // simulated wait before the retry
      backoff *= recovery.backoff_factor;
    }
  }
  std::ostringstream detail;
  detail << "no accepted update after " << oc.attempts << " attempts";
  oc.events.push_back({FaultEvent::Kind::kDeviceFailed, round, device,
                       oc.attempts, detail.str()});
  return oc;
}

RoundDriver::DeviceOutcome RoundDriver::departed_outcome(
    const ModelBroadcast& broadcast, std::size_t round,
    std::size_t device) const {
  const RecoveryConfig& recovery = config_.recovery;
  const auto per_attempt =
      static_cast<std::uint64_t>(broadcast_wire_size(broadcast));
  DeviceOutcome oc;
  oc.departed = true;
  oc.events.push_back({FaultEvent::Kind::kDepart, round, device, 0,
                       "device left the federation mid-round"});
  double backoff = recovery.backoff_base_ms;
  for (std::size_t attempt = 0; attempt <= recovery.max_retries; ++attempt) {
    ++oc.attempts;
    ++oc.drops;
    oc.bytes_down += per_attempt;
    oc.events.push_back({FaultEvent::Kind::kDrop, round, device, attempt,
                         "device departed; update lost in flight"});
    if (attempt < recovery.max_retries) {
      oc.arrival_ms += backoff;
      backoff *= recovery.backoff_factor;
    }
  }
  std::ostringstream detail;
  detail << "no accepted update after " << oc.attempts
         << " attempts (device departed)";
  oc.events.push_back({FaultEvent::Kind::kDeviceFailed, round, device,
                       oc.attempts, detail.str()});
  return oc;
}

RoundDriver::RoundOutput RoundDriver::run_round(std::size_t t, double mu,
                                                Vector& w) {
  RoundOutput out;
  RoundTrace& trace = out.trace;
  trace.round = t + 1;
  Stopwatch phase_timer;

  // The round's trace context: deterministic in (seed, round), stamped
  // into every message this round moves so device- and shard-side spans
  // correlate back to it across the wire (obs/trace_context.h). Minted
  // unconditionally — wire bytes must not depend on profiler state.
  const TraceContext round_ctx = make_round_trace_context(config_.seed, t + 1);

  // 0. Churn: draw this round's arrivals and departures. Arrivals are
  //    selectable immediately; departing devices stay selectable but fail
  //    mid-round (departed_outcome). With an inert registry everything
  //    below reduces to the closed-world path bit for bit.
  const bool open_world = registry_ != nullptr && registry_->config().any();
  std::uint64_t arrivals_before = 0;
  if (open_world) {
    arrivals_before = registry_->total_arrivals();
    registry_->begin_round(t + 1);
    trace.active_devices = registry_->active_count();
    trace.arrivals = static_cast<std::size_t>(registry_->total_arrivals() -
                                              arrivals_before);
    trace.departures = registry_->departing_count();
  } else {
    trace.active_devices = pk_.size();
  }

  // 1. Select devices (deterministic in (seed, round); identical across
  //    algorithms under the same seed). Open-world selection draws over
  //    the live population only — the same (seed, round) stream, with
  //    weights re-indexed to the active ids.
  // 2. Assign systems budgets (who straggles, how much work each gets).
  std::vector<std::size_t> selected;
  std::vector<DeviceBudget> budgets;
  {
    Span span("sampling", "phase", "round", static_cast<std::int64_t>(t + 1));
    if (open_world) {
      const std::vector<std::size_t>& active = registry_->active_devices();
      std::vector<double> active_pk(active.size());
      for (std::size_t i = 0; i < active.size(); ++i) {
        active_pk[i] = pk_[active[i]];
      }
      const std::size_t per_round =
          std::min(config_.devices_per_round, active.size());
      selected = select_devices(config_.sampling, active_pk, per_round,
                                config_.seed, t);
      for (std::size_t& idx : selected) idx = active[idx];
    } else {
      selected = select_devices(config_.sampling, pk_,
                                config_.devices_per_round, config_.seed, t);
    }
    std::vector<std::size_t> train_sizes(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      train_sizes[i] = data_.clients[selected[i]].train.size();
    }
    budgets = assign_budgets(config_.systems, config_.seed, t, selected,
                             train_sizes, config_.batch_size);
  }
  trace.sampling_seconds = phase_timer.seconds();

  for (auto* o : observers_) o->on_round_start(t + 1, selected);

  // 3. FedDane: estimate the full gradient from the sampled devices. The
  //    per-device corrections ride in the broadcasts below.
  std::vector<Vector> corrections;
  if (config_.algorithm == Algorithm::kFedDane) {
    Span span("feddane_correction", "phase", "round",
              static_cast<std::int64_t>(t + 1));
    phase_timer.reset();
    corrections = feddane_corrections(model_, data_, selected, w, pool_);
    trace.correction_seconds = phase_timer.seconds();
  }

  // 4. Broadcast / local solve / collect, in parallel across devices:
  //    each worker drives one device's exchange through the transport
  //    under the recovery policy — bounded retries with simulated
  //    exponential backoff, deadline classification — recording every
  //    channel incident as a typed event. Workers only touch their own
  //    outcome slot, and every fault decision comes from a counter-keyed
  //    stream, so determinism is untouched; events, byte counts, and the
  //    quorum cut are processed after the barrier on the round thread.
  const RoundConfig round_config = config_.round_config(mu);
  const RecoveryConfig& recovery = config_.recovery;
  std::vector<DeviceOutcome> outcomes(selected.size());
  phase_timer.reset();
  {
    Span span("solve_parallel", "phase", "round",
              static_cast<std::int64_t>(t + 1), "devices",
              static_cast<std::int64_t>(selected.size()), "trace_id",
              static_cast<std::int64_t>(round_ctx.trace_id));
    // One flow arrow per device leaves the round thread here and lands in
    // that device's worker-side exchange span below. Ids are derived, not
    // counted, so both ends agree without synchronization.
    for (std::size_t i = 0; i < selected.size(); ++i) {
      flow_start("exchange_flow", "flow",
                 derive_trace_span(round_ctx.trace_id,
                                   TraceSpanKind::kExchange, selected[i]),
                 "device", static_cast<std::int64_t>(selected[i]));
    }
    pool_->parallel_for(selected.size(), [&](std::size_t i) {
      // Worker-side span: lands on the pool thread's track. Recording
      // draws no randomness, so determinism is untouched.
      Span exchange_span("exchange", "comm", "round",
                         static_cast<std::int64_t>(t + 1), "device",
                         static_cast<std::int64_t>(selected[i]), "iterations",
                         static_cast<std::int64_t>(budgets[i].iterations));
      const std::uint64_t exchange_span_id = derive_trace_span(
          round_ctx.trace_id, TraceSpanKind::kExchange, selected[i]);
      flow_end("exchange_flow", "flow", exchange_span_id, "device",
               static_cast<std::int64_t>(selected[i]));
      ModelBroadcast broadcast{.round = t + 1,
                               .trace = {round_ctx.trace_id, exchange_span_id},
                               .config = round_config,
                               .budget = budgets[i],
                               .parameters = w,
                               .correction = {}};
      if (!corrections.empty()) broadcast.correction = corrections[i];
      if (open_world && registry_->departing(selected[i])) {
        // The device left between selection and its exchange: nothing
        // touches the transport (so fault streams for other devices are
        // unperturbed), but every attempt's broadcast is charged and lost.
        outcomes[i] = departed_outcome(broadcast, t + 1, selected[i]);
      } else {
        outcomes[i] = exchange_with_recovery(broadcast, t + 1, selected[i]);
      }
      if (outcomes[i].accepted) {
        // The update's journey to aggregation: starts in the worker that
        // produced it, lands in the round thread's aggregate span (which
        // closes it even for updates the quorum cut or the FedAvg
        // straggler rule later discards — the message still arrived).
        flow_start("update_flow", "flow",
                   derive_trace_span(round_ctx.trace_id,
                                     TraceSpanKind::kUpdateFlow, selected[i]),
                   "device", static_cast<std::int64_t>(selected[i]));
      }
    });
  }
  trace.solve_wall_seconds = phase_timer.seconds();

  // Quorum cut, on the round thread: aggregation proceeds once
  // ceil(quorum * selected) devices have reported by simulated arrival
  // time; successes arriving after the cutoff are dropped like any other
  // lost update. With a faultless channel every arrival is at 0 ms, so
  // the cutoff keeps everyone and history stays bit-identical.
  if (recovery.quorum < 1.0) {
    std::vector<std::size_t> successes;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].accepted) successes.push_back(i);
    }
    const auto needed = static_cast<std::size_t>(std::ceil(
        recovery.quorum * static_cast<double>(selected.size())));
    if (successes.size() > needed && needed > 0) {
      std::stable_sort(successes.begin(), successes.end(),
                       [&](std::size_t a, std::size_t b) {
                         return outcomes[a].arrival_ms < outcomes[b].arrival_ms;
                       });
      // Ties with the q-th earliest arrival are kept.
      const double cutoff = outcomes[successes[needed - 1]].arrival_ms;
      for (std::size_t i : successes) {
        DeviceOutcome& oc = outcomes[i];
        if (oc.arrival_ms <= cutoff) continue;
        oc.accepted = false;
        oc.quorum_dropped = true;
        std::ostringstream detail;
        detail << "arrived at " << oc.arrival_ms << " ms, after the quorum "
               << "cutoff of " << cutoff << " ms (" << needed << "/"
               << selected.size() << " reported)";
        oc.events.push_back({FaultEvent::Kind::kQuorumDrop, t + 1, selected[i],
                             oc.attempts - 1, detail.str()});
      }
    }
  }

  // Fault fan-out: per-device incidents in (selection order, attempt)
  // order — quorum drops ride at the end of their device's list — all on
  // the round thread. A healthy round emits nothing.
  for (const auto& oc : outcomes) {
    for (const auto& event : oc.events) {
      for (auto* o : observers_) o->on_fault(event);
    }
  }

  for (auto* o : observers_) {
    for (const auto& oc : outcomes) {
      if (oc.accepted) o->on_client_result(t + 1, oc.record.result());
    }
  }

  // 5. Aggregate, hierarchically: the selected devices are split into
  //    contiguous selection-order slices, one per aggregator shard, each
  //    shard folds its accepted updates into an exact partial sum, and
  //    the root merges the FPS1-encoded partials (sim/sharded.h). The
  //    partials are exact, so the shard count cannot change the model.
  //    FedAvg drops stragglers; FedProx/FedDane keep them. Upload bytes
  //    are charged per delivery that reached the server in the round
  //    window: accepted updates (twice when duplicated) and corrupt
  //    arrivals, but not FedAvg-dropped stragglers, timeouts, or quorum
  //    drops — those never report back within the window, so their
  //    updates move no measured bytes.
  phase_timer.reset();
  const std::vector<ShardSlice> slices =
      plan_shards(selected.size(), config_.shards);
  std::vector<std::size_t> shard_of(selected.size());
  std::vector<ShardStat> shard_stats(slices.size());
  for (std::size_t s = 0; s < slices.size(); ++s) {
    shard_stats[s].shard = s;
    shard_stats[s].devices = slices[s].size();
    for (std::size_t i = slices[s].begin; i < slices[s].end; ++i) {
      shard_of[i] = s;
    }
  }
  ShardedServer server(config_.sampling, w.size(), slices.size());
  std::uint64_t bytes_up = 0;
  std::size_t up_deliveries = 0;
  std::size_t straggler_total = 0;
  bool updated = false;
  {
    Span span("aggregate", "phase", "round", static_cast<std::int64_t>(t + 1),
              "shards", static_cast<std::int64_t>(slices.size()), "trace_id",
              static_cast<std::int64_t>(round_ctx.trace_id));
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const DeviceOutcome& oc = outcomes[i];
      // Close the update flow for every update that reached the server —
      // including those the quorum cut revoked or the FedAvg straggler
      // rule discards below — so each worker-side "s" has exactly one "f".
      if (oc.accepted || oc.quorum_dropped) {
        flow_end("update_flow", "flow",
                 derive_trace_span(round_ctx.trace_id,
                                   TraceSpanKind::kUpdateFlow, selected[i]),
                 "device", static_cast<std::int64_t>(selected[i]));
      }
      if (!oc.accepted) continue;
      const ClientResult& r = oc.record.result();
      if (r.straggler) ++straggler_total;
      if (config_.algorithm == Algorithm::kFedAvg && r.straggler) continue;
      server.accumulate(shard_of[i], {r.device, &r.update,
                                      static_cast<double>(r.num_samples)});
      bytes_up += oc.record.bytes_up;
      shard_stats[shard_of[i]].bytes_up += oc.record.bytes_up;
      up_deliveries += oc.record.duplicate ? 2 : 1;
    }
    if (config_.crash.armed() && config_.crash.at_round == t + 1) {
      // Fault injection for the soak harness: die mid-aggregation, after
      // the partials are staged but before the global model moves — the
      // worst spot for a naive recovery story. Nothing from this round
      // commits (no on_round_end, no checkpoint, no registry end_round),
      // so a resume from the last checkpoint replays it bit-identically.
      throw ServerCrashed(t + 1);
    }
    updated = server.reduce(t + 1, w, round_ctx);
  }
  trace.aggregate_seconds = phase_timer.seconds();
  for (std::size_t s = 0; s < shard_stats.size(); ++s) {
    shard_stats[s].contributors = server.contributors(s);
    shard_stats[s].partial_bytes = server.partial_bytes(s);
  }
  if (!updated) {
    // Degraded round: zero accepted updates survived to aggregation
    // (every device failed, timed out, missed quorum, or — under FedAvg —
    // straggled). The global model is kept unchanged; the round is marked
    // degraded in the trace and reported as a single typed incident, not
    // an error.
    trace.degraded = true;
    std::ostringstream detail;
    detail << "0 of " << selected.size()
           << " selected devices contributed an update; keeping w";
    const FaultEvent event{FaultEvent::Kind::kRoundDegraded, t + 1, 0, 0,
                           detail.str()};
    for (auto* o : observers_) o->on_fault(event);
    log_debug() << "round " << t + 1 << ": " << detail.str();
  }

  for (auto* o : observers_) {
    o->on_aggregate(t + 1, std::span<const double>(w));
  }

  trace.selected = selected.size();
  trace.contributors = server.total_contributors();
  trace.stragglers = straggler_total;
  CommFaultStats& faults = trace.faults;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const DeviceOutcome& oc = outcomes[i];
    trace.bytes_down += oc.bytes_down;
    shard_stats[shard_of[i]].bytes_down += oc.bytes_down;
    bytes_up += oc.failed_bytes_up;  // corrupt arrivals, charged per attempt
    shard_stats[shard_of[i]].bytes_up += oc.failed_bytes_up;
    faults.attempts += oc.attempts;
    faults.drops += oc.drops;
    faults.corruptions += oc.corruptions;
    faults.timeouts += oc.timeouts;
    faults.delay_ms += oc.arrival_ms;
    if (oc.accepted && oc.record.duplicate) ++faults.duplicates;
    if (oc.quorum_dropped) ++faults.quorum_drops;
    if (!oc.accepted && !oc.quorum_dropped) ++faults.failed_devices;
    if (oc.departed) ++faults.departs;
  }
  faults.retries = faults.attempts - selected.size();
  // Charged deliveries: contributor updates (twice when duplicated) plus
  // corrupt arrivals, matching the bytes_up sum delivery for delivery.
  faults.up_deliveries = up_deliveries + faults.corruptions;
  trace.bytes_up = bytes_up;
  trace.shards = std::move(shard_stats);
  {
    std::vector<double> solve_times;
    solve_times.reserve(outcomes.size());
    for (const auto& oc : outcomes) {
      if (oc.accepted) solve_times.push_back(oc.record.result().solve_seconds);
    }
    trace.solve = SolveStats::from_samples(solve_times);
  }

  // 6. Record metrics (evaluation, if due, is the caller's).
  RoundMetrics& m = out.metrics;
  m.round = t + 1;
  m.mu = mu;
  m.contributors = trace.contributors;
  m.stragglers = straggler_total;
  if (config_.measure_gamma) {
    double total = 0.0;
    std::size_t count = 0;
    for (const auto& oc : outcomes) {
      if (oc.accepted && oc.record.result().gamma_measured) {
        total += oc.record.result().gamma;
        ++count;
      }
    }
    if (count > 0) m.mean_gamma = total / static_cast<double>(count);
  }

  // 7. Churn: the departures drawn at the top of the round take effect.
  if (open_world) registry_->end_round(t + 1);
  return out;
}

}  // namespace fed
