#include "core/round_driver.h"

#include "core/dissimilarity.h"
#include "core/feddane.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "sim/aggregate.h"
#include "sim/server.h"
#include "support/log.h"
#include "support/stopwatch.h"

namespace fed {

RoundDriver::RoundDriver(const Model& model, const FederatedDataset& data,
                         const TrainerConfig& config,
                         const Transport& transport,
                         const ClientRuntime& runtime, ThreadPool* pool,
                         std::span<TrainingObserver* const> observers)
    : model_(model),
      data_(data),
      config_(config),
      transport_(transport),
      runtime_(runtime),
      pool_(pool),
      observers_(observers),
      pk_(data.client_weights()) {}

void RoundDriver::evaluate(const Vector& w, RoundMetrics& metrics,
                           RoundTrace& trace) {
  Span span("eval", "phase", "round",
            static_cast<std::int64_t>(metrics.round));
  Stopwatch timer;
  const GlobalEval eval = evaluate_global(model_, data_, w, pool_);
  metrics.train_loss = eval.train_loss;
  metrics.train_accuracy = eval.train_accuracy;
  metrics.test_accuracy = eval.test_accuracy;
  if (config_.measure_dissimilarity) {
    const auto dis = measure_dissimilarity(model_, data_, w, pool_);
    metrics.grad_variance = dis.variance;
    metrics.dissimilarity_b = dis.b;
  }
  trace.eval_seconds = timer.seconds();
  trace.evaluated = true;
}

RoundDriver::RoundOutput RoundDriver::run_round(std::size_t t, double mu,
                                                Vector& w) {
  RoundOutput out;
  RoundTrace& trace = out.trace;
  trace.round = t + 1;
  Stopwatch phase_timer;

  // 1. Select devices (deterministic in (seed, round); identical across
  //    algorithms under the same seed).
  // 2. Assign systems budgets (who straggles, how much work each gets).
  std::vector<std::size_t> selected;
  std::vector<DeviceBudget> budgets;
  {
    Span span("sampling", "phase", "round", static_cast<std::int64_t>(t + 1));
    selected = select_devices(config_.sampling, pk_,
                              config_.devices_per_round, config_.seed, t);
    std::vector<std::size_t> train_sizes(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      train_sizes[i] = data_.clients[selected[i]].train.size();
    }
    budgets = assign_budgets(config_.systems, config_.seed, t, selected,
                             train_sizes, config_.batch_size);
  }
  trace.sampling_seconds = phase_timer.seconds();

  for (auto* o : observers_) o->on_round_start(t + 1, selected);

  // 3. FedDane: estimate the full gradient from the sampled devices. The
  //    per-device corrections ride in the broadcasts below.
  std::vector<Vector> corrections;
  if (config_.algorithm == Algorithm::kFedDane) {
    Span span("feddane_correction", "phase", "round",
              static_cast<std::int64_t>(t + 1));
    phase_timer.reset();
    corrections = feddane_corrections(model_, data_, selected, w, pool_);
    trace.correction_seconds = phase_timer.seconds();
  }

  // 4. Broadcast / local solve / collect, in parallel across devices:
  //    each worker round-trips one device's exchange through the
  //    transport. Workers only touch their own slot, so determinism is
  //    untouched; byte counts are summed after the barrier.
  const RoundConfig round_config = config_.round_config(mu);
  std::vector<ExchangeRecord> exchanges(selected.size());
  phase_timer.reset();
  {
    Span span("solve_parallel", "phase", "round",
              static_cast<std::int64_t>(t + 1), "devices",
              static_cast<std::int64_t>(selected.size()));
    pool_->parallel_for(selected.size(), [&](std::size_t i) {
      // Worker-side span: lands on the pool thread's track. Recording
      // draws no randomness, so determinism is untouched.
      Span exchange_span("exchange", "comm", "round",
                         static_cast<std::int64_t>(t + 1), "device",
                         static_cast<std::int64_t>(selected[i]), "iterations",
                         static_cast<std::int64_t>(budgets[i].iterations));
      ModelBroadcast broadcast{.round = t + 1,
                               .config = round_config,
                               .budget = budgets[i],
                               .parameters = w,
                               .correction = {}};
      if (!corrections.empty()) broadcast.correction = corrections[i];
      exchanges[i] = transport_.exchange(broadcast, runtime_);
    });
  }
  trace.solve_wall_seconds = phase_timer.seconds();

  for (auto* o : observers_) {
    for (const auto& e : exchanges) o->on_client_result(t + 1, e.result());
  }

  // 5. Aggregate. FedAvg drops stragglers; FedProx/FedDane keep them.
  //    Upload bytes are charged for contributors only — a dropped
  //    straggler never reports back within the round window, so its
  //    update moves no measured bytes.
  phase_timer.reset();
  std::vector<Contribution> contributions;
  std::uint64_t bytes_up = 0;
  std::size_t straggler_total = 0;
  bool updated = false;
  {
    Span span("aggregate", "phase", "round", static_cast<std::int64_t>(t + 1));
    for (const auto& e : exchanges) {
      const ClientResult& r = e.result();
      if (r.straggler) ++straggler_total;
      if (config_.algorithm == Algorithm::kFedAvg && r.straggler) continue;
      contributions.push_back(
          {r.device, &r.update, static_cast<double>(r.num_samples)});
      bytes_up += e.bytes_up;
    }
    updated = aggregate(config_.sampling, contributions, w);
  }
  trace.aggregate_seconds = phase_timer.seconds();
  if (!updated) {
    log_debug() << "round " << t
                << ": every selected device was dropped; keeping w";
  }

  for (auto* o : observers_) {
    o->on_aggregate(t + 1, std::span<const double>(w));
  }

  trace.selected = selected.size();
  trace.contributors = contributions.size();
  trace.stragglers = straggler_total;
  for (const auto& e : exchanges) trace.bytes_down += e.bytes_down;
  trace.bytes_up = bytes_up;
  {
    std::vector<double> solve_times;
    solve_times.reserve(exchanges.size());
    for (const auto& e : exchanges) {
      solve_times.push_back(e.result().solve_seconds);
    }
    trace.solve = SolveStats::from_samples(solve_times);
  }

  // 6. Record metrics (evaluation, if due, is the caller's).
  RoundMetrics& m = out.metrics;
  m.round = t + 1;
  m.mu = mu;
  m.contributors = contributions.size();
  m.stragglers = straggler_total;
  if (config_.measure_gamma) {
    double total = 0.0;
    std::size_t count = 0;
    for (const auto& e : exchanges) {
      if (e.result().gamma_measured) {
        total += e.result().gamma;
        ++count;
      }
    }
    if (count > 0) m.mean_gamma = total / static_cast<double>(count);
  }
  return out;
}

}  // namespace fed
