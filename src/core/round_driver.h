// The server side of a federated round, speaking only in messages.
//
// run_round executes one training round of Algorithm 1/2: sample devices,
// assign systems budgets, broadcast the global model through the
// Transport, collect the returned updates, and aggregate them into `w` —
// recording transport-measured bytes and per-phase wall times in the
// RoundTrace. evaluate() runs the global evaluation (plus dissimilarity
// when configured). The Trainer owns everything *across* rounds — the
// mu policies, evaluation cadence, history, and observer lifecycle — and
// drives this class once per round.

#pragma once

#include <span>
#include <vector>

#include "comm/client_runtime.h"
#include "comm/transport.h"
#include "core/trainer.h"
#include "obs/trace.h"
#include "support/threadpool.h"

namespace fed {

class RoundDriver {
 public:
  // All references must outlive the driver; `pool` must be non-null.
  // `registry` may be null (or inert) for the closed-world fast path;
  // when it carries a live churn schedule, run_round drives it:
  // begin_round before selection, end_round after the trace is filled,
  // selection/sharding/quorum over the live population only.
  RoundDriver(const Model& model, const FederatedDataset& data,
              const TrainerConfig& config, const Transport& transport,
              const ClientRuntime& runtime, ThreadPool* pool,
              DeviceRegistry* registry,
              std::span<TrainingObserver* const> observers);

  struct RoundOutput {
    RoundMetrics metrics;
    RoundTrace trace;
  };

  // Executes training round `t` (0-based, already offset by first_round)
  // under proximal coefficient `mu`, updating `w` in place. Fills every
  // metric/trace field except the evaluation ones and round_seconds,
  // which the caller charges (evaluation cadence is its call).
  RoundOutput run_round(std::size_t t, double mu, Vector& w);

  // Global evaluation + optional dissimilarity, charged to
  // trace.eval_seconds.
  void evaluate(const Vector& w, RoundMetrics& metrics, RoundTrace& trace);

 private:
  // One device's journey through the recovery policy: the accepted
  // exchange (when any attempt succeeded), per-attempt failure counts,
  // byte charges, the simulated clock, and the typed incidents to fan
  // out. Filled by exactly one pool worker, read after the barrier.
  struct DeviceOutcome {
    ExchangeRecord record;   // the accepted exchange; meaningful iff accepted
    bool accepted = false;
    bool quorum_dropped = false;        // revoked by the quorum cut
    std::size_t attempts = 0;
    std::size_t drops = 0;
    std::size_t corruptions = 0;
    std::size_t timeouts = 0;
    std::uint64_t bytes_down = 0;       // broadcast bytes, charged per attempt
    std::uint64_t failed_bytes_up = 0;  // corrupt arrivals, charged per attempt
    bool departed = false;              // device left the federation mid-round
    double arrival_ms = 0.0;  // simulated delays + backoffs through last attempt
    std::vector<FaultEvent> events;     // in attempt order
  };

  // Runs the exchange for one device under config_.recovery: retry failed
  // attempts (drop / corrupt / past-deadline) with simulated exponential
  // backoff, up to max_retries extra attempts. Mutates broadcast.attempt
  // only. Called concurrently from pool workers; everything it touches is
  // worker-local.
  DeviceOutcome exchange_with_recovery(ModelBroadcast& broadcast,
                                       std::size_t round,
                                       std::size_t device) const;

  // The churn analogue of total exchange failure: a departing device
  // never touches the transport — every attempt's broadcast bytes are
  // charged and lost (a crashed phone mid-exchange), so the outcome
  // folds into the existing failed-device/straggler accounting and all
  // byte/retry invariants hold unchanged.
  DeviceOutcome departed_outcome(const ModelBroadcast& broadcast,
                                 std::size_t round, std::size_t device) const;

  const Model& model_;
  const FederatedDataset& data_;
  const TrainerConfig& config_;
  const Transport& transport_;
  const ClientRuntime& runtime_;
  ThreadPool* pool_;
  DeviceRegistry* registry_;  // may be null: closed-world
  std::span<TrainingObserver* const> observers_;
  std::vector<double> pk_;  // client weights p_k, fixed for the run
};

}  // namespace fed
