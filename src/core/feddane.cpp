#include "core/feddane.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace fed {

std::vector<Vector> feddane_corrections(const Model& model,
                                        const FederatedDataset& data,
                                        std::span<const std::size_t> selected,
                                        std::span<const double> w,
                                        ThreadPool* pool) {
  if (selected.empty()) {
    throw std::invalid_argument("feddane_corrections: empty selection");
  }
  const std::size_t d = model.parameter_count();
  const std::size_t k = selected.size();

  std::vector<Vector> grads(k, Vector(d));
  auto compute = [&](std::size_t i) {
    model.dataset_loss_and_grad(w, data.clients[selected[i]].train, grads[i]);
  };
  if (pool) {
    pool->parallel_for(k, compute);
  } else {
    for (std::size_t i = 0; i < k; ++i) compute(i);
  }

  // grad~f = sum n_k grad F_k / sum n_k over the sampled devices.
  double total = 0.0;
  Vector grad_f(d, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const auto n = static_cast<double>(data.clients[selected[i]].train.size());
    total += n;
    axpy(n, grads[i], grad_f);
  }
  if (total <= 0.0) {
    throw std::invalid_argument("feddane_corrections: no training samples");
  }
  scale(grad_f, 1.0 / total);

  std::vector<Vector> corrections(k, Vector(d));
  for (std::size_t i = 0; i < k; ++i) {
    subtract(grad_f, grads[i], corrections[i]);
  }
  return corrections;
}

}  // namespace fed
