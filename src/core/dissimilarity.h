// B-local dissimilarity (Definition 3) and the gradient-variance metric
// the paper plots (Figures 2, 6, 8):
//
//   B(w)^2 = E_k[ ||grad F_k(w)||^2 ] / ||grad f(w)||^2
//   Var(w) = E_k[ ||grad F_k(w) - grad f(w)||^2 ]
//
// with E_k weighted by p_k = n_k/n and grad f(w) = sum_k p_k grad F_k(w).
// By Corollary 10, Var = (B^2 - 1) ||grad f||^2, so the variance is the
// quantity that certifies the bounded-variance form of the assumption.

#pragma once

#include "data/dataset.h"
#include "nn/module.h"
#include "support/threadpool.h"

namespace fed {

struct DissimilarityMetrics {
  double grad_norm_f = 0.0;        // ||grad f(w)||
  double expected_sq_norm = 0.0;   // E_k ||grad F_k(w)||^2
  double variance = 0.0;           // E_k ||grad F_k(w) - grad f(w)||^2
  double b = 1.0;                  // B(w); defined as 1 at joint stationarity
};

// Full-federation measurement (one full-batch gradient per device).
// `pool` may be nullptr.
DissimilarityMetrics measure_dissimilarity(const Model& model,
                                           const FederatedDataset& data,
                                           std::span<const double> w,
                                           ThreadPool* pool);

}  // namespace fed
