#include "core/checkpoint.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/csv.h"

namespace fed {

namespace {

// Incremental FNV-1a mixer for the config fingerprint. Doubles mix via
// their bit patterns so the fingerprint is exact, not approximate.
class Fingerprint {
 public:
  void mix(std::uint64_t v) {
    for (std::size_t i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffu;
      hash_ *= 1099511628211ull;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v ? 1 : 0)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

std::string checkpoint_name(std::uint64_t round) {
  // Zero-padded so lexicographic filename order is round order; 12
  // digits cover any soak we will ever run.
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%012llu.fpc",
                static_cast<unsigned long long>(round));
  return name;
}

// Parses `ckpt-<round>.fpc`; returns false for any other filename.
bool parse_checkpoint_name(const std::string& name, std::uint64_t& round) {
  constexpr const char* kPrefix = "ckpt-";
  constexpr const char* kSuffix = ".fpc";
  if (name.size() <= 5 + 4 || name.rfind(kPrefix, 0) != 0 ||
      name.substr(name.size() - 4) != kSuffix) {
    return false;
  }
  const std::string digits = name.substr(5, name.size() - 9);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  round = std::stoull(digits);
  return true;
}

}  // namespace

std::uint64_t config_fingerprint(const TrainerConfig& config,
                                 std::size_t population,
                                 std::size_t parameter_count) {
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(config.algorithm));
  fp.mix(config.mu);
  fp.mix(config.adaptive_mu.enabled);
  fp.mix(config.adaptive_mu.initial_mu);
  fp.mix(config.adaptive_mu.step);
  fp.mix(static_cast<std::uint64_t>(config.adaptive_mu.patience));
  fp.mix(config.theory_mu.enabled);
  fp.mix(config.theory_mu.coefficient);
  fp.mix(config.theory_mu.max_mu);
  fp.mix(config.theory_mu.smoothing);
  fp.mix(static_cast<std::uint64_t>(config.rounds));
  fp.mix(static_cast<std::uint64_t>(config.devices_per_round));
  fp.mix(static_cast<std::uint64_t>(config.batch_size));
  fp.mix(config.learning_rate);
  fp.mix(config.clip_norm);
  fp.mix(config.systems.straggler_fraction);
  fp.mix(static_cast<std::uint64_t>(config.systems.epochs));
  fp.mix(config.systems.profile.enabled);
  fp.mix(config.systems.profile.speed_sigma_log);
  fp.mix(static_cast<std::uint64_t>(config.sampling));
  fp.mix(config.seed);
  fp.mix(static_cast<std::uint64_t>(config.eval_every));
  fp.mix(config.measure_gamma);
  fp.mix(config.measure_dissimilarity);
  fp.mix(config.faults.drop);
  fp.mix(config.faults.corrupt);
  fp.mix(config.faults.duplicate);
  fp.mix(config.faults.delay_ms);
  fp.mix(static_cast<std::uint64_t>(config.recovery.max_retries));
  fp.mix(config.recovery.deadline_ms);
  fp.mix(config.recovery.backoff_base_ms);
  fp.mix(config.recovery.backoff_factor);
  fp.mix(config.recovery.quorum);
  fp.mix(config.churn.arrive);
  fp.mix(config.churn.depart);
  fp.mix(static_cast<std::uint64_t>(config.churn.initial));
  fp.mix(static_cast<std::uint64_t>(config.churn.min_active));
  fp.mix(static_cast<std::uint64_t>(config.first_round));
  fp.mix(static_cast<std::uint64_t>(population));
  fp.mix(static_cast<std::uint64_t>(parameter_count));
  return fp.value();
}

void save_checkpoint_state(const std::string& path,
                           const CheckpointState& state) {
  const auto slash = path.find_last_of('/');
  if (slash != std::string::npos) ensure_directory(path.substr(0, slash));
  const WireBuffer frame = encode_checkpoint_state(state);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("save_checkpoint_state: cannot open " + tmp);
    }
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    if (!out) {
      throw std::runtime_error("save_checkpoint_state: write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("save_checkpoint_state: rename to " + path +
                             " failed: " + ec.message());
  }
}

CheckpointState load_checkpoint_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_checkpoint_state: cannot open " + path);
  }
  WireBuffer frame((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return decode_checkpoint_state(frame);
}

std::vector<std::string> list_checkpoints(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::uint64_t round = 0;
    if (parse_checkpoint_name(entry.path().filename().string(), round)) {
      found.emplace_back(round, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [round, path] : found) paths.push_back(std::move(path));
  return paths;
}

std::optional<std::string> latest_checkpoint(const std::string& dir) {
  auto paths = list_checkpoints(dir);
  if (paths.empty()) return std::nullopt;
  return paths.back();
}

CheckpointWriter::CheckpointWriter(CheckpointConfig config)
    : config_(std::move(config)) {
  if (!config_.enabled()) {
    throw std::invalid_argument(
        "CheckpointWriter: config has no directory or zero cadence");
  }
  if (config_.retain == 0) config_.retain = 1;
  ensure_directory(config_.dir);
}

CheckpointWriter::WriteInfo CheckpointWriter::write(
    const CheckpointState& state) {
  // next_round is the first round a resume executes, so the file is
  // named for the last *completed* round — the id the trace reports.
  const std::uint64_t completed = state.next_round - 1;
  WriteInfo info;
  info.path = config_.dir + "/" + checkpoint_name(completed);
  save_checkpoint_state(info.path, state);
  std::error_code ec;
  info.bytes = std::filesystem::file_size(info.path, ec);
  auto generations = list_checkpoints(config_.dir);
  while (generations.size() > config_.retain) {
    std::filesystem::remove(generations.front(), ec);
    generations.erase(generations.begin());
  }
  info.generations = generations.size();
  return info;
}

}  // namespace fed
