// Named workloads: dataset + model + the paper's hyper-parameters, as
// used by every bench driver and example.
//
//   synthetic_iid, synthetic(0,0), synthetic(0.5,0.5), synthetic(1,1)
//     -> Synthetic(alpha,beta), logistic regression 60 -> 10, lr 0.01
//   mnist     -> mnist-like substitute, logistic regression 784 -> 10, lr 0.03
//   femnist   -> femnist-like substitute, logistic regression 784 -> 10, lr 0.003
//   shakespeare -> next-char substitute, 2-layer LSTM, trainable embedding
//   sent140   -> sentiment substitute, 2-layer LSTM, frozen embedding
//
// `scale` shrinks device counts (and for sequence tasks, stream lengths)
// so CI-sized runs finish quickly; 1.0 reproduces the full structure.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/module.h"

namespace fed {

struct Workload {
  std::string name;
  FederatedDataset data;
  std::shared_ptr<const Model> model;
  double learning_rate = 0.01;
  std::size_t batch_size = 10;
  std::size_t default_rounds = 200;
  std::size_t default_eval_every = 1;
  // The best mu from the paper's grid {0.001, 0.01, 0.1, 1} for this
  // dataset (Section 5.3.2: 1, 1, 1, 0.001, 0.01 for synthetic(1,1),
  // mnist, femnist, shakespeare, sent140).
  double best_mu = 1.0;
};

// Valid names: synthetic_iid, synthetic_0_0, synthetic_0.5_0.5,
// synthetic_1_1, mnist, femnist, shakespeare, sent140.
Workload make_workload(const std::string& name, std::uint64_t seed = 1,
                       double scale = 1.0);

// All valid workload names, in the order the paper presents them.
std::vector<std::string> workload_names();

// The four synthetic datasets of Figure 2, left to right.
std::vector<std::string> synthetic_workload_names();

// The five datasets of Figure 1 (synthetic(1,1) + the four real tasks).
std::vector<std::string> figure1_workload_names();

}  // namespace fed
