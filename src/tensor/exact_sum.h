// Exactly-associative accumulation of doubles.
//
// Floating-point addition is not associative, so a sum distributed over
// aggregator shards would normally depend on how the addends were
// partitioned — the one thing a hierarchical reduction must not do.
// ExactSum removes the problem at the root: every finite double is a
// (sign, 53-bit integer, power-of-two) triple, so its full bit pattern
// lands exactly in a wide two's-complement fixed-point register
// (a Kulisch-style accumulator) covering the entire double range,
// 2^-1074 through 2^1023. Accumulation is then integer addition —
// exact, associative, and commutative — and the register is rounded to
// the nearest double (round-half-even) exactly once, at value().
//
// Consequences the aggregation layer builds on (sim/aggregate.h):
//   - add()/merge() in any order and any grouping produce bit-identical
//     registers, hence bit-identical value()s;
//   - merge() of per-shard partial sums equals the single-accumulator
//     sum exactly, so sharding cannot change the aggregate;
//   - value() is the correctly-rounded double of the exact real sum.
//
// The register is 34 x 64-bit limbs (2176 bits): 2098 bits span the
// double range and the rest is headroom + sign, enough for ~2^77 worst
// case addends — overflow is not a practical concern. Non-finite
// addends (inf/NaN) cannot live in fixed point; they accumulate in an
// IEEE side-channel that, when engaged, dominates value() the way
// ordinary IEEE addition would.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace fed {

class ExactSum {
 public:
  static constexpr std::size_t kLimbs = 34;
  // Bit 0 of limb 0 weighs 2^-kBias (the smallest subnormal double).
  static constexpr int kBias = 1074;

  // Adds one double, exactly. ±0 is a no-op; non-finite values divert
  // to the IEEE side-channel.
  void add(double v);

  // Adds another accumulator's exact state (the shard-merge operation).
  void merge(const ExactSum& other);

  // The nearest double to the exact accumulated sum (ties to even;
  // overflow returns ±inf). If any non-finite value was added, returns
  // the IEEE combination of those values instead, matching what plain
  // summation would have propagated.
  double value() const;

  bool is_zero() const;

  // Raw state, for the wire codec (support/serialize.h).
  std::span<const std::uint64_t, kLimbs> limbs() const { return limbs_; }
  bool has_nonfinite() const { return has_nonfinite_; }
  double nonfinite() const { return nonfinite_; }
  static ExactSum restore(std::span<const std::uint64_t> limbs,
                          bool has_nonfinite, double nonfinite);

 private:
  // Adds or subtracts `mag * 2^(offset - kBias)` into the register.
  void apply(std::uint64_t mag, std::size_t offset, bool negative);

  // Two's-complement little-endian limbs: limbs_[0] is least significant.
  std::array<std::uint64_t, kLimbs> limbs_{};
  double nonfinite_ = 0.0;  // meaningful iff has_nonfinite_
  bool has_nonfinite_ = false;
};

}  // namespace fed
