// Dense row-major matrix/vector types used throughout the library.
//
// Models expose their parameters as one flat std::vector<double> (see
// nn/module.h); Matrix is used for data (one sample per row) and for
// structured views over weight blocks during forward/backward passes.

#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace fed {

using Vector = std::vector<double>;

// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  // Takes ownership of a flat row-major buffer. data.size() must equal
  // rows*cols.
  Matrix(std::size_t rows, std::size_t cols, Vector data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  Vector& storage() { return data_; }
  const Vector& storage() const { return data_; }

  void fill(double v) { data_.assign(data_.size(), v); }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

// A mutable view over a contiguous block of a flat parameter vector,
// interpreted as a rows x cols row-major matrix. Used by models to
// address weight blocks inside their flat parameter storage.
class MatrixView {
 public:
  MatrixView(std::span<double> data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {
    assert(data.size() == rows * cols);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return data_.subspan(r * cols_, cols_);
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return data_.subspan(r * cols_, cols_);
  }

  std::span<double> flat() { return data_; }

 private:
  std::span<double> data_;
  std::size_t rows_;
  std::size_t cols_;
};

class ConstMatrixView {
 public:
  ConstMatrixView(std::span<const double> data, std::size_t rows,
                  std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {
    assert(data.size() == rows * cols);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return data_.subspan(r * cols_, cols_);
  }

 private:
  std::span<const double> data_;
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace fed
