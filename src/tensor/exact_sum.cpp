#include "tensor/exact_sum.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace fed {

void ExactSum::apply(std::uint64_t mag, std::size_t offset, bool negative) {
  const std::size_t k = offset / 64;
  const unsigned s = offset % 64;
  const std::uint64_t words[2] = {mag << s, s ? mag >> (64 - s) : 0};
  if (!negative) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; k + j < kLimbs && (j < 2 || carry); ++j) {
      const std::uint64_t w = j < 2 ? words[j] : 0;
      std::uint64_t sum = limbs_[k + j] + w;
      const std::uint64_t c1 = sum < w ? 1 : 0;
      sum += carry;
      const std::uint64_t c2 = sum < carry ? 1 : 0;
      limbs_[k + j] = sum;
      carry = c1 | c2;
    }
  } else {
    std::uint64_t borrow = 0;
    for (std::size_t j = 0; k + j < kLimbs && (j < 2 || borrow); ++j) {
      const std::uint64_t w = j < 2 ? words[j] : 0;
      const std::uint64_t cur = limbs_[k + j];
      const std::uint64_t d1 = cur - w;
      const std::uint64_t b1 = cur < w ? 1 : 0;
      const std::uint64_t d2 = d1 - borrow;
      const std::uint64_t b2 = d1 < borrow ? 1 : 0;
      limbs_[k + j] = d2;
      borrow = b1 | b2;
    }
  }
}

void ExactSum::add(double v) {
  if (v == 0.0) return;
  if (!std::isfinite(v)) {
    nonfinite_ = has_nonfinite_ ? nonfinite_ + v : v;
    has_nonfinite_ = true;
    return;
  }
  int exp = 0;
  const double m = std::frexp(v, &exp);  // |m| in [0.5, 1), v = m * 2^exp
  const auto mant = static_cast<std::int64_t>(std::ldexp(m, 53));
  const bool negative = mant < 0;
  auto mag = static_cast<std::uint64_t>(negative ? -mant : mant);
  int offset = exp - 53 + kBias;  // bit position of mag's LSB
  if (offset < 0) {
    // Subnormal: the low -offset bits of mag are zero, so this is exact.
    mag >>= -offset;
    offset = 0;
  }
  apply(mag, static_cast<std::size_t>(offset), negative);
}

void ExactSum::merge(const ExactSum& other) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    std::uint64_t sum = limbs_[i] + other.limbs_[i];
    const std::uint64_t c1 = sum < other.limbs_[i] ? 1 : 0;
    sum += carry;
    const std::uint64_t c2 = sum < carry ? 1 : 0;
    limbs_[i] = sum;
    carry = c1 | c2;
  }
  if (other.has_nonfinite_) {
    nonfinite_ =
        has_nonfinite_ ? nonfinite_ + other.nonfinite_ : other.nonfinite_;
    has_nonfinite_ = true;
  }
}

bool ExactSum::is_zero() const {
  if (has_nonfinite_) return false;
  for (const std::uint64_t l : limbs_) {
    if (l != 0) return false;
  }
  return true;
}

double ExactSum::value() const {
  if (has_nonfinite_) return nonfinite_;

  std::array<std::uint64_t, kLimbs> mag = limbs_;
  const bool negative = (limbs_[kLimbs - 1] >> 63) != 0;
  if (negative) {
    std::uint64_t carry = 1;
    for (auto& l : mag) {
      l = ~l + carry;
      carry = (l < carry) ? 1 : 0;
    }
  }

  int top = -1;  // highest set bit of |sum|
  for (int i = static_cast<int>(kLimbs) - 1; i >= 0; --i) {
    if (mag[static_cast<std::size_t>(i)] != 0) {
      top = i * 64 + 63 - std::countl_zero(mag[static_cast<std::size_t>(i)]);
      break;
    }
  }
  if (top < 0) return 0.0;

  // |sum| = M * 2^-kBias for the big integer M with top bit `top`.
  if (top <= 52) {
    // M < 2^53: exactly representable (possibly subnormal).
    const double r = std::ldexp(static_cast<double>(mag[0]), -kBias);
    return negative ? -r : r;
  }

  // Extract the top 53 bits as the mantissa, round half to even on the
  // guard/sticky bits below, and scale back.
  const std::size_t shift = static_cast<std::size_t>(top) - 52;
  const std::size_t k = shift / 64;
  const unsigned s = shift % 64;
  std::uint64_t mant = mag[k] >> s;
  if (s != 0 && k + 1 < kLimbs) mant |= mag[k + 1] << (64 - s);
  mant &= (std::uint64_t{1} << 53) - 1;

  const std::size_t gb = shift - 1;  // guard bit position
  const bool guard = (mag[gb / 64] >> (gb % 64)) & 1;
  bool sticky = false;
  for (std::size_t i = 0; i < gb / 64 && !sticky; ++i) sticky = mag[i] != 0;
  if (!sticky && gb % 64 != 0) {
    sticky = (mag[gb / 64] & ((std::uint64_t{1} << (gb % 64)) - 1)) != 0;
  }

  int e = static_cast<int>(shift) - kBias;
  if (guard && (sticky || (mant & 1))) {
    ++mant;
    if (mant == (std::uint64_t{1} << 53)) {
      mant >>= 1;
      ++e;
    }
  }
  const double r = std::ldexp(static_cast<double>(mant), e);
  return negative ? -r : r;
}

ExactSum ExactSum::restore(std::span<const std::uint64_t> limbs,
                           bool has_nonfinite, double nonfinite) {
  if (limbs.size() != kLimbs) {
    throw std::invalid_argument("ExactSum::restore: wrong limb count");
  }
  ExactSum s;
  for (std::size_t i = 0; i < kLimbs; ++i) s.limbs_[i] = limbs[i];
  s.has_nonfinite_ = has_nonfinite;
  s.nonfinite_ = has_nonfinite ? nonfinite : 0.0;
  return s;
}

}  // namespace fed
