#include "tensor/tensor.h"

#include <stdexcept>

namespace fed {

Matrix::Matrix(std::size_t rows, std::size_t cols, Vector data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols) {
    throw std::invalid_argument("Matrix: buffer size does not match shape");
  }
}

}  // namespace fed
