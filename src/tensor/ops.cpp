#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

// Kernel spans compile to nothing unless -DFEDPROX_PROFILE_KERNELS=ON;
// these run per minibatch, so release benches must not even pay the
// enabled check (obs/profiler.h).
#include "obs/profiler.h"

namespace fed {

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

void copy(std::span<const double> src, std::span<double> dst) {
  assert(src.size() == dst.size());
  std::copy(src.begin(), src.end(), dst.begin());
}

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double distance2(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double sum(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

void subtract(std::span<const double> a, std::span<const double> b,
              std::span<double> dst) {
  assert(a.size() == b.size() && a.size() == dst.size());
  for (std::size_t i = 0; i < a.size(); ++i) dst[i] = a[i] - b[i];
}

void add(std::span<const double> a, std::span<const double> b,
         std::span<double> dst) {
  assert(a.size() == b.size() && a.size() == dst.size());
  for (std::size_t i = 0; i < a.size(); ++i) dst[i] = a[i] + b[i];
}

void hadamard(std::span<const double> a, std::span<const double> b,
              std::span<double> dst) {
  assert(a.size() == b.size() && a.size() == dst.size());
  for (std::size_t i = 0; i < a.size(); ++i) dst[i] = a[i] * b[i];
}

void zero(std::span<double> x) { std::fill(x.begin(), x.end(), 0.0); }

void gemv(const ConstMatrixView& a, std::span<const double> x,
          std::span<double> y) {
  zero(y);
  gemv_accumulate(a, x, y);
}

void gemv_accumulate(const ConstMatrixView& a, std::span<const double> x,
                     std::span<double> y) {
  assert(x.size() == a.cols() && y.size() == a.rows());
  FED_PROFILE_KERNEL_SPAN("gemv", "kernel", "m",
                          static_cast<std::int64_t>(a.rows()), "n",
                          static_cast<std::int64_t>(a.cols()));
  for (std::size_t r = 0; r < a.rows(); ++r) {
    y[r] += dot(a.row(r), x);
  }
}

void gemv_transposed(const ConstMatrixView& a, std::span<const double> x,
                     std::span<double> y) {
  zero(y);
  gemv_transposed_accumulate(a, x, y);
}

void gemv_transposed_accumulate(const ConstMatrixView& a,
                                std::span<const double> x,
                                std::span<double> y) {
  assert(x.size() == a.rows() && y.size() == a.cols());
  FED_PROFILE_KERNEL_SPAN("gemv_t", "kernel", "m",
                          static_cast<std::int64_t>(a.rows()), "n",
                          static_cast<std::int64_t>(a.cols()));
  for (std::size_t r = 0; r < a.rows(); ++r) {
    axpy(x[r], a.row(r), y);
  }
}

void gemm(const ConstMatrixView& a, const ConstMatrixView& b, MatrixView c) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemm: shape mismatch");
  }
  FED_PROFILE_KERNEL_SPAN("gemm", "kernel", "m",
                          static_cast<std::int64_t>(a.rows()), "k",
                          static_cast<std::int64_t>(a.cols()), "n",
                          static_cast<std::int64_t>(b.cols()));
  zero(c.flat());
  // ikj order: streams over B and C rows; cache-friendly for row-major.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto c_row = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      axpy(aik, b.row(k), c_row);
    }
  }
}

void ger(double alpha, std::span<const double> x, std::span<const double> y,
         MatrixView a) {
  assert(x.size() == a.rows() && y.size() == a.cols());
  FED_PROFILE_KERNEL_SPAN("ger", "kernel", "m",
                          static_cast<std::int64_t>(a.rows()), "n",
                          static_cast<std::int64_t>(a.cols()));
  for (std::size_t r = 0; r < a.rows(); ++r) {
    axpy(alpha * x[r], y, a.row(r));
  }
}

double sigmoid(double x) {
  // Split by sign to avoid overflow in exp.
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double tanh_activation(double x) { return std::tanh(x); }

void softmax_inplace(std::span<double> logits) {
  assert(!logits.empty());
  const double m = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (double& v : logits) {
    v = std::exp(v - m);
    total += v;
  }
  for (double& v : logits) v /= total;
}

double log_sum_exp(std::span<const double> logits) {
  assert(!logits.empty());
  const double m = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (double v : logits) total += std::exp(v - m);
  return m + std::log(total);
}

std::size_t argmax(std::span<const double> x) {
  assert(!x.empty());
  return static_cast<std::size_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

bool all_finite(std::span<const double> x) {
  for (double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void weighted_sum(std::span<const Vector* const> rows,
                  std::span<const double> weights, std::span<double> dst) {
  if (rows.size() != weights.size()) {
    throw std::invalid_argument("weighted_sum: rows/weights size mismatch");
  }
  zero(dst);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i]->size() == dst.size());
    axpy(weights[i], *rows[i], dst);
  }
}

}  // namespace fed
