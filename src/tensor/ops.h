// Linear-algebra and elementwise kernels over spans / Matrix.
//
// Everything takes std::span so the same kernels run on whole parameter
// vectors, weight-block views, and data rows without copies. Sizes are
// asserted in debug builds and validated (throw) where a mismatch is a
// plausible user error rather than an internal bug.

#pragma once

#include <span>

#include "tensor/tensor.h"

namespace fed {

// ---- vector ops -----------------------------------------------------------

// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
// x *= alpha
void scale(std::span<double> x, double alpha);
// dst = src
void copy(std::span<const double> src, std::span<double> dst);
// <x, y>
double dot(std::span<const double> x, std::span<const double> y);
// ||x||_2
double norm2(std::span<const double> x);
// ||x - y||_2
double distance2(std::span<const double> x, std::span<const double> y);
// sum of entries
double sum(std::span<const double> x);
// dst = a - b
void subtract(std::span<const double> a, std::span<const double> b,
              std::span<double> dst);
// dst = a + b
void add(std::span<const double> a, std::span<const double> b,
         std::span<double> dst);
// elementwise dst = a * b (Hadamard)
void hadamard(std::span<const double> a, std::span<const double> b,
              std::span<double> dst);
// x = 0
void zero(std::span<double> x);

// ---- matrix ops -----------------------------------------------------------

// y = A x           (A: m x n, x: n, y: m)
void gemv(const ConstMatrixView& a, std::span<const double> x,
          std::span<double> y);
// y = A^T x         (A: m x n, x: m, y: n)
void gemv_transposed(const ConstMatrixView& a, std::span<const double> x,
                     std::span<double> y);
// y += A x
void gemv_accumulate(const ConstMatrixView& a, std::span<const double> x,
                     std::span<double> y);
// y += A^T x
void gemv_transposed_accumulate(const ConstMatrixView& a,
                                std::span<const double> x,
                                std::span<double> y);
// C = A B           (A: m x k, B: k x n, C: m x n). Blocked ikj loop.
void gemm(const ConstMatrixView& a, const ConstMatrixView& b, MatrixView c);
// A += alpha * x y^T  (rank-1 update; A: m x n, x: m, y: n)
void ger(double alpha, std::span<const double> x, std::span<const double> y,
         MatrixView a);

// ---- nonlinearities --------------------------------------------------------

double sigmoid(double x);
double tanh_activation(double x);
// In-place numerically stable softmax over `logits`.
void softmax_inplace(std::span<double> logits);
// log(sum(exp(logits))) computed stably.
double log_sum_exp(std::span<const double> logits);
// Index of the maximum element. Requires non-empty input; ties -> lowest.
std::size_t argmax(std::span<const double> x);

// ---- misc -------------------------------------------------------------------

// Returns true if all entries are finite.
bool all_finite(std::span<const double> x);

// Weighted mean of several equal-length vectors: dst = sum_i w[i] * rows[i].
// Weights need not sum to one; caller normalizes if desired.
void weighted_sum(std::span<const Vector* const> rows,
                  std::span<const double> weights, std::span<double> dst);

}  // namespace fed
