// Full-batch gradient descent on the proximal local objective.
// Demonstrates the framework's solver-agnosticism (the analysis only
// requires a gamma-inexact solution, not SGD) and is used in tests where
// deterministic local solves make closed-form checks possible.

#pragma once

#include "optim/solver.h"

namespace fed {

class GdSolver final : public LocalSolver {
 public:
  std::string name() const override { return "gd"; }

  // budget.iterations full-batch steps of size budget.learning_rate.
  // batch_size is ignored; `rng` is unused (deterministic solver).
  void solve(const LocalProblem& problem, const SolveBudget& budget, Rng& rng,
             std::span<double> w) const override;
};

}  // namespace fed
