// gamma-inexactness (Definitions 1 and 2): measures how accurately a
// local solve minimized h_k(.; w^t). gamma = ||grad h_k(w*)|| /
// ||grad h_k(w^t)||; smaller is more exact, gamma = 0 is an exact
// stationary point, gamma >= 1 means no first-order progress.

#pragma once

#include "optim/solver.h"

namespace fed {

// Returns gamma for the solution `w_star` of `problem`. When the gradient
// at the anchor is (numerically) zero the subproblem was already solved;
// returns 0.
double measure_gamma(const LocalProblem& problem,
                     std::span<const double> w_star);

}  // namespace fed
