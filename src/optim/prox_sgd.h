// Evaluation of the proximal local objective
//   h_k(w; w^t) = F_k(w) + <correction, w> + (mu/2) ||w - w^t||^2
// shared by the concrete solvers and the gamma-inexactness probe.

#pragma once

#include "optim/solver.h"
#include "tensor/tensor.h"

namespace fed {

class LocalObjective {
 public:
  explicit LocalObjective(const LocalProblem& problem);

  std::size_t dimension() const { return problem_.model->parameter_count(); }
  std::size_t num_samples() const { return problem_.data->size(); }

  // Mean h_k over the given batch; writes gradient of h_k into grad.
  double loss_and_grad(std::span<const double> w,
                       std::span<const std::size_t> batch,
                       std::span<double> grad) const;

  // Full-batch versions.
  double full_loss_and_grad(std::span<const double> w,
                            std::span<double> grad) const;
  double full_loss(std::span<const double> w) const;

  // ||grad h_k(w)|| over the full batch.
  double full_grad_norm(std::span<const double> w) const;

 private:
  // Adds the proximal and linear-correction terms to a plain F_k
  // loss/grad pair.
  double add_regularizers(std::span<const double> w, double f_loss,
                          std::span<double> grad) const;

  LocalProblem problem_;
};

}  // namespace fed
