// Solver-agnostic local subproblem interface (paper Section 3.2).
//
// Each selected device k approximately minimizes
//   h_k(w; w^t) = F_k(w) + <correction, w> + (mu/2) ||w - w^t||^2
// where F_k is the empirical risk on the device's training data, `mu` is
// the FedProx proximal coefficient (0 recovers the FedAvg subproblem),
// and `correction` is the optional FedDane gradient-correction vector
// (empty for FedAvg/FedProx). Any LocalSolver can be plugged in; the
// framework only requires that it improves h_k starting from w^t — the
// quality of the solve is captured by gamma-inexactness (optim/inexactness.h).

#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "data/dataset.h"
#include "nn/module.h"
#include "support/rng.h"

namespace fed {

struct LocalProblem {
  const Model* model = nullptr;
  const Dataset* data = nullptr;        // the device's training set
  std::span<const double> anchor;       // w^t (prox centre & start point)
  double mu = 0.0;                      // proximal coefficient
  std::span<const double> correction;   // FedDane linear term; may be empty
};

struct SolveBudget {
  // Total mini-batch iterations the device completes before the global
  // clock cycle ends. Systems heterogeneity shows up here: a straggler
  // gets fewer iterations than epochs * ceil(n_k / batch_size).
  std::size_t iterations = 0;
  std::size_t batch_size = 10;
  double learning_rate = 0.01;
  // L2 gradient clipping threshold; 0 disables clipping. Useful for the
  // LSTM workloads where per-step gradients can spike.
  double clip_norm = 0.0;
};

// Rescales grad in place to norm `clip_norm` when it exceeds it (no-op
// when clip_norm <= 0).
void clip_gradient(std::span<double> grad, double clip_norm);

// Iterations corresponding to `epochs` full passes over n samples.
std::size_t iterations_for_epochs(std::size_t epochs, std::size_t n,
                                  std::size_t batch_size);

class LocalSolver {
 public:
  virtual ~LocalSolver() = default;
  virtual std::string name() const = 0;

  // Improves w in place (w enters as a copy of problem.anchor). `rng` is
  // the device's (seed, round, device)-keyed mini-batch stream; solvers
  // must draw batch order exclusively from it so runs stay paired across
  // methods.
  virtual void solve(const LocalProblem& problem, const SolveBudget& budget,
                     Rng& rng, std::span<double> w) const = 0;
};

}  // namespace fed
