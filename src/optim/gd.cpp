#include "optim/gd.h"

#include "obs/profiler.h"
#include "optim/prox_sgd.h"
#include "tensor/ops.h"

namespace fed {

void GdSolver::solve(const LocalProblem& problem, const SolveBudget& budget,
                     Rng& /*rng*/, std::span<double> w) const {
  const LocalObjective objective(problem);
  if (objective.num_samples() == 0) return;
  Vector grad(objective.dimension());
  for (std::size_t it = 0; it < budget.iterations; ++it) {
    // A GD iteration is a full pass over the device's data — the same
    // granularity SgdSolver labels local_epoch.
    Span span("local_epoch", "solver", "epoch", static_cast<std::int64_t>(it));
    objective.full_loss_and_grad(w, grad);
    clip_gradient(grad, budget.clip_norm);
    axpy(-budget.learning_rate, grad, w);
  }
}

}  // namespace fed
