#include "optim/sgd.h"

#include <numeric>
#include <optional>

#include "obs/profiler.h"
#include "optim/prox_sgd.h"
#include "tensor/ops.h"

namespace fed {

void SgdSolver::solve(const LocalProblem& problem, const SolveBudget& budget,
                      Rng& rng, std::span<double> w) const {
  const LocalObjective objective(problem);
  const std::size_t n = objective.num_samples();
  if (n == 0 || budget.iterations == 0) return;

  Vector grad(objective.dimension());
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::optional<Span> epoch_span;  // one span per local data pass
  std::int64_t epoch = 0;
  std::size_t cursor = n;  // forces a shuffle on the first iteration
  for (std::size_t it = 0; it < budget.iterations; ++it) {
    if (cursor >= n) {
      epoch_span.emplace("local_epoch", "solver", "epoch", epoch++);
      rng.shuffle(order);
      cursor = 0;
    }
    const std::size_t take = std::min(budget.batch_size, n - cursor);
    std::span<const std::size_t> batch(order.data() + cursor, take);
    cursor += take;
    objective.loss_and_grad(w, batch, grad);
    clip_gradient(grad, budget.clip_norm);
    axpy(-budget.learning_rate, grad, w);
  }
}

}  // namespace fed
