#include "optim/inexactness.h"

#include "optim/prox_sgd.h"

namespace fed {

double measure_gamma(const LocalProblem& problem,
                     std::span<const double> w_star) {
  const LocalObjective objective(problem);
  const double at_anchor = objective.full_grad_norm(problem.anchor);
  if (at_anchor < 1e-12) return 0.0;
  return objective.full_grad_norm(w_star) / at_anchor;
}

}  // namespace fed
