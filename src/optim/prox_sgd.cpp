#include "optim/prox_sgd.h"

#include <cassert>
#include <stdexcept>

#include "obs/profiler.h"
#include "tensor/ops.h"

namespace fed {

LocalObjective::LocalObjective(const LocalProblem& problem)
    : problem_(problem) {
  if (!problem_.model || !problem_.data) {
    throw std::invalid_argument("LocalObjective: null model or data");
  }
  if (problem_.anchor.size() != problem_.model->parameter_count()) {
    throw std::invalid_argument("LocalObjective: anchor dimension mismatch");
  }
  if (!problem_.correction.empty() &&
      problem_.correction.size() != problem_.anchor.size()) {
    throw std::invalid_argument("LocalObjective: correction dim mismatch");
  }
}

double LocalObjective::add_regularizers(std::span<const double> w,
                                        double f_loss,
                                        std::span<double> grad) const {
  // Runs once per minibatch gradient — kernel-gated like GEMM/GEMV.
  FED_PROFILE_KERNEL_SPAN("prox_step", "kernel", "d",
                          static_cast<std::int64_t>(w.size()));
  double loss = f_loss;
  if (problem_.mu != 0.0) {
    double sq = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double diff = w[i] - problem_.anchor[i];
      grad[i] += problem_.mu * diff;
      sq += diff * diff;
    }
    loss += 0.5 * problem_.mu * sq;
  }
  if (!problem_.correction.empty()) {
    loss += dot(problem_.correction, w);
    add(grad, problem_.correction, grad);
  }
  return loss;
}

double LocalObjective::loss_and_grad(std::span<const double> w,
                                     std::span<const std::size_t> batch,
                                     std::span<double> grad) const {
  const double f =
      problem_.model->loss_and_grad(w, *problem_.data, batch, grad);
  return add_regularizers(w, f, grad);
}

double LocalObjective::full_loss_and_grad(std::span<const double> w,
                                          std::span<double> grad) const {
  const double f = problem_.model->dataset_loss_and_grad(w, *problem_.data, grad);
  return add_regularizers(w, f, grad);
}

double LocalObjective::full_loss(std::span<const double> w) const {
  double f = problem_.model->dataset_loss(w, *problem_.data);
  if (problem_.mu != 0.0) {
    const double d = distance2(w, problem_.anchor);
    f += 0.5 * problem_.mu * d * d;
  }
  if (!problem_.correction.empty()) f += dot(problem_.correction, w);
  return f;
}

double LocalObjective::full_grad_norm(std::span<const double> w) const {
  Vector grad(dimension());
  full_loss_and_grad(w, grad);
  return norm2(grad);
}

std::size_t iterations_for_epochs(std::size_t epochs, std::size_t n,
                                  std::size_t batch_size) {
  if (batch_size == 0) throw std::invalid_argument("batch_size must be > 0");
  const std::size_t per_epoch = (n + batch_size - 1) / batch_size;
  return epochs * per_epoch;
}

void clip_gradient(std::span<double> grad, double clip_norm) {
  if (clip_norm <= 0.0) return;
  const double norm = norm2(grad);
  if (norm > clip_norm) scale(grad, clip_norm / norm);
}

}  // namespace fed
