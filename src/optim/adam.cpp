#include "optim/adam.h"

#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "obs/profiler.h"
#include "optim/prox_sgd.h"
#include "tensor/ops.h"

namespace fed {

AdamSolver::AdamSolver(double beta1, double beta2, double epsilon)
    : beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  if (beta1 < 0.0 || beta1 >= 1.0 || beta2 < 0.0 || beta2 >= 1.0 ||
      epsilon <= 0.0) {
    throw std::invalid_argument("AdamSolver: bad hyper-parameters");
  }
}

void AdamSolver::solve(const LocalProblem& problem, const SolveBudget& budget,
                       Rng& rng, std::span<double> w) const {
  const LocalObjective objective(problem);
  const std::size_t n = objective.num_samples();
  if (n == 0 || budget.iterations == 0) return;

  const std::size_t d = objective.dimension();
  Vector grad(d), m(d, 0.0), v(d, 0.0);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::optional<Span> epoch_span;  // one span per local data pass
  std::int64_t epoch = 0;
  std::size_t cursor = n;
  double beta1_t = 1.0, beta2_t = 1.0;
  for (std::size_t it = 0; it < budget.iterations; ++it) {
    if (cursor >= n) {
      epoch_span.emplace("local_epoch", "solver", "epoch", epoch++);
      rng.shuffle(order);
      cursor = 0;
    }
    const std::size_t take = std::min(budget.batch_size, n - cursor);
    std::span<const std::size_t> batch(order.data() + cursor, take);
    cursor += take;

    objective.loss_and_grad(w, batch, grad);
    clip_gradient(grad, budget.clip_norm);
    beta1_t *= beta1_;
    beta2_t *= beta2_;
    for (std::size_t i = 0; i < d; ++i) {
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * grad[i];
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * grad[i] * grad[i];
      const double m_hat = m[i] / (1.0 - beta1_t);
      const double v_hat = v[i] / (1.0 - beta2_t);
      w[i] -= budget.learning_rate * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace fed
