// Mini-batch SGD on the proximal local objective — the paper's local
// solver for both FedAvg (mu = 0) and FedProx experiments (Section 5.1).

#pragma once

#include "optim/solver.h"

namespace fed {

class SgdSolver final : public LocalSolver {
 public:
  std::string name() const override { return "sgd"; }

  // Runs budget.iterations mini-batch steps with constant step size.
  // Epoch boundaries reshuffle the sample order using `rng`; partial
  // epochs (straggler budgets) simply stop mid-pass.
  void solve(const LocalProblem& problem, const SolveBudget& budget, Rng& rng,
             std::span<double> w) const override;
};

}  // namespace fed
