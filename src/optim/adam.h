// Adam on the proximal local objective — a third drop-in LocalSolver
// demonstrating (and stress-testing) the framework's solver-agnosticism.
// In deployed federated systems adaptive local optimizers are common; the
// FedProx analysis only cares about the gamma-inexactness of the returned
// solution, which optim/inexactness.h measures for any solver.

#pragma once

#include "optim/solver.h"

namespace fed {

class AdamSolver final : public LocalSolver {
 public:
  explicit AdamSolver(double beta1 = 0.9, double beta2 = 0.999,
                      double epsilon = 1e-8);

  std::string name() const override { return "adam"; }

  void solve(const LocalProblem& problem, const SolveBudget& budget, Rng& rng,
             std::span<double> w) const override;

 private:
  double beta1_;
  double beta2_;
  double epsilon_;
};

}  // namespace fed
