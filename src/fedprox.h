// Umbrella header: everything a downstream user needs to run federated
// optimization experiments with this library.
//
//   #include "fedprox.h"
//
//   fed::Workload w = fed::make_workload("synthetic_1_1");
//   fed::TrainerConfig cfg = fed::fedprox_config(/*mu=*/1.0);
//   cfg.systems.straggler_fraction = 0.9;
//   fed::TrainHistory h = fed::Trainer(*w.model, w.data, cfg).run();

#pragma once

#include "core/adaptive_mu.h"
#include "core/convergence.h"
#include "core/dissimilarity.h"
#include "core/experiment.h"
#include "core/feddane.h"
#include "core/registry.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/image_like.h"
#include "data/leaf_json.h"
#include "data/partition.h"
#include "data/sequence.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "nn/embedding.h"
#include "nn/grad_check.h"
#include "nn/logistic.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "optim/adam.h"
#include "optim/gd.h"
#include "optim/inexactness.h"
#include "optim/prox_sgd.h"
#include "optim/sgd.h"
#include "sim/aggregate.h"
#include "sim/client.h"
#include "sim/sampling.h"
#include "sim/server.h"
#include "sim/systems.h"
#include "support/cli.h"
#include "support/csv.h"
#include "support/json.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/serialize.h"
#include "support/stopwatch.h"
#include "support/threadpool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
