#include "obs/observer.h"

namespace fed {

void CompositeObserver::add(TrainingObserver& observer) {
  children_.push_back(&observer);
}

void CompositeObserver::on_run_start(const RunInfo& info) {
  for (auto* child : children_) child->on_run_start(info);
}

void CompositeObserver::on_round_start(std::size_t round,
                                       std::span<const std::size_t> selected) {
  for (auto* child : children_) child->on_round_start(round, selected);
}

void CompositeObserver::on_fault(const FaultEvent& event) {
  for (auto* child : children_) child->on_fault(event);
}

void CompositeObserver::on_client_result(std::size_t round,
                                         const ClientResult& result) {
  for (auto* child : children_) child->on_client_result(round, result);
}

void CompositeObserver::on_aggregate(std::size_t round,
                                     std::span<const double> weights) {
  for (auto* child : children_) child->on_aggregate(round, weights);
}

void CompositeObserver::on_round_end(const RoundMetrics& metrics,
                                     const RoundTrace& trace) {
  for (auto* child : children_) child->on_round_end(metrics, trace);
}

void CompositeObserver::on_run_end(const TrainHistory& history) {
  for (auto* child : children_) child->on_run_end(history);
}

}  // namespace fed
