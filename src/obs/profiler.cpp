#include "obs/profiler.h"

#include <algorithm>

namespace fed {

std::atomic<bool> Profiler::enabled_{false};

Profiler& Profiler::instance() {
  static Profiler* profiler = new Profiler();  // never destroyed: threads
  return *profiler;                            // may outlive static dtors
}

Profiler::Profiler() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Profiler::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Profiler::ThreadBuffer& Profiler::local_buffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (!buffer) {
    auto owned = std::make_unique<ThreadBuffer>();
    buffer = owned.get();
    MutexLock lock(registry_mutex_);
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    {
      MutexLock name_lock(buffer->mutex);
      buffer->name = "thread-" + std::to_string(buffer->tid);
    }
    buffers_.push_back(std::move(owned));
  }
  return *buffer;
}

void Profiler::set_thread_name(std::string name) {
  ThreadBuffer& buffer = local_buffer();
  MutexLock lock(buffer.mutex);
  buffer.name = std::move(name);
}

void Profiler::record(const ProfileEvent& event) {
  ThreadBuffer& buffer = local_buffer();
  MutexLock lock(buffer.mutex);
  ProfileEvent& stored = buffer.events.emplace_back(event);
  stored.tid = buffer.tid;
}

Profiler::Snapshot Profiler::drain() {
  Snapshot snapshot;
  {
    MutexLock registry_lock(registry_mutex_);
    for (auto& buffer : buffers_) {
      MutexLock lock(buffer->mutex);
      snapshot.threads.emplace_back(buffer->tid, buffer->name);
      snapshot.events.insert(snapshot.events.end(), buffer->events.begin(),
                             buffer->events.end());
      buffer->events.clear();
    }
  }
  std::stable_sort(snapshot.events.begin(), snapshot.events.end(),
                   [](const ProfileEvent& a, const ProfileEvent& b) {
                     if (a.start_us != b.start_us) {
                       return a.start_us < b.start_us;
                     }
                     return a.dur_us > b.dur_us;  // parents before children
                   });
  return snapshot;
}

void Profiler::discard() {
  MutexLock registry_lock(registry_mutex_);
  for (auto& buffer : buffers_) {
    MutexLock lock(buffer->mutex);
    buffer->events.clear();
  }
}

void Span::begin(const char* name, const char* category) {
  event_.name = name;
  event_.category = category;
  event_.type = ProfileEvent::Type::kComplete;
  event_.start_us = Profiler::instance().now_us();
  active_ = true;
}

void Span::finish() {
  if (!active_) return;
  active_ = false;
  // Record even if the profiler was disabled mid-span, so every begun
  // span completes and drained traces never hold half-open events.
  Profiler& profiler = Profiler::instance();
  event_.dur_us = profiler.now_us() - event_.start_us;
  profiler.record(event_);
}

}  // namespace fed
