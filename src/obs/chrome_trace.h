// Chrome trace-event export for the span profiler.
//
// Renders a Profiler::Snapshot as the JSON object format understood by
// chrome://tracing and Perfetto (https://ui.perfetto.dev): one "X"
// complete event per Span (nested per thread track), "b"/"e" async pairs
// for intervals that legitimately overlap (thread-pool queue waits), and
// "M" metadata naming the process and every thread ("main", "pool-3").
//
//   Profiler::instance().enable();
//   ... run ...
//   write_chrome_trace("run.trace.json");   // drains the profiler
//
// Timestamps are microseconds since the profiler epoch, which is what
// the trace-event spec expects in `ts`/`dur`.

#pragma once

#include <string>

#include "obs/profiler.h"
#include "support/json.h"

namespace fed {

// {"traceEvents":[...],"displayTimeUnit":"ms"} for one snapshot.
JsonValue chrome_trace_json(const Profiler::Snapshot& snapshot);

// Drains the global profiler and writes the trace to `path`, creating
// parent directories. Throws std::runtime_error if the file cannot be
// written.
void write_chrome_trace(const std::string& path);

}  // namespace fed
