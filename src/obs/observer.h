// Structured training observation: the Trainer's public telemetry API.
//
// A TrainingObserver provides typed hooks for every stage of a run. The
// Trainer invokes observers from the round thread only — never from
// ThreadPool workers — in registration order, so attaching observers
// cannot perturb the (seed, round, device) determinism contract.
// Observers must be registered before Trainer::run starts and must not
// mutate training state (a health observer may abort the run by
// throwing; see obs/health.h).
//
//   struct Printer : TrainingObserver {
//     void on_round_end(const RoundMetrics& m, const RoundTrace&) override {
//       if (m.evaluated()) std::cout << m.round << ": " << *m.train_loss;
//     }
//   };
//   Printer printer;
//   trainer.add_observer(printer);
//
// CompositeObserver stacks metrics, tracing, live printing, and
// checkpointing hooks behind a single registration.

#pragma once

#include <span>
#include <string>

#include "comm/fault.h"
#include "core/trainer.h"
#include "obs/trace.h"
#include "sim/client.h"

namespace fed {

// Immutable run-level facts, delivered once at on_run_start.
struct RunInfo {
  std::string algorithm;           // "FedAvg" / "FedProx" / "FedDane"
  std::size_t rounds = 0;          // T (training rounds this run)
  std::size_t first_round = 0;     // warm-start offset
  std::size_t devices_per_round = 0;
  std::size_t num_clients = 0;
  std::size_t parameter_count = 0;
  std::size_t threads = 0;         // pool size actually used
  std::uint64_t seed = 0;
  // True when this run continues from an FPC1 checkpoint; first_round is
  // then the checkpointed round (the first executed round is + 1).
  bool resumed = false;
};

class TrainingObserver {
 public:
  virtual ~TrainingObserver() = default;

  // Once, before the round-0 evaluation.
  virtual void on_run_start(const RunInfo& info) { (void)info; }

  // Before each *training* round's local solves (not for the round-0
  // evaluation record). `selected` lists the sampled device ids.
  virtual void on_round_start(std::size_t round,
                              std::span<const std::size_t> selected) {
    (void)round;
    (void)selected;
  }

  // Once per channel incident (comm/fault.h) per training round, after
  // the parallel exchanges complete, in (selection order, attempt)
  // order — then any quorum drops and at most one round-degraded event.
  // Only emitted when a fault-injecting transport or degraded round
  // produced incidents; a healthy round emits none.
  virtual void on_fault(const FaultEvent& event) { (void)event; }

  // Once per accepted device update per training round, after the
  // parallel solves complete, in selection order (deterministic). A
  // device whose exchanges all failed, or whose update arrived past the
  // quorum cutoff, does not report here.
  virtual void on_client_result(std::size_t round, const ClientResult& result) {
    (void)round;
    (void)result;
  }

  // After aggregation updates the global parameters, before evaluation.
  // `weights` views the live parameter vector; observers must copy what
  // they keep and must not hold the span past the hook.
  virtual void on_aggregate(std::size_t round,
                            std::span<const double> weights) {
    (void)round;
    (void)weights;
  }

  // After each round's metrics are recorded — including the round-0
  // evaluation record, matching the old RoundCallback cadence.
  virtual void on_round_end(const RoundMetrics& metrics,
                            const RoundTrace& trace) {
    (void)metrics;
    (void)trace;
  }

  // Once, after the final round, before Trainer::run returns.
  virtual void on_run_end(const TrainHistory& history) { (void)history; }
};

// Fans every hook out to its children in registration order. Children
// must outlive the composite.
class CompositeObserver final : public TrainingObserver {
 public:
  void add(TrainingObserver& observer);
  std::size_t size() const { return children_.size(); }

  void on_run_start(const RunInfo& info) override;
  void on_round_start(std::size_t round,
                      std::span<const std::size_t> selected) override;
  void on_fault(const FaultEvent& event) override;
  void on_client_result(std::size_t round, const ClientResult& result) override;
  void on_aggregate(std::size_t round,
                    std::span<const double> weights) override;
  void on_round_end(const RoundMetrics& metrics,
                    const RoundTrace& trace) override;
  void on_run_end(const TrainHistory& history) override;

 private:
  std::vector<TrainingObserver*> children_;
};

// Collects every trace of a run; handy for tests and benchmarks.
class TraceCollector final : public TrainingObserver {
 public:
  void on_round_end(const RoundMetrics& metrics,
                    const RoundTrace& trace) override {
    (void)metrics;
    traces_.push_back(trace);
  }

  const std::vector<RoundTrace>& traces() const { return traces_; }
  void clear() { traces_.clear(); }

 private:
  std::vector<RoundTrace> traces_;
};

}  // namespace fed
