// Per-round phase timing: where a federated round's wall-clock time goes.
//
// The paper's systems-heterogeneity claims (Figs. 1, 5, 9) are about how
// rounds spend their time — stragglers, partial local work, per-device
// solve cost. A RoundTrace records the breakdown the Trainer measures for
// every round: device sampling, the per-client local solves (min/mean/max
// across contributors), aggregation, and global evaluation, plus the
// exact communication bytes the round's Transport reported for its
// broadcasts and updates (comm/transport.h). Traces are produced on the
// round thread only; wall times vary run to run but every structural
// field (counts, bytes) is deterministic in (seed, round).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/json.h"

namespace fed {

// Distribution of per-client local-solve wall times within one round.
struct SolveStats {
  std::size_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double mean_seconds = 0.0;
  double max_seconds = 0.0;

  static SolveStats from_samples(std::span<const double> seconds);
};

// Channel fault and recovery accounting for one round (comm/fault.h).
// All counts are zero on a faultless channel, where attempts == selected
// and up_deliveries == contributors — the pre-fault invariants.
struct CommFaultStats {
  std::size_t attempts = 0;       // transport exchange attempts
  std::size_t retries = 0;        // attempts beyond each device's first
  std::size_t drops = 0;          // attempts whose update was lost
  std::size_t corruptions = 0;    // attempts rejected as corrupt
  std::size_t timeouts = 0;       // attempts past the delivery deadline
  std::size_t duplicates = 0;     // accepted updates delivered twice
  std::size_t quorum_drops = 0;   // successes after the quorum cutoff
  std::size_t departs = 0;        // selected devices that left mid-round
  std::size_t failed_devices = 0; // selected devices with no accepted update
  std::size_t up_deliveries = 0;  // update deliveries charged to bytes_up
  double delay_ms = 0.0;          // injected latency + backoff, simulated
};

// One aggregator shard's share of a round (sim/sharded.h). Shard slices
// partition the selected devices, so across a round's shards the device,
// contributor, and byte columns sum to the round-level totals — an
// invariant tools/trace_lint enforces.
struct ShardStat {
  std::size_t shard = 0;          // shard index, dense from 0
  std::size_t devices = 0;        // selected devices owned by this shard
  std::size_t contributors = 0;   // accepted updates accumulated here
  std::uint64_t bytes_down = 0;   // broadcast bytes over owned devices
  std::uint64_t bytes_up = 0;     // update bytes over owned contributors
  std::uint64_t partial_bytes = 0;  // FPS1 partial-sum bytes shipped to root
};

// One durable checkpoint write (core/checkpoint.h), attached to the
// round whose boundary it captured. `written` is false on rounds where
// the cadence did not fire (the block is then omitted from the JSONL).
struct CheckpointStat {
  bool written = false;
  std::size_t round = 0;        // last completed round the file captures
  std::uint64_t bytes = 0;      // encoded FPC1 frame size
  std::size_t generations = 0;  // files retained after pruning
  std::size_t retain = 0;       // the configured retention bound
  double write_seconds = 0.0;   // encode + temp write + rename, wall time
};

struct RoundTrace {
  std::size_t round = 0;
  bool evaluated = false;        // eval_seconds covers a real evaluation
  std::size_t selected = 0;      // devices selected this round
  std::size_t contributors = 0;  // devices aggregated
  std::size_t stragglers = 0;    // stragglers among delivered updates
  CommFaultStats faults;         // channel fault/recovery accounting
  std::vector<ShardStat> shards; // per-shard slice of this round's work
  bool degraded = false;         // aggregation saw zero updates; w was kept

  // Open-world churn (sim/churn.h): the live population this round and
  // the arrivals/mid-round departures its schedule produced. In a closed
  // world active == the dataset's device count and the others stay 0.
  std::size_t active_devices = 0;
  std::size_t arrivals = 0;
  std::size_t departures = 0;

  CheckpointStat checkpoint;     // durable snapshot, when the cadence fired

  // Phase wall times, in seconds, measured on the round thread.
  double sampling_seconds = 0.0;    // device selection + budget assignment
  double correction_seconds = 0.0;  // FedDane gradient estimate (else 0)
  SolveStats solve;                 // per-client solve times (worker-local)
  double solve_wall_seconds = 0.0;  // the parallel_for, as the round saw it
  double aggregate_seconds = 0.0;   // contribution filtering + weighted sum
  double eval_seconds = 0.0;        // global eval (+ dissimilarity); 0 if skipped
  double round_seconds = 0.0;       // whole round, sampling through eval

  // Communication traffic, as measured by the round's Transport: exact
  // wire bytes (envelope + float64 payloads; support/serialize.h). A
  // dropped FedAvg straggler never reports back, so its upload is not
  // charged.
  std::uint64_t bytes_down = 0;  // broadcast bytes, over selected devices
  std::uint64_t bytes_up = 0;    // update bytes, over contributors only
};

// Compact JSON object for one trace (the JSONL sink writes one per line).
JsonValue trace_to_json(const RoundTrace& trace);

// Whole-run aggregate of traces, for stdout summaries and benchmarks.
struct TraceSummary {
  std::size_t rounds = 0;
  double total_seconds = 0.0;
  double sampling_seconds = 0.0;
  double correction_seconds = 0.0;
  double solve_wall_seconds = 0.0;
  double aggregate_seconds = 0.0;
  double eval_seconds = 0.0;
  std::uint64_t bytes_down = 0;
  std::uint64_t bytes_up = 0;
  std::size_t faults = 0;           // drops + corruptions + timeouts + dups
  std::size_t retries = 0;
  std::size_t degraded_rounds = 0;

  void accumulate(const RoundTrace& trace);
};

TraceSummary summarize(std::span<const RoundTrace> traces);

}  // namespace fed
