#include "obs/metrics.h"

#include <cmath>
#include <sstream>

#include "support/csv.h"

namespace fed {

namespace {

// CAS add/min/max for atomic<double> (fetch_add on floating atomics is
// C++20 but not universally lowered to something lock-free; the CAS loop
// is portable and contention here is a handful of threads).
void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(double scale, std::size_t num_buckets)
    : scale_(scale > 0.0 ? scale : 1e-6),
      num_buckets_(num_buckets ? num_buckets : 1),
      buckets_(new std::atomic<std::uint64_t>[num_buckets_]) {
  reset();
}

void Histogram::observe(double v) {
  std::size_t idx = 0;
  if (v > scale_) {
    const int exp = std::ilogb(v / scale_);
    idx = std::min<std::size_t>(static_cast<std::size_t>(std::max(exp, 0)),
                                num_buckets_ - 1);
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (prev == 0) {
    // First observation seeds min/max; racing observers converge via the
    // CAS loops below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count ? min_.load(std::memory_order_relaxed) : 0.0;
  s.max = s.count ? max_.load(std::memory_order_relaxed) : 0.0;
  s.buckets.resize(num_buckets_);
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double scale,
                                      std::size_t num_buckets) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(scale, num_buckets);
  return *slot;
}

JsonValue MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonObject counters;
  for (const auto& [name, c] : counters_) counters[name] = c->value();
  JsonObject gauges;
  for (const auto& [name, g] : gauges_) gauges[name] = g->value();
  JsonObject histograms;
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    JsonObject one;
    one["count"] = s.count;
    one["sum"] = s.sum;
    one["min"] = s.min;
    one["max"] = s.max;
    one["mean"] = s.mean();
    histograms[name] = std::move(one);
  }
  JsonObject out;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return JsonValue(std::move(out));
}

std::string MetricsRegistry::render() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TablePrinter table({"metric", "kind", "value"});
  for (const auto& [name, c] : counters_) {
    table.add_row({name, "counter", std::to_string(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    table.add_row({name, "gauge", TablePrinter::fmt(g->value(), 6)});
  }
  for (const auto& [name, h] : histograms_) {
    const auto s = h->snapshot();
    std::ostringstream cell;
    cell << "count " << s.count << ", mean " << TablePrinter::fmt(s.mean(), 6)
         << ", min " << TablePrinter::fmt(s.min, 6) << ", max "
         << TablePrinter::fmt(s.max, 6);
    table.add_row({name, "histogram", cell.str()});
  }
  return table.render();
}

MetricsObserver::MetricsObserver(MetricsRegistry& registry)
    : registry_(registry),
      rounds_(registry.counter("fed_rounds_total")),
      clients_(registry.counter("fed_clients_total")),
      stragglers_(registry.counter("fed_stragglers_total")),
      bytes_up_(registry.counter("fed_comm_bytes_up_total")),
      bytes_down_(registry.counter("fed_comm_bytes_down_total")),
      faults_(registry.counter("fed_comm_faults_total")),
      retries_(registry.counter("fed_comm_retries_total")),
      degraded_rounds_(registry.counter("fed_comm_rounds_degraded_total")),
      shard_merges_(registry.counter("fed_shard_merges_total")),
      shard_partial_bytes_(registry.counter("fed_shard_partial_bytes_total")),
      mu_(registry.gauge("fed_mu")),
      train_loss_(registry.gauge("fed_train_loss")),
      round_(registry.gauge("fed_round")),
      round_seconds_(registry.histogram("fed_round_seconds")),
      solve_seconds_(registry.histogram("fed_client_solve_seconds")) {}

void MetricsObserver::on_fault(const FaultEvent& event) {
  faults_.add();
  // Per-kind lookup takes the registry mutex, but on_fault runs on the
  // round thread only and faults are the exception, not the steady state.
  registry_
      .counter(std::string("fed_comm_faults_") + to_string(event.kind) +
               "_total")
      .add();
}

void MetricsObserver::on_client_result(std::size_t round,
                                       const ClientResult& result) {
  (void)round;
  clients_.add();
  if (result.straggler) stragglers_.add();
  solve_seconds_.observe(result.solve_seconds);
}

void MetricsObserver::on_round_end(const RoundMetrics& metrics,
                                   const RoundTrace& trace) {
  rounds_.add();
  bytes_up_.add(trace.bytes_up);
  bytes_down_.add(trace.bytes_down);
  retries_.add(trace.faults.retries);
  shard_merges_.add(trace.shards.size());
  for (const ShardStat& s : trace.shards) {
    shard_partial_bytes_.add(s.partial_bytes);
  }
  if (trace.degraded) degraded_rounds_.add();
  mu_.set(metrics.mu);
  round_.set(static_cast<double>(metrics.round));
  if (metrics.train_loss) train_loss_.set(*metrics.train_loss);
  round_seconds_.observe(trace.round_seconds);
}

void record_pool_stats(const ThreadPool& pool, MetricsRegistry& registry) {
  const auto stats = pool.worker_stats();
  double busy_total = 0.0;
  double wait_total = 0.0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const std::string prefix = "fed_pool_worker_" + std::to_string(i);
    registry.gauge(prefix + "_tasks")
        .set(static_cast<double>(stats[i].tasks_executed));
    registry.gauge(prefix + "_busy_seconds").set(stats[i].busy_seconds);
    registry.gauge(prefix + "_queue_wait_seconds")
        .set(stats[i].queue_wait_seconds);
    busy_total += stats[i].busy_seconds;
    wait_total += stats[i].queue_wait_seconds;
  }
  registry.gauge("fed_pool_busy_seconds").set(busy_total);
  registry.gauge("fed_pool_queue_wait_seconds").set(wait_total);
}

}  // namespace fed
