#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/csv.h"

namespace fed {

namespace {

// CAS add/min/max for atomic<double> (fetch_add on floating atomics is
// C++20 but not universally lowered to something lock-free; the CAS loop
// is portable and contention here is a handful of threads).
void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

MetricLabels canonical(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

std::string metric_selector(const std::string& name,
                            const MetricLabels& labels) {
  if (labels.empty()) return name;
  std::ostringstream out;
  out << name << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << k << "=\"" << v << '"';
  }
  out << '}';
  return out.str();
}

Histogram::Histogram(double scale, std::size_t num_buckets)
    : scale_(scale > 0.0 ? scale : 1e-6),
      num_buckets_(num_buckets ? num_buckets : 1),
      buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(num_buckets_)) {
  reset();
}

void Histogram::observe(double v) {
  std::size_t idx = 0;
  if (v > scale_) {
    const int exp = std::ilogb(v / scale_);
    idx = std::min<std::size_t>(static_cast<std::size_t>(std::max(exp, 0)),
                                num_buckets_ - 1);
  }
  // Bucket before everything else: snapshot() recounts from the buckets,
  // so an observation becomes visible (count + bucket together) at this
  // fetch_add, and sum/min/max catch up within this call.
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (prev == 0) {
    // First observation seeds min/max; racing observers converge via the
    // CAS loops below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.buckets.resize(num_buckets_);
  // One pass over the buckets defines the snapshot's count — never the
  // separately-raced count_ — so count == sum(buckets) holds by
  // construction even mid-observe.
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count ? min_.load(std::memory_order_relaxed) : 0.0;
  s.max = s.count ? max_.load(std::memory_order_relaxed) : 0.0;
  return s;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double Histogram::bucket_upper_edge(std::size_t i) const {
  if (i + 1 >= num_buckets_) return std::numeric_limits<double>::infinity();
  return scale_ * std::ldexp(1.0, static_cast<int>(i) + 1);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counter(name, {});
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  MetricLabels labels) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name][canonical(std::move(labels))];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauge(name, {});
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricLabels labels) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name][canonical(std::move(labels))];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double scale,
                                      std::size_t num_buckets) {
  return histogram(name, {}, scale, num_buckets);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      MetricLabels labels, double scale,
                                      std::size_t num_buckets) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name][canonical(std::move(labels))];
  if (!slot) slot = std::make_unique<Histogram>(scale, num_buckets);
  return *slot;
}

void MetricsRegistry::set_help(const std::string& name, std::string help) {
  MutexLock lock(mutex_);
  help_[name] = std::move(help);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, family] : counters_) {
    auto& samples = out.counters[name];
    for (const auto& [labels, c] : family) {
      samples.push_back({labels, c->value()});
    }
  }
  for (const auto& [name, family] : gauges_) {
    auto& samples = out.gauges[name];
    for (const auto& [labels, g] : family) {
      samples.push_back({labels, g->value()});
    }
  }
  for (const auto& [name, family] : histograms_) {
    auto& samples = out.histograms[name];
    for (const auto& [labels, h] : family) {
      MetricsSnapshot::HistogramSample sample;
      sample.labels = labels;
      sample.scale = h->scale();
      sample.upper_edges.resize(h->num_buckets());
      for (std::size_t i = 0; i < h->num_buckets(); ++i) {
        sample.upper_edges[i] = h->bucket_upper_edge(i);
      }
      sample.snapshot = h->snapshot();
      samples.push_back(std::move(sample));
    }
  }
  out.help = help_;
  return out;
}

JsonValue MetricsRegistry::to_json(bool include_buckets) const {
  const MetricsSnapshot snap = snapshot();
  JsonObject counters;
  for (const auto& [name, samples] : snap.counters) {
    for (const auto& s : samples) {
      counters[metric_selector(name, s.labels)] = s.value;
    }
  }
  JsonObject gauges;
  for (const auto& [name, samples] : snap.gauges) {
    for (const auto& s : samples) {
      gauges[metric_selector(name, s.labels)] = s.value;
    }
  }
  JsonObject histograms;
  for (const auto& [name, samples] : snap.histograms) {
    for (const auto& s : samples) {
      JsonObject one;
      one["count"] = s.snapshot.count;
      one["sum"] = s.snapshot.sum;
      one["min"] = s.snapshot.min;
      one["max"] = s.snapshot.max;
      one["mean"] = s.snapshot.mean();
      if (include_buckets) {
        JsonArray les;
        JsonArray counts;
        for (std::size_t i = 0; i < s.snapshot.buckets.size(); ++i) {
          // JSON has no Infinity literal; the +Inf edge serializes as the
          // Prometheus spelling.
          if (std::isinf(s.upper_edges[i])) {
            les.push_back(std::string("+Inf"));
          } else {
            les.push_back(s.upper_edges[i]);
          }
          counts.push_back(s.snapshot.buckets[i]);
        }
        one["le"] = std::move(les);
        one["buckets"] = std::move(counts);
      }
      histograms[metric_selector(name, s.labels)] = std::move(one);
    }
  }
  JsonObject out;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return JsonValue(std::move(out));
}

std::string MetricsRegistry::render() const {
  const MetricsSnapshot snap = snapshot();
  TablePrinter table({"metric", "kind", "value"});
  for (const auto& [name, samples] : snap.counters) {
    for (const auto& s : samples) {
      table.add_row({metric_selector(name, s.labels), "counter",
                     std::to_string(s.value)});
    }
  }
  for (const auto& [name, samples] : snap.gauges) {
    for (const auto& s : samples) {
      table.add_row({metric_selector(name, s.labels), "gauge",
                     TablePrinter::fmt(s.value, 6)});
    }
  }
  for (const auto& [name, samples] : snap.histograms) {
    for (const auto& s : samples) {
      std::ostringstream cell;
      cell << "count " << s.snapshot.count << ", mean "
           << TablePrinter::fmt(s.snapshot.mean(), 6) << ", min "
           << TablePrinter::fmt(s.snapshot.min, 6) << ", max "
           << TablePrinter::fmt(s.snapshot.max, 6);
      table.add_row({metric_selector(name, s.labels), "histogram", cell.str()});
    }
  }
  return table.render();
}

MetricsObserver::MetricsObserver(MetricsRegistry& registry)
    : rounds_(registry.counter("fed_rounds_total")),
      clients_(registry.counter("fed_clients_total")),
      stragglers_(registry.counter("fed_stragglers_total")),
      bytes_up_(registry.counter("fed_comm_bytes_up_total")),
      bytes_down_(registry.counter("fed_comm_bytes_down_total")),
      retries_(registry.counter("fed_comm_retries_total")),
      degraded_rounds_(registry.counter("fed_comm_rounds_degraded_total")),
      shard_merges_(registry.counter("fed_shard_merges_total")),
      shard_partial_bytes_(registry.counter("fed_shard_partial_bytes_total")),
      churn_arrivals_(registry.counter("fed_churn_arrivals_total")),
      churn_departures_(registry.counter("fed_churn_departures_total")),
      checkpoint_writes_(registry.counter("fed_checkpoint_writes_total")),
      checkpoint_bytes_(registry.counter("fed_checkpoint_bytes_total")),
      mu_(registry.gauge("fed_mu")),
      train_loss_(registry.gauge("fed_train_loss")),
      round_(registry.gauge("fed_round")),
      active_devices_(registry.gauge("fed_active_devices")),
      checkpoint_last_round_(registry.gauge("fed_checkpoint_last_round")),
      checkpoint_generations_(registry.gauge("fed_checkpoint_generations")),
      round_seconds_(registry.histogram("fed_round_seconds")),
      solve_seconds_(registry.histogram("fed_client_solve_seconds")) {
  // Pre-register every fault kind so on_fault is a lock-free add and the
  // exposition shows explicit zeros for kinds that never fired.
  for (std::size_t k = 0; k < kFaultKinds; ++k) {
    const auto kind = static_cast<FaultEvent::Kind>(k);
    faults_by_kind_[k] =
        &registry.counter("fed_comm_faults_total", {{"kind", to_string(kind)}});
  }
  registry.set_help("fed_rounds_total", "Completed federated rounds.");
  registry.set_help("fed_clients_total",
                    "Client updates accepted into aggregation.");
  registry.set_help("fed_stragglers_total",
                    "Accepted updates that ran fewer than the full epochs.");
  registry.set_help("fed_comm_bytes_up_total",
                    "Exact wire bytes delivered device -> server.");
  registry.set_help("fed_comm_bytes_down_total",
                    "Exact wire bytes sent server -> device.");
  registry.set_help("fed_comm_faults_total",
                    "Channel incidents observed by the server, by kind.");
  registry.set_help("fed_comm_retries_total",
                    "Exchange attempts beyond each device's first.");
  registry.set_help("fed_comm_rounds_degraded_total",
                    "Rounds that aggregated zero updates and kept w.");
  registry.set_help("fed_shard_merges_total",
                    "Shard partials merged at the aggregation root.");
  registry.set_help("fed_shard_partial_bytes_total",
                    "FPS1 wire bytes moved shard -> root.");
  registry.set_help("fed_churn_arrivals_total",
                    "Devices that joined the open-world federation.");
  registry.set_help("fed_churn_departures_total",
                    "Devices that left the open-world federation.");
  registry.set_help("fed_checkpoint_writes_total",
                    "Durable FPC1 checkpoints written.");
  registry.set_help("fed_checkpoint_bytes_total",
                    "Encoded FPC1 bytes made durable.");
  registry.set_help("fed_active_devices",
                    "Live device population this round.");
  registry.set_help("fed_checkpoint_last_round",
                    "Round captured by the newest checkpoint.");
  registry.set_help("fed_checkpoint_generations",
                    "Checkpoint files currently retained on disk.");
  registry.set_help("fed_mu", "Active FedProx proximal coefficient.");
  registry.set_help("fed_train_loss", "Last evaluated global training loss.");
  registry.set_help("fed_round", "Most recently completed round index.");
  registry.set_help("fed_round_seconds", "Wall seconds per federated round.");
  registry.set_help("fed_client_solve_seconds",
                    "Wall seconds per client local solve.");
}

void MetricsObserver::on_fault(const FaultEvent& event) {
  // Buffered, not committed: a round the server never finishes must not
  // leak partial counts into the registry (see the class comment).
  const auto k = static_cast<std::size_t>(event.kind);
  if (k < kFaultKinds) ++pending_.faults[k];
}

void MetricsObserver::on_client_result(std::size_t round,
                                       const ClientResult& result) {
  (void)round;
  ++pending_.clients;
  if (result.straggler) ++pending_.stragglers;
  pending_.solve_seconds.push_back(result.solve_seconds);
}

void MetricsObserver::on_round_end(const RoundMetrics& metrics,
                                   const RoundTrace& trace) {
  // Commit the round's buffered observations together with its
  // trace-derived counters — one atomic-enough unit per completed round.
  for (std::size_t k = 0; k < kFaultKinds; ++k) {
    if (pending_.faults[k]) faults_by_kind_[k]->add(pending_.faults[k]);
  }
  clients_.add(pending_.clients);
  stragglers_.add(pending_.stragglers);
  for (double s : pending_.solve_seconds) solve_seconds_.observe(s);
  pending_ = PendingRound{};

  rounds_.add();
  bytes_up_.add(trace.bytes_up);
  bytes_down_.add(trace.bytes_down);
  retries_.add(trace.faults.retries);
  shard_merges_.add(trace.shards.size());
  for (const ShardStat& s : trace.shards) {
    shard_partial_bytes_.add(s.partial_bytes);
  }
  if (trace.degraded) degraded_rounds_.add();
  churn_arrivals_.add(trace.arrivals);
  churn_departures_.add(trace.departures);
  if (trace.checkpoint.written) {
    checkpoint_writes_.add();
    checkpoint_bytes_.add(trace.checkpoint.bytes);
    checkpoint_last_round_.set(static_cast<double>(trace.checkpoint.round));
    checkpoint_generations_.set(
        static_cast<double>(trace.checkpoint.generations));
  }
  mu_.set(metrics.mu);
  round_.set(static_cast<double>(metrics.round));
  active_devices_.set(static_cast<double>(trace.active_devices));
  if (metrics.train_loss) train_loss_.set(*metrics.train_loss);
  round_seconds_.observe(trace.round_seconds);
}

void record_pool_stats(const ThreadPool& pool, MetricsRegistry& registry) {
  registry.set_help("fed_pool_worker_tasks",
                    "Tasks executed per pool worker.");
  registry.set_help("fed_pool_worker_busy_seconds",
                    "Seconds each pool worker spent running tasks.");
  registry.set_help("fed_pool_worker_queue_wait_seconds",
                    "Seconds each worker's tasks waited in queue.");
  const auto stats = pool.worker_stats();
  double busy_total = 0.0;
  double wait_total = 0.0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const MetricLabels labels{{"worker", std::to_string(i)}};
    registry.gauge("fed_pool_worker_tasks", labels)
        .set(static_cast<double>(stats[i].tasks_executed));
    registry.gauge("fed_pool_worker_busy_seconds", labels)
        .set(stats[i].busy_seconds);
    registry.gauge("fed_pool_worker_queue_wait_seconds", labels)
        .set(stats[i].queue_wait_seconds);
    busy_total += stats[i].busy_seconds;
    wait_total += stats[i].queue_wait_seconds;
  }
  registry.gauge("fed_pool_busy_seconds").set(busy_total);
  registry.gauge("fed_pool_queue_wait_seconds").set(wait_total);
}

}  // namespace fed
