#include "obs/chrome_trace.h"

namespace fed {

namespace {

constexpr int kPid = 1;

JsonObject metadata_event(const char* name, std::uint32_t tid,
                          const std::string& value) {
  JsonObject args;
  args["name"] = value;
  JsonObject event;
  event["name"] = name;
  event["ph"] = "M";
  event["pid"] = kPid;
  event["tid"] = static_cast<std::size_t>(tid);
  event["args"] = std::move(args);
  return event;
}

const char* phase_of(ProfileEvent::Type type) {
  switch (type) {
    case ProfileEvent::Type::kComplete: return "X";
    case ProfileEvent::Type::kAsyncBegin: return "b";
    case ProfileEvent::Type::kAsyncEnd: return "e";
    case ProfileEvent::Type::kFlowStart: return "s";
    case ProfileEvent::Type::kFlowEnd: return "f";
  }
  return "X";
}

}  // namespace

JsonValue chrome_trace_json(const Profiler::Snapshot& snapshot) {
  JsonArray events;
  events.reserve(snapshot.events.size() + snapshot.threads.size() + 1);

  events.emplace_back(metadata_event("process_name", 0, "fedprox"));
  for (const auto& [tid, name] : snapshot.threads) {
    events.emplace_back(metadata_event("thread_name", tid, name));
  }

  for (const ProfileEvent& e : snapshot.events) {
    JsonObject event;
    event["name"] = e.name ? e.name : "?";
    event["cat"] = e.category ? e.category : "span";
    event["ph"] = phase_of(e.type);
    event["ts"] = static_cast<double>(e.start_us);
    event["pid"] = kPid;
    event["tid"] = static_cast<std::size_t>(e.tid);
    if (e.type == ProfileEvent::Type::kComplete) {
      event["dur"] = static_cast<double>(e.dur_us);
    } else {
      event["id"] = static_cast<std::size_t>(e.id);
    }
    if (e.type == ProfileEvent::Type::kFlowEnd) {
      // Bind the arrowhead to the *enclosing* slice (the span that was
      // open at this timestamp), not the next one to start.
      event["bp"] = "e";
    }
    if (e.num_args > 0) {
      JsonObject args;
      for (std::uint8_t i = 0; i < e.num_args; ++i) {
        args[e.arg_names[i]] = static_cast<double>(e.arg_values[i]);
      }
      event["args"] = std::move(args);
    }
    events.emplace_back(std::move(event));
  }

  JsonObject trace;
  trace["traceEvents"] = std::move(events);
  trace["displayTimeUnit"] = "ms";
  return JsonValue(std::move(trace));
}

void write_chrome_trace(const std::string& path) {
  save_json_file(path, chrome_trace_json(Profiler::instance().drain()));
}

}  // namespace fed
