// Lock-cheap metrics registry: named counters, gauges, and histograms
// that can be bumped concurrently from ThreadPool workers. The registry
// mutex guards only (name, labels) -> instrument lookup (registration);
// every hot update is a relaxed atomic on a stable instrument address,
// so cache a reference once and write freely from any thread:
//
//   Counter& solves = registry.counter("fed_client_solves_total");
//   Counter& drops = registry.counter("fed_comm_faults_total",
//                                     {{"kind", "drop"}});
//   pool->parallel_for(n, [&](std::size_t i) { ...; solves.add(); });
//
// Instruments with the same name form a *family* distinguished by label
// sets (the Prometheus data model); obs/exposition.h renders a registry
// as Prometheus text format 0.0.4 for external scrapers.
//
// MetricsObserver feeds the registry from the Trainer's observer hooks
// (rounds, client solves, stragglers, bytes moved, phase durations).

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "comm/fault.h"
#include "obs/observer.h"
#include "support/json.h"
#include "support/thread_annotations.h"

namespace fed {

// One instrument's label set: (key, value) pairs. The registry sorts
// them by key on first lookup, so {{"b","2"},{"a","1"}} and
// {{"a","1"},{"b","2"}} name the same instrument. Keys must be unique
// within a set and valid Prometheus label names ([a-zA-Z_][a-zA-Z0-9_]*);
// values may contain anything — the exposition writer escapes them.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Exponentially-bucketed distribution: bucket 0 covers everything up to
// 2 * scale, bucket i >= 1 covers [scale * 2^i, scale * 2^(i+1)), and
// the last bucket absorbs every overflow. Sum/min/max are maintained
// with CAS loops so observe() stays lock-free on every platform.
//
// Ordering contract (everything is memory_order_relaxed): observe()
// bumps the bucket *first*, then count/sum/min/max, and snapshot()
// derives its count from a single pass over the buckets — so a snapshot
// always satisfies count == sum(buckets) and per-bucket counts are
// monotone across snapshots, even while other threads observe. The sum/
// min/max fields are updated by separate atomics and may trail or lead
// the bucket pass by in-flight observations; they converge once writers
// quiesce. reset() is NOT linearizable against concurrent observe() —
// racing the two can strand an observation in sum but not the buckets
// (or vice versa) — so reset only at quiescent points, never mid-round.
class Histogram {
 public:
  explicit Histogram(double scale = 1e-6, std::size_t num_buckets = 32);

  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;  // always equals the sum of `buckets`
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    std::vector<std::uint64_t> buckets;

    double mean() const {
      return count ? sum / static_cast<double>(count) : 0.0;
    }
  };
  Snapshot snapshot() const;
  void reset();

  double scale() const { return scale_; }
  std::size_t num_buckets() const { return num_buckets_; }
  // Inclusive upper edge of bucket `i` (the Prometheus `le` bound):
  // scale * 2^(i+1). The last bucket's edge is +infinity. Values landing
  // exactly on an edge are counted in the *next* bucket — a one-ulp
  // boundary skew the exposition accepts in exchange for lock-free
  // observes.
  double bucket_upper_edge(std::size_t i) const;

 private:
  double scale_;
  std::size_t num_buckets_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};  // min/max seeding only; snapshots
                                         // recount from the buckets
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// A point-in-time copy of every instrument, grouped by family name with
// one sample per label set (label sets sorted, families sorted by name).
// This is what to_json/render and the exposition writer consume, so all
// three agree on one consistent read of the registry.
struct MetricsSnapshot {
  struct CounterSample {
    MetricLabels labels;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    MetricLabels labels;
    double value = 0.0;
  };
  struct HistogramSample {
    MetricLabels labels;
    double scale = 0.0;
    std::vector<double> upper_edges;  // per bucket; last is +inf
    Histogram::Snapshot snapshot;
  };
  std::map<std::string, std::vector<CounterSample>> counters;
  std::map<std::string, std::vector<GaugeSample>> gauges;
  std::map<std::string, std::vector<HistogramSample>> histograms;
  std::map<std::string, std::string> help;  // family name -> HELP text
};

class MetricsRegistry {
 public:
  // Find-or-create by (name, labels). Returned references are stable for
  // the registry's lifetime; only this lookup takes the mutex. The
  // labels overloads address one member of a labeled family; the
  // label-free overloads are the family's single unlabeled member.
  Counter& counter(const std::string& name) FED_EXCLUDES(mutex_);
  Counter& counter(const std::string& name, MetricLabels labels)
      FED_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) FED_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name, MetricLabels labels)
      FED_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name, double scale = 1e-6,
                       std::size_t num_buckets = 32) FED_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name, MetricLabels labels,
                       double scale = 1e-6, std::size_t num_buckets = 32)
      FED_EXCLUDES(mutex_);
  // Members of one histogram family should share scale/num_buckets; the
  // shape arguments only apply when the instrument is first created.

  // HELP text for a family, rendered by the exposition writer. Idempotent.
  void set_help(const std::string& name, std::string help)
      FED_EXCLUDES(mutex_);

  MetricsSnapshot snapshot() const FED_EXCLUDES(mutex_);

  // Snapshot of every instrument: {"counters":{...},"gauges":{...},
  // "histograms":{name:{count,sum,min,max,mean}}}. Labeled instruments
  // key as name{k="v",...}. With include_buckets, each histogram also
  // carries its "buckets" counts and "le" upper edges (off by default to
  // keep the dump compact).
  JsonValue to_json(bool include_buckets = false) const;
  // Aligned one-line-per-instrument table for stdout.
  std::string render() const;

 private:
  template <typename T>
  using Family = std::map<MetricLabels, std::unique_ptr<T>>;

  // mutex_ guards the family maps and help_ — i.e. registry *structure*
  // (find-or-create, snapshot iteration). It never guards instrument
  // *values*: those live behind stable unique_ptr addresses and update
  // via relaxed atomics, so cached Counter&/Gauge&/Histogram& references
  // stay valid and writable without the lock (the stable-address
  // contract in the file comment).
  mutable Mutex mutex_;
  std::map<std::string, Family<Counter>> counters_ FED_GUARDED_BY(mutex_);
  std::map<std::string, Family<Gauge>> gauges_ FED_GUARDED_BY(mutex_);
  std::map<std::string, Family<Histogram>> histograms_ FED_GUARDED_BY(mutex_);
  std::map<std::string, std::string> help_ FED_GUARDED_BY(mutex_);
};

// name{k="v",...} selector form for tables/JSON keys ("" labels -> name).
std::string metric_selector(const std::string& name,
                            const MetricLabels& labels);

// Feeds a MetricsRegistry from the observer hooks. Instrument names:
//   counters   fed_rounds_total, fed_clients_total, fed_stragglers_total,
//              fed_comm_bytes_up_total, fed_comm_bytes_down_total,
//              fed_comm_faults_total{kind=...} (one member per
//              FaultEvent kind, pre-registered so scrapers see zeros),
//              fed_comm_retries_total, fed_comm_rounds_degraded_total,
//              fed_shard_merges_total (root merges of shard partials),
//              fed_shard_partial_bytes_total (FPS1 shard -> root bytes),
//              fed_churn_arrivals_total, fed_churn_departures_total,
//              fed_checkpoint_writes_total, fed_checkpoint_bytes_total
//   gauges     fed_mu, fed_train_loss (last evaluated), fed_round,
//              fed_active_devices, fed_checkpoint_last_round,
//              fed_checkpoint_generations
//   histograms fed_round_seconds, fed_client_solve_seconds
//
// Commit discipline: the mid-round hooks (on_fault, on_client_result)
// only buffer into a per-round pending block; everything is committed to
// the registry at on_round_end, atomically with the round's trace-fed
// counters. A round the server never finishes — a crash mid-aggregation
// (core/checkpoint.h) — therefore commits nothing, so exposition
// counters always reconcile exactly with the summed per-round trace
// lines, across crashes and resumes (trace_lint's cross-check relies on
// this).
class MetricsObserver final : public TrainingObserver {
 public:
  explicit MetricsObserver(MetricsRegistry& registry);

  void on_fault(const FaultEvent& event) override;
  void on_client_result(std::size_t round, const ClientResult& result) override;
  void on_round_end(const RoundMetrics& metrics,
                    const RoundTrace& trace) override;

 private:
  static constexpr std::size_t kFaultKinds =
      static_cast<std::size_t>(FaultEvent::Kind::kRoundDegraded) + 1;

  Counter& rounds_;
  Counter& clients_;
  Counter& stragglers_;
  Counter& bytes_up_;
  Counter& bytes_down_;
  Counter& retries_;
  Counter& degraded_rounds_;
  Counter& shard_merges_;
  Counter& shard_partial_bytes_;
  Counter& churn_arrivals_;
  Counter& churn_departures_;
  Counter& checkpoint_writes_;
  Counter& checkpoint_bytes_;
  std::array<Counter*, kFaultKinds> faults_by_kind_;  // indexed by Kind
  Gauge& mu_;
  Gauge& train_loss_;
  Gauge& round_;
  Gauge& active_devices_;
  Gauge& checkpoint_last_round_;
  Gauge& checkpoint_generations_;
  Histogram& round_seconds_;
  Histogram& solve_seconds_;

  // The current round's uncommitted observations (round thread only).
  struct PendingRound {
    std::array<std::uint64_t, kFaultKinds> faults{};
    std::uint64_t clients = 0;
    std::uint64_t stragglers = 0;
    std::vector<double> solve_seconds;
  };
  PendingRound pending_;
};

// Snapshots a pool's per-worker counters into utilization gauges:
//   fed_pool_worker_tasks{worker="i"} / fed_pool_worker_busy_seconds{...}
//   / fed_pool_worker_queue_wait_seconds{...}
// plus fed_pool_busy_seconds and fed_pool_queue_wait_seconds totals.
// Busy/wait accumulate only while the span profiler is enabled
// (support/threadpool.h); call after the instrumented run.
void record_pool_stats(const ThreadPool& pool, MetricsRegistry& registry);

}  // namespace fed
