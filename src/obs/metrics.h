// Lock-cheap metrics registry: named counters, gauges, and histograms
// that can be bumped concurrently from ThreadPool workers. The registry
// mutex guards only name -> instrument lookup (registration); every hot
// update is a relaxed atomic on a stable instrument address, so cache a
// reference once and write freely from any thread:
//
//   Counter& solves = registry.counter("fed_client_solves_total");
//   pool->parallel_for(n, [&](std::size_t i) { ...; solves.add(); });
//
// MetricsObserver feeds the registry from the Trainer's observer hooks
// (rounds, client solves, stragglers, bytes moved, phase durations).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "support/json.h"

namespace fed {

// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Exponentially-bucketed distribution: bucket i covers
// [scale * 2^i, scale * 2^(i+1)); under/overflows clamp to the edge
// buckets. Sum/min/max are maintained with CAS loops so observe() stays
// lock-free on every platform.
class Histogram {
 public:
  explicit Histogram(double scale = 1e-6, std::size_t num_buckets = 32);

  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    std::vector<std::uint64_t> buckets;

    double mean() const {
      return count ? sum / static_cast<double>(count) : 0.0;
    }
  };
  Snapshot snapshot() const;
  void reset();

  double scale() const { return scale_; }
  std::size_t num_buckets() const { return num_buckets_; }

 private:
  double scale_;
  std::size_t num_buckets_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

class MetricsRegistry {
 public:
  // Find-or-create by name. Returned references are stable for the
  // registry's lifetime; only this lookup takes the mutex.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double scale = 1e-6,
                       std::size_t num_buckets = 32);

  // Snapshot of every instrument: {"counters":{...},"gauges":{...},
  // "histograms":{name:{count,sum,min,max,mean}}}. Bucket arrays are
  // omitted to keep the dump compact.
  JsonValue to_json() const;
  // Aligned one-line-per-instrument table for stdout.
  std::string render() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Feeds a MetricsRegistry from the observer hooks. Instrument names:
//   counters   fed_rounds_total, fed_clients_total, fed_stragglers_total,
//              fed_comm_bytes_up_total, fed_comm_bytes_down_total,
//              fed_comm_faults_total (+ fed_comm_faults_<kind>_total per
//              FaultEvent kind seen), fed_comm_retries_total,
//              fed_comm_rounds_degraded_total,
//              fed_shard_merges_total (root merges of shard partials),
//              fed_shard_partial_bytes_total (FPS1 shard -> root bytes)
//   gauges     fed_mu, fed_train_loss (last evaluated), fed_round
//   histograms fed_round_seconds, fed_client_solve_seconds
class MetricsObserver final : public TrainingObserver {
 public:
  explicit MetricsObserver(MetricsRegistry& registry);

  void on_fault(const FaultEvent& event) override;
  void on_client_result(std::size_t round, const ClientResult& result) override;
  void on_round_end(const RoundMetrics& metrics,
                    const RoundTrace& trace) override;

 private:
  MetricsRegistry& registry_;  // per-kind fault counters, created on demand
  Counter& rounds_;
  Counter& clients_;
  Counter& stragglers_;
  Counter& bytes_up_;
  Counter& bytes_down_;
  Counter& faults_;
  Counter& retries_;
  Counter& degraded_rounds_;
  Counter& shard_merges_;
  Counter& shard_partial_bytes_;
  Gauge& mu_;
  Gauge& train_loss_;
  Gauge& round_;
  Histogram& round_seconds_;
  Histogram& solve_seconds_;
};

// Snapshots a pool's per-worker counters into utilization gauges:
//   fed_pool_worker_<i>_tasks / _busy_seconds / _queue_wait_seconds
// plus fed_pool_busy_seconds and fed_pool_queue_wait_seconds totals.
// Busy/wait accumulate only while the span profiler is enabled
// (support/threadpool.h); call after the instrumented run.
void record_pool_stats(const ThreadPool& pool, MetricsRegistry& registry);

}  // namespace fed
