#include "obs/exposition.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace fed {

namespace {

void append_labels(std::string& out, const MetricLabels& labels,
                   const char* extra_key = nullptr,
                   const std::string& extra_value = std::string()) {
  if (labels.empty() && !extra_key) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (extra_key) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;  // le bounds come from the formatter, never escaped
    out += '"';
  }
  out += '}';
}

void append_help_and_type(std::string& out, const std::string& name,
                          const MetricsSnapshot& snap, const char* type) {
  const auto help = snap.help.find(name);
  if (help != snap.help.end() && !help->second.empty()) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += escape_help_text(help->second);
    out += '\n';
  }
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_help_text(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string format_exposition_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  // Shortest %g that round-trips exactly; tries 1..17 significant digits
  // so 0.5 prints "0.5", not "0.50000000000000000".
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string text_exposition(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, samples] : snapshot.counters) {
    append_help_and_type(out, name, snapshot, "counter");
    for (const auto& s : samples) {
      out += name;
      append_labels(out, s.labels);
      out += ' ';
      out += std::to_string(s.value);
      out += '\n';
    }
  }
  for (const auto& [name, samples] : snapshot.gauges) {
    append_help_and_type(out, name, snapshot, "gauge");
    for (const auto& s : samples) {
      out += name;
      append_labels(out, s.labels);
      out += ' ';
      out += format_exposition_number(s.value);
      out += '\n';
    }
  }
  for (const auto& [name, samples] : snapshot.histograms) {
    append_help_and_type(out, name, snapshot, "histogram");
    for (const auto& s : samples) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < s.snapshot.buckets.size(); ++i) {
        cumulative += s.snapshot.buckets[i];
        out += name;
        out += "_bucket";
        append_labels(out, s.labels, "le",
                      format_exposition_number(s.upper_edges[i]));
        out += ' ';
        out += std::to_string(cumulative);
        out += '\n';
      }
      out += name;
      out += "_sum";
      append_labels(out, s.labels);
      out += ' ';
      out += format_exposition_number(s.snapshot.sum);
      out += '\n';
      out += name;
      out += "_count";
      append_labels(out, s.labels);
      out += ' ';
      out += std::to_string(s.snapshot.count);
      out += '\n';
    }
  }
  return out;
}

std::string text_exposition(const MetricsRegistry& registry) {
  return text_exposition(registry.snapshot());
}

namespace {

// Inverse of append_labels/escape_label_value for one `{...}` selector.
// Returns false on any malformed syntax (caller skips the line).
bool parse_label_set(const std::string& text, MetricLabels& out) {
  std::size_t i = 0;
  while (i < text.size()) {
    const auto eq = text.find('=', i);
    if (eq == std::string::npos || eq + 1 >= text.size() ||
        text[eq + 1] != '"') {
      return false;
    }
    std::string key = text.substr(i, eq - i);
    std::string value;
    std::size_t j = eq + 2;
    for (; j < text.size() && text[j] != '"'; ++j) {
      char c = text[j];
      if (c == '\\' && j + 1 < text.size()) {
        ++j;
        c = text[j] == 'n' ? '\n' : text[j];
      }
      value.push_back(c);
    }
    if (j >= text.size()) return false;  // unterminated value
    out.emplace_back(std::move(key), std::move(value));
    i = j + 1;
    if (i < text.size()) {
      if (text[i] != ',') return false;
      ++i;
    }
  }
  return true;
}

}  // namespace

std::size_t seed_counters_from_exposition(MetricsRegistry& registry,
                                          const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;  // no prior exposition — nothing to carry over
  std::set<std::string> counter_families;
  std::size_t seeded = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only `# TYPE <name> counter` matters; HELP and comments skip.
      std::istringstream meta(line);
      std::string hash, kind, name, type;
      if (meta >> hash >> kind >> name >> type && kind == "TYPE" &&
          type == "counter") {
        counter_families.insert(name);
      }
      continue;
    }
    const auto space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) continue;
    std::string selector = line.substr(0, space);
    const std::string value_text = line.substr(space + 1);
    MetricLabels labels;
    const auto brace = selector.find('{');
    if (brace != std::string::npos) {
      if (selector.back() != '}') continue;
      if (!parse_label_set(
              selector.substr(brace + 1, selector.size() - brace - 2),
              labels)) {
        continue;
      }
      selector.resize(brace);
    }
    if (!counter_families.count(selector)) continue;
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(value_text.c_str(), &end, 10);
    if (errno != 0 || end == value_text.c_str() || *end != '\0') continue;
    registry.counter(selector, std::move(labels))
        .add(static_cast<std::uint64_t>(value));
    ++seeded;
  }
  return seeded;
}

void write_text_exposition(const std::string& path,
                           const MetricsRegistry& registry) {
  const std::string tmp = path + ".tmp";
  {
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);  // open() reports
    }
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("exposition: cannot open " + tmp);
    }
    out << text_exposition(registry);
    if (!out) {
      throw std::runtime_error("exposition: write failed for " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("exposition: rename " + tmp + " -> " + path +
                             " failed: " + ec.message());
  }
}

MetricsExporter::MetricsExporter(MetricsRegistry& registry, std::string path,
                                 std::size_t every)
    : registry_(registry),
      path_(std::move(path)),
      every_(every ? every : 1),
      worker_([this] { worker_loop(); }) {}

MetricsExporter::~MetricsExporter() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void MetricsExporter::worker_loop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!publish_requested_ && !stop_) cv_.wait(mu_);
      // Drain the pending request even when stopping, so a request made
      // just before destruction still lands on disk.
      if (!publish_requested_) return;
      publish_requested_ = false;
      busy_ = true;
    }
    std::exception_ptr error;
    try {
      write_text_exposition(path_, registry_);
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(mu_);
      busy_ = false;
      if (error) {
        if (!error_) error_ = error;
      } else {
        writes_.fetch_add(1, std::memory_order_release);
      }
    }
    cv_.notify_all();
  }
}

void MetricsExporter::request_publish() {
  {
    MutexLock lock(mu_);
    publish_requested_ = true;
  }
  cv_.notify_all();
}

void MetricsExporter::flush() {
  MutexLock lock(mu_);
  while (publish_requested_ || busy_) cv_.wait(mu_);
  if (error_) {
    const std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void MetricsExporter::on_round_end(const RoundMetrics& metrics,
                                   const RoundTrace& trace) {
  (void)metrics;
  (void)trace;
  if (++rounds_seen_ % every_ != 0) return;
  request_publish();
}

void MetricsExporter::on_run_end(const TrainHistory& history) {
  (void)history;
  request_publish();
  flush();
}

}  // namespace fed
