// Cross-boundary trace correlation for the federation exchange.
//
// A TraceContext names the distributed operation a message belongs to:
// `trace_id` identifies the server round, `span_id` the sender-side span
// that produced the message (the parent of whatever work the receiver
// does with it). The round driver mints one context per training round,
// stamps it into every ModelBroadcast, and the FPB1/FPU1/FPS1 codecs
// carry it across the wire — so when aggregator shards move to separate
// processes, a client solve or shard merge recorded *there* still links
// back to the round recorded *here*.
//
// Everything is derived deterministically from (seed, round) by
// splitmix64-style mixing: no global counters, no randomness, identical
// across reruns and thread counts. The same derivations key the Chrome
// flow events ("s"/"f" phases, obs/chrome_trace.h) that draw the arrows
// server round -> per-device exchange -> shard partial -> root merge, so
// a wire-captured trace_id and a profile-captured flow id always agree.
//
// Contexts are stamped unconditionally (wire size must not depend on
// whether profiling is on); only the flow *events* are gated on
// Profiler::is_enabled(). A zero-valued context means "untraced" — the
// codecs round-trip it like any other value.

#pragma once

#include <cstddef>
#include <cstdint>

namespace fed {

struct TraceContext {
  std::uint64_t trace_id = 0;  // the server round this message belongs to
  std::uint64_t span_id = 0;   // sender-side parent span

  bool traced() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

// splitmix64 finalizer: a bijective avalanche over u64.
inline std::uint64_t trace_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The per-message span kinds derived beneath a round's root span. Values
// are part of the id derivation — append only.
enum class TraceSpanKind : std::uint64_t {
  kRound = 0,         // the root span: one per training round
  kExchange = 1,      // per-device broadcast/solve/collect (index = device)
  kClientSolve = 2,   // device-side local solve (index = device)
  kShardPartial = 3,  // one shard's FPS1 partial uplink (index = shard)
  kRootMerge = 4,     // the root's merge of all partials (index = 0)
  kUpdateFlow = 5,    // flow id: device update -> aggregation (index = device)
};

// Child span / flow id under `trace_id`. Nonzero for any nonzero
// trace_id (trace_mix is bijective and the kind tag keeps families
// disjoint); distinct (kind, index) pairs collide only with ~2^-64
// probability.
inline std::uint64_t derive_trace_span(std::uint64_t trace_id,
                                       TraceSpanKind kind, std::size_t index) {
  return trace_mix(trace_id ^
                   trace_mix((static_cast<std::uint64_t>(kind) << 48) ^
                             static_cast<std::uint64_t>(index)));
}

// Root context for training round `round` (1-based) of a run seeded with
// `seed`. trace_id is never 0, so traced() holds for every real round.
inline TraceContext make_round_trace_context(std::uint64_t seed,
                                             std::size_t round) {
  const std::uint64_t salt = 0x7472616365ULL;  // "trace"
  std::uint64_t id =
      trace_mix(seed ^ trace_mix(static_cast<std::uint64_t>(round) ^ salt));
  if (id == 0) id = 1;  // preserve "0 means untraced"
  return TraceContext{
      .trace_id = id,
      .span_id = derive_trace_span(id, TraceSpanKind::kRound, 0)};
}

}  // namespace fed
