// Prometheus text exposition (format 0.0.4) for MetricsRegistry, plus a
// MetricsExporter observer that re-publishes a scrape file as training
// progresses.
//
// The renderer walks one MetricsSnapshot, so every line of a document
// reflects a single consistent read of the registry: per family a
// `# HELP` line (when set_help was called), a `# TYPE` line, then one
// sample per label set. Histograms expand to the cumulative
// `<name>_bucket{le="..."}` series (last bucket `le="+Inf"`), plus
// `<name>_sum` and `<name>_count`. Label values are escaped per the
// spec (`\\`, `\"`, `\n`); families print counters, then gauges, then
// histograms, each sorted by name, so the document is deterministic and
// golden-testable.
//
// MetricsExporter publishes with write-temp-then-rename so an external
// scraper (or tools/trace_lint --metrics) always reads a complete file,
// never a torn one:
//
//   MetricsRegistry registry;
//   MetricsObserver metrics(registry);
//   MetricsExporter exporter(registry, "metrics.prom", /*every=*/10);
//   trainer.add_observer(metrics);
//   trainer.add_observer(exporter);  // after the feeder, so each publish
//                                    // sees the round it just finished
//
// Publishing happens on a background writer thread: on_round_end only
// flags a request (a mutex lock + notify), and the worker renders the
// snapshot and does the temp+rename off the round thread, so filesystem
// latency never stalls training. Requests coalesce latest-wins — if the
// disk is slower than the round cadence, back-to-back requests collapse
// into one write of the current registry state (counters are cumulative,
// so a scraper never observes a regression). flush() blocks until the
// queue drains; on_run_end publishes and flushes so the file always ends
// on the final state before run() returns.

#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/observer.h"
#include "support/thread_annotations.h"

namespace fed {

// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label_value(const std::string& value);
// HELP-text escaping: backslash and newline only (quotes are legal).
std::string escape_help_text(const std::string& value);

// Shortest decimal string that round-trips to the same double (with the
// Prometheus spellings +Inf/-Inf/NaN). Used for every sample value and
// `le` bound so the document is stable across runs.
std::string format_exposition_number(double v);

// Renders the full document, terminated by a trailing newline.
std::string text_exposition(const MetricsSnapshot& snapshot);
std::string text_exposition(const MetricsRegistry& registry);

// Atomically publishes `registry` to `path`: renders to `<path>.tmp`,
// then renames over `path`. Creates parent directories as needed;
// throws std::runtime_error on I/O failure.
void write_text_exposition(const std::string& path,
                           const MetricsRegistry& registry);

// Resume support: re-reads a previously published exposition file and
// pre-adds every *counter* sample into `registry`, so a resumed run's
// counters continue from the crashed run's totals instead of restarting
// at zero (counters are cumulative — a scraper must never observe a
// regression across a crash/resume boundary). Only families declared
// `# TYPE <name> counter` are seeded; gauges and histograms are
// last-write-wins / distribution state and are rebuilt by the resumed
// run itself. Returns the number of samples seeded; a missing file is
// not an error (returns 0) so first runs and resumes share one code
// path. Malformed lines are skipped rather than fatal — the file may
// predate this build.
std::size_t seed_counters_from_exposition(MetricsRegistry& registry,
                                          const std::string& path);

// Rewrites `path` every `every` completed rounds (and once more at run
// end, so the file always ends on the final state). The exporter only
// reads the registry — pair it with a MetricsObserver registered
// *before* it, which does the feeding. Writes run on the exporter's own
// writer thread (see file comment); call flush() before reading the
// published file from the requesting thread.
class MetricsExporter final : public TrainingObserver {
 public:
  MetricsExporter(MetricsRegistry& registry, std::string path,
                  std::size_t every = 1);
  ~MetricsExporter() override;

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  void on_round_end(const RoundMetrics& metrics,
                    const RoundTrace& trace) override;
  void on_run_end(const TrainHistory& history) override;

  // Blocks until every requested publish has hit the disk, then rethrows
  // the first writer-thread I/O error, if any (on_run_end flushes too,
  // so run() surfaces publish failures).
  void flush() FED_EXCLUDES(mu_);

  const std::string& path() const { return path_; }
  // Completed publishes. Coalescing means this can be lower than the
  // number of rounds / every_ — it counts files actually written.
  std::size_t writes() const {
    return writes_.load(std::memory_order_acquire);
  }

 private:
  void request_publish() FED_EXCLUDES(mu_);
  void worker_loop() FED_EXCLUDES(mu_);

  MetricsRegistry& registry_;
  std::string path_;
  std::size_t every_;
  std::size_t rounds_seen_ = 0;  // round thread only (observer hooks)
  std::atomic<std::size_t> writes_{0};

  // mu_ guards the round-thread <-> writer-thread handshake; cv_ signals
  // both directions (request posted / write finished).
  Mutex mu_;
  CondVar cv_;
  bool publish_requested_ FED_GUARDED_BY(mu_) = false;
  bool busy_ FED_GUARDED_BY(mu_) = false;  // a write is in flight
  bool stop_ FED_GUARDED_BY(mu_) = false;
  std::exception_ptr error_ FED_GUARDED_BY(mu_);  // first write failure
  std::thread worker_;
};

}  // namespace fed
