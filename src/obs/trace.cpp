#include "obs/trace.h"

#include <algorithm>

namespace fed {

SolveStats SolveStats::from_samples(std::span<const double> seconds) {
  SolveStats s;
  s.count = seconds.size();
  if (seconds.empty()) return s;
  s.min_seconds = seconds.front();
  s.max_seconds = seconds.front();
  for (double v : seconds) {
    s.total_seconds += v;
    s.min_seconds = std::min(s.min_seconds, v);
    s.max_seconds = std::max(s.max_seconds, v);
  }
  s.mean_seconds = s.total_seconds / static_cast<double>(s.count);
  return s;
}

JsonValue trace_to_json(const RoundTrace& trace) {
  JsonObject solve;
  solve["count"] = trace.solve.count;
  solve["total_s"] = trace.solve.total_seconds;
  solve["min_s"] = trace.solve.min_seconds;
  solve["mean_s"] = trace.solve.mean_seconds;
  solve["max_s"] = trace.solve.max_seconds;

  JsonObject phases;
  phases["sampling_s"] = trace.sampling_seconds;
  phases["correction_s"] = trace.correction_seconds;
  phases["solve"] = std::move(solve);
  phases["solve_wall_s"] = trace.solve_wall_seconds;
  phases["aggregate_s"] = trace.aggregate_seconds;
  phases["eval_s"] = trace.eval_seconds;

  JsonObject faults;
  faults["attempts"] = trace.faults.attempts;
  faults["retries"] = trace.faults.retries;
  faults["drops"] = trace.faults.drops;
  faults["corruptions"] = trace.faults.corruptions;
  faults["timeouts"] = trace.faults.timeouts;
  faults["duplicates"] = trace.faults.duplicates;
  faults["quorum_drops"] = trace.faults.quorum_drops;
  faults["departs"] = trace.faults.departs;
  faults["failed_devices"] = trace.faults.failed_devices;
  faults["up_deliveries"] = trace.faults.up_deliveries;
  faults["delay_ms"] = trace.faults.delay_ms;

  JsonArray shards;
  for (const ShardStat& s : trace.shards) {
    JsonObject shard;
    shard["shard"] = s.shard;
    shard["devices"] = s.devices;
    shard["contributors"] = s.contributors;
    shard["bytes_down"] = s.bytes_down;
    shard["bytes_up"] = s.bytes_up;
    shard["partial_bytes"] = s.partial_bytes;
    shards.push_back(JsonValue(std::move(shard)));
  }

  JsonObject out;
  out["round"] = trace.round;
  out["evaluated"] = trace.evaluated;
  out["selected"] = trace.selected;
  out["contributors"] = trace.contributors;
  out["stragglers"] = trace.stragglers;
  out["phases"] = std::move(phases);
  out["faults"] = std::move(faults);
  out["shards"] = std::move(shards);
  out["degraded"] = trace.degraded;
  out["active_devices"] = trace.active_devices;
  out["arrivals"] = trace.arrivals;
  out["departures"] = trace.departures;
  if (trace.checkpoint.written) {
    JsonObject ckpt;
    ckpt["round"] = trace.checkpoint.round;
    ckpt["bytes"] = trace.checkpoint.bytes;
    ckpt["generations"] = trace.checkpoint.generations;
    ckpt["retain"] = trace.checkpoint.retain;
    ckpt["write_s"] = trace.checkpoint.write_seconds;
    out["checkpoint"] = std::move(ckpt);
  }
  out["round_s"] = trace.round_seconds;
  out["bytes_down"] = trace.bytes_down;
  out["bytes_up"] = trace.bytes_up;
  return JsonValue(std::move(out));
}

void TraceSummary::accumulate(const RoundTrace& trace) {
  ++rounds;
  total_seconds += trace.round_seconds;
  sampling_seconds += trace.sampling_seconds;
  correction_seconds += trace.correction_seconds;
  solve_wall_seconds += trace.solve_wall_seconds;
  aggregate_seconds += trace.aggregate_seconds;
  eval_seconds += trace.eval_seconds;
  bytes_down += trace.bytes_down;
  bytes_up += trace.bytes_up;
  faults += trace.faults.drops + trace.faults.corruptions +
            trace.faults.timeouts + trace.faults.duplicates;
  retries += trace.faults.retries;
  if (trace.degraded) ++degraded_rounds;
}

TraceSummary summarize(std::span<const RoundTrace> traces) {
  TraceSummary summary;
  for (const auto& t : traces) summary.accumulate(t);
  return summary;
}

}  // namespace fed
