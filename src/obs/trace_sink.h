// Trace sinks: where per-round traces go. JsonlTraceSink streams one
// compact JSON object per round (plus one run-header line per run) so a
// 20-round run yields 20 replayable trace lines; StdoutSummarySink
// accumulates and prints an aligned per-phase breakdown when the run
// ends. TraceObserver bridges the Trainer's observer hooks to a sink:
//
//   JsonlTraceSink sink("bench_out/trace.jsonl");
//   TraceObserver tracer(sink);
//   trainer.add_observer(tracer);

#pragma once

#include <fstream>
#include <iosfwd>
#include <string>

#include "obs/observer.h"
#include "obs/trace.h"

namespace fed {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void begin_run(const RunInfo& info) { (void)info; }
  virtual void write(const RoundMetrics& metrics, const RoundTrace& trace) = 0;
  virtual void end_run(const TrainHistory& history) { (void)history; }
};

// One JSON object per line (JSONL). Each run starts with a header line
// {"run":{...}}; every round then gets {"round":...,"phases":{...},
// "metrics":{...}}. Reuses support/json serialization; numbers
// round-trip exactly.
class JsonlTraceSink final : public TraceSink {
 public:
  // Creates parent directories and truncates `path`.
  explicit JsonlTraceSink(const std::string& path);
  // Streams to an externally-owned ostream (tests, stdout piping).
  explicit JsonlTraceSink(std::ostream& out);

  void begin_run(const RunInfo& info) override;
  void write(const RoundMetrics& metrics, const RoundTrace& trace) override;
  void end_run(const TrainHistory& history) override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream file_;
  std::ostream* out_;
};

// Accumulates every round's trace and prints a per-phase wall-clock
// breakdown table when the run ends.
class StdoutSummarySink final : public TraceSink {
 public:
  explicit StdoutSummarySink(std::ostream& out);
  StdoutSummarySink();

  void begin_run(const RunInfo& info) override;
  void write(const RoundMetrics& metrics, const RoundTrace& trace) override;
  void end_run(const TrainHistory& history) override;

 private:
  std::ostream* out_;
  RunInfo info_;
  TraceSummary summary_;
  SolveStats solve_total_;  // aggregated across rounds
};

// Forwards observer hooks to a sink. The sink must outlive the observer.
class TraceObserver final : public TrainingObserver {
 public:
  explicit TraceObserver(TraceSink& sink) : sink_(&sink) {}

  void on_run_start(const RunInfo& info) override { sink_->begin_run(info); }
  void on_round_end(const RoundMetrics& metrics,
                    const RoundTrace& trace) override {
    sink_->write(metrics, trace);
  }
  void on_run_end(const TrainHistory& history) override {
    sink_->end_run(history);
  }

 private:
  TraceSink* sink_;
};

}  // namespace fed
