// Trace sinks: where per-round traces go. JsonlTraceSink streams one
// compact JSON object per round (plus one run-header line per run) so a
// 20-round run yields 20 replayable trace lines; StdoutSummarySink
// accumulates and prints an aligned per-phase breakdown when the run
// ends. TraceObserver bridges the Trainer's observer hooks to a sink:
//
//   JsonlTraceSink sink("bench_out/trace.jsonl");
//   TraceObserver tracer(sink);
//   trainer.add_observer(tracer);

#pragma once

#include <fstream>
#include <iosfwd>
#include <string>

#include "obs/observer.h"
#include "obs/trace.h"
#include "support/thread_annotations.h"

namespace fed {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void begin_run(const RunInfo& info) { (void)info; }
  virtual void write(const RoundMetrics& metrics, const RoundTrace& trace) = 0;
  virtual void end_run(const TrainHistory& history) { (void)history; }
};

// Size-bounded log rotation for JsonlTraceSink (--trace-rotate-mb).
// When the active file would grow past `max_bytes`, it is renamed to
// `<path>.1` (older generations shifting to `.2`, `.3`, ... with the
// oldest beyond `max_generations` deleted) and a fresh file opens at
// `path`. Rotation happens only at line boundaries and every new
// generation re-writes the run-header line first, so each generation is
// a self-contained JSONL trace that passes `trace_lint --jsonl` on its
// own. `max_bytes == 0` (the default) disables rotation.
struct RotationPolicy {
  std::size_t max_bytes = 0;
  std::size_t max_generations = 3;  // rotated files kept besides `path`
};

// One JSON object per line (JSONL). Each run starts with a header line
// {"run":{...}}; every round then gets {"round":...,"phases":{...},
// "metrics":{...}}. Reuses support/json serialization; numbers
// round-trip exactly.
//
// Thread contract: the observer hooks arrive on the round thread, but
// the sink locks internally (mutex_ below), so writes from any thread
// serialize and rotations() is safe to poll from a monitor thread while
// a run streams. Lines stay whole under concurrent writers; interleaving
// order across threads is the callers' problem.
class JsonlTraceSink final : public TraceSink {
 public:
  // kTruncate starts a fresh trace; kAppend continues an existing one —
  // the resumed run's header and rounds land after the crashed run's
  // lines, and the existing bytes count against the rotation budget, so
  // resuming never silently discards prior generations (it used to:
  // reopening with kTruncate after a crash lost the whole pre-crash
  // trace). A multi-segment file has one {"run":...} header per segment;
  // tools/trace_lint understands the layout.
  enum class OpenMode { kTruncate, kAppend };

  // Creates parent directories and opens `path` per `mode`.
  explicit JsonlTraceSink(const std::string& path,
                          RotationPolicy rotation = {},
                          OpenMode mode = OpenMode::kTruncate);
  // Streams to an externally-owned ostream (tests, stdout piping);
  // rotation does not apply.
  explicit JsonlTraceSink(std::ostream& out);

  void begin_run(const RunInfo& info) override FED_EXCLUDES(mutex_);
  void write(const RoundMetrics& metrics, const RoundTrace& trace) override
      FED_EXCLUDES(mutex_);
  void end_run(const TrainHistory& history) override FED_EXCLUDES(mutex_);

  const std::string& path() const { return path_; }
  // Number of times the sink rolled the active file over.
  std::size_t rotations() const FED_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return rotations_;
  }

 private:
  void emit(const std::string& line) FED_REQUIRES(mutex_);
  void rotate() FED_REQUIRES(mutex_);

  // path_ and rotation_ are set at construction and const after; mutex_
  // guards the stream and every per-generation counter below it.
  std::string path_;
  RotationPolicy rotation_;
  mutable Mutex mutex_;
  std::ofstream file_ FED_GUARDED_BY(mutex_);
  std::ostream* out_ FED_GUARDED_BY(mutex_);
  // Replayed at the top of each generation.
  std::string header_line_ FED_GUARDED_BY(mutex_);
  std::size_t bytes_written_ FED_GUARDED_BY(mutex_) = 0;  // active generation
  std::size_t round_lines_ FED_GUARDED_BY(mutex_) = 0;    // active generation
  std::size_t rotations_ FED_GUARDED_BY(mutex_) = 0;
};

// Accumulates every round's trace and prints a per-phase wall-clock
// breakdown table when the run ends.
class StdoutSummarySink final : public TraceSink {
 public:
  explicit StdoutSummarySink(std::ostream& out);
  StdoutSummarySink();

  void begin_run(const RunInfo& info) override;
  void write(const RoundMetrics& metrics, const RoundTrace& trace) override;
  void end_run(const TrainHistory& history) override;

 private:
  std::ostream* out_;
  RunInfo info_;
  TraceSummary summary_;
  SolveStats solve_total_;  // aggregated across rounds
};

// Forwards observer hooks to a sink. The sink must outlive the observer.
class TraceObserver final : public TrainingObserver {
 public:
  explicit TraceObserver(TraceSink& sink) : sink_(&sink) {}

  void on_run_start(const RunInfo& info) override { sink_->begin_run(info); }
  void on_round_end(const RoundMetrics& metrics,
                    const RoundTrace& trace) override {
    sink_->write(metrics, trace);
  }
  void on_run_end(const TrainHistory& history) override {
    sink_->end_run(history);
  }

 private:
  TraceSink* sink_;
};

}  // namespace fed
