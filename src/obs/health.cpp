#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.h"
#include "tensor/ops.h"

namespace fed {

const char* to_string(HealthIncident::Kind kind) {
  switch (kind) {
    case HealthIncident::Kind::kNonFiniteClientUpdate:
      return "nonfinite_client_update";
    case HealthIncident::Kind::kNonFiniteWeights: return "nonfinite_weights";
    case HealthIncident::Kind::kNonFiniteLoss: return "nonfinite_loss";
    case HealthIncident::Kind::kLossBlowup: return "loss_blowup";
    case HealthIncident::Kind::kStalledConvergence:
      return "stalled_convergence";
    case HealthIncident::Kind::kDegradedRound: return "degraded_round";
  }
  return "?";
}

HealthMonitor::HealthMonitor(HealthConfig config, MetricsRegistry* registry)
    : config_(config), registry_(registry) {}

void HealthMonitor::on_run_start(const RunInfo& info) {
  (void)info;
  incidents_.clear();
  round_suspects_.clear();
  recent_losses_.clear();
  has_best_loss_ = false;
  evals_since_improvement_ = 0;
  stall_reported_ = false;
}

void HealthMonitor::on_fault(const FaultEvent& event) {
  if (event.kind != FaultEvent::Kind::kRoundDegraded) return;
  HealthIncident incident;
  incident.kind = HealthIncident::Kind::kDegradedRound;
  incident.round = event.round;
  std::ostringstream msg;
  msg << "round " << event.round << ": " << event.detail;
  incident.message = msg.str();
  record(std::move(incident), /*fatal=*/false);
}

void HealthMonitor::on_client_result(std::size_t round,
                                     const ClientResult& result) {
  if (all_finite(result.update)) return;
  round_suspects_.push_back(result.device);
  HealthIncident incident;
  incident.kind = HealthIncident::Kind::kNonFiniteClientUpdate;
  incident.round = round;
  incident.device = result.device;
  std::ostringstream msg;
  msg << "round " << round << ": device " << result.device
      << " produced a non-finite local update";
  incident.message = msg.str();
  // Never fatal here: FedAvg may still drop this device at aggregation;
  // on_aggregate escalates if the poison reaches the global weights.
  record(std::move(incident), /*fatal=*/false);
}

void HealthMonitor::on_aggregate(std::size_t round,
                                 std::span<const double> weights) {
  if (all_finite(weights)) return;
  HealthIncident incident;
  incident.kind = HealthIncident::Kind::kNonFiniteWeights;
  incident.round = round;
  std::ostringstream msg;
  msg << "round " << round << ": aggregated weights contain NaN/Inf";
  if (!round_suspects_.empty()) {
    incident.device = round_suspects_.front();
    msg << " (offending device";
    if (round_suspects_.size() > 1) msg << "s";
    msg << ":";
    for (std::size_t device : round_suspects_) msg << " " << device;
    msg << ")";
  }
  incident.message = msg.str();
  record(std::move(incident), config_.abort_on_nonfinite);
}

void HealthMonitor::check_loss(std::size_t round, double loss) {
  if (!std::isfinite(loss)) {
    HealthIncident incident;
    incident.kind = HealthIncident::Kind::kNonFiniteLoss;
    incident.round = round;
    incident.value = loss;
    std::ostringstream msg;
    msg << "round " << round << ": evaluated train loss is non-finite";
    incident.message = msg.str();
    record(std::move(incident), config_.abort_on_nonfinite);
    return;
  }

  if (!recent_losses_.empty() && config_.blowup_factor > 0.0) {
    std::vector<double> sorted = recent_losses_;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double median = sorted[sorted.size() / 2];
    if (median > 0.0 && loss > config_.blowup_factor * median) {
      HealthIncident incident;
      incident.kind = HealthIncident::Kind::kLossBlowup;
      incident.round = round;
      incident.value = loss / median;
      std::ostringstream msg;
      msg << "round " << round << ": train loss " << loss << " is "
          << loss / median << "x the running median " << median;
      incident.message = msg.str();
      record(std::move(incident), config_.abort_on_blowup);
    }
  }
  recent_losses_.push_back(loss);
  if (recent_losses_.size() > std::max<std::size_t>(1, config_.median_window)) {
    recent_losses_.erase(recent_losses_.begin());
  }

  if (config_.stall_patience == 0) return;
  if (!has_best_loss_ ||
      loss < best_loss_ * (1.0 - config_.stall_tolerance)) {
    best_loss_ = loss;
    has_best_loss_ = true;
    evals_since_improvement_ = 0;
    stall_reported_ = false;
    return;
  }
  ++evals_since_improvement_;
  if (evals_since_improvement_ >= config_.stall_patience && !stall_reported_) {
    stall_reported_ = true;
    HealthIncident incident;
    incident.kind = HealthIncident::Kind::kStalledConvergence;
    incident.round = round;
    incident.value = best_loss_;
    std::ostringstream msg;
    msg << "round " << round << ": no loss improvement in "
        << evals_since_improvement_ << " evaluated rounds (best " << best_loss_
        << ")";
    incident.message = msg.str();
    record(std::move(incident), /*fatal=*/false);
  }
}

void HealthMonitor::on_round_end(const RoundMetrics& metrics,
                                 const RoundTrace& trace) {
  (void)trace;
  round_suspects_.clear();
  if (metrics.evaluated()) check_loss(metrics.round, *metrics.train_loss);
}

void HealthMonitor::record(HealthIncident incident, bool fatal) {
  incidents_.push_back(incident);
  if (registry_) {
    registry_->counter("health_incidents_total").add();
    registry_->counter(std::string("health_") + to_string(incident.kind) +
                       "_total")
        .add();
  }
  if (fatal) throw HealthError(std::move(incident), report());
}

std::string HealthMonitor::report() const {
  if (incidents_.empty()) return "";
  std::ostringstream out;
  out << "health: " << incidents_.size() << " incident"
      << (incidents_.size() == 1 ? "" : "s") << " detected\n";
  for (const auto& incident : incidents_) {
    out << "  [" << to_string(incident.kind) << "] " << incident.message
        << "\n";
  }
  return out.str();
}

}  // namespace fed
