// Hierarchical span profiler: where time goes *inside* a round.
//
// RoundTrace (obs/trace.h) answers "which phase was slow"; the profiler
// answers "which client solve, which epoch, which kernel" by recording
// RAII spans into per-thread event buffers that chrome_trace.h renders
// as Chrome trace-event JSON (open in chrome://tracing or Perfetto).
//
//   Profiler::instance().enable();
//   {
//     Span round("round", "trainer", "round", 7);
//     ...  // nested Spans from any thread land on that thread's track
//   }
//   write_chrome_trace("run.trace.json");  // chrome_trace.h
//
// Cost model: when disabled, constructing a Span is a single relaxed
// atomic load — cheap enough to leave in hot-ish paths unconditionally.
// When enabled, a span is two steady_clock reads plus a push into a
// buffer owned by the recording thread (a per-thread mutex is taken
// uncontended; only drain() ever contends on it). Per-minibatch kernel
// spans are still too hot for release benches, so tensor/ and the prox
// step compile them behind FEDPROX_PROFILE_KERNELS (see the macro at the
// bottom and the CMake option of the same name).
//
// Determinism: recording never draws randomness and never blocks the
// round barrier, so enabling the profiler cannot change TrainHistory.

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/thread_annotations.h"

namespace fed {

// One recorded event. Name/category/arg-name pointers must be string
// literals (or otherwise outlive the profiler) — events never own text.
struct ProfileEvent {
  enum class Type : std::uint8_t {
    kComplete,    // Chrome "X": a span with start + duration; must nest
    kAsyncBegin,  // Chrome "b": interval that may overlap others (queue
    kAsyncEnd,    //        "e"   waits); paired by `id`
    kFlowStart,   // Chrome "s": an arrow leaves the enclosing span here
    kFlowEnd,     // Chrome "f": ... and lands here; paired by `id`
  };

  const char* name = nullptr;
  const char* category = "span";
  Type type = Type::kComplete;
  std::uint32_t tid = 0;       // profiler-assigned thread id
  std::uint64_t id = 0;        // pairs kAsyncBegin with kAsyncEnd
  std::uint64_t start_us = 0;  // microseconds since the profiler epoch
  std::uint64_t dur_us = 0;    // kComplete only
  std::uint8_t num_args = 0;   // occupied slots below
  std::array<const char*, 3> arg_names{};
  std::array<std::int64_t, 3> arg_values{};
};

// Process-wide singleton owning the per-thread buffers. Threads register
// lazily on first record (or via set_thread_name); buffers live until
// process exit so a drained trace can include threads that already died.
class Profiler {
 public:
  static Profiler& instance();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  // The only check on the disabled hot path.
  static bool is_enabled() { return enabled_.load(std::memory_order_relaxed); }

  // Names the calling thread's track ("main", "pool-3"). Cheap; callable
  // whether or not recording is enabled.
  void set_thread_name(std::string name) FED_EXCLUDES(registry_mutex_);

  // Microseconds since the profiler epoch (first instance() call).
  std::uint64_t now_us() const;

  // Unique id for a kAsyncBegin/kAsyncEnd pair.
  std::uint64_t next_async_id() {
    return async_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Appends to the calling thread's buffer. Caller checks is_enabled().
  void record(const ProfileEvent& event) FED_EXCLUDES(registry_mutex_);

  struct Snapshot {
    // Sorted by start_us; ties broken longest-duration-first so parents
    // precede the children they contain.
    std::vector<ProfileEvent> events;
    std::vector<std::pair<std::uint32_t, std::string>> threads;  // tid, name
  };
  // Moves every thread's events out (buffers stay registered) and lists
  // all known threads. Safe to call while other threads record; events
  // recorded concurrently land in the next drain.
  Snapshot drain() FED_EXCLUDES(registry_mutex_);
  // Drops all buffered events without building a snapshot.
  void discard() FED_EXCLUDES(registry_mutex_);

 private:
  // Lock order: registry_mutex_ before any ThreadBuffer::mutex (drain/
  // discard nest them that way; no path acquires in the other order).
  struct ThreadBuffer {
    Mutex mutex;  // uncontended except during drain/discard
    std::vector<ProfileEvent> events FED_GUARDED_BY(mutex);
    std::string name FED_GUARDED_BY(mutex);
    // Assigned once under registry_mutex_ before the buffer is published,
    // then read only by the owning thread and drain(); effectively const.
    std::uint32_t tid = 0;
  };

  Profiler();
  ThreadBuffer& local_buffer() FED_EXCLUDES(registry_mutex_);

  static std::atomic<bool> enabled_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> async_id_{1};
  Mutex registry_mutex_;  // guards buffers_ growth only
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      FED_GUARDED_BY(registry_mutex_);
};

// RAII complete-event span. Construction snapshots the start time (when
// enabled); destruction records the event on the constructing thread.
class Span {
 public:
  explicit Span(const char* name, const char* category = "span") {
    if (Profiler::is_enabled()) begin(name, category);
  }
  Span(const char* name, const char* category, const char* arg_name,
       std::int64_t arg_value) {
    if (Profiler::is_enabled()) {
      begin(name, category);
      add_arg(arg_name, arg_value);
    }
  }
  Span(const char* name, const char* category, const char* arg0_name,
       std::int64_t arg0_value, const char* arg1_name,
       std::int64_t arg1_value) {
    if (Profiler::is_enabled()) {
      begin(name, category);
      add_arg(arg0_name, arg0_value);
      add_arg(arg1_name, arg1_value);
    }
  }
  Span(const char* name, const char* category, const char* arg0_name,
       std::int64_t arg0_value, const char* arg1_name, std::int64_t arg1_value,
       const char* arg2_name, std::int64_t arg2_value) {
    if (Profiler::is_enabled()) {
      begin(name, category);
      add_arg(arg0_name, arg0_value);
      add_arg(arg1_name, arg1_value);
      add_arg(arg2_name, arg2_value);
    }
  }

  Span(Span&& other) noexcept
      : event_(other.event_), active_(std::exchange(other.active_, false)) {}
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      event_ = other.event_;
      active_ = std::exchange(other.active_, false);
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  // Attaches one of the three integer args post-construction (ignored
  // when the span is inactive or the slots are full).
  void add_arg(const char* name, std::int64_t value) {
    if (!active_ || event_.num_args >= event_.arg_names.size()) return;
    event_.arg_names[event_.num_args] = name;
    event_.arg_values[event_.num_args] = value;
    ++event_.num_args;
  }

  bool active() const { return active_; }

 private:
  void begin(const char* name, const char* category);
  void finish();

  ProfileEvent event_;
  bool active_ = false;
};

// Flow events: a directed arrow between two spans, possibly on different
// threads (or, once a trace_id rides the wire, different processes).
// Both ends must use the same `name`/`category` literals and the same
// `id` — derive it with derive_trace_span (obs/trace_context.h) so both
// sides agree without sharing state. Each end is an instant bound to the
// span enclosing it at that timestamp; record flow events only inside an
// open Span. Cost when disabled: one relaxed load, like Span.
inline void profile_flow(const char* name, const char* category,
                         std::uint64_t id, ProfileEvent::Type type,
                         const char* arg_name = nullptr,
                         std::int64_t arg_value = 0) {
  if (!Profiler::is_enabled()) return;
  Profiler& profiler = Profiler::instance();
  ProfileEvent event;
  event.name = name;
  event.category = category;
  event.type = type;
  event.id = id;
  event.start_us = profiler.now_us();
  if (arg_name) {
    event.arg_names[0] = arg_name;
    event.arg_values[0] = arg_value;
    event.num_args = 1;
  }
  profiler.record(event);
}

inline void flow_start(const char* name, const char* category,
                       std::uint64_t id, const char* arg_name = nullptr,
                       std::int64_t arg_value = 0) {
  profile_flow(name, category, id, ProfileEvent::Type::kFlowStart, arg_name,
               arg_value);
}

inline void flow_end(const char* name, const char* category, std::uint64_t id,
                     const char* arg_name = nullptr,
                     std::int64_t arg_value = 0) {
  profile_flow(name, category, id, ProfileEvent::Type::kFlowEnd, arg_name,
               arg_value);
}

// True when this build compiled the per-kernel spans in (CMake option
// FEDPROX_PROFILE_KERNELS). Lets benches record which mode they measured.
#if FEDPROX_PROFILE_KERNELS
inline constexpr bool kProfileKernels = true;
#else
inline constexpr bool kProfileKernels = false;
#endif

// Kernel-granularity span, compiled to nothing in default builds: GEMM /
// GEMV and the per-minibatch prox step run thousands of times per round,
// so even the disabled-check is kept out of release binaries.
#if FEDPROX_PROFILE_KERNELS
#define FED_PROFILE_KERNEL_SPAN(...) \
  const ::fed::Span fed_kernel_span_ { __VA_ARGS__ }
#else
#define FED_PROFILE_KERNEL_SPAN(...) \
  do {                               \
  } while (false)
#endif

}  // namespace fed
