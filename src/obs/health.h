// Numeric health watchdog: turn silent divergence into a loud report.
//
// The paper's figures are loss curves; a NaN that sneaks into one client
// update poisons the aggregate and every later round while the run keeps
// "succeeding". HealthMonitor is a TrainingObserver that scans, every
// round, (a) each client update for non-finite entries, (b) the
// aggregated parameter vector, and (c) the evaluated train loss for
// NaN/Inf, blow-up past k x the running median, and stalled convergence.
// Incidents are recorded (and counted in a MetricsRegistry when one is
// attached: health_incidents_total plus one counter per kind); fatal
// kinds abort the run by throwing HealthError from the observer hook,
// with a report naming the round and the offending device(s).
//
//   MetricsRegistry registry;
//   HealthMonitor health(HealthConfig{}, &registry);
//   trainer.add_observer(health);
//   try {
//     trainer.run();
//   } catch (const HealthError& e) {
//     std::cerr << e.what();   // full incident report
//     return 1;
//   }

#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/observer.h"

namespace fed {

class MetricsRegistry;  // obs/metrics.h

struct HealthConfig {
  // Evaluated loss > blowup_factor x running median -> kLossBlowup.
  double blowup_factor = 25.0;
  // Evaluated losses kept for the running median.
  std::size_t median_window = 9;
  // Consecutive evaluated rounds without relative improvement >
  // stall_tolerance before a kStalledConvergence incident; 0 disables.
  std::size_t stall_patience = 50;
  double stall_tolerance = 1e-6;
  // Fatal kinds throw HealthError; non-fatal kinds only record.
  bool abort_on_nonfinite = true;
  bool abort_on_blowup = false;
};

struct HealthIncident {
  enum class Kind {
    kNonFiniteClientUpdate,  // a device's local solution has NaN/Inf
    kNonFiniteWeights,       // the aggregated parameters have NaN/Inf
    kNonFiniteLoss,          // an evaluated loss is NaN/Inf
    kLossBlowup,             // loss > blowup_factor x running median
    kStalledConvergence,     // no improvement for stall_patience evals
    kDegradedRound,          // a round aggregated zero updates; w was kept
  };

  Kind kind{};
  std::size_t round = 0;
  std::optional<std::size_t> device;  // offending device, when known
  double value = 0.0;                 // offending loss / blow-up ratio
  std::string message;                // one-line human description
};

// Stable snake_case slug ("nonfinite_weights", ...); also names the
// per-kind registry counter health_<slug>_total.
const char* to_string(HealthIncident::Kind kind);

// Thrown from an observer hook to abort Trainer::run. what() carries the
// full multi-line report of every incident seen so far.
class HealthError : public std::runtime_error {
 public:
  HealthError(HealthIncident incident, const std::string& report)
      : std::runtime_error(report), incident_(std::move(incident)) {}

  const HealthIncident& incident() const { return incident_; }

 private:
  HealthIncident incident_;
};

class HealthMonitor final : public TrainingObserver {
 public:
  explicit HealthMonitor(HealthConfig config = {},
                         MetricsRegistry* registry = nullptr);

  void on_run_start(const RunInfo& info) override;
  // Individual channel faults (drop/corrupt/timeout/...) are the fault
  // layer's normal operation and stay out of the incident log; a round
  // degraded to zero contributions is recorded, never fatal — training
  // legitimately continues with w unchanged.
  void on_fault(const FaultEvent& event) override;
  void on_client_result(std::size_t round, const ClientResult& result) override;
  void on_aggregate(std::size_t round,
                    std::span<const double> weights) override;
  void on_round_end(const RoundMetrics& metrics,
                    const RoundTrace& trace) override;

  bool healthy() const { return incidents_.empty(); }
  const std::vector<HealthIncident>& incidents() const { return incidents_; }
  // "health: N incident(s)" header plus one line per incident; empty
  // string when healthy.
  std::string report() const;

 private:
  void record(HealthIncident incident, bool fatal);
  void check_loss(std::size_t round, double loss);

  HealthConfig config_;
  MetricsRegistry* registry_;
  std::vector<HealthIncident> incidents_;
  // Devices whose update went non-finite in the current round; consumed
  // by on_aggregate to name suspects, cleared at on_round_end.
  std::vector<std::size_t> round_suspects_;
  std::vector<double> recent_losses_;  // median window, oldest first
  double best_loss_ = 0.0;
  bool has_best_loss_ = false;
  std::size_t evals_since_improvement_ = 0;
  bool stall_reported_ = false;
};

}  // namespace fed
