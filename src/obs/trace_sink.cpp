#include "obs/trace_sink.h"

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "support/csv.h"

namespace fed {

namespace {

JsonValue opt_json(const std::optional<double>& v) {
  return v ? JsonValue(*v) : JsonValue(nullptr);
}

JsonObject run_info_json(const RunInfo& info) {
  JsonObject run;
  run["algorithm"] = info.algorithm;
  run["rounds"] = info.rounds;
  run["first_round"] = info.first_round;
  run["devices_per_round"] = info.devices_per_round;
  run["num_clients"] = info.num_clients;
  run["parameter_count"] = info.parameter_count;
  run["threads"] = info.threads;
  run["seed"] = info.seed;
  run["resumed"] = info.resumed;
  return run;
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(const std::string& path,
                               RotationPolicy rotation, OpenMode mode)
    : path_(path), rotation_(rotation), out_(nullptr) {
  const auto slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    ensure_directory(path.substr(0, slash));
  }
  if (mode == OpenMode::kAppend) {
    // Continue the crashed run's file: the carried-over bytes count
    // against this generation's rotation budget, and a non-empty file
    // already holds round lines, so rotation stays armed.
    std::error_code ec;
    const auto existing = std::filesystem::file_size(path, ec);
    if (!ec && existing > 0) {
      bytes_written_ = static_cast<std::size_t>(existing);
      round_lines_ = 1;
    }
    file_.open(path, std::ios::app);
  } else {
    file_.open(path, std::ios::trunc);
  }
  if (!file_) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  }
  out_ = &file_;
}

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

void JsonlTraceSink::emit(const std::string& line) {
  // Roll over before the line that would cross the byte budget, never
  // mid-line — but only once the active generation holds at least one
  // round line, so a budget smaller than header+line degrades to one
  // line per generation instead of rotating forever.
  if (&file_ == out_ && rotation_.max_bytes > 0 && round_lines_ > 0 &&
      bytes_written_ + line.size() + 1 > rotation_.max_bytes) {
    rotate();
  }
  *out_ << line << '\n';
  bytes_written_ += line.size() + 1;
}

void JsonlTraceSink::rotate() {
  file_.close();
  namespace fs = std::filesystem;
  std::error_code ec;  // rotation never throws; a failed shift is dropped
  fs::remove(path_ + "." + std::to_string(rotation_.max_generations), ec);
  for (std::size_t g = rotation_.max_generations; g > 1; --g) {
    fs::rename(path_ + "." + std::to_string(g - 1),
               path_ + "." + std::to_string(g), ec);
  }
  fs::rename(path_, path_ + ".1", ec);
  file_.open(path_, std::ios::trunc);
  if (!file_) {
    throw std::runtime_error("JsonlTraceSink: cannot reopen " + path_);
  }
  ++rotations_;
  bytes_written_ = 0;
  round_lines_ = 0;
  // Every generation starts with the run header so it lints standalone.
  if (!header_line_.empty()) {
    file_ << header_line_ << '\n';
    bytes_written_ = header_line_.size() + 1;
  }
}

void JsonlTraceSink::begin_run(const RunInfo& info) {
  JsonObject line;
  line["run"] = run_info_json(info);
  MutexLock lock(mutex_);
  header_line_ = serialize_json(JsonValue(std::move(line)));
  emit(header_line_);
}

void JsonlTraceSink::write(const RoundMetrics& metrics,
                           const RoundTrace& trace) {
  JsonValue value = trace_to_json(trace);
  JsonObject m;
  m["mu"] = metrics.mu;
  m["train_loss"] = opt_json(metrics.train_loss);
  m["train_accuracy"] = opt_json(metrics.train_accuracy);
  m["test_accuracy"] = opt_json(metrics.test_accuracy);
  m["grad_variance"] = opt_json(metrics.grad_variance);
  m["dissimilarity_b"] = opt_json(metrics.dissimilarity_b);
  m["mean_gamma"] = opt_json(metrics.mean_gamma);
  value.as_object()["metrics"] = std::move(m);
  const std::string line = serialize_json(value);
  MutexLock lock(mutex_);
  emit(line);
  ++round_lines_;
}

void JsonlTraceSink::end_run(const TrainHistory& history) {
  (void)history;
  MutexLock lock(mutex_);
  out_->flush();
}

StdoutSummarySink::StdoutSummarySink(std::ostream& out) : out_(&out) {}

StdoutSummarySink::StdoutSummarySink() : out_(&std::cout) {}

void StdoutSummarySink::begin_run(const RunInfo& info) {
  info_ = info;
  summary_ = {};
  solve_total_ = {};
}

void StdoutSummarySink::write(const RoundMetrics& metrics,
                              const RoundTrace& trace) {
  (void)metrics;
  summary_.accumulate(trace);
  solve_total_.count += trace.solve.count;
  solve_total_.total_seconds += trace.solve.total_seconds;
  if (trace.solve.count) {
    if (solve_total_.count == trace.solve.count) {
      solve_total_.min_seconds = trace.solve.min_seconds;
      solve_total_.max_seconds = trace.solve.max_seconds;
    } else {
      solve_total_.min_seconds =
          std::min(solve_total_.min_seconds, trace.solve.min_seconds);
      solve_total_.max_seconds =
          std::max(solve_total_.max_seconds, trace.solve.max_seconds);
    }
  }
}

void StdoutSummarySink::end_run(const TrainHistory& history) {
  (void)history;
  const auto pct = [&](double s) {
    return summary_.total_seconds > 0.0
               ? TablePrinter::fmt(100.0 * s / summary_.total_seconds, 1) + "%"
               : "-";
  };
  TablePrinter table({"phase", "seconds", "share"});
  table.add_row({"sampling", TablePrinter::fmt(summary_.sampling_seconds, 4),
                 pct(summary_.sampling_seconds)});
  if (summary_.correction_seconds > 0.0) {
    table.add_row({"correction",
                   TablePrinter::fmt(summary_.correction_seconds, 4),
                   pct(summary_.correction_seconds)});
  }
  table.add_row({"local solve",
                 TablePrinter::fmt(summary_.solve_wall_seconds, 4),
                 pct(summary_.solve_wall_seconds)});
  table.add_row({"aggregate", TablePrinter::fmt(summary_.aggregate_seconds, 4),
                 pct(summary_.aggregate_seconds)});
  table.add_row({"evaluation", TablePrinter::fmt(summary_.eval_seconds, 4),
                 pct(summary_.eval_seconds)});
  table.add_row(
      {"total", TablePrinter::fmt(summary_.total_seconds, 4), "100.0%"});
  *out_ << info_.algorithm << " run: " << summary_.rounds << " rounds, "
        << solve_total_.count << " client solves";
  if (solve_total_.count) {
    *out_ << " (min " << TablePrinter::fmt(solve_total_.min_seconds, 5)
          << "s, max " << TablePrinter::fmt(solve_total_.max_seconds, 5)
          << "s)";
  }
  *out_ << ", " << summary_.bytes_down << " bytes down, " << summary_.bytes_up
        << " bytes up\n"
        << table.render();
}

}  // namespace fed
