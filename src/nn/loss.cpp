#include "nn/loss.h"

#include <cassert>
#include <cmath>

#include "tensor/ops.h"

namespace fed {

double softmax_cross_entropy_grad(std::span<double> logits,
                                  std::int32_t label) {
  assert(label >= 0 && static_cast<std::size_t>(label) < logits.size());
  const double lse = log_sum_exp(logits);
  const double loss = lse - logits[static_cast<std::size_t>(label)];
  // logits <- softmax(logits) - onehot(label)
  for (double& v : logits) v = std::exp(v - lse);
  logits[static_cast<std::size_t>(label)] -= 1.0;
  return loss;
}

double softmax_cross_entropy(std::span<const double> logits,
                             std::int32_t label) {
  assert(label >= 0 && static_cast<std::size_t>(label) < logits.size());
  return log_sum_exp(logits) - logits[static_cast<std::size_t>(label)];
}

double binary_cross_entropy_grad(double logit, std::int32_t label,
                                 double& grad_logit) {
  const double p = sigmoid(logit);
  grad_logit = p - static_cast<double>(label);
  return binary_cross_entropy(logit, label);
}

double binary_cross_entropy(double logit, std::int32_t label) {
  // Stable: log(1+exp(-|x|)) + max(x,0) - x*label
  const double max_part = logit > 0.0 ? logit : 0.0;
  return max_part - logit * static_cast<double>(label) +
         std::log1p(std::exp(-std::abs(logit)));
}

}  // namespace fed
