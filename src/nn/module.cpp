#include "nn/module.h"

#include <numeric>

#include "tensor/ops.h"

namespace fed {

std::vector<std::size_t> full_batch(std::size_t size) {
  std::vector<std::size_t> idx(size);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

double Model::loss(std::span<const double> w, const Dataset& data,
                   std::span<const std::size_t> batch) const {
  Vector scratch(parameter_count());
  return loss_and_grad(w, data, batch, scratch);
}

double Model::dataset_loss(std::span<const double> w,
                           const Dataset& data) const {
  if (data.empty()) return 0.0;
  const auto batch = full_batch(data.size());
  return loss(w, data, batch);
}

double Model::dataset_loss_and_grad(std::span<const double> w,
                                    const Dataset& data,
                                    std::span<double> grad) const {
  zero(grad);
  if (data.empty()) return 0.0;
  const auto batch = full_batch(data.size());
  return loss_and_grad(w, data, batch, grad);
}

std::size_t Model::correct_count(std::span<const double> w,
                                 const Dataset& data) const {
  if (data.empty()) return 0;
  const auto batch = full_batch(data.size());
  std::vector<std::int32_t> pred;
  predict(w, data, batch, pred);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (pred[i] == data.labels[batch[i]]) ++correct;
  }
  return correct;
}

double Model::accuracy(std::span<const double> w, const Dataset& data) const {
  if (data.empty()) return 0.0;
  return static_cast<double>(correct_count(w, data)) /
         static_cast<double>(data.size());
}

}  // namespace fed
