#include "nn/mlp.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "nn/loss.h"
#include "tensor/ops.h"

namespace fed {

Mlp::Mlp(std::size_t input_dim, std::size_t hidden_dim,
         std::size_t num_classes)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      num_classes_(num_classes) {
  if (input_dim == 0 || hidden_dim == 0 || num_classes < 2) {
    throw std::invalid_argument("Mlp: bad shape");
  }
}

std::size_t Mlp::parameter_count() const {
  return hidden_dim_ * input_dim_ + hidden_dim_ + num_classes_ * hidden_dim_ +
         num_classes_;
}

Mlp::Blocks Mlp::view(std::span<const double> w) const {
  std::size_t off = 0;
  ConstMatrixView w1(w.subspan(off, hidden_dim_ * input_dim_), hidden_dim_,
                     input_dim_);
  off += hidden_dim_ * input_dim_;
  auto b1 = w.subspan(off, hidden_dim_);
  off += hidden_dim_;
  ConstMatrixView w2(w.subspan(off, num_classes_ * hidden_dim_), num_classes_,
                     hidden_dim_);
  off += num_classes_ * hidden_dim_;
  auto b2 = w.subspan(off, num_classes_);
  return {w1, b1, w2, b2};
}

void Mlp::init_parameters(std::span<double> w, Rng& rng) const {
  assert(w.size() == parameter_count());
  // Glorot-style scaling for the weight blocks, zeros for biases.
  const double s1 = std::sqrt(2.0 / static_cast<double>(input_dim_ + hidden_dim_));
  const double s2 =
      std::sqrt(2.0 / static_cast<double>(hidden_dim_ + num_classes_));
  std::size_t off = 0;
  for (std::size_t i = 0; i < hidden_dim_ * input_dim_; ++i) {
    w[off++] = rng.normal(0.0, s1);
  }
  for (std::size_t i = 0; i < hidden_dim_; ++i) w[off++] = 0.0;
  for (std::size_t i = 0; i < num_classes_ * hidden_dim_; ++i) {
    w[off++] = rng.normal(0.0, s2);
  }
  for (std::size_t i = 0; i < num_classes_; ++i) w[off++] = 0.0;
}

void Mlp::forward(const Blocks& p, std::span<const double> x,
                  std::span<double> hidden, std::span<double> logits) const {
  gemv(p.w1, x, hidden);
  for (std::size_t h = 0; h < hidden_dim_; ++h) {
    hidden[h] = std::tanh(hidden[h] + p.b1[h]);
  }
  gemv(p.w2, hidden, logits);
  for (std::size_t c = 0; c < num_classes_; ++c) logits[c] += p.b2[c];
}

double Mlp::loss_and_grad(std::span<const double> w, const Dataset& data,
                          std::span<const std::size_t> batch,
                          std::span<double> grad) const {
  assert(w.size() == parameter_count() && grad.size() == parameter_count());
  assert(!batch.empty());
  const Blocks p = view(w);
  zero(grad);

  std::size_t off = 0;
  MatrixView g_w1(grad.subspan(off, hidden_dim_ * input_dim_), hidden_dim_,
                  input_dim_);
  off += hidden_dim_ * input_dim_;
  auto g_b1 = grad.subspan(off, hidden_dim_);
  off += hidden_dim_;
  MatrixView g_w2(grad.subspan(off, num_classes_ * hidden_dim_), num_classes_,
                  hidden_dim_);
  off += num_classes_ * hidden_dim_;
  auto g_b2 = grad.subspan(off, num_classes_);

  Vector hidden(hidden_dim_), logits(num_classes_), dhidden(hidden_dim_);
  double total = 0.0;
  for (std::size_t idx : batch) {
    auto x = data.features.row(idx);
    forward(p, x, hidden, logits);
    total += softmax_cross_entropy_grad(logits, data.labels[idx]);
    // logits = dL/dlogits. Backprop through layer 2.
    ger(1.0, logits, hidden, g_w2);
    add(g_b2, logits, g_b2);
    gemv_transposed(p.w2, logits, dhidden);
    // Through tanh: dL/dpre = dL/dh * (1 - h^2).
    for (std::size_t h = 0; h < hidden_dim_; ++h) {
      dhidden[h] *= 1.0 - hidden[h] * hidden[h];
    }
    ger(1.0, dhidden, x, g_w1);
    add(g_b1, dhidden, g_b1);
  }
  const double inv = 1.0 / static_cast<double>(batch.size());
  scale(grad, inv);
  return total * inv;
}

double Mlp::loss(std::span<const double> w, const Dataset& data,
                 std::span<const std::size_t> batch) const {
  assert(!batch.empty());
  const Blocks p = view(w);
  Vector hidden(hidden_dim_), logits(num_classes_);
  double total = 0.0;
  for (std::size_t idx : batch) {
    forward(p, data.features.row(idx), hidden, logits);
    total += softmax_cross_entropy(logits, data.labels[idx]);
  }
  return total / static_cast<double>(batch.size());
}

void Mlp::predict(std::span<const double> w, const Dataset& data,
                  std::span<const std::size_t> batch,
                  std::vector<std::int32_t>& out) const {
  const Blocks p = view(w);
  out.resize(batch.size());
  Vector hidden(hidden_dim_), logits(num_classes_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    forward(p, data.features.row(batch[i]), hidden, logits);
    out[i] = static_cast<std::int32_t>(argmax(logits));
  }
}

}  // namespace fed
