// Solver-agnostic model interface.
//
// Models are stateless function objects over flat parameter vectors
// w ∈ R^d: the federated server, aggregators, and local solvers treat w
// opaquely, which is what makes the FedProx framework solver- and
// model-agnostic (paper Section 3.2). All methods are const and
// thread-safe so many simulated devices can share one Model instance.

#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "support/rng.h"
#include "tensor/tensor.h"

namespace fed {

class Model {
 public:
  virtual ~Model() = default;

  virtual std::string name() const = 0;

  // Dimension d of the flat parameter vector.
  virtual std::size_t parameter_count() const = 0;

  // Writes an initial parameter vector (w.size() == parameter_count()).
  virtual void init_parameters(std::span<double> w, Rng& rng) const = 0;

  // Mean loss over the batch; writes the mean gradient into `grad`
  // (overwriting it). `batch` holds sample indices into `data`.
  virtual double loss_and_grad(std::span<const double> w, const Dataset& data,
                               std::span<const std::size_t> batch,
                               std::span<double> grad) const = 0;

  // Mean loss only (no gradient); default falls back to loss_and_grad.
  virtual double loss(std::span<const double> w, const Dataset& data,
                      std::span<const std::size_t> batch) const;

  // Predicted class label for each sample in the batch.
  virtual void predict(std::span<const double> w, const Dataset& data,
                       std::span<const std::size_t> batch,
                       std::vector<std::int32_t>& out) const = 0;

  // ---- convenience over whole datasets ----

  // Mean loss over all samples of `data` (0.0 when empty).
  double dataset_loss(std::span<const double> w, const Dataset& data) const;
  // Mean gradient over all samples; returns the loss. grad zeroed first.
  double dataset_loss_and_grad(std::span<const double> w, const Dataset& data,
                               std::span<double> grad) const;
  // Fraction of correct predictions (0.0 when empty).
  double accuracy(std::span<const double> w, const Dataset& data) const;
  // Number of correct predictions over the whole dataset.
  std::size_t correct_count(std::span<const double> w,
                            const Dataset& data) const;
};

// Returns 0..size-1 as a batch covering a whole dataset.
std::vector<std::size_t> full_batch(std::size_t size);

}  // namespace fed
