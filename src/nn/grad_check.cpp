#include "nn/grad_check.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "tensor/ops.h"

namespace fed {

GradCheckResult check_gradients(const Model& model, std::span<const double> w,
                                const Dataset& data,
                                std::span<const std::size_t> batch,
                                double step, std::size_t probes) {
  const std::size_t d = model.parameter_count();
  Vector analytic(d);
  model.loss_and_grad(w, data, batch, analytic);

  // Choose coordinates to probe.
  std::set<std::size_t> coords;
  if (probes == 0 || probes >= d) {
    for (std::size_t i = 0; i < d; ++i) coords.insert(i);
  } else {
    // Half spread evenly, half at the largest analytic-gradient entries
    // (where errors are most visible).
    for (std::size_t i = 0; i < probes / 2; ++i) {
      coords.insert(i * d / std::max<std::size_t>(1, probes / 2));
    }
    std::vector<std::size_t> order(d);
    for (std::size_t i = 0; i < d; ++i) order[i] = i;
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<long>(
                                          std::min<std::size_t>(probes, d)),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return std::abs(analytic[a]) > std::abs(analytic[b]);
                      });
    for (std::size_t i = 0; i < std::min<std::size_t>(probes - probes / 2, d);
         ++i) {
      coords.insert(order[i]);
    }
  }

  Vector w_mut(w.begin(), w.end());
  GradCheckResult result;
  for (std::size_t i : coords) {
    const double orig = w_mut[i];
    w_mut[i] = orig + step;
    const double up = model.loss(w_mut, data, batch);
    w_mut[i] = orig - step;
    const double down = model.loss(w_mut, data, batch);
    w_mut[i] = orig;
    const double numeric = (up - down) / (2.0 * step);
    const double denom =
        std::max({1.0, std::abs(analytic[i]), std::abs(numeric)});
    const double rel = std::abs(analytic[i] - numeric) / denom;
    if (rel > result.max_relative_error) {
      result.max_relative_error = rel;
      result.worst_index = i;
      result.analytic_at_worst = analytic[i];
      result.numeric_at_worst = numeric;
    }
  }
  return result;
}

}  // namespace fed
