// Loss primitives shared by the models: softmax cross-entropy and binary
// cross-entropy, each returning loss and the gradient w.r.t. logits.

#pragma once

#include <cstdint>
#include <span>

namespace fed {

// Computes softmax cross-entropy of `logits` against class `label`.
// On return, `logits` is overwritten with dLoss/dLogits = softmax - onehot.
// Returns the loss value.
double softmax_cross_entropy_grad(std::span<double> logits,
                                  std::int32_t label);

// Loss only (logits preserved).
double softmax_cross_entropy(std::span<const double> logits,
                             std::int32_t label);

// Binary cross-entropy with a single logit and label in {0,1}.
// grad_logit receives dLoss/dLogit = sigmoid(logit) - label.
double binary_cross_entropy_grad(double logit, std::int32_t label,
                                 double& grad_logit);

double binary_cross_entropy(double logit, std::int32_t label);

}  // namespace fed
