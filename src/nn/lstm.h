// Multi-layer LSTM sequence classifier with exact backpropagation through
// time. Covers both of the paper's non-convex tasks:
//   - Sent140-like: frozen (GloVe stand-in) embeddings, 2-layer LSTM,
//     binary sentiment head (num_classes = 2).
//   - Shakespeare-like: trainable 8-d embeddings, 2-layer LSTM,
//     next-character head (num_classes = vocab).
// The classifier reads a token sequence, runs it through `num_layers`
// LSTM layers, and softmax-classifies the final hidden state.
//
// Flat parameter layout:
//   [E (vocab x embed, only if trainable_embedding)]
//   for each layer l: [Wx_l (4H x in_l) | Wh_l (4H x H) | b_l (4H)]
//   [W_out (C x H) | b_out (C)]
// Gate order inside the 4H blocks: input, forget, candidate, output.

#pragma once

#include <memory>

#include "nn/embedding.h"
#include "nn/module.h"

namespace fed {

struct LstmConfig {
  std::size_t vocab_size = 0;
  std::size_t embed_dim = 0;
  std::size_t hidden_dim = 0;
  std::size_t num_layers = 1;
  std::size_t num_classes = 0;
  // When false, `frozen_embedding` supplies fixed token vectors and the
  // embedding is excluded from the parameter vector.
  bool trainable_embedding = true;
  std::shared_ptr<const EmbeddingTable> frozen_embedding;
  // Forget-gate bias initialization (standard trick for gradient flow).
  double forget_bias = 1.0;
};

class LstmClassifier final : public Model {
 public:
  explicit LstmClassifier(LstmConfig config);

  std::string name() const override { return "lstm_classifier"; }
  std::size_t parameter_count() const override { return param_count_; }
  const LstmConfig& config() const { return config_; }

  void init_parameters(std::span<double> w, Rng& rng) const override;
  double loss_and_grad(std::span<const double> w, const Dataset& data,
                       std::span<const std::size_t> batch,
                       std::span<double> grad) const override;
  double loss(std::span<const double> w, const Dataset& data,
              std::span<const std::size_t> batch) const override;
  void predict(std::span<const double> w, const Dataset& data,
               std::span<const std::size_t> batch,
               std::vector<std::int32_t>& out) const override;

 private:
  struct LayerView {
    ConstMatrixView wx;  // 4H x in
    ConstMatrixView wh;  // 4H x H
    std::span<const double> b;  // 4H
  };
  struct Views {
    std::span<const double> embedding;  // vocab*embed or empty
    std::vector<LayerView> layers;
    ConstMatrixView w_out;
    std::span<const double> b_out;
  };
  struct GradViews {
    std::span<double> embedding;
    std::vector<std::size_t> layer_offsets;  // offset of each layer block
    std::span<double> all;
    std::size_t out_offset;
  };

  // Per-timestep activations recorded by the forward pass (one layer).
  struct LayerTrace {
    // Each is T x H, row t = timestep t.
    Matrix gate_i, gate_f, gate_g, gate_o, cell, hidden;
    // T x in: the inputs this layer saw (embeddings or lower hidden).
    Matrix input;
    void resize(std::size_t t, std::size_t h, std::size_t in);
  };

  std::size_t layer_input_dim(std::size_t layer) const {
    return layer == 0 ? config_.embed_dim : config_.hidden_dim;
  }
  std::size_t layer_param_count(std::size_t layer) const;
  Views view(std::span<const double> w) const;

  // Runs the forward pass for one token sequence; fills traces (if given)
  // and writes the final top-layer hidden state into `final_hidden`.
  void forward(const Views& p, std::span<const std::int32_t> seq,
               std::vector<LayerTrace>* traces,
               std::span<double> final_hidden) const;
  // Embeds token `tok` into dst using either the trainable block of w or
  // the frozen table.
  void embed(const Views& p, std::int32_t tok, std::span<double> dst) const;

  LstmConfig config_;
  std::size_t param_count_ = 0;
};

}  // namespace fed
