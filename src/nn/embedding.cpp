#include "nn/embedding.h"

#include <stdexcept>

namespace fed {

EmbeddingTable::EmbeddingTable(std::size_t vocab_size, std::size_t dim,
                               std::uint64_t seed, double scale)
    : table_(vocab_size, dim) {
  if (vocab_size == 0 || dim == 0) {
    throw std::invalid_argument("EmbeddingTable: bad shape");
  }
  Rng rng = make_stream(seed, StreamKind::kModelInit,
                        /*a=*/0x9e3779b9u ^ vocab_size, dim);
  for (double& v : table_.storage()) v = rng.normal(0.0, scale);
}

std::span<const double> EmbeddingTable::lookup(std::int32_t token) const {
  if (token < 0 || static_cast<std::size_t>(token) >= table_.rows()) {
    throw std::out_of_range("EmbeddingTable: token out of range");
  }
  return table_.row(static_cast<std::size_t>(token));
}

}  // namespace fed
