#include "nn/logistic.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "nn/loss.h"
#include "tensor/ops.h"

namespace fed {

LogisticRegression::LogisticRegression(std::size_t input_dim,
                                       std::size_t num_classes)
    : input_dim_(input_dim), num_classes_(num_classes) {
  if (input_dim == 0 || num_classes < 2) {
    throw std::invalid_argument("LogisticRegression: bad shape");
  }
}

void LogisticRegression::init_parameters(std::span<double> w, Rng&) const {
  assert(w.size() == parameter_count());
  // Zero init: standard for convex logistic regression (and what the
  // paper's reference implementation uses for these tasks).
  zero(w);
}

void LogisticRegression::logits_for(std::span<const double> w,
                                    std::span<const double> x,
                                    std::span<double> logits) const {
  ConstMatrixView weight(w.subspan(0, num_classes_ * input_dim_), num_classes_,
                         input_dim_);
  auto bias = w.subspan(num_classes_ * input_dim_, num_classes_);
  gemv(weight, x, logits);
  for (std::size_t c = 0; c < num_classes_; ++c) logits[c] += bias[c];
}

double LogisticRegression::loss_and_grad(std::span<const double> w,
                                         const Dataset& data,
                                         std::span<const std::size_t> batch,
                                         std::span<double> grad) const {
  assert(w.size() == parameter_count() && grad.size() == parameter_count());
  assert(!batch.empty());
  zero(grad);
  MatrixView grad_w(grad.subspan(0, num_classes_ * input_dim_), num_classes_,
                    input_dim_);
  auto grad_b = grad.subspan(num_classes_ * input_dim_, num_classes_);

  Vector logits(num_classes_);
  double total_loss = 0.0;
  for (std::size_t idx : batch) {
    auto x = data.features.row(idx);
    logits_for(w, x, logits);
    total_loss += softmax_cross_entropy_grad(logits, data.labels[idx]);
    // logits now holds dLoss/dLogits; accumulate into W, b grads.
    ger(1.0, logits, x, grad_w);
    add(grad_b, logits, grad_b);
  }
  const double inv = 1.0 / static_cast<double>(batch.size());
  scale(grad, inv);
  return total_loss * inv;
}

double LogisticRegression::loss(std::span<const double> w, const Dataset& data,
                                std::span<const std::size_t> batch) const {
  assert(!batch.empty());
  Vector logits(num_classes_);
  double total = 0.0;
  for (std::size_t idx : batch) {
    logits_for(w, data.features.row(idx), logits);
    total += softmax_cross_entropy(logits, data.labels[idx]);
  }
  return total / static_cast<double>(batch.size());
}

void LogisticRegression::predict(std::span<const double> w,
                                 const Dataset& data,
                                 std::span<const std::size_t> batch,
                                 std::vector<std::int32_t>& out) const {
  out.resize(batch.size());
  Vector logits(num_classes_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    logits_for(w, data.features.row(batch[i]), logits);
    out[i] = static_cast<std::int32_t>(argmax(logits));
  }
}

}  // namespace fed
