#include "nn/lstm.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "nn/loss.h"
#include "tensor/ops.h"

namespace fed {

namespace {
// Gate block offsets within the 4H pre-activation vector.
enum Gate { kInput = 0, kForget = 1, kCandidate = 2, kOutput = 3 };
}  // namespace

LstmClassifier::LstmClassifier(LstmConfig config) : config_(std::move(config)) {
  const auto& c = config_;
  if (c.vocab_size == 0 || c.embed_dim == 0 || c.hidden_dim == 0 ||
      c.num_layers == 0 || c.num_classes < 2) {
    throw std::invalid_argument("LstmClassifier: bad config");
  }
  if (!c.trainable_embedding) {
    if (!c.frozen_embedding) {
      throw std::invalid_argument(
          "LstmClassifier: frozen_embedding required when not trainable");
    }
    if (c.frozen_embedding->vocab_size() != c.vocab_size ||
        c.frozen_embedding->dim() != c.embed_dim) {
      throw std::invalid_argument(
          "LstmClassifier: frozen embedding shape mismatch");
    }
  }
  param_count_ = c.trainable_embedding ? c.vocab_size * c.embed_dim : 0;
  for (std::size_t l = 0; l < c.num_layers; ++l) {
    param_count_ += layer_param_count(l);
  }
  param_count_ += c.num_classes * c.hidden_dim + c.num_classes;
}

std::size_t LstmClassifier::layer_param_count(std::size_t layer) const {
  const std::size_t h = config_.hidden_dim;
  const std::size_t in = layer_input_dim(layer);
  return 4 * h * in + 4 * h * h + 4 * h;
}

LstmClassifier::Views LstmClassifier::view(std::span<const double> w) const {
  assert(w.size() == param_count_);
  Views v{.embedding = {},
          .layers = {},
          .w_out = ConstMatrixView({}, 0, 0),
          .b_out = {}};
  const std::size_t h = config_.hidden_dim;
  std::size_t off = 0;
  if (config_.trainable_embedding) {
    v.embedding = w.subspan(0, config_.vocab_size * config_.embed_dim);
    off += v.embedding.size();
  }
  v.layers.reserve(config_.num_layers);
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    const std::size_t in = layer_input_dim(l);
    ConstMatrixView wx(w.subspan(off, 4 * h * in), 4 * h, in);
    off += 4 * h * in;
    ConstMatrixView wh(w.subspan(off, 4 * h * h), 4 * h, h);
    off += 4 * h * h;
    auto b = w.subspan(off, 4 * h);
    off += 4 * h;
    v.layers.push_back({wx, wh, b});
  }
  v.w_out = ConstMatrixView(w.subspan(off, config_.num_classes * h),
                            config_.num_classes, h);
  off += config_.num_classes * h;
  v.b_out = w.subspan(off, config_.num_classes);
  return v;
}

void LstmClassifier::init_parameters(std::span<double> w, Rng& rng) const {
  assert(w.size() == param_count_);
  const std::size_t h = config_.hidden_dim;
  std::size_t off = 0;
  if (config_.trainable_embedding) {
    for (std::size_t i = 0; i < config_.vocab_size * config_.embed_dim; ++i) {
      w[off++] = rng.normal(0.0, 0.1);
    }
  }
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    const std::size_t in = layer_input_dim(l);
    const double sx = 1.0 / std::sqrt(static_cast<double>(in));
    const double sh = 1.0 / std::sqrt(static_cast<double>(h));
    for (std::size_t i = 0; i < 4 * h * in; ++i) {
      w[off++] = rng.uniform(-sx, sx);
    }
    for (std::size_t i = 0; i < 4 * h * h; ++i) {
      w[off++] = rng.uniform(-sh, sh);
    }
    for (std::size_t g = 0; g < 4; ++g) {
      const double bias = (g == kForget) ? config_.forget_bias : 0.0;
      for (std::size_t i = 0; i < h; ++i) w[off++] = bias;
    }
  }
  const double so = 1.0 / std::sqrt(static_cast<double>(h));
  for (std::size_t i = 0; i < config_.num_classes * h; ++i) {
    w[off++] = rng.uniform(-so, so);
  }
  for (std::size_t i = 0; i < config_.num_classes; ++i) w[off++] = 0.0;
  assert(off == param_count_);
}

void LstmClassifier::LayerTrace::resize(std::size_t t, std::size_t h,
                                        std::size_t in) {
  gate_i = Matrix(t, h);
  gate_f = Matrix(t, h);
  gate_g = Matrix(t, h);
  gate_o = Matrix(t, h);
  cell = Matrix(t, h);
  hidden = Matrix(t, h);
  input = Matrix(t, in);
}

void LstmClassifier::embed(const Views& p, std::int32_t tok,
                           std::span<double> dst) const {
  if (tok < 0 || static_cast<std::size_t>(tok) >= config_.vocab_size) {
    throw std::out_of_range("LstmClassifier: token out of range");
  }
  if (config_.trainable_embedding) {
    copy(p.embedding.subspan(static_cast<std::size_t>(tok) * config_.embed_dim,
                             config_.embed_dim),
         dst);
  } else {
    copy(config_.frozen_embedding->lookup(tok), dst);
  }
}

void LstmClassifier::forward(const Views& p,
                             std::span<const std::int32_t> seq,
                             std::vector<LayerTrace>* traces,
                             std::span<double> final_hidden) const {
  const std::size_t h = config_.hidden_dim;
  const std::size_t t_len = seq.size();
  assert(t_len > 0);

  if (traces) {
    traces->resize(config_.num_layers);
    for (std::size_t l = 0; l < config_.num_layers; ++l) {
      (*traces)[l].resize(t_len, h, layer_input_dim(l));
    }
  }

  // Per-layer running state.
  std::vector<Vector> h_prev(config_.num_layers, Vector(h, 0.0));
  std::vector<Vector> c_prev(config_.num_layers, Vector(h, 0.0));
  Vector x(config_.embed_dim);
  Vector z(4 * h);
  Vector layer_in;  // input to the current layer at this timestep

  for (std::size_t t = 0; t < t_len; ++t) {
    embed(p, seq[t], x);
    layer_in = x;
    for (std::size_t l = 0; l < config_.num_layers; ++l) {
      const LayerView& lay = p.layers[l];
      // z = Wx * in + Wh * h_prev + b
      gemv(lay.wx, layer_in, z);
      gemv_accumulate(lay.wh, h_prev[l], z);
      add(z, lay.b, z);
      Vector& cp = c_prev[l];
      Vector& hp = h_prev[l];
      if (traces) copy(layer_in, (*traces)[l].input.row(t));
      for (std::size_t j = 0; j < h; ++j) {
        const double gi = sigmoid(z[kInput * h + j]);
        const double gf = sigmoid(z[kForget * h + j]);
        const double gg = std::tanh(z[kCandidate * h + j]);
        const double go = sigmoid(z[kOutput * h + j]);
        const double c_new = gf * cp[j] + gi * gg;
        const double h_new = go * std::tanh(c_new);
        if (traces) {
          LayerTrace& tr = (*traces)[l];
          tr.gate_i(t, j) = gi;
          tr.gate_f(t, j) = gf;
          tr.gate_g(t, j) = gg;
          tr.gate_o(t, j) = go;
          tr.cell(t, j) = c_new;
          tr.hidden(t, j) = h_new;
        }
        cp[j] = c_new;
        hp[j] = h_new;
      }
      layer_in = hp;  // feeds the next layer
    }
  }
  copy(h_prev.back(), final_hidden);
}

double LstmClassifier::loss_and_grad(std::span<const double> w,
                                     const Dataset& data,
                                     std::span<const std::size_t> batch,
                                     std::span<double> grad) const {
  assert(w.size() == param_count_ && grad.size() == param_count_);
  assert(!batch.empty());
  const Views p = view(w);
  zero(grad);

  const std::size_t h = config_.hidden_dim;
  const std::size_t c_out = config_.num_classes;

  // Gradient block views (mutable).
  std::size_t off = config_.trainable_embedding
                        ? config_.vocab_size * config_.embed_dim
                        : 0;
  std::span<double> g_embed =
      config_.trainable_embedding ? grad.subspan(0, off) : std::span<double>{};
  std::vector<std::size_t> layer_off(config_.num_layers);
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    layer_off[l] = off;
    off += layer_param_count(l);
  }
  MatrixView g_wout(grad.subspan(off, c_out * h), c_out, h);
  auto g_bout = grad.subspan(off + c_out * h, c_out);

  std::vector<LayerTrace> traces;
  Vector final_hidden(h), logits(c_out);
  Vector dz(4 * h);
  std::vector<Vector> dh(config_.num_layers, Vector(h));
  std::vector<Vector> dc(config_.num_layers, Vector(h));
  Vector dinput;  // gradient flowing to the layer below / embedding

  double total_loss = 0.0;
  for (std::size_t idx : batch) {
    const auto& seq = data.tokens[idx];
    if (seq.empty()) {
      throw std::invalid_argument("LstmClassifier: empty token sequence");
    }
    const std::size_t t_len = seq.size();
    forward(p, seq, &traces, final_hidden);

    gemv(p.w_out, final_hidden, logits);
    add(logits, p.b_out, logits);
    total_loss += softmax_cross_entropy_grad(logits, data.labels[idx]);

    // Output head gradients.
    ger(1.0, logits, final_hidden, g_wout);
    add(g_bout, logits, g_bout);

    // Seed BPTT: dh of top layer at final step; everything else zero.
    for (std::size_t l = 0; l < config_.num_layers; ++l) {
      zero(dh[l]);
      zero(dc[l]);
    }
    gemv_transposed(p.w_out, logits, dh.back());

    // dinput_from_above[t]: gradient arriving at layer l's output at
    // timestep t from layer l+1. Stored per timestep for the layer being
    // processed next. Initialized empty for the top layer.
    Matrix from_above;  // t_len x h, zero when processing top layer
    for (std::size_t lq = config_.num_layers; lq > 0; --lq) {
      const std::size_t l = lq - 1;
      const LayerView& lay = p.layers[l];
      const LayerTrace& tr = traces[l];
      const std::size_t in_dim = layer_input_dim(l);

      MatrixView g_wx(grad.subspan(layer_off[l], 4 * h * in_dim), 4 * h,
                      in_dim);
      MatrixView g_wh(grad.subspan(layer_off[l] + 4 * h * in_dim, 4 * h * h),
                      4 * h, h);
      auto g_b = grad.subspan(layer_off[l] + 4 * h * in_dim + 4 * h * h, 4 * h);

      Matrix to_below(t_len, in_dim);  // grads w.r.t. this layer's inputs

      Vector dh_run = dh[l];  // running dL/dh_t, includes head seed for top
      Vector dc_run = dc[l];
      for (std::size_t tq = t_len; tq > 0; --tq) {
        const std::size_t t = tq - 1;
        // Add the gradient arriving from the layer above at this step.
        if (from_above.rows() == t_len) {
          add(dh_run, from_above.row(t), dh_run);
        }
        const double* cprev_row = nullptr;
        Vector zeros;  // c_{-1} = 0
        if (t > 0) {
          cprev_row = tr.cell.row(t - 1).data();
        } else {
          zeros.assign(h, 0.0);
          cprev_row = zeros.data();
        }
        for (std::size_t j = 0; j < h; ++j) {
          const double gi = tr.gate_i(t, j);
          const double gf = tr.gate_f(t, j);
          const double gg = tr.gate_g(t, j);
          const double go = tr.gate_o(t, j);
          const double ct = tr.cell(t, j);
          const double tc = std::tanh(ct);
          const double dht = dh_run[j];
          const double dct = dc_run[j] + dht * go * (1.0 - tc * tc);
          const double d_go = dht * tc;
          const double d_gi = dct * gg;
          const double d_gg = dct * gi;
          const double d_gf = dct * cprev_row[j];
          dz[kInput * h + j] = d_gi * gi * (1.0 - gi);
          dz[kForget * h + j] = d_gf * gf * (1.0 - gf);
          dz[kCandidate * h + j] = d_gg * (1.0 - gg * gg);
          dz[kOutput * h + j] = d_go * go * (1.0 - go);
          dc_run[j] = dct * gf;  // flows to c_{t-1}
        }
        // Parameter gradients.
        ger(1.0, dz, tr.input.row(t), g_wx);
        if (t > 0) {
          ger(1.0, dz, tr.hidden.row(t - 1), g_wh);
        }  // h_{-1} = 0: no Wh contribution at t = 0
        add(g_b, dz, g_b);
        // Input gradient (to embedding or the layer below).
        auto to_below_row = to_below.row(t);
        gemv_transposed(lay.wx, dz, to_below_row);
        // dh_{t-1} through Wh.
        gemv_transposed(lay.wh, dz, dh_run);
      }
      from_above = std::move(to_below);
    }

    // Embedding gradients (layer 0 inputs).
    if (config_.trainable_embedding) {
      for (std::size_t t = 0; t < t_len; ++t) {
        auto row = g_embed.subspan(
            static_cast<std::size_t>(seq[t]) * config_.embed_dim,
            config_.embed_dim);
        add(row, from_above.row(t), row);
      }
    }
  }

  const double inv = 1.0 / static_cast<double>(batch.size());
  scale(grad, inv);
  return total_loss * inv;
}

double LstmClassifier::loss(std::span<const double> w, const Dataset& data,
                            std::span<const std::size_t> batch) const {
  assert(!batch.empty());
  const Views p = view(w);
  Vector final_hidden(config_.hidden_dim), logits(config_.num_classes);
  double total = 0.0;
  for (std::size_t idx : batch) {
    forward(p, data.tokens[idx], nullptr, final_hidden);
    gemv(p.w_out, final_hidden, logits);
    add(logits, p.b_out, logits);
    total += softmax_cross_entropy(logits, data.labels[idx]);
  }
  return total / static_cast<double>(batch.size());
}

void LstmClassifier::predict(std::span<const double> w, const Dataset& data,
                             std::span<const std::size_t> batch,
                             std::vector<std::int32_t>& out) const {
  const Views p = view(w);
  out.resize(batch.size());
  Vector final_hidden(config_.hidden_dim), logits(config_.num_classes);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    forward(p, data.tokens[batch[i]], nullptr, final_hidden);
    gemv(p.w_out, final_hidden, logits);
    add(logits, p.b_out, logits);
    out[i] = static_cast<std::int32_t>(argmax(logits));
  }
}

}  // namespace fed
