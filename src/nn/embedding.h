// Token embedding tables.
//
// The paper's Sent140 model looks tokens up in a frozen pre-trained GloVe
// table; its Shakespeare model learns an 8-d embedding end-to-end. Both
// modes are supported: a frozen EmbeddingTable owned outside the model
// (our GloVe stand-in is a deterministic random table), or a trainable
// block inside the model's flat parameter vector (see LstmClassifier).

#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "support/rng.h"
#include "tensor/tensor.h"

namespace fed {

class EmbeddingTable {
 public:
  // Builds a frozen vocab_size x dim table with N(0, scale) entries drawn
  // deterministically from `seed`. Stand-in for pre-trained embeddings.
  EmbeddingTable(std::size_t vocab_size, std::size_t dim, std::uint64_t seed,
                 double scale = 0.3);

  std::size_t vocab_size() const { return table_.rows(); }
  std::size_t dim() const { return table_.cols(); }

  // Row for a token id. Token must be in [0, vocab_size).
  std::span<const double> lookup(std::int32_t token) const;

 private:
  Matrix table_;
};

}  // namespace fed
