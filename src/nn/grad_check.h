// Finite-difference gradient verification. Used by the test suite to
// certify every model's analytic backward pass, and available to users
// adding custom models.

#pragma once

#include "nn/module.h"

namespace fed {

struct GradCheckResult {
  // max_i |analytic_i - numeric_i| / max(1, |analytic_i|, |numeric_i|)
  double max_relative_error = 0.0;
  std::size_t worst_index = 0;
  double analytic_at_worst = 0.0;
  double numeric_at_worst = 0.0;
  bool passed(double tolerance) const { return max_relative_error < tolerance; }
};

// Compares the model's analytic gradient against central finite
// differences at `w` over `batch`. `probes` limits how many coordinates
// are checked (spread evenly plus the largest-gradient ones); 0 = all.
GradCheckResult check_gradients(const Model& model, std::span<const double> w,
                                const Dataset& data,
                                std::span<const std::size_t> batch,
                                double step = 1e-5, std::size_t probes = 0);

}  // namespace fed
