// Multinomial logistic regression — the convex model the paper uses for
// the synthetic, MNIST, and FEMNIST tasks (y = argmax softmax(Wx + b)).
//
// Parameter layout in the flat vector: [W (classes x dim, row-major) | b].

#pragma once

#include "nn/module.h"

namespace fed {

class LogisticRegression final : public Model {
 public:
  LogisticRegression(std::size_t input_dim, std::size_t num_classes);

  std::string name() const override { return "logistic_regression"; }
  std::size_t parameter_count() const override {
    return num_classes_ * input_dim_ + num_classes_;
  }

  std::size_t input_dim() const { return input_dim_; }
  std::size_t num_classes() const { return num_classes_; }

  void init_parameters(std::span<double> w, Rng& rng) const override;
  double loss_and_grad(std::span<const double> w, const Dataset& data,
                       std::span<const std::size_t> batch,
                       std::span<double> grad) const override;
  double loss(std::span<const double> w, const Dataset& data,
              std::span<const std::size_t> batch) const override;
  void predict(std::span<const double> w, const Dataset& data,
               std::span<const std::size_t> batch,
               std::vector<std::int32_t>& out) const override;

 private:
  void logits_for(std::span<const double> w, std::span<const double> x,
                  std::span<double> logits) const;

  std::size_t input_dim_;
  std::size_t num_classes_;
};

}  // namespace fed
