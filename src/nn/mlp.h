// Two-layer perceptron with tanh hidden activation. Not used by the
// paper's headline experiments but provided as the simplest non-convex
// dense model: it exercises the framework's model-agnosticism and is used
// in tests and the quickstart example.
//
// Parameter layout: [W1 (hidden x in) | b1 (hidden) | W2 (classes x hidden)
// | b2 (classes)].

#pragma once

#include "nn/module.h"

namespace fed {

class Mlp final : public Model {
 public:
  Mlp(std::size_t input_dim, std::size_t hidden_dim, std::size_t num_classes);

  std::string name() const override { return "mlp"; }
  std::size_t parameter_count() const override;

  void init_parameters(std::span<double> w, Rng& rng) const override;
  double loss_and_grad(std::span<const double> w, const Dataset& data,
                       std::span<const std::size_t> batch,
                       std::span<double> grad) const override;
  double loss(std::span<const double> w, const Dataset& data,
              std::span<const std::size_t> batch) const override;
  void predict(std::span<const double> w, const Dataset& data,
               std::span<const std::size_t> batch,
               std::vector<std::int32_t>& out) const override;

 private:
  struct Blocks {
    ConstMatrixView w1;
    std::span<const double> b1;
    ConstMatrixView w2;
    std::span<const double> b2;
  };
  Blocks view(std::span<const double> w) const;
  // Forward pass; writes hidden activations and logits.
  void forward(const Blocks& p, std::span<const double> x,
               std::span<double> hidden, std::span<double> logits) const;

  std::size_t input_dim_;
  std::size_t hidden_dim_;
  std::size_t num_classes_;
};

}  // namespace fed
