#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tensor/ops.h"

namespace fed {

void Dataset::reserve_dense(std::size_t n, std::size_t dim) {
  features = Matrix(0, dim);
  features.storage().reserve(n * dim);
  labels.reserve(n);
}

void Dataset::append_from(const Dataset& src, std::size_t i) {
  if (i >= src.size()) throw std::out_of_range("append_from: bad index");
  if (src.is_sequence()) {
    tokens.push_back(src.tokens[i]);
  } else {
    if (features.cols() != 0 && features.cols() != src.features.cols()) {
      throw std::invalid_argument("append_from: feature width mismatch");
    }
    const std::size_t dim = src.features.cols();
    Vector& buf = features.storage();
    auto row = src.features.row(i);
    buf.insert(buf.end(), row.begin(), row.end());
    features = Matrix(features.rows() + 1, dim, std::move(buf));
  }
  labels.push_back(src.labels[i]);
}

void Dataset::validate(std::size_t num_classes) const {
  if (is_sequence()) {
    if (tokens.size() != labels.size()) {
      throw std::runtime_error("dataset: tokens/labels size mismatch");
    }
    if (features.rows() != 0) {
      throw std::runtime_error("dataset: both dense and sequence data set");
    }
  } else {
    if (features.rows() != labels.size()) {
      throw std::runtime_error("dataset: features/labels size mismatch");
    }
    if (!all_finite(features.storage())) {
      throw std::runtime_error("dataset: non-finite feature values");
    }
  }
  if (num_classes > 0) {
    for (auto y : labels) {
      if (y < 0 || static_cast<std::size_t>(y) >= num_classes) {
        throw std::runtime_error("dataset: label out of range");
      }
    }
  }
}

std::size_t FederatedDataset::total_train_samples() const {
  std::size_t total = 0;
  for (const auto& c : clients) total += c.train.size();
  return total;
}

std::size_t FederatedDataset::total_test_samples() const {
  std::size_t total = 0;
  for (const auto& c : clients) total += c.test.size();
  return total;
}

std::vector<double> FederatedDataset::client_weights() const {
  const double n = static_cast<double>(total_train_samples());
  std::vector<double> p(clients.size());
  for (std::size_t k = 0; k < clients.size(); ++k) {
    p[k] = static_cast<double>(clients[k].train.size()) / n;
  }
  return p;
}

ClientData train_test_split(const Dataset& all, double train_fraction,
                            Rng& rng) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("train_test_split: fraction must be in (0,1)");
  }
  const std::size_t n = all.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::size_t n_train =
      static_cast<std::size_t>(std::llround(train_fraction * n));
  if (n >= 2) {
    n_train = std::clamp<std::size_t>(n_train, 1, n - 1);
  } else {
    n_train = n;  // a single sample goes to train; test stays empty
  }

  ClientData out;
  if (!all.is_sequence()) {
    out.train.reserve_dense(n_train, all.features.cols());
    out.test.reserve_dense(n - n_train, all.features.cols());
    // Ensure empty sides still know the feature width.
    out.train.features = Matrix(0, all.features.cols());
    out.test.features = Matrix(0, all.features.cols());
  }
  for (std::size_t i = 0; i < n; ++i) {
    (i < n_train ? out.train : out.test).append_from(all, order[i]);
  }
  return out;
}

std::vector<std::size_t> power_law_sample_counts(std::size_t n,
                                                 std::size_t min_samples,
                                                 double mean_log,
                                                 double sigma_log, Rng& rng) {
  std::vector<std::size_t> counts(n);
  for (auto& c : counts) {
    const double draw = std::exp(rng.normal(mean_log, sigma_log));
    c = min_samples + static_cast<std::size_t>(draw);
  }
  return counts;
}

}  // namespace fed
