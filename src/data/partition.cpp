#include "data/partition.h"

#include <algorithm>
#include <stdexcept>

namespace fed {

std::vector<std::vector<std::int32_t>> assign_class_shards(
    std::size_t num_devices, std::size_t num_classes,
    std::size_t classes_per_device, Rng& rng) {
  if (classes_per_device > num_classes) {
    throw std::invalid_argument(
        "assign_class_shards: classes_per_device > num_classes");
  }
  std::vector<std::vector<std::int32_t>> out(num_devices);
  // Draw from a repeatedly reshuffled deck of class labels so overall
  // class usage stays balanced; re-draw a deck position when it would
  // duplicate a class already held by the device.
  std::vector<std::int32_t> deck;
  std::size_t pos = 0;
  auto refill = [&] {
    deck.resize(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
      deck[c] = static_cast<std::int32_t>(c);
    }
    rng.shuffle(deck);
    pos = 0;
  };
  refill();
  for (std::size_t k = 0; k < num_devices; ++k) {
    auto& mine = out[k];
    std::size_t guard = 0;
    while (mine.size() < classes_per_device) {
      if (pos >= deck.size()) refill();
      const std::int32_t c = deck[pos++];
      if (std::find(mine.begin(), mine.end(), c) == mine.end()) {
        mine.push_back(c);
      } else if (++guard > 16 * num_classes) {
        // Deck order is pathologically unlucky; restart the deck.
        refill();
        guard = 0;
      }
    }
    std::sort(mine.begin(), mine.end());
  }
  return out;
}

std::vector<std::size_t> split_count(std::size_t total, std::size_t parts,
                                     Rng& rng) {
  if (parts == 0) throw std::invalid_argument("split_count: zero parts");
  std::vector<std::size_t> out(parts, 0);
  if (total >= parts) {
    // Guarantee one sample per part, distribute the rest uniformly.
    for (auto& v : out) v = 1;
    for (std::size_t i = 0; i < total - parts; ++i) {
      out[rng.uniform_int(parts)] += 1;
    }
  } else {
    for (std::size_t i = 0; i < total; ++i) out[rng.uniform_int(parts)] += 1;
  }
  return out;
}

}  // namespace fed
