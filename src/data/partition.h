// Non-IID partitioning helpers.
//
// The paper's real-data setups induce statistical heterogeneity by label
// sharding: MNIST is spread over 1000 devices with only 2 digits each;
// FEMNIST gives each of 200 devices 5 of 10 classes; sample counts per
// device follow a power law. These helpers reproduce that structure for
// the synthetic stand-in generators.

#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace fed {

// Assigns `classes_per_device` distinct class labels to each of
// `num_devices` devices, balancing total usage of every class (shuffled
// round-robin over class shards, like the canonical label-shard split).
// Requires classes_per_device <= num_classes.
std::vector<std::vector<std::int32_t>> assign_class_shards(
    std::size_t num_devices, std::size_t num_classes,
    std::size_t classes_per_device, Rng& rng);

// Splits `total` samples across `parts` classes roughly evenly with
// multinomial jitter; every part gets at least one sample when
// total >= parts.
std::vector<std::size_t> split_count(std::size_t total, std::size_t parts,
                                     Rng& rng);

}  // namespace fed
