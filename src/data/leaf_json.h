// LEAF-format dataset interchange (Caldas et al., "LEAF: A Benchmark for
// Federated Settings" — the benchmark suite the paper's real datasets are
// curated from). LEAF stores each split as JSON:
//
//   {
//     "users":       ["u000", "u001", ...],
//     "num_samples": [n0, n1, ...],
//     "user_data":   { "u000": {"x": [...], "y": [...]}, ... }
//   }
//
// Dense tasks store each x as a flat feature list; sequence tasks store
// each x as a list of integer token ids (LEAF's raw-text variants are
// tokenized upstream). This module exports this repo's FederatedDataset
// to that layout and imports it back, so experiments can run on real
// LEAF data when it is available instead of the synthetic stand-ins.

#pragma once

#include <string>

#include "data/dataset.h"

namespace fed {

struct LeafMetadata {
  std::string name;
  std::size_t num_classes = 0;
  std::size_t input_dim = 0;   // dense tasks
  std::size_t vocab_size = 0;  // sequence tasks
};

// Writes `<prefix>_train.json` and `<prefix>_test.json` (plus
// `<prefix>_meta.json` carrying LeafMetadata). Users are named
// "u<index>" in client order.
void export_leaf(const FederatedDataset& data, const std::string& prefix);

// Reads a dataset written by export_leaf, or any LEAF-layout pair of
// files plus a metadata file. Client order follows the "users" array of
// the train split; users absent from the test split get empty test sets.
FederatedDataset import_leaf(const std::string& prefix);

}  // namespace fed
