#include "data/stats.h"

#include <cmath>

#include "support/csv.h"

namespace fed {

DatasetStats compute_stats(const FederatedDataset& data) {
  DatasetStats s;
  s.name = data.name;
  s.devices = data.num_clients();
  std::vector<double> per_device;
  per_device.reserve(s.devices);
  for (const auto& c : data.clients) {
    const auto n = c.train.size() + c.test.size();
    s.samples += n;
    per_device.push_back(static_cast<double>(n));
  }
  if (!per_device.empty()) {
    double mean = 0.0;
    for (double v : per_device) mean += v;
    mean /= static_cast<double>(per_device.size());
    double var = 0.0;
    for (double v : per_device) var += (v - mean) * (v - mean);
    var /= static_cast<double>(per_device.size());
    s.mean_per_device = mean;
    s.stdev_per_device = std::sqrt(var);
  }
  return s;
}

std::string format_stats_table(const std::vector<DatasetStats>& rows) {
  TablePrinter table({"Dataset", "Devices", "Samples", "Samples/device mean",
                      "Samples/device stdev"});
  for (const auto& r : rows) {
    table.add_row({r.name, std::to_string(r.devices), std::to_string(r.samples),
                   TablePrinter::fmt(r.mean_per_device, 1),
                   TablePrinter::fmt(r.stdev_per_device, 1)});
  }
  return table.render();
}

}  // namespace fed
