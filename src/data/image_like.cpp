#include "data/image_like.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/partition.h"
#include "tensor/ops.h"

namespace fed {

ImageLikeConfig mnist_like_config(std::uint64_t seed, double scale) {
  ImageLikeConfig c;
  c.name = "mnist_like";
  c.num_devices = std::max<std::size_t>(
      10, static_cast<std::size_t>(std::llround(1000 * scale)));
  c.classes_per_device = 2;
  c.min_samples = 12;
  c.mean_log = 3.0;   // mean ~ 69 samples/device with a long tail (Table 1)
  c.sigma_log = 1.0;
  c.seed = seed;
  return c;
}

ImageLikeConfig femnist_like_config(std::uint64_t seed, double scale) {
  ImageLikeConfig c;
  c.name = "femnist_like";
  c.num_devices = std::max<std::size_t>(
      10, static_cast<std::size_t>(std::llround(200 * scale)));
  c.classes_per_device = 5;
  c.min_samples = 12;
  c.mean_log = 3.4;   // mean ~ 92 samples/device (Table 1)
  c.sigma_log = 1.0;
  // FEMNIST is the harder task in the paper: weaker class signal and
  // stronger per-writer drift.
  c.prototype_scale = 0.09;
  c.style_scale = 0.15;
  c.seed = seed;
  return c;
}

FederatedDataset make_image_like(const ImageLikeConfig& config) {
  if (config.num_devices == 0 || config.num_classes < 2 ||
      config.input_dim == 0 ||
      config.classes_per_device > config.num_classes) {
    throw std::invalid_argument("make_image_like: bad config");
  }
  const std::size_t dim = config.input_dim;

  FederatedDataset fed;
  fed.name = config.name;
  fed.num_classes = config.num_classes;
  fed.input_dim = dim;
  fed.clients.resize(config.num_devices);

  Rng meta = make_stream(config.seed, StreamKind::kDataGeneration);

  // Class prototypes, fixed across the federation.
  Matrix prototypes(config.num_classes, dim);
  for (double& v : prototypes.storage()) {
    v = meta.normal(0.0, config.prototype_scale);
  }

  const auto shards =
      assign_class_shards(config.num_devices, config.num_classes,
                          config.classes_per_device, meta);
  const auto counts =
      power_law_sample_counts(config.num_devices, config.min_samples,
                              config.mean_log, config.sigma_log, meta);

  for (std::size_t k = 0; k < config.num_devices; ++k) {
    Rng rng = make_stream(config.seed, StreamKind::kDataGeneration, k + 1);

    // Device style offset ("writer" drift).
    Vector style(dim);
    for (double& v : style) v = rng.normal(0.0, config.style_scale);

    const auto per_class = split_count(counts[k], shards[k].size(), rng);

    Dataset all;
    all.reserve_dense(counts[k], dim);
    all.features = Matrix(0, dim);
    for (std::size_t s = 0; s < shards[k].size(); ++s) {
      const std::int32_t label = shards[k][s];
      auto proto = prototypes.row(static_cast<std::size_t>(label));
      for (std::size_t i = 0; i < per_class[s]; ++i) {
        Vector& buf = all.features.storage();
        const std::size_t base = buf.size();
        buf.resize(base + dim);
        for (std::size_t j = 0; j < dim; ++j) {
          buf[base + j] =
              proto[j] + style[j] + rng.normal(0.0, config.noise_scale);
        }
        all.features = Matrix(all.features.rows() + 1, dim,
                              std::move(all.features.storage()));
        all.labels.push_back(label);
      }
    }
    all.validate(config.num_classes);

    Rng split_rng = make_stream(config.seed, StreamKind::kPartition, k + 1);
    fed.clients[k] = train_test_split(all, config.train_fraction, split_rng);
  }
  return fed;
}

}  // namespace fed
