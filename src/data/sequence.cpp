#include "data/sequence.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace fed {

NextCharConfig shakespeare_like_config(std::uint64_t seed, double scale) {
  NextCharConfig c;
  c.seed = seed;
  c.num_devices = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::llround(32 * scale)));
  return c;
}

SentimentConfig sent140_like_config(std::uint64_t seed, double scale) {
  SentimentConfig c;
  c.seed = seed;
  c.num_devices = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::llround(96 * scale)));
  return c;
}

FederatedDataset make_next_char(const NextCharConfig& config) {
  if (config.num_devices == 0 || config.vocab_size < 2 || config.seq_len == 0) {
    throw std::invalid_argument("make_next_char: bad config");
  }
  const std::size_t v = config.vocab_size;

  FederatedDataset fed;
  fed.name = config.name;
  fed.num_classes = v;  // predict the next character
  fed.vocab_size = v;
  fed.clients.resize(config.num_devices);

  Rng meta = make_stream(config.seed, StreamKind::kDataGeneration);

  // Global transition logits and character popularity shared by every
  // device.
  Matrix global_logits(v, v);
  for (double& x : global_logits.storage()) x = meta.normal(0.0, 1.0);
  Vector popularity(v);
  for (double& x : popularity) x = meta.normal(0.0, config.popularity_scale);

  const auto stream_lens =
      power_law_sample_counts(config.num_devices, config.min_stream,
                              config.mean_log, config.sigma_log, meta);

  for (std::size_t k = 0; k < config.num_devices; ++k) {
    Rng rng = make_stream(config.seed, StreamKind::kDataGeneration, k + 1);

    // Device transition matrix: softmax rows of G + het * D_k.
    Matrix probs(v, v);
    for (std::size_t r = 0; r < v; ++r) {
      auto row = probs.row(r);
      for (std::size_t c = 0; c < v; ++c) {
        row[c] = popularity[c] + config.sharpness * global_logits(r, c) +
                 config.heterogeneity * rng.normal(0.0, 1.0);
      }
      softmax_inplace(row);
    }

    // Emit the character stream.
    const std::size_t len = stream_lens[k] + config.seq_len;
    std::vector<std::int32_t> stream(len);
    stream[0] = static_cast<std::int32_t>(rng.uniform_int(v));
    for (std::size_t t = 1; t < len; ++t) {
      auto row = probs.row(static_cast<std::size_t>(stream[t - 1]));
      stream[t] = static_cast<std::int32_t>(rng.categorical(row));
    }

    // Sliding windows: tokens [t, t+seq_len) -> label stream[t+seq_len].
    Dataset all;
    const std::size_t n = len - config.seq_len;
    all.tokens.reserve(n);
    all.labels.reserve(n);
    for (std::size_t t = 0; t + config.seq_len < len; ++t) {
      all.tokens.emplace_back(stream.begin() + static_cast<long>(t),
                              stream.begin() +
                                  static_cast<long>(t + config.seq_len));
      all.labels.push_back(stream[t + config.seq_len]);
    }
    all.validate(v);

    Rng split_rng = make_stream(config.seed, StreamKind::kPartition, k + 1);
    fed.clients[k] = train_test_split(all, config.train_fraction, split_rng);
  }
  return fed;
}

FederatedDataset make_sentiment(const SentimentConfig& config) {
  if (config.num_devices == 0 || config.seq_len == 0 ||
      config.num_sentiment_tokens % 2 != 0 ||
      config.num_sentiment_tokens + 2 > config.vocab_size) {
    throw std::invalid_argument("make_sentiment: bad config");
  }
  const std::size_t v = config.vocab_size;
  const std::size_t n_sent = config.num_sentiment_tokens;
  const std::size_t n_pos = n_sent / 2;          // token ids [0, n_pos)
  const std::size_t n_neutral = v - n_sent;      // ids [n_sent, v)

  FederatedDataset fed;
  fed.name = config.name;
  fed.num_classes = 2;
  fed.vocab_size = v;
  fed.clients.resize(config.num_devices);

  Rng meta = make_stream(config.seed, StreamKind::kDataGeneration);
  const auto counts =
      power_law_sample_counts(config.num_devices, config.min_samples,
                              config.mean_log, config.sigma_log, meta);

  for (std::size_t k = 0; k < config.num_devices; ++k) {
    Rng rng = make_stream(config.seed, StreamKind::kDataGeneration, k + 1);

    // Device topic distribution over neutral tokens.
    Vector topic(n_neutral);
    for (double& x : topic) {
      x = config.topic_heterogeneity * rng.normal(0.0, 1.0);
    }
    softmax_inplace(topic);

    // Device class prior, centred on 0.5 with spread.
    const double prior =
        std::clamp(0.5 + 0.25 * rng.normal(0.0, 1.0), 0.1, 0.9);

    Dataset all;
    all.tokens.reserve(counts[k]);
    all.labels.reserve(counts[k]);
    for (std::size_t i = 0; i < counts[k]; ++i) {
      const std::int32_t label = rng.bernoulli(prior) ? 1 : 0;
      std::vector<std::int32_t> seq(config.seq_len);
      for (auto& tok : seq) {
        if (rng.bernoulli(config.sentiment_token_rate)) {
          // Sentiment-bearing token, occasionally of the wrong polarity.
          const bool positive =
              (label == 1) != rng.bernoulli(config.flip_rate);
          const std::size_t offset = positive ? 0 : n_pos;
          tok = static_cast<std::int32_t>(offset + rng.uniform_int(n_pos));
        } else {
          tok = static_cast<std::int32_t>(n_sent + rng.categorical(topic));
        }
      }
      all.tokens.push_back(std::move(seq));
      all.labels.push_back(label);
    }
    all.validate(2);

    Rng split_rng = make_stream(config.seed, StreamKind::kPartition, k + 1);
    fed.clients[k] = train_test_split(all, config.train_fraction, split_rng);
  }
  return fed;
}

}  // namespace fed
