#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace fed {

SyntheticConfig synthetic_iid_config(std::uint64_t seed) {
  SyntheticConfig c;
  c.iid = true;
  c.alpha = 0.0;
  c.beta = 0.0;
  c.seed = seed;
  return c;
}

SyntheticConfig synthetic_config(double alpha, double beta,
                                 std::uint64_t seed) {
  SyntheticConfig c;
  c.alpha = alpha;
  c.beta = beta;
  c.iid = false;
  c.seed = seed;
  return c;
}

FederatedDataset make_synthetic(const SyntheticConfig& config) {
  if (config.num_devices == 0 || config.input_dim == 0 ||
      config.num_classes < 2) {
    throw std::invalid_argument("make_synthetic: bad config");
  }
  const std::size_t dim = config.input_dim;
  const std::size_t classes = config.num_classes;

  FederatedDataset fed;
  fed.name = config.iid ? "synthetic_iid"
                        : "synthetic(" + std::to_string(config.alpha) + "," +
                              std::to_string(config.beta) + ")";
  fed.num_classes = classes;
  fed.input_dim = dim;
  fed.clients.resize(config.num_devices);

  Rng meta = make_stream(config.seed, StreamKind::kDataGeneration);
  const auto counts =
      power_law_sample_counts(config.num_devices, config.min_samples,
                              config.mean_log, config.sigma_log, meta);

  // Diagonal feature covariance Σ_jj = j^-1.2 (1-indexed as in the paper).
  Vector sigma_sqrt(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    sigma_sqrt[j] = std::pow(static_cast<double>(j + 1), -0.6);  // sqrt(j^-1.2)
  }

  // Shared model for the IID variant.
  Matrix shared_w(classes, dim);
  Vector shared_b(classes);
  if (config.iid) {
    for (double& v : shared_w.storage()) v = meta.normal(0.0, 1.0);
    for (double& v : shared_b) v = meta.normal(0.0, 1.0);
  }

  for (std::size_t k = 0; k < config.num_devices; ++k) {
    Rng rng = make_stream(config.seed, StreamKind::kDataGeneration, k + 1);

    Matrix w_k(classes, dim);
    Vector b_k(classes);
    Vector v_k(dim, 0.0);
    if (config.iid) {
      w_k = shared_w;
      b_k = shared_b;
      // x ~ N(0, Σ): v_k stays zero.
    } else {
      // Following the reference generator, alpha and beta act as the
      // standard deviations of the device-level means.
      const double u_k = rng.normal(0.0, config.alpha);
      for (double& v : w_k.storage()) v = rng.normal(u_k, 1.0);
      for (double& v : b_k) v = rng.normal(u_k, 1.0);
      const double big_b_k = rng.normal(0.0, config.beta);
      for (double& v : v_k) v = rng.normal(big_b_k, 1.0);
    }

    const std::size_t n_k = counts[k];
    Dataset all;
    all.reserve_dense(n_k, dim);
    all.features = Matrix(0, dim);
    Vector x(dim), logits(classes);
    for (std::size_t i = 0; i < n_k; ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        x[j] = v_k[j] + sigma_sqrt[j] * rng.normal();
      }
      ConstMatrixView wv(w_k.storage(), classes, dim);
      gemv(wv, x, logits);
      add(logits, b_k, logits);
      const auto y = static_cast<std::int32_t>(argmax(logits));
      Vector& buf = all.features.storage();
      buf.insert(buf.end(), x.begin(), x.end());
      all.features = Matrix(all.features.rows() + 1, dim, std::move(buf));
      all.labels.push_back(y);
    }
    all.validate(classes);

    Rng split_rng = make_stream(config.seed, StreamKind::kPartition, k + 1);
    fed.clients[k] = train_test_split(all, config.train_fraction, split_rng);
  }
  return fed;
}

}  // namespace fed
