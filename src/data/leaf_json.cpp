#include "data/leaf_json.h"

#include <cmath>
#include <stdexcept>

#include "support/json.h"

namespace fed {

namespace {

std::string user_name(std::size_t index) {
  return "u" + std::to_string(index);
}

JsonValue encode_split(const FederatedDataset& data, bool train) {
  JsonArray users;
  JsonArray num_samples;
  JsonObject user_data;
  for (std::size_t k = 0; k < data.num_clients(); ++k) {
    const Dataset& split =
        train ? data.clients[k].train : data.clients[k].test;
    users.emplace_back(user_name(k));
    num_samples.emplace_back(split.size());

    JsonArray xs, ys;
    for (std::size_t i = 0; i < split.size(); ++i) {
      JsonArray x;
      if (split.is_sequence()) {
        for (auto tok : split.tokens[i]) x.emplace_back(double(tok));
      } else {
        for (double v : split.features.row(i)) x.emplace_back(v);
      }
      xs.emplace_back(std::move(x));
      ys.emplace_back(double(split.labels[i]));
    }
    JsonObject record;
    record["x"] = JsonValue(std::move(xs));
    record["y"] = JsonValue(std::move(ys));
    user_data[user_name(k)] = JsonValue(std::move(record));
  }
  JsonObject root;
  root["users"] = JsonValue(std::move(users));
  root["num_samples"] = JsonValue(std::move(num_samples));
  root["user_data"] = JsonValue(std::move(user_data));
  return JsonValue(std::move(root));
}

std::int32_t to_int_label(double v) {
  const double rounded = std::round(v);
  if (std::abs(rounded - v) > 1e-9) {
    throw std::runtime_error("leaf import: non-integer label");
  }
  return static_cast<std::int32_t>(rounded);
}

Dataset decode_user(const JsonValue& record, bool sequence,
                    std::size_t input_dim) {
  Dataset out;
  const JsonArray& xs = record.at("x").as_array();
  const JsonArray& ys = record.at("y").as_array();
  if (xs.size() != ys.size()) {
    throw std::runtime_error("leaf import: x/y length mismatch");
  }
  if (!sequence) out.features = Matrix(0, input_dim);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const JsonArray& x = xs[i].as_array();
    if (sequence) {
      std::vector<std::int32_t> tokens;
      tokens.reserve(x.size());
      for (const auto& t : x) tokens.push_back(to_int_label(t.as_number()));
      out.tokens.push_back(std::move(tokens));
    } else {
      if (x.size() != input_dim) {
        throw std::runtime_error("leaf import: feature width mismatch");
      }
      Vector& buf = out.features.storage();
      for (const auto& v : x) buf.push_back(v.as_number());
      out.features =
          Matrix(out.features.rows() + 1, input_dim, std::move(buf));
    }
    out.labels.push_back(to_int_label(ys[i].as_number()));
  }
  return out;
}

void decode_split(const JsonValue& root, bool sequence, std::size_t input_dim,
                  bool train, FederatedDataset& data) {
  const JsonArray& users = root.at("users").as_array();
  const JsonValue& user_data = root.at("user_data");
  if (train) data.clients.resize(users.size());
  for (std::size_t k = 0; k < users.size(); ++k) {
    const std::string& user = users[k].as_string();
    if (!user_data.contains(user)) {
      throw std::runtime_error("leaf import: user_data missing '" + user + "'");
    }
    Dataset split = decode_user(user_data.at(user), sequence, input_dim);
    if (train) {
      data.clients[k].train = std::move(split);
    } else {
      if (k >= data.clients.size()) {
        throw std::runtime_error("leaf import: test split has extra users");
      }
      data.clients[k].test = std::move(split);
    }
  }
}

}  // namespace

void export_leaf(const FederatedDataset& data, const std::string& prefix) {
  JsonObject meta;
  meta["name"] = JsonValue(data.name);
  meta["num_classes"] = JsonValue(data.num_classes);
  meta["input_dim"] = JsonValue(data.input_dim);
  meta["vocab_size"] = JsonValue(data.vocab_size);
  save_json_file(prefix + "_meta.json", JsonValue(std::move(meta)));
  save_json_file(prefix + "_train.json", encode_split(data, /*train=*/true));
  save_json_file(prefix + "_test.json", encode_split(data, /*train=*/false));
}

FederatedDataset import_leaf(const std::string& prefix) {
  const JsonValue meta = load_json_file(prefix + "_meta.json");
  FederatedDataset data;
  data.name = meta.at("name").as_string();
  data.num_classes = static_cast<std::size_t>(meta.at("num_classes").as_number());
  data.input_dim = static_cast<std::size_t>(meta.at("input_dim").as_number());
  data.vocab_size = static_cast<std::size_t>(meta.at("vocab_size").as_number());
  const bool sequence = data.vocab_size > 0;

  decode_split(load_json_file(prefix + "_train.json"), sequence,
               data.input_dim, /*train=*/true, data);
  decode_split(load_json_file(prefix + "_test.json"), sequence, data.input_dim,
               /*train=*/false, data);

  for (auto& client : data.clients) {
    client.train.validate(data.num_classes);
    client.test.validate(data.num_classes);
  }
  return data;
}

}  // namespace fed
