// Synthetic stand-ins for the paper's MNIST and FEMNIST tasks.
//
// The real datasets cannot be fetched offline; what the experiments
// actually depend on is (a) a convex multinomial-logistic-regression task
// on high-dimensional inputs and (b) label-shard statistical
// heterogeneity with power-law device sizes. We therefore generate
// class-conditional Gaussian "images": class c has a fixed prototype
// μ_c ∈ R^dim; device k additionally has a small style offset s_k
// (per-writer drift, strongest in FEMNIST); a sample of class c on device
// k is x = μ_c + s_k + noise.
//
// mnist-like:   1000 devices, 10 classes, 2 classes/device, power law.
// femnist-like:  200 devices, 10 classes, 5 classes/device, power law.
// (Both match Table 1's structure; sizes are configurable.)

#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace fed {

struct ImageLikeConfig {
  std::string name = "mnist_like";
  std::size_t num_devices = 1000;
  std::size_t num_classes = 10;
  std::size_t input_dim = 784;
  std::size_t classes_per_device = 2;
  // Power-law sample counts (per device).
  std::size_t min_samples = 12;
  double mean_log = 3.0;
  double sigma_log = 1.0;
  // Geometry of the generative model, calibrated so multinomial logistic
  // regression lands near real-MNIST accuracy (~0.9) rather than
  // trivially separating the classes (see EXPERIMENTS.md).
  double prototype_scale = 0.12;  // per-coordinate prototype energy
  double style_scale = 0.1;       // per-device writer drift
  double noise_scale = 1.0;       // within-class sample noise
  double train_fraction = 0.8;
  std::uint64_t seed = 1;
};

// Canonical configurations. `scale` in (0,1] shrinks device counts for
// quick runs while keeping per-device structure identical.
ImageLikeConfig mnist_like_config(std::uint64_t seed = 1, double scale = 1.0);
ImageLikeConfig femnist_like_config(std::uint64_t seed = 1, double scale = 1.0);

FederatedDataset make_image_like(const ImageLikeConfig& config);

}  // namespace fed
