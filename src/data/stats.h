// Table-1-style dataset statistics: devices, samples, mean and stdev of
// samples per device.

#pragma once

#include <string>

#include "data/dataset.h"

namespace fed {

struct DatasetStats {
  std::string name;
  std::size_t devices = 0;
  std::size_t samples = 0;        // train + test, as in Table 1
  double mean_per_device = 0.0;
  double stdev_per_device = 0.0;  // population stdev over devices
};

DatasetStats compute_stats(const FederatedDataset& data);

// Renders one aligned table for several datasets (the Table 1 layout).
std::string format_stats_table(const std::vector<DatasetStats>& rows);

}  // namespace fed
