// The paper's synthetic data family, Synthetic(α, β) (Section 5.1 /
// Appendix C.1), plus the Synthetic IID control.
//
// For device k:
//   u_k ~ N(0, α);  W_k ~ N(u_k, 1) in R^{10x60};  b_k ~ N(u_k, 1) in R^10
//   B_k ~ N(0, β);  v_k elements ~ N(B_k, 1);  x ~ N(v_k, Σ), Σ_jj = j^-1.2
//   y = argmax softmax(W_k x + b_k)
// α controls model heterogeneity across devices, β controls data
// (feature) heterogeneity. The IID variant shares one W, b ~ N(0,1) on
// every device and draws x ~ N(0, Σ).
//
// 30 devices; samples per device follow a power law (lognormal with
// floor). The learning task is a single global multinomial logistic
// regression (60 -> 10).

#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace fed {

struct SyntheticConfig {
  double alpha = 1.0;
  double beta = 1.0;
  bool iid = false;  // when true, alpha/beta are ignored
  std::size_t num_devices = 30;
  std::size_t input_dim = 60;
  std::size_t num_classes = 10;
  // Power-law sample counts: min + floor(exp(N(mean_log, sigma_log))),
  // exactly the reference generator's lognormal(4, 2) + 50. The heavy
  // tail matters: the giant devices are what destabilize FedAvg.
  std::size_t min_samples = 50;
  double mean_log = 4.0;
  double sigma_log = 2.0;
  double train_fraction = 0.8;
  std::uint64_t seed = 1;
};

// Canonical configurations from Figure 2.
SyntheticConfig synthetic_iid_config(std::uint64_t seed = 1);
SyntheticConfig synthetic_config(double alpha, double beta,
                                 std::uint64_t seed = 1);

FederatedDataset make_synthetic(const SyntheticConfig& config);

}  // namespace fed
