// Synthetic stand-ins for the paper's text tasks.
//
// Shakespeare (next-character prediction, one device per speaking role):
// each device k emits characters from its own Markov chain whose
// transition logits are G + het * D_k, where G is a global logits matrix
// and D_k is device-specific. Training samples are sliding windows of
// `seq_len` characters labelled with the next character. This reproduces
// the essential statistic — per-device conditional next-char
// distributions that differ across devices — on the same 2-layer-LSTM
// code path.
//
// Sent140 (binary sentiment, one device per account): a fixed vocabulary
// contains positive-sentiment tokens, negative-sentiment tokens, and
// neutral "topic" tokens. Device k has its own topic preference (how it
// talks) and class prior (how often it is positive). A sample of label y
// mixes sentiment tokens of polarity y with topic tokens; a small flip
// rate injects contradictory tokens so the task is not separable by a
// single token. The model reads these through a frozen embedding
// (GloVe stand-in), as in the paper.

#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace fed {

struct NextCharConfig {
  std::string name = "shakespeare_like";
  std::size_t num_devices = 32;  // paper: 143 roles; scaled for CPU budget
  std::size_t vocab_size = 40;   // paper task uses 80 chars; scaled
  std::size_t seq_len = 12;      // paper: 80; scaled
  // Stream length per device follows a power law (Table 1 shows a very
  // heavy tail: mean 3616, stdev 6808 samples per role; scaled down so a
  // 20-epoch round stays CPU-affordable).
  std::size_t min_stream = 60;
  double mean_log = 3.6;
  double sigma_log = 0.8;
  // Transition logits are popularity(c) + sharpness*G(r,c) + het*D_k(r,c):
  // `popularity` (a shared per-character bias, N(0, popularity_scale))
  // skews the unigram distribution the way real text is skewed — learning
  // it produces the fast initial loss drop the paper's curves show;
  // `sharpness` controls how predictable the shared language is;
  // `heterogeneity` how far each role's style drifts.
  double popularity_scale = 1.5;
  double sharpness = 2.0;
  double heterogeneity = 0.8;
  double train_fraction = 0.8;
  std::uint64_t seed = 1;
};

struct SentimentConfig {
  std::string name = "sent140_like";
  std::size_t num_devices = 96;  // paper: 772 accounts; scaled
  std::size_t vocab_size = 200;
  std::size_t num_sentiment_tokens = 24;  // split evenly positive/negative
  std::size_t seq_len = 12;               // paper: 25; scaled
  // Samples (tweets) per device: Table 1 gives mean 53, stdev 32.
  std::size_t min_samples = 20;
  double mean_log = 3.3;
  double sigma_log = 0.6;
  // Calibrated so an LSTM lands near the paper's Sent140 accuracy
  // (~0.75-0.8) instead of saturating: sparse sentiment tokens, a quarter
  // of which carry the wrong polarity (sarcasm/negation stand-in).
  double topic_heterogeneity = 1.5;  // device topic-preference spread
  double sentiment_token_rate = 0.25;  // fraction of sentiment positions
  double flip_rate = 0.25;  // chance a sentiment token has wrong polarity
  double train_fraction = 0.8;
  std::uint64_t seed = 1;
};

NextCharConfig shakespeare_like_config(std::uint64_t seed = 1,
                                       double scale = 1.0);
SentimentConfig sent140_like_config(std::uint64_t seed = 1,
                                    double scale = 1.0);

FederatedDataset make_next_char(const NextCharConfig& config);
FederatedDataset make_sentiment(const SentimentConfig& config);

}  // namespace fed
