// Dataset containers for federated simulation.
//
// A Dataset holds either dense feature rows (tabular / image-like tasks)
// or integer token sequences (text tasks), plus integer labels. A
// FederatedDataset is the unit the simulator consumes: one ClientData per
// device, each with a local train/test split (the paper splits 80/20 on
// each device, Appendix C.2).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/rng.h"
#include "tensor/tensor.h"

namespace fed {

struct Dataset {
  // Dense tasks: one sample per row. Empty for sequence tasks.
  Matrix features;
  // Sequence tasks: one token sequence per sample. Empty for dense tasks.
  std::vector<std::vector<std::int32_t>> tokens;
  // Class label per sample (for next-char tasks, the character following
  // the sequence).
  std::vector<std::int32_t> labels;

  std::size_t size() const { return labels.size(); }
  bool empty() const { return labels.empty(); }
  bool is_sequence() const { return !tokens.empty(); }

  // Appends sample i of `src` to this dataset. Shapes must agree.
  void append_from(const Dataset& src, std::size_t i);
  // Pre-sizes the dense feature matrix (dense tasks only).
  void reserve_dense(std::size_t n, std::size_t dim);

  // Validates internal consistency (sizes agree, labels in range when
  // num_classes > 0). Throws std::runtime_error on violation.
  void validate(std::size_t num_classes = 0) const;
};

struct ClientData {
  Dataset train;
  Dataset test;

  std::size_t train_size() const { return train.size(); }
};

struct FederatedDataset {
  std::string name;
  std::size_t num_classes = 0;
  // Dense input dimension (0 for sequence tasks).
  std::size_t input_dim = 0;
  // Vocabulary size (0 for dense tasks).
  std::size_t vocab_size = 0;
  std::vector<ClientData> clients;

  std::size_t num_clients() const { return clients.size(); }
  std::size_t total_train_samples() const;
  std::size_t total_test_samples() const;

  // pk weights from Equation (1): n_k / n over training samples.
  std::vector<double> client_weights() const;
};

// Splits `all` into train/test with the given train fraction, shuffling
// sample order with `rng`. Every sample lands in exactly one side; with
// 0 < fraction < 1 and >= 2 samples, both sides are non-empty.
ClientData train_test_split(const Dataset& all, double train_fraction,
                            Rng& rng);

// Draws `n` sample counts following the power-law-style scheme used by
// the paper's synthetic data: lognormal sizes with a minimum floor.
// Produces heavy-tailed counts summing to >= n * min_samples.
std::vector<std::size_t> power_law_sample_counts(std::size_t n,
                                                 std::size_t min_samples,
                                                 double mean_log,
                                                 double sigma_log, Rng& rng);

}  // namespace fed
