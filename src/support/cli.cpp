#include "support/cli.h"

#include <stdexcept>

namespace fed {

namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare boolean flag
    }
  }
}

std::optional<std::string> CliFlags::raw(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  read_[name] = true;
  return it->second;
}

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::optional<std::string> CliFlags::get_optional_string(
    const std::string& name) const {
  return raw(name);
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t fallback) const {
  auto v = raw(name);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                *v + "'");
  }
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  auto v = raw(name);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                *v + "'");
  }
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  auto v = raw(name);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              *v + "'");
}

std::vector<double> CliFlags::get_double_list(
    const std::string& name, std::vector<double> fallback) const {
  auto v = raw(name);
  if (!v) return fallback;
  std::vector<double> out;
  std::string cur;
  for (char c : *v + ",") {
    if (c == ',') {
      if (!cur.empty()) {
        out.push_back(std::stod(cur));
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  return out;
}

std::vector<std::string> CliFlags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!read_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace fed
