// CSV + aligned-table writers for experiment output. Bench drivers write
// one CSV per figure (so results can be re-plotted) and print a readable
// table to stdout (the paper's "rows/series").

#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace fed {

// Streams rows to a CSV file. Values are quoted only when necessary.
class CsvWriter {
 public:
  // Creates/truncates `path`; parent directories are created if missing.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void write_row(const std::vector<std::string>& cells);
  // Convenience: formats doubles with enough precision to round-trip.
  void write_row_numeric(const std::vector<double>& cells);

  const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

// Accumulates rows and prints them as an aligned monospace table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Renders to the given stream (default precision already applied by
  // the caller; this class only aligns).
  std::string render() const;

  static std::string fmt(double v, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Ensures a directory exists (recursively). Throws on failure.
void ensure_directory(const std::string& path);

}  // namespace fed
