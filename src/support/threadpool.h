// Fixed-size thread pool used to run the selected devices of a federated
// round in parallel. The simulation stays deterministic because every
// client draws from its own (seed, round, device)-keyed RNG stream; the
// pool only changes wall-clock time, never results.
//
// Workers register named profiler tracks ("pool-0", "pool-1", ...); when
// the span profiler is enabled each task records its queue wait (async
// "b"/"e" pair — waits overlap, so they are not X spans) and an
// execution span, and per-worker busy/wait totals accumulate for
// utilization gauges (worker_stats). With the profiler disabled the only
// added cost per task is one relaxed atomic load.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "support/thread_annotations.h"

namespace fed {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; the returned future rethrows any task exception.
  // Takes mutex_ briefly — never call from a task holding it.
  std::future<void> submit(std::function<void()> task) FED_EXCLUDES(mutex_);

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Per-worker execution counters. tasks_executed always counts;
  // busy/wait seconds accumulate only while the profiler is enabled.
  struct WorkerStats {
    std::uint64_t tasks_executed = 0;
    double busy_seconds = 0.0;
    double queue_wait_seconds = 0.0;
  };
  std::vector<WorkerStats> worker_stats() const;

 private:
  struct Task {
    std::packaged_task<void()> work;
    std::uint64_t enqueue_us = 0;  // 0 = profiler was off at submit time
  };
  // Written only by the owning worker; read by worker_stats().
  struct WorkerCounters {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_us{0};
    std::atomic<std::uint64_t> wait_us{0};
  };

  void worker_loop(std::size_t index);

  // workers_ and counters_ are fixed at construction (written before the
  // workers start, const thereafter); the queue and the stop flag are
  // the only cross-thread mutable state, guarded by mutex_ with cv_
  // signalling arrivals and shutdown.
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerCounters>> counters_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<Task> tasks_ FED_GUARDED_BY(mutex_);
  bool stop_ FED_GUARDED_BY(mutex_) = false;
};

}  // namespace fed
