// Fixed-size thread pool used to run the selected devices of a federated
// round in parallel. The simulation stays deterministic because every
// client draws from its own (seed, round, device)-keyed RNG stream; the
// pool only changes wall-clock time, never results.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fed {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> task);

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace fed
