// Deterministic, counter-keyed random number streams.
//
// The paper's experimental protocol fixes the selected devices, the
// straggler assignment, and the mini-batch order across every compared
// method (Section 5.1). To make that invariant hold regardless of which
// algorithm runs, how many threads execute clients, or in which order,
// every random draw in this library comes from a stream keyed by
// (seed, salt...) where the salts identify the purpose of the draw:
// e.g. (seed, kDeviceSampling, round) or (seed, kMinibatch, round, device).
//
// Streams are cheap value types: a SplitMix64-seeded xoshiro256++ engine.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace fed {

// Purpose tags for stream derivation. Each random decision in the system
// uses a distinct tag so that adding draws to one subsystem never perturbs
// another.
enum class StreamKind : std::uint64_t {
  kDataGeneration = 1,   // synthetic dataset creation
  kPartition = 2,        // assigning samples to devices
  kModelInit = 3,        // initial global parameters
  kDeviceSampling = 4,   // which K devices participate in a round
  kStraggler = 5,        // which selected devices straggle, and their epochs
  kMinibatch = 6,        // per-device mini-batch shuffling
  kSolver = 7,           // any extra solver randomness
  kTest = 8,             // reserved for unit tests
  kFault = 9,            // channel fault injection (comm/fault.h)
  kChurn = 10,           // open-world device arrivals/departures (sim/churn.h)
};

// xoshiro256++ engine with SplitMix64 key expansion. Satisfies
// std::uniform_random_bit_generator so it composes with <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Derives a stream from a base seed plus any number of salts.
  explicit Rng(std::uint64_t seed) { init(seed); }
  Rng(std::uint64_t seed, std::initializer_list<std::uint64_t> salts) {
    std::uint64_t key = seed;
    for (std::uint64_t s : salts) key = mix(key, s);
    init(key);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box-Muller (cached pair).
  double normal();
  // Normal with given mean / stddev.
  double normal(double mean, double stddev);
  // Bernoulli(p).
  bool bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_int(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // Samples k distinct indices from [0, n) uniformly (partial Fisher-Yates).
  // Requires k <= n. Result is in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Samples one index from a discrete distribution proportional to weights.
  // Requires at least one strictly positive weight.
  std::size_t categorical(std::span<const double> weights);

  // Samples k indices WITHOUT replacement where inclusion probability is
  // proportional to weights (sequential weighted sampling). k <= n.
  std::vector<std::size_t> weighted_sample_without_replacement(
      std::span<const double> weights, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static std::uint64_t splitmix(std::uint64_t& state);
  static std::uint64_t mix(std::uint64_t a, std::uint64_t b);
  void init(std::uint64_t key);

  std::array<std::uint64_t, 4> s_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Convenience: derive the canonical stream for a purpose.
Rng make_stream(std::uint64_t seed, StreamKind kind);
Rng make_stream(std::uint64_t seed, StreamKind kind, std::uint64_t a);
Rng make_stream(std::uint64_t seed, StreamKind kind, std::uint64_t a,
                std::uint64_t b);

}  // namespace fed
