// Minimal typed command-line flag parser for the bench drivers and
// examples: --name=value or --name value; bools accept bare --flag.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fed {

class CliFlags {
 public:
  CliFlags(int argc, const char* const* argv);

  // Typed accessors; return fallback when the flag is absent. Throws
  // std::invalid_argument on a malformed value.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  // Presence-carrying variant for flags with no sensible default, e.g.
  // --trace-out <path>: nullopt when the flag is absent.
  std::optional<std::string> get_optional_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;
  // Comma-separated list of doubles, e.g. --mus=0,0.01,1.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> fallback) const;

  bool has(const std::string& name) const { return values_.contains(name); }

  // Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  // Flags seen but never read; useful to warn on typos.
  std::vector<std::string> unused() const;

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace fed
