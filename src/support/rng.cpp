#include "support/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fed {

std::uint64_t Rng::splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::mix(std::uint64_t a, std::uint64_t b) {
  // One SplitMix64 round over the combination; good avalanche, cheap.
  std::uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix(state);
}

void Rng::init(std::uint64_t key) {
  std::uint64_t state = key;
  for (auto& word : s_) word = splitmix(state);
  // xoshiro must not be seeded with all zeros; splitmix of any key makes
  // this astronomically unlikely, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

double Rng::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller. u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + uniform_int(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("categorical: zero total");
  double u = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  // Floating-point slack: return last positive-weight index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::weighted_sample_without_replacement(
    std::span<const double> weights, std::size_t k) {
  const std::size_t n = weights.size();
  if (k > n) {
    throw std::invalid_argument("weighted_sample_without_replacement: k > n");
  }
  std::vector<double> w(weights.begin(), weights.end());
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t draw = 0; draw < k; ++draw) {
    std::size_t idx = categorical(w);
    chosen.push_back(idx);
    w[idx] = 0.0;  // remove from pool
  }
  return chosen;
}

Rng make_stream(std::uint64_t seed, StreamKind kind) {
  return Rng(seed, {static_cast<std::uint64_t>(kind)});
}
Rng make_stream(std::uint64_t seed, StreamKind kind, std::uint64_t a) {
  return Rng(seed, {static_cast<std::uint64_t>(kind), a});
}
Rng make_stream(std::uint64_t seed, StreamKind kind, std::uint64_t a,
                std::uint64_t b) {
  return Rng(seed, {static_cast<std::uint64_t>(kind), a, b});
}

}  // namespace fed
