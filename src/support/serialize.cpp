#include "support/serialize.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/csv.h"

namespace fed {

namespace {
constexpr char kMagic[4] = {'F', 'P', 'X', '1'};

void ensure_parent(const std::string& path) {
  auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) ensure_directory(parent.string());
}
}  // namespace

void save_checkpoint(const std::string& path, const Vector& w) {
  ensure_parent(path);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t dim = w.size();
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(w.data()),
            static_cast<std::streamsize>(w.size() * sizeof(double)));
  if (!out) throw std::runtime_error("save_checkpoint: write failed: " + path);
}

Vector load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_checkpoint: bad magic in " + path);
  }
  std::uint64_t dim = 0;
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  if (!in) throw std::runtime_error("load_checkpoint: truncated header");
  Vector w(dim);
  in.read(reinterpret_cast<char*>(w.data()),
          static_cast<std::streamsize>(dim * sizeof(double)));
  if (!in || in.gcount() != static_cast<std::streamsize>(dim * sizeof(double))) {
    throw std::runtime_error("load_checkpoint: truncated payload");
  }
  in.peek();
  if (!in.eof()) {
    throw std::runtime_error("load_checkpoint: trailing bytes in " + path);
  }
  return w;
}

Vector load_checkpoint(const std::string& path, std::size_t expected_dim) {
  Vector w = load_checkpoint(path);
  if (w.size() != expected_dim) {
    throw std::runtime_error("load_checkpoint: dimension mismatch (" +
                             std::to_string(w.size()) + " vs expected " +
                             std::to_string(expected_dim) + ")");
  }
  return w;
}

namespace {
const std::vector<std::string> kHistoryHeader = {
    "round",        "evaluated",        "train_loss",
    "train_accuracy", "test_accuracy",  "grad_variance",
    "dissimilarity_b", "dissimilarity_measured", "mu",
    "mean_gamma",   "gamma_measured",   "contributors",
    "stragglers"};
}  // namespace

void save_history(const std::string& path, const TrainHistory& history) {
  CsvWriter csv(path, kHistoryHeader);
  // Disengaged optionals serialize as 0 with their presence flag cleared,
  // keeping the on-disk schema identical to the pre-optional format.
  const auto fmt = [](const std::optional<double>& v) {
    std::ostringstream out;
    out.precision(17);
    out << v.value_or(0.0);
    return out.str();
  };
  for (const auto& m : history.rounds) {
    std::ostringstream mu;
    mu.precision(17);
    mu << m.mu;
    csv.write_row({std::to_string(m.round), m.evaluated() ? "1" : "0",
                   fmt(m.train_loss), fmt(m.train_accuracy),
                   fmt(m.test_accuracy), fmt(m.grad_variance),
                   fmt(m.dissimilarity_b),
                   m.dissimilarity_b.has_value() ? "1" : "0", mu.str(),
                   fmt(m.mean_gamma), m.mean_gamma.has_value() ? "1" : "0",
                   std::to_string(m.contributors),
                   std::to_string(m.stragglers)});
  }
}

namespace {

constexpr char kBroadcastMagic[4] = {'F', 'P', 'B', '1'};
constexpr char kUpdateMagic[4] = {'F', 'P', 'U', '1'};
constexpr char kPartialMagic[4] = {'F', 'P', 'S', '1'};

// Append-only little-endian writer over a WireBuffer.
class ByteWriter {
 public:
  explicit ByteWriter(WireBuffer& out) : out_(out) {}

  void magic(const char (&m)[4]) {
    out_.insert(out_.end(), reinterpret_cast<const std::uint8_t*>(m),
                reinterpret_cast<const std::uint8_t*>(m) + 4);
  }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void flag(bool v) { out_.push_back(v ? 1 : 0); }
  void doubles(std::span<const double> v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }
  void bytes(std::span<const std::uint8_t> v) {
    u64(v.size());
    raw(v.data(), v.size());
  }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), bytes, bytes + n);
  }
  WireBuffer& out_;
};

// Bounds-checked cursor over an encoded buffer. Every read throws on
// truncation; finish() rejects trailing bytes.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> buffer, const char* what)
      : buffer_(buffer), what_(what) {}

  void magic(const char (&m)[4]) {
    if (buffer_.size() < pos_ + 4 ||
        std::memcmp(buffer_.data() + pos_, m, 4) != 0) {
      throw std::runtime_error(std::string(what_) + ": bad magic");
    }
    pos_ += 4;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof(v));
    return v;
  }
  double f64() {
    double v;
    raw(&v, sizeof(v));
    return v;
  }
  bool flag() {
    std::uint8_t v;
    raw(&v, sizeof(v));
    if (v > 1) {
      throw std::runtime_error(std::string(what_) + ": corrupt boolean flag");
    }
    return v == 1;
  }
  Vector doubles() {
    const std::uint64_t n = u64();
    if ((buffer_.size() - pos_) / sizeof(double) < n) {
      throw std::runtime_error(std::string(what_) + ": truncated payload");
    }
    Vector v(n);
    raw(v.data(), n * sizeof(double));
    return v;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint64_t n = u64();
    if (buffer_.size() - pos_ < n) {
      throw std::runtime_error(std::string(what_) + ": truncated payload");
    }
    std::vector<std::uint8_t> v(n);
    raw(v.data(), n);
    return v;
  }
  void finish() const {
    if (pos_ != buffer_.size()) {
      throw std::runtime_error(std::string(what_) + ": trailing bytes");
    }
  }

 private:
  void raw(void* p, std::size_t n) {
    if (buffer_.size() - pos_ < n) {
      throw std::runtime_error(std::string(what_) + ": truncated");
    }
    if (n > 0) {  // empty Vector::data() may be null; memcpy(null,..,0) is UB
      std::memcpy(p, buffer_.data() + pos_, n);
    }
    pos_ += n;
  }
  std::span<const std::uint8_t> buffer_;
  std::size_t pos_ = 0;
  const char* what_;
};

}  // namespace

std::size_t broadcast_wire_size(std::size_t param_dim,
                                std::size_t correction_dim) {
  return kBroadcastEnvelopeBytes + (param_dim + correction_dim) * sizeof(double);
}

std::size_t broadcast_wire_size(const ModelBroadcast& message) {
  return broadcast_wire_size(message.parameters.size(),
                             message.correction.size());
}

std::size_t update_wire_size(std::size_t dim) {
  return kUpdateEnvelopeBytes + dim * sizeof(double);
}

std::size_t update_wire_size(const ClientUpdate& message) {
  return update_wire_size(message.result.update.size());
}

WireBuffer encode_broadcast(const ModelBroadcast& message) {
  WireBuffer out;
  out.reserve(broadcast_wire_size(message));
  ByteWriter w(out);
  w.magic(kBroadcastMagic);
  w.u64(message.round);
  w.u64(message.trace.trace_id);
  w.u64(message.trace.span_id);
  w.f64(message.config.mu);
  w.u64(message.config.batch_size);
  w.f64(message.config.learning_rate);
  w.f64(message.config.clip_norm);
  w.flag(message.config.measure_gamma);
  w.u64(message.budget.device);
  w.flag(message.budget.straggler);
  w.u64(message.budget.epochs);
  w.u64(message.budget.iterations);
  w.doubles(message.parameters);
  w.doubles(message.correction);
  return out;
}

OwnedBroadcast decode_broadcast(std::span<const std::uint8_t> buffer) {
  ByteReader r(buffer, "decode_broadcast");
  r.magic(kBroadcastMagic);
  OwnedBroadcast m;
  m.round = r.u64();
  m.trace.trace_id = r.u64();
  m.trace.span_id = r.u64();
  m.config.mu = r.f64();
  m.config.batch_size = r.u64();
  m.config.learning_rate = r.f64();
  m.config.clip_norm = r.f64();
  m.config.measure_gamma = r.flag();
  m.budget.device = r.u64();
  m.budget.straggler = r.flag();
  m.budget.epochs = r.u64();
  m.budget.iterations = r.u64();
  m.parameters = r.doubles();
  m.correction = r.doubles();
  r.finish();
  return m;
}

WireBuffer encode_update(const ClientUpdate& message) {
  WireBuffer out;
  out.reserve(update_wire_size(message));
  ByteWriter w(out);
  w.magic(kUpdateMagic);
  w.u64(message.round);
  w.u64(message.trace.trace_id);
  w.u64(message.trace.span_id);
  w.u64(message.result.device);
  w.u64(message.result.num_samples);
  w.flag(message.result.straggler);
  w.u64(message.result.iterations);
  w.f64(message.result.gamma);
  w.flag(message.result.gamma_measured);
  w.f64(message.result.solve_seconds);
  w.doubles(message.result.update);
  return out;
}

namespace {

void write_exact(ByteWriter& w, const ExactSum& sum) {
  w.flag(sum.has_nonfinite());
  w.f64(sum.nonfinite());
  for (const std::uint64_t limb : sum.limbs()) w.u64(limb);
}

ExactSum read_exact(ByteReader& r) {
  const bool has_nonfinite = r.flag();
  const double nonfinite = r.f64();
  std::array<std::uint64_t, ExactSum::kLimbs> limbs;
  for (auto& limb : limbs) limb = r.u64();
  return ExactSum::restore(limbs, has_nonfinite, nonfinite);
}

}  // namespace

std::size_t partial_sum_wire_size(std::size_t dim) {
  return kPartialEnvelopeBytes + dim * kExactSumWireBytes;
}

std::size_t partial_sum_wire_size(const PartialSumUpdate& message) {
  return partial_sum_wire_size(message.partial.dim());
}

WireBuffer encode_partial_sum(const PartialSumUpdate& message) {
  WireBuffer out;
  out.reserve(partial_sum_wire_size(message));
  ByteWriter w(out);
  w.magic(kPartialMagic);
  w.u64(message.round);
  w.u64(message.trace.trace_id);
  w.u64(message.trace.span_id);
  w.u64(message.shard);
  // Scheme byte: 0 = weighted average, 1 = simple average.
  w.flag(message.partial.scheme() ==
         SamplingScheme::kWeightedThenSimpleAverage);
  w.u64(message.partial.contributors());
  write_exact(w, message.partial.weight_sum());
  w.u64(message.partial.dim());
  for (const ExactSum& sum : message.partial.coordinate_sums()) {
    write_exact(w, sum);
  }
  return out;
}

PartialSumUpdate decode_partial_sum(std::span<const std::uint8_t> buffer) {
  ByteReader r(buffer, "decode_partial_sum");
  r.magic(kPartialMagic);
  PartialSumUpdate m;
  m.round = r.u64();
  m.trace.trace_id = r.u64();
  m.trace.span_id = r.u64();
  m.shard = r.u64();
  const bool simple = r.flag();  // scheme byte: 0 weighted, 1 simple
  const SamplingScheme scheme = simple
                                    ? SamplingScheme::kWeightedThenSimpleAverage
                                    : SamplingScheme::kUniformThenWeightedAverage;
  const std::uint64_t contributors = r.u64();
  ExactSum weight = read_exact(r);
  const std::uint64_t dim = r.u64();
  if ((buffer.size() - kPartialEnvelopeBytes) / kExactSumWireBytes < dim) {
    throw std::runtime_error("decode_partial_sum: truncated payload");
  }
  std::vector<ExactSum> coordinates;
  coordinates.reserve(dim);
  for (std::uint64_t i = 0; i < dim; ++i) coordinates.push_back(read_exact(r));
  r.finish();
  m.partial = PartialAggregate::restore(scheme, contributors, std::move(weight),
                                        std::move(coordinates));
  return m;
}

ClientUpdate decode_update(std::span<const std::uint8_t> buffer) {
  ByteReader r(buffer, "decode_update");
  r.magic(kUpdateMagic);
  ClientUpdate m;
  m.round = r.u64();
  m.trace.trace_id = r.u64();
  m.trace.span_id = r.u64();
  m.result.device = r.u64();
  m.result.num_samples = r.u64();
  m.result.straggler = r.flag();
  m.result.iterations = r.u64();
  m.result.gamma = r.f64();
  m.result.gamma_measured = r.flag();
  m.result.solve_seconds = r.f64();
  m.result.update = r.doubles();
  r.finish();
  return m;
}

namespace {

constexpr char kCheckpointMagic[4] = {'F', 'P', 'C', '1'};
constexpr std::uint64_t kCheckpointVersion = 1;

// FNV-1a over a byte range: the checkpoint's integrity trailer. Bit
// flips inside the float64 payload decode "successfully" (they just
// change a double), so structural validation alone cannot catch a torn
// or corrupted checkpoint file.
std::uint64_t fnv1a_bytes(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

WireBuffer encode_checkpoint_state(const CheckpointState& state) {
  WireBuffer out;
  out.reserve(256 + state.parameters.size() * sizeof(double) +
              state.active.size() + state.rounds.size() * 83);
  ByteWriter w(out);
  w.magic(kCheckpointMagic);
  w.u64(kCheckpointVersion);
  w.u64(state.fingerprint);
  w.u64(state.seed);
  w.u64(state.next_round);
  w.u64(state.first_round);
  w.f64(state.mu);
  w.flag(state.has_adaptive);
  w.f64(state.adaptive_mu);
  w.f64(state.adaptive_last_loss);
  w.flag(state.adaptive_has_last);
  w.u64(state.adaptive_consecutive_decreases);
  w.flag(state.has_theory);
  w.f64(state.theory_mu);
  w.f64(state.theory_b_sq_ema);
  w.flag(state.theory_has_estimate);
  w.doubles(state.parameters);
  w.u64(state.population);
  w.u64(state.churn_arrivals);
  w.u64(state.churn_departures);
  w.bytes(state.active);
  w.u64(state.rounds.size());
  for (const RoundMetrics& m : state.rounds) {
    w.u64(m.round);
    w.flag(m.evaluated());
    w.f64(m.train_loss.value_or(0.0));
    w.f64(m.train_accuracy.value_or(0.0));
    w.f64(m.test_accuracy.value_or(0.0));
    w.flag(m.dissimilarity_b.has_value());
    w.f64(m.grad_variance.value_or(0.0));
    w.f64(m.dissimilarity_b.value_or(0.0));
    w.f64(m.mu);
    w.flag(m.mean_gamma.has_value());
    w.f64(m.mean_gamma.value_or(0.0));
    w.u64(m.contributors);
    w.u64(m.stragglers);
  }
  w.u64(fnv1a_bytes(out.data(), out.size()));
  return out;
}

CheckpointState decode_checkpoint_state(std::span<const std::uint8_t> buffer) {
  // Integrity first: the final u64 must be the FNV-1a of everything
  // before it. Any mutation — truncation, bit flip, trailing garbage —
  // invalidates the trailer before field parsing even starts.
  constexpr std::size_t kTrailerBytes = 8;
  if (buffer.size() < 4 + 8 + kTrailerBytes) {
    throw std::runtime_error("decode_checkpoint_state: truncated");
  }
  const std::size_t body = buffer.size() - kTrailerBytes;
  std::uint64_t stored = 0;
  std::memcpy(&stored, buffer.data() + body, kTrailerBytes);
  if (stored != fnv1a_bytes(buffer.data(), body)) {
    throw std::runtime_error("decode_checkpoint_state: checksum mismatch");
  }
  ByteReader r(buffer.first(body), "decode_checkpoint_state");
  r.magic(kCheckpointMagic);
  if (r.u64() != kCheckpointVersion) {
    throw std::runtime_error("decode_checkpoint_state: unsupported version");
  }
  CheckpointState state;
  state.fingerprint = r.u64();
  state.seed = r.u64();
  state.next_round = r.u64();
  state.first_round = r.u64();
  state.mu = r.f64();
  state.has_adaptive = r.flag();
  state.adaptive_mu = r.f64();
  state.adaptive_last_loss = r.f64();
  state.adaptive_has_last = r.flag();
  state.adaptive_consecutive_decreases = r.u64();
  state.has_theory = r.flag();
  state.theory_mu = r.f64();
  state.theory_b_sq_ema = r.f64();
  state.theory_has_estimate = r.flag();
  state.parameters = r.doubles();
  state.population = r.u64();
  state.churn_arrivals = r.u64();
  state.churn_departures = r.u64();
  state.active = r.bytes();
  if (state.active.size() != (state.population + 7) / 8) {
    throw std::runtime_error(
        "decode_checkpoint_state: active bitmask does not match population");
  }
  const std::uint64_t num_rounds = r.u64();
  state.rounds.reserve(std::min<std::uint64_t>(num_rounds, 1 << 20));
  for (std::uint64_t i = 0; i < num_rounds; ++i) {
    RoundMetrics m;
    m.round = r.u64();
    const bool evaluated = r.flag();
    const double train_loss = r.f64();
    const double train_accuracy = r.f64();
    const double test_accuracy = r.f64();
    if (evaluated) {
      m.train_loss = train_loss;
      m.train_accuracy = train_accuracy;
      m.test_accuracy = test_accuracy;
    }
    const bool has_dissimilarity = r.flag();
    const double grad_variance = r.f64();
    const double dissimilarity_b = r.f64();
    if (has_dissimilarity) {
      m.grad_variance = grad_variance;
      m.dissimilarity_b = dissimilarity_b;
    }
    m.mu = r.f64();
    const bool has_gamma = r.flag();
    const double mean_gamma = r.f64();
    if (has_gamma) m.mean_gamma = mean_gamma;
    m.contributors = r.u64();
    m.stragglers = r.u64();
    state.rounds.push_back(m);
  }
  r.finish();
  return state;
}

TrainHistory load_history(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_history: cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("load_history: empty file " + path);
  }
  TrainHistory history;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream row(line);
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    if (cells.size() != kHistoryHeader.size()) {
      throw std::runtime_error("load_history: malformed row in " + path);
    }
    RoundMetrics m;
    m.round = std::stoull(cells[0]);
    if (cells[1] == "1") {
      m.train_loss = std::stod(cells[2]);
      m.train_accuracy = std::stod(cells[3]);
      m.test_accuracy = std::stod(cells[4]);
    }
    if (cells[7] == "1") {
      m.grad_variance = std::stod(cells[5]);
      m.dissimilarity_b = std::stod(cells[6]);
    }
    m.mu = std::stod(cells[8]);
    if (cells[10] == "1") m.mean_gamma = std::stod(cells[9]);
    m.contributors = std::stoull(cells[11]);
    m.stragglers = std::stoull(cells[12]);
    history.rounds.push_back(m);
  }
  return history;
}

}  // namespace fed
