#include "support/serialize.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/csv.h"

namespace fed {

namespace {
constexpr char kMagic[4] = {'F', 'P', 'X', '1'};

void ensure_parent(const std::string& path) {
  auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) ensure_directory(parent.string());
}
}  // namespace

void save_checkpoint(const std::string& path, const Vector& w) {
  ensure_parent(path);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t dim = w.size();
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(w.data()),
            static_cast<std::streamsize>(w.size() * sizeof(double)));
  if (!out) throw std::runtime_error("save_checkpoint: write failed: " + path);
}

Vector load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_checkpoint: bad magic in " + path);
  }
  std::uint64_t dim = 0;
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  if (!in) throw std::runtime_error("load_checkpoint: truncated header");
  Vector w(dim);
  in.read(reinterpret_cast<char*>(w.data()),
          static_cast<std::streamsize>(dim * sizeof(double)));
  if (!in || in.gcount() != static_cast<std::streamsize>(dim * sizeof(double))) {
    throw std::runtime_error("load_checkpoint: truncated payload");
  }
  in.peek();
  if (!in.eof()) {
    throw std::runtime_error("load_checkpoint: trailing bytes in " + path);
  }
  return w;
}

Vector load_checkpoint(const std::string& path, std::size_t expected_dim) {
  Vector w = load_checkpoint(path);
  if (w.size() != expected_dim) {
    throw std::runtime_error("load_checkpoint: dimension mismatch (" +
                             std::to_string(w.size()) + " vs expected " +
                             std::to_string(expected_dim) + ")");
  }
  return w;
}

namespace {
const std::vector<std::string> kHistoryHeader = {
    "round",        "evaluated",        "train_loss",
    "train_accuracy", "test_accuracy",  "grad_variance",
    "dissimilarity_b", "dissimilarity_measured", "mu",
    "mean_gamma",   "gamma_measured",   "contributors",
    "stragglers"};
}  // namespace

void save_history(const std::string& path, const TrainHistory& history) {
  CsvWriter csv(path, kHistoryHeader);
  // Disengaged optionals serialize as 0 with their presence flag cleared,
  // keeping the on-disk schema identical to the pre-optional format.
  const auto fmt = [](const std::optional<double>& v) {
    std::ostringstream out;
    out.precision(17);
    out << v.value_or(0.0);
    return out.str();
  };
  for (const auto& m : history.rounds) {
    std::ostringstream mu;
    mu.precision(17);
    mu << m.mu;
    csv.write_row({std::to_string(m.round), m.evaluated() ? "1" : "0",
                   fmt(m.train_loss), fmt(m.train_accuracy),
                   fmt(m.test_accuracy), fmt(m.grad_variance),
                   fmt(m.dissimilarity_b),
                   m.dissimilarity_b.has_value() ? "1" : "0", mu.str(),
                   fmt(m.mean_gamma), m.mean_gamma.has_value() ? "1" : "0",
                   std::to_string(m.contributors),
                   std::to_string(m.stragglers)});
  }
}

TrainHistory load_history(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_history: cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("load_history: empty file " + path);
  }
  TrainHistory history;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream row(line);
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    if (cells.size() != kHistoryHeader.size()) {
      throw std::runtime_error("load_history: malformed row in " + path);
    }
    RoundMetrics m;
    m.round = std::stoull(cells[0]);
    if (cells[1] == "1") {
      m.train_loss = std::stod(cells[2]);
      m.train_accuracy = std::stod(cells[3]);
      m.test_accuracy = std::stod(cells[4]);
    }
    if (cells[7] == "1") {
      m.grad_variance = std::stod(cells[5]);
      m.dissimilarity_b = std::stod(cells[6]);
    }
    m.mu = std::stod(cells[8]);
    if (cells[10] == "1") m.mean_gamma = std::stod(cells[9]);
    m.contributors = std::stoull(cells[11]);
    m.stragglers = std::stoull(cells[12]);
    history.rounds.push_back(m);
  }
  return history;
}

}  // namespace fed
