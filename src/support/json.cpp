#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/csv.h"

namespace fed {

namespace {

[[noreturn]] void type_error(const char* expected) {
  throw std::runtime_error(std::string("json: value is not ") + expected);
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_literal(const char* literal) {
    for (const char* p = literal; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': expect_literal("true"); return JsonValue(true);
      case 'f': expect_literal("false"); return JsonValue(false);
      case 'n': expect_literal("null"); return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue(std::move(object));
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue(std::move(array));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("bad escape character");
      }
    }
    return out;
  }

  void append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    // Encode the BMP code point as UTF-8 (surrogate pairs unsupported —
    // sufficient for the dataset-interchange use case).
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double d = std::stod(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
      return JsonValue(d);
    } catch (const std::exception&) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void serialize_to(const JsonValue& value, std::string& out);

void serialize_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void serialize_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    throw std::runtime_error("json: cannot serialize non-finite number");
  }
  // Integers within the exact double range print without a fraction.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void serialize_to(const JsonValue& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    serialize_number(value.as_number(), out);
  } else if (value.is_string()) {
    serialize_string(value.as_string(), out);
  } else if (value.is_array()) {
    out.push_back('[');
    const auto& array = value.as_array();
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i) out.push_back(',');
      serialize_to(array[i], out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, member] : value.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      serialize_string(key, out);
      out.push_back(':');
      serialize_to(member, out);
    }
    out.push_back('}');
  }
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(value_);
}
double JsonValue::as_number() const {
  if (!is_number()) type_error("a number");
  return std::get<double>(value_);
}
const std::string& JsonValue::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}
const JsonArray& JsonValue::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<JsonArray>(value_);
}
const JsonObject& JsonValue::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<JsonObject>(value_);
}
JsonArray& JsonValue::as_array() {
  if (!is_array()) type_error("an array");
  return std::get<JsonArray>(value_);
}
JsonObject& JsonValue::as_object() {
  if (!is_object()) type_error("an object");
  return std::get<JsonObject>(value_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& object = as_object();
  auto it = object.find(key);
  if (it == object.end()) {
    throw std::runtime_error("json: missing key '" + key + "'");
  }
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return is_object() && as_object().contains(key);
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

std::string serialize_json(const JsonValue& value) {
  std::string out;
  serialize_to(value, out);
  return out;
}

JsonValue load_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

void save_json_file(const std::string& path, const JsonValue& value) {
  auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) ensure_directory(parent.string());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("json: cannot open " + path + " to write");
  out << serialize_json(value);
  if (!out) throw std::runtime_error("json: write failed: " + path);
}

}  // namespace fed
