// Binary serialization: model checkpoints, training histories, and the
// wire codecs for the federation messages (comm/message.h) that
// SerializedTransport round-trips every payload through.
//
// Checkpoint format (little-endian):
//   magic "FPX1" | u64 dimension | dimension * f64 parameters
// History format: the experiment CSV schema (support for reading back the
// same files bench drivers write).
//
// Wire formats (little-endian, doubles round-trip bit-exactly). Every
// envelope carries the message's TraceContext right after `round` — the
// u64 trace_id of the server round plus the u64 sender span id
// (obs/trace_context.h) — so spans recorded on the far side of a process
// boundary still correlate back to the originating round:
//   ModelBroadcast  magic "FPB1" | u64 round
//                   | u64 trace_id | u64 span_id
//                   | f64 mu | u64 batch_size | f64 learning_rate
//                   | f64 clip_norm | u8 measure_gamma
//                   | u64 device | u8 straggler | u64 epochs | u64 iterations
//                   | u64 param_dim | param_dim * f64
//                   | u64 correction_dim | correction_dim * f64
//   ClientUpdate    magic "FPU1" | u64 round
//                   | u64 trace_id | u64 span_id
//                   | u64 device | u64 num_samples
//                   | u8 straggler | u64 iterations | f64 gamma
//                   | u8 gamma_measured | f64 solve_seconds
//                   | u64 dim | dim * f64
//   PartialSumUpdate  magic "FPS1" | u64 round
//                     | u64 trace_id | u64 span_id
//                     | u64 shard | u8 scheme
//                     | u64 contributors | exact(weight)
//                     | u64 dim | dim * exact(coordinate)
//   where exact(x) is one ExactSum register, verbatim:
//     u8 has_nonfinite | f64 nonfinite | ExactSum::kLimbs * u64 limbs
//   so a shard's partial sum reaches the root bit-exactly — rounding
//   happens once, at the root's finalize, never on the wire.
// Decoders reject bad magic, truncation, trailing bytes, and corrupt
// boolean/scheme flags with std::runtime_error.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/message.h"
#include "core/trainer.h"
#include "tensor/tensor.h"

namespace fed {

// Writes `w` to `path` (parent directories created). Throws on I/O error.
void save_checkpoint(const std::string& path, const Vector& w);

// Reads a checkpoint; throws std::runtime_error on missing file, bad
// magic, truncation, or trailing bytes.
Vector load_checkpoint(const std::string& path);

// Like load_checkpoint, but also validates the dimension.
Vector load_checkpoint(const std::string& path, std::size_t expected_dim);

// Serializes every round of `history` (evaluated or not) to a CSV at
// `path` and reads it back. Round-trip is exact for the recorded fields.
void save_history(const std::string& path, const TrainHistory& history);
TrainHistory load_history(const std::string& path);

// ---------------------------------------------------------------------------
// Federation payload codecs.

using WireBuffer = std::vector<std::uint8_t>;

// Fixed envelope (header + metadata) sizes of the two wire formats; the
// rest of a message is the float64 payload — exactly the analytical
// parameter-vector-size proxy older traces estimated bytes with.
inline constexpr std::size_t kBroadcastEnvelopeBytes =
    4 + 8 +                  // magic, round
    8 + 8 +                  // trace_id, span_id
    8 + 8 + 8 + 8 + 1 +      // mu, batch_size, learning_rate, clip, gamma
    8 + 1 + 8 + 8 +          // device, straggler, epochs, iterations
    8 + 8;                   // param_dim, correction_dim
inline constexpr std::size_t kUpdateEnvelopeBytes =
    4 + 8 +                  // magic, round
    8 + 8 +                  // trace_id, span_id
    8 + 8 + 1 + 8 +          // device, num_samples, straggler, iterations
    8 + 1 + 8 +              // gamma, gamma_measured, solve_seconds
    8;                       // dim

// One ExactSum register on the wire, and the FPS1 envelope around the
// per-coordinate registers.
inline constexpr std::size_t kExactSumWireBytes =
    1 + 8 +                  // has_nonfinite, nonfinite
    ExactSum::kLimbs * 8;    // the fixed-point register
inline constexpr std::size_t kPartialEnvelopeBytes =
    4 + 8 +                  // magic, round
    8 + 8 +                  // trace_id, span_id
    8 +                      // shard
    1 + 8 +                  // scheme, contributors
    kExactSumWireBytes +     // weight total
    8;                       // dim

// Exact wire sizes, computable without serializing (the zero-copy
// transport's byte accounting).
std::size_t broadcast_wire_size(std::size_t param_dim,
                                std::size_t correction_dim);
std::size_t broadcast_wire_size(const ModelBroadcast& message);
std::size_t update_wire_size(std::size_t dim);
std::size_t update_wire_size(const ClientUpdate& message);

std::size_t partial_sum_wire_size(std::size_t dim);
std::size_t partial_sum_wire_size(const PartialSumUpdate& message);

WireBuffer encode_broadcast(const ModelBroadcast& message);
OwnedBroadcast decode_broadcast(std::span<const std::uint8_t> buffer);
WireBuffer encode_update(const ClientUpdate& message);
ClientUpdate decode_update(std::span<const std::uint8_t> buffer);
WireBuffer encode_partial_sum(const PartialSumUpdate& message);
PartialSumUpdate decode_partial_sum(std::span<const std::uint8_t> buffer);

}  // namespace fed
