// Binary serialization: model checkpoints, training histories, and the
// wire codecs for the federation messages (comm/message.h) that
// SerializedTransport round-trips every payload through.
//
// Checkpoint format (little-endian):
//   magic "FPX1" | u64 dimension | dimension * f64 parameters
// History format: the experiment CSV schema (support for reading back the
// same files bench drivers write).
//
// Wire formats (little-endian, doubles round-trip bit-exactly). Every
// envelope carries the message's TraceContext right after `round` — the
// u64 trace_id of the server round plus the u64 sender span id
// (obs/trace_context.h) — so spans recorded on the far side of a process
// boundary still correlate back to the originating round:
//   ModelBroadcast  magic "FPB1" | u64 round
//                   | u64 trace_id | u64 span_id
//                   | f64 mu | u64 batch_size | f64 learning_rate
//                   | f64 clip_norm | u8 measure_gamma
//                   | u64 device | u8 straggler | u64 epochs | u64 iterations
//                   | u64 param_dim | param_dim * f64
//                   | u64 correction_dim | correction_dim * f64
//   ClientUpdate    magic "FPU1" | u64 round
//                   | u64 trace_id | u64 span_id
//                   | u64 device | u64 num_samples
//                   | u8 straggler | u64 iterations | f64 gamma
//                   | u8 gamma_measured | f64 solve_seconds
//                   | u64 dim | dim * f64
//   PartialSumUpdate  magic "FPS1" | u64 round
//                     | u64 trace_id | u64 span_id
//                     | u64 shard | u8 scheme
//                     | u64 contributors | exact(weight)
//                     | u64 dim | dim * exact(coordinate)
//   where exact(x) is one ExactSum register, verbatim:
//     u8 has_nonfinite | f64 nonfinite | ExactSum::kLimbs * u64 limbs
//   so a shard's partial sum reaches the root bit-exactly — rounding
//   happens once, at the root's finalize, never on the wire.
//   CheckpointState  magic "FPC1" | u64 version
//                    | u64 fingerprint | u64 seed
//                    | u64 next_round | u64 first_round | f64 mu
//                    | u8 has_adaptive | f64 mu | f64 last_loss
//                    |   u8 has_last | u64 consecutive_decreases
//                    | u8 has_theory | f64 mu | f64 b_sq_ema
//                    |   u8 has_estimate
//                    | u64 dim | dim * f64 parameters
//                    | u64 population | u64 arrivals | u64 departures
//                    | u64 mask_bytes | mask_bytes * u8 active bitmask
//                    | u64 num_rounds | num_rounds * round record
//                    | u64 fnv1a over every preceding byte
//   (round record: u64 round | u8 evaluated | 3 * f64 eval metrics
//    | u8 has_dissimilarity | 2 * f64 | f64 mu | u8 has_gamma | f64
//    | u64 contributors | u64 stragglers — the history CSV schema,
//    with doubles bit-exact instead of decimal.)
// Decoders reject bad magic, truncation, trailing bytes, and corrupt
// boolean/scheme flags with std::runtime_error; the FPC1 decoder
// additionally rejects any frame whose trailing checksum does not match,
// so a torn or bit-flipped checkpoint can never be resumed from.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/message.h"
#include "core/trainer.h"
#include "tensor/tensor.h"

namespace fed {

// Writes `w` to `path` (parent directories created). Throws on I/O error.
void save_checkpoint(const std::string& path, const Vector& w);

// Reads a checkpoint; throws std::runtime_error on missing file, bad
// magic, truncation, or trailing bytes.
Vector load_checkpoint(const std::string& path);

// Like load_checkpoint, but also validates the dimension.
Vector load_checkpoint(const std::string& path, std::size_t expected_dim);

// Serializes every round of `history` (evaluated or not) to a CSV at
// `path` and reads it back. Round-trip is exact for the recorded fields.
void save_history(const std::string& path, const TrainHistory& history);
TrainHistory load_history(const std::string& path);

// ---------------------------------------------------------------------------
// Federation payload codecs.

using WireBuffer = std::vector<std::uint8_t>;

// Fixed envelope (header + metadata) sizes of the two wire formats; the
// rest of a message is the float64 payload — exactly the analytical
// parameter-vector-size proxy older traces estimated bytes with.
inline constexpr std::size_t kBroadcastEnvelopeBytes =
    4 + 8 +                  // magic, round
    8 + 8 +                  // trace_id, span_id
    8 + 8 + 8 + 8 + 1 +      // mu, batch_size, learning_rate, clip, gamma
    8 + 1 + 8 + 8 +          // device, straggler, epochs, iterations
    8 + 8;                   // param_dim, correction_dim
inline constexpr std::size_t kUpdateEnvelopeBytes =
    4 + 8 +                  // magic, round
    8 + 8 +                  // trace_id, span_id
    8 + 8 + 1 + 8 +          // device, num_samples, straggler, iterations
    8 + 1 + 8 +              // gamma, gamma_measured, solve_seconds
    8;                       // dim

// One ExactSum register on the wire, and the FPS1 envelope around the
// per-coordinate registers.
inline constexpr std::size_t kExactSumWireBytes =
    1 + 8 +                  // has_nonfinite, nonfinite
    ExactSum::kLimbs * 8;    // the fixed-point register
inline constexpr std::size_t kPartialEnvelopeBytes =
    4 + 8 +                  // magic, round
    8 + 8 +                  // trace_id, span_id
    8 +                      // shard
    1 + 8 +                  // scheme, contributors
    kExactSumWireBytes +     // weight total
    8;                       // dim

// Exact wire sizes, computable without serializing (the zero-copy
// transport's byte accounting).
std::size_t broadcast_wire_size(std::size_t param_dim,
                                std::size_t correction_dim);
std::size_t broadcast_wire_size(const ModelBroadcast& message);
std::size_t update_wire_size(std::size_t dim);
std::size_t update_wire_size(const ClientUpdate& message);

std::size_t partial_sum_wire_size(std::size_t dim);
std::size_t partial_sum_wire_size(const PartialSumUpdate& message);

WireBuffer encode_broadcast(const ModelBroadcast& message);
OwnedBroadcast decode_broadcast(std::span<const std::uint8_t> buffer);
WireBuffer encode_update(const ClientUpdate& message);
ClientUpdate decode_update(std::span<const std::uint8_t> buffer);
WireBuffer encode_partial_sum(const PartialSumUpdate& message);
PartialSumUpdate decode_partial_sum(std::span<const std::uint8_t> buffer);

// ---------------------------------------------------------------------------
// FPC1: the crash-recovery checkpoint payload (core/checkpoint.h owns the
// file-level manager — atomic writes, retention, discovery).
//
// Everything the trainer needs to continue a run bit-identically to one
// that never stopped: the exact parameter vector, the effective mu and
// the mutable adaptive/theory controller state, the device registry's
// live-population bitmask (sim/churn.h), and the TrainHistory recorded so
// far. RNG streams are counter-keyed by (seed, round, ...), so "RNG
// state" is just `seed` + `next_round` — no engine state to snapshot.

struct CheckpointState {
  std::uint64_t fingerprint = 0;  // config_fingerprint of the producing run
  std::uint64_t seed = 0;
  std::uint64_t next_round = 0;   // first round the resumed run executes
  std::uint64_t first_round = 0;  // the producing run's warm-start offset
  double mu = 0.0;                // effective mu for next_round

  // AdaptiveMu / DissimilarityMu mutable state (core/adaptive_mu.h).
  bool has_adaptive = false;
  double adaptive_mu = 0.0;
  double adaptive_last_loss = 0.0;
  bool adaptive_has_last = false;
  std::uint64_t adaptive_consecutive_decreases = 0;
  bool has_theory = false;
  double theory_mu = 0.0;
  double theory_b_sq_ema = 1.0;
  bool theory_has_estimate = false;

  Vector parameters;  // the global model, bit-exact

  // Device registry snapshot (closed world: population bits all set).
  std::uint64_t population = 0;
  std::uint64_t churn_arrivals = 0;
  std::uint64_t churn_departures = 0;
  std::vector<std::uint8_t> active;  // packed bitmask, (population+7)/8

  std::vector<RoundMetrics> rounds;  // TrainHistory recorded so far
};

WireBuffer encode_checkpoint_state(const CheckpointState& state);
CheckpointState decode_checkpoint_state(std::span<const std::uint8_t> buffer);

}  // namespace fed
