// Model checkpointing: binary save/load of flat parameter vectors, and
// save/load of full training histories, so long experiments can be
// resumed or post-processed outside the run.
//
// Checkpoint format (little-endian):
//   magic "FPX1" | u64 dimension | dimension * f64 parameters
// History format: the experiment CSV schema (support for reading back the
// same files bench drivers write).

#pragma once

#include <string>

#include "core/trainer.h"
#include "tensor/tensor.h"

namespace fed {

// Writes `w` to `path` (parent directories created). Throws on I/O error.
void save_checkpoint(const std::string& path, const Vector& w);

// Reads a checkpoint; throws std::runtime_error on missing file, bad
// magic, truncation, or trailing bytes.
Vector load_checkpoint(const std::string& path);

// Like load_checkpoint, but also validates the dimension.
Vector load_checkpoint(const std::string& path, std::size_t expected_dim);

// Serializes every round of `history` (evaluated or not) to a CSV at
// `path` and reads it back. Round-trip is exact for the recorded fields.
void save_history(const std::string& path, const TrainHistory& history);
TrainHistory load_history(const std::string& path);

}  // namespace fed
