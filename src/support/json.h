// Minimal JSON value type, parser, and serializer (RFC 8259 subset:
// UTF-8 passthrough, \uXXXX escapes decoded for the BMP). Used for the
// LEAF-format dataset interchange (data/leaf_json.h); no third-party
// dependency.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace fed {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
// std::map keeps key order deterministic for serialization.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}
  JsonValue(std::size_t i) : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  // Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  // Object member access; throws if not an object or key missing.
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  bool operator==(const JsonValue& other) const = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

// Parses a complete JSON document; throws std::runtime_error with a byte
// offset on malformed input or trailing garbage.
JsonValue parse_json(const std::string& text);

// Serializes compactly (no insignificant whitespace). Numbers round-trip
// through shortest-exact formatting.
std::string serialize_json(const JsonValue& value);

// File helpers.
JsonValue load_json_file(const std::string& path);
void save_json_file(const std::string& path, const JsonValue& value);

}  // namespace fed
