// Clang Thread Safety Analysis wiring: annotated mutex/condvar wrappers
// plus the attribute macros that declare which mutex guards which field
// and which methods must (or must not) hold it. Under Clang with
// -Wthread-safety (CMake option FEDPROX_THREAD_SAFETY=ON turns it into
// -Werror=thread-safety-analysis) the lock contracts below are checked
// at compile time; under GCC or unannotated builds every macro expands
// to nothing and Mutex/MutexLock/CondVar are zero-cost wrappers over the
// std primitives, so the annotations cost nothing where they cannot be
// enforced.
//
// Conventions used across the codebase (see DESIGN.md §11):
//   - every std::mutex that guards state is a fed::Mutex, and every
//     guarded field carries FED_GUARDED_BY(mutex_) in the header — the
//     header *is* the lock-contract documentation;
//   - locks are taken with fed::MutexLock (RAII scope), never bare
//     lock()/unlock() pairs;
//   - condition waits are explicit while-loops over guarded predicates
//     (`while (!ready_) cv_.wait(mutex_);`) so the analysis can see the
//     guarded reads happen under the lock — no std-style predicate
//     lambdas, which the analysis cannot attribute to the held lock;
//   - private helpers that assume the lock is held are annotated
//     FED_REQUIRES(mutex_); public methods that take it are annotated
//     FED_EXCLUDES(mutex_) when calling them with it held would
//     deadlock.
//
// The negative compile-fail tests in tests/static_analysis/ prove the
// wiring rejects an unguarded access and a REQUIRES violation, so this
// header cannot silently rot into a no-op.

#pragma once

#include <condition_variable>
#include <mutex>

// Clang exposes the attributes through __has_attribute; GCC (and MSVC)
// report 0 and compile the annotations away.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FED_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef FED_THREAD_ANNOTATION_
#define FED_THREAD_ANNOTATION_(x)  // not supported by this compiler
#endif

// Type attributes.
#define FED_CAPABILITY(x) FED_THREAD_ANNOTATION_(capability(x))
#define FED_SCOPED_CAPABILITY FED_THREAD_ANNOTATION_(scoped_lockable)

// Field attributes: which mutex guards this member (the pointer variant
// guards the pointee, not the pointer).
#define FED_GUARDED_BY(x) FED_THREAD_ANNOTATION_(guarded_by(x))
#define FED_PT_GUARDED_BY(x) FED_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function attributes: the caller must hold / must not hold the named
// capabilities, or the function acquires/releases them itself.
#define FED_REQUIRES(...) \
  FED_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define FED_ACQUIRE(...) \
  FED_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define FED_RELEASE(...) \
  FED_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define FED_TRY_ACQUIRE(...) \
  FED_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define FED_EXCLUDES(...) FED_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define FED_ASSERT_CAPABILITY(x) \
  FED_THREAD_ANNOTATION_(assert_capability(x))
#define FED_RETURN_CAPABILITY(x) FED_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for code the analysis cannot model (lock-free hand-offs,
// intentionally unbalanced acquire). Every use needs a comment saying
// why the analysis is wrong there.
#define FED_NO_THREAD_SAFETY_ANALYSIS \
  FED_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace fed {

// std::mutex with the capability attribute, so fields can be declared
// FED_GUARDED_BY(mutex_) and methods FED_REQUIRES(mutex_). Lock through
// MutexLock; the raw lock()/unlock() exist for CondVar and the guard.
class FED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FED_ACQUIRE() { mu_.lock(); }
  void unlock() FED_RELEASE() { mu_.unlock(); }
  bool try_lock() FED_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII scope holding a Mutex. The analysis treats the guard's lifetime
// as the span over which the capability is held.
class FED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FED_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FED_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable that waits on a fed::Mutex. wait() releases and
// re-acquires `mu` internally, which the analysis cannot model, so the
// body is exempt — but the FED_REQUIRES(mu) contract still binds every
// caller: waiting without the lock held is a compile error. Always wait
// in a while-loop over the guarded predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks until notified, re-acquires `mu`.
  // Spurious wakeups happen; loop over the predicate.
  void wait(Mutex& mu) FED_REQUIRES(mu) FED_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace fed
