#include "support/threadpool.h"

#include <algorithm>

namespace fed {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace fed
