#include "support/threadpool.h"

#include <algorithm>
#include <string>

#include "obs/profiler.h"

namespace fed {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  counters_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    counters_.push_back(std::make_unique<WorkerCounters>());
  }
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  Task entry{std::packaged_task<void()>(std::move(task)), 0};
  if (Profiler::is_enabled()) {
    entry.enqueue_us = Profiler::instance().now_us();
  }
  std::future<void> fut = entry.work.get_future();
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(entry));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> stats;
  stats.reserve(counters_.size());
  for (const auto& c : counters_) {
    WorkerStats s;
    s.tasks_executed = c->tasks.load(std::memory_order_relaxed);
    s.busy_seconds = 1e-6 * c->busy_us.load(std::memory_order_relaxed);
    s.queue_wait_seconds = 1e-6 * c->wait_us.load(std::memory_order_relaxed);
    stats.push_back(s);
  }
  return stats;
}

void ThreadPool::worker_loop(std::size_t index) {
  Profiler& profiler = Profiler::instance();
  profiler.set_thread_name("pool-" + std::to_string(index));
  WorkerCounters& counters = *counters_[index];

  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    counters.tasks.fetch_add(1, std::memory_order_relaxed);
    if (Profiler::is_enabled()) {
      const std::uint64_t start_us = profiler.now_us();
      if (task.enqueue_us != 0 && task.enqueue_us <= start_us) {
        // Queue waits overlap each other and prior executions on this
        // track, so record them as an async pair rather than an X span.
        ProfileEvent begin;
        begin.name = "queue_wait";
        begin.category = "pool";
        begin.type = ProfileEvent::Type::kAsyncBegin;
        begin.id = profiler.next_async_id();
        begin.start_us = task.enqueue_us;
        profiler.record(begin);
        ProfileEvent end = begin;
        end.type = ProfileEvent::Type::kAsyncEnd;
        end.start_us = start_us;
        profiler.record(end);
        counters.wait_us.fetch_add(start_us - task.enqueue_us,
                                   std::memory_order_relaxed);
      }
      {
        Span exec("task", "pool");
        task.work();
      }
      counters.busy_us.fetch_add(profiler.now_us() - start_us,
                                 std::memory_order_relaxed);
    } else {
      task.work();
    }
  }
}

}  // namespace fed
