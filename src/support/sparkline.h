// Terminal sparklines: render a numeric series as a compact unicode
// block-character strip ("▂▃▅▇"). Used by the examples to show loss
// trajectories inline.

#pragma once

#include <span>
#include <string>

namespace fed {

// Maps values linearly onto eight block heights; an empty span renders
// an empty string; a constant series renders mid-height blocks.
// Non-finite values render as '!'.
std::string sparkline(std::span<const double> values);

}  // namespace fed
