#include "support/sparkline.h"

#include <algorithm>
#include <cmath>

namespace fed {

std::string sparkline(std::span<const double> values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";

  double lo = INFINITY, hi = -INFINITY;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (double v : values) {
    if (!std::isfinite(v)) {
      out += "!";
      continue;
    }
    int level = 3;  // mid-height for constant series
    if (hi > lo) {
      level = static_cast<int>(std::floor((v - lo) / (hi - lo) * 8.0));
      level = std::clamp(level, 0, 7);
    }
    out += kBlocks[level];
  }
  return out;
}

}  // namespace fed
