// Tiny leveled logger. Bench drivers default to info; tests silence it.

#pragma once

#include <sstream>
#include <string>

namespace fed {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace fed
