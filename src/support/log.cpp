#include "support/log.h"

#include <atomic>
#include <iostream>

#include "support/thread_annotations.h"

namespace fed {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
// Serializes whole log lines onto the shared cout/cerr streams.
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  MutexLock lock(g_mutex);
  std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::cout;
  out << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace fed
