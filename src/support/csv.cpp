#include "support/csv.h"

#include <filesystem>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace fed {

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    throw std::runtime_error("cannot create directory " + path + ": " +
                             ec.message());
  }
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), columns_(header.size()) {
  auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) ensure_directory(parent.string());
  out_.open(path, std::ios::trunc);
  if (!out_) throw std::runtime_error("cannot open " + path + " for writing");
  write_row(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CSV row has " + std::to_string(cells.size()) +
                                " cells, expected " + std::to_string(columns_));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

void CsvWriter::write_row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream ss;
    ss << std::setprecision(10) << v;
    text.push_back(ss.str());
  }
  write_row(text);
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i ? "  " : "") << std::left << std::setw(static_cast<int>(width[i]))
          << row[i];
    }
    out << '\n';
  };
  emit(header_);
  std::vector<std::string> rule;
  for (std::size_t w : width) rule.push_back(std::string(w, '-'));
  emit(rule);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace fed
