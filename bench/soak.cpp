// Long-horizon soak: checkpointed crash recovery under continuous churn
// and channel faults.
//
// Two runs of the same federation, same seed:
//
//   reference   every round uninterrupted, no checkpoints
//   segmented   checkpointing every K rounds; the server is killed
//               mid-aggregation at each --crash-at round (ServerCrashed,
//               core/checkpoint.h), then resumed from the newest FPC1
//               checkpoint — by default two kill/resume cycles
//
// The segmented run's combined TrainHistory (every RoundMetrics field,
// bit for bit, plus the final parameter vector) must equal the
// reference's; the process exits non-zero when it does not. Open-world
// churn (--churn) and channel faults (--faults) stay on the whole time,
// so recovery is exercised against a moving population and a lossy
// channel, not a lab-clean run. Results land in BENCH_soak.json.
//
//   ./soak [--rounds 2000] [--checkpoint-every 25] [--crash-at 800,1400]
//          [--churn arrive=0.03,depart=0.03] [--faults drop=0.05,...]
//          [--trace-out soak.jsonl] [--metrics-out soak.prom]
//
// With --trace-out, segment 1 truncates and the resumed segments append,
// so the file carries one {"run":...} header per segment — lint it with
// trace_lint --jsonl --checkpoint. --profile-out is not supported here:
// a killed segment leaves flow spans dangling by design.

#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/checkpoint.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/observer.h"
#include "support/json.h"
#include "support/stopwatch.h"

namespace {

using namespace fed;
using namespace fed::bench;

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool bits_equal(const std::optional<double>& a,
                const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  return !a || bits_equal(*a, *b);
}

// Bit-exact RoundMetrics comparison; returns a description of the first
// divergence (empty = identical).
std::string compare_histories(const TrainHistory& reference,
                              const TrainHistory& segmented) {
  if (reference.rounds.size() != segmented.rounds.size()) {
    return "round count " + std::to_string(segmented.rounds.size()) +
           " != " + std::to_string(reference.rounds.size());
  }
  for (std::size_t i = 0; i < reference.rounds.size(); ++i) {
    const RoundMetrics& a = reference.rounds[i];
    const RoundMetrics& b = segmented.rounds[i];
    const auto diverged = [&](const char* field) {
      return "round " + std::to_string(a.round) + ": " + field + " diverged";
    };
    if (a.round != b.round) return diverged("round id");
    if (!bits_equal(a.mu, b.mu)) return diverged("mu");
    if (a.contributors != b.contributors) return diverged("contributors");
    if (a.stragglers != b.stragglers) return diverged("stragglers");
    if (!bits_equal(a.train_loss, b.train_loss)) return diverged("train_loss");
    if (!bits_equal(a.train_accuracy, b.train_accuracy)) {
      return diverged("train_accuracy");
    }
    if (!bits_equal(a.test_accuracy, b.test_accuracy)) {
      return diverged("test_accuracy");
    }
    if (!bits_equal(a.grad_variance, b.grad_variance)) {
      return diverged("grad_variance");
    }
    if (!bits_equal(a.dissimilarity_b, b.dissimilarity_b)) {
      return diverged("dissimilarity_b");
    }
    if (!bits_equal(a.mean_gamma, b.mean_gamma)) return diverged("mean_gamma");
  }
  if (reference.final_parameters.size() != segmented.final_parameters.size()) {
    return "final parameter dimension diverged";
  }
  for (std::size_t i = 0; i < reference.final_parameters.size(); ++i) {
    if (!bits_equal(reference.final_parameters[i],
                    segmented.final_parameters[i])) {
      return "final parameters diverged at index " + std::to_string(i);
    }
  }
  return "";
}

// Per-segment churn/fault/checkpoint totals summed from the traces.
struct SegmentStats {
  std::size_t rounds = 0;
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  std::size_t departs = 0;          // selected devices that left mid-round
  std::size_t failed_devices = 0;
  std::size_t retries = 0;
  std::size_t checkpoint_writes = 0;
  std::uint64_t checkpoint_bytes = 0;

  void accumulate(const TraceCollector& collector) {
    for (const RoundTrace& t : collector.traces()) {
      ++rounds;
      arrivals += t.arrivals;
      departures += t.departures;
      departs += t.faults.departs;
      failed_devices += t.faults.failed_devices;
      retries += t.faults.retries;
      if (t.checkpoint.written) {
        ++checkpoint_writes;
        checkpoint_bytes += t.checkpoint.bytes;
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::vector<double> crash_at_raw =
      flags.get_double_list("crash-at", {});
  const std::string json_path =
      flags.get_string("bench-json", "BENCH_soak.json");
  BenchOptions options = parse_options(flags);
  if (!options.profile_out.empty()) {
    std::cerr << "soak: --profile-out is not supported (crashed segments "
                 "leave dangling flow spans)\n";
    return 2;
  }

  // Soak defaults: a couple thousand rounds, periodic checkpoints,
  // continuous churn and channel faults. Every knob yields to an
  // explicit flag.
  const std::size_t rounds =
      options.rounds_override ? options.rounds_override : 2000;
  if (options.checkpoint_every == 0) options.checkpoint_every = 25;
  if (!options.churn.any()) {
    options.churn = parse_churn_config("arrive=0.03,depart=0.03");
  }
  if (!options.faults.any()) {
    options.faults = parse_fault_profile("drop=0.05,corrupt=0.01");
  }
  std::vector<std::size_t> crashes;
  for (double c : crash_at_raw) crashes.push_back(static_cast<std::size_t>(c));
  if (crashes.empty()) {
    crashes = {rounds * 2 / 5, rounds * 7 / 10};  // two kill/resume cycles
  }
  for (const std::size_t c : crashes) {
    if (c <= options.checkpoint_every || c > rounds) {
      std::cerr << "soak: --crash-at " << c << " must lie in ("
                << options.checkpoint_every << ", " << rounds
                << "] so a checkpoint exists to resume from\n";
      return 2;
    }
  }

  print_banner("soak",
               "long-horizon crash/recovery soak under churn + faults");

  // A small federation so thousands of rounds stay cheap: the soak
  // stresses the recovery machinery, not the solver.
  SyntheticConfig synth = synthetic_config(1.0, 1.0, options.seed);
  const FederatedDataset data = make_synthetic(synth);
  LogisticRegression model(synth.input_dim, synth.num_classes);

  TrainerConfig config = fedprox_config(/*mu=*/1.0);
  config.rounds = rounds;
  config.devices_per_round = std::min<std::size_t>(10, data.num_clients());
  config.systems.epochs = 2;
  config.systems.straggler_fraction = 0.5;
  config.eval_every = 10;  // thousands of rounds; evaluate sparsely
  config.seed = options.seed;
  apply_common_flags(config, options);

  // A rerun must not resume from a previous invocation's generations:
  // wipe stale checkpoints so the first segment always starts cold.
  if (config.checkpoint.enabled()) {
    std::error_code ec;
    std::filesystem::remove_all(config.checkpoint.dir, ec);
  }

  // Reference: the same run, never interrupted, no checkpoint I/O.
  TrainHistory reference;
  double reference_seconds = 0.0;
  {
    TrainerConfig ref = config;
    ref.checkpoint = {};
    Stopwatch timer;
    reference = Trainer(model, data, ref).run();
    reference_seconds = timer.seconds();
  }

  // Segmented: run, crash, resume from the newest checkpoint — repeated
  // per --crash-at round — then run to completion.
  std::vector<SegmentStats> segments;
  std::vector<std::size_t> resumed_from;
  std::vector<double> recovery_seconds;
  TrainHistory segmented;
  double segmented_seconds = 0.0;
  {
    Stopwatch timer;
    std::size_t next_crash = 0;
    bool finished = false;
    while (!finished) {
      const bool first_segment = next_crash == 0;
      TrainerConfig seg = config;
      seg.crash.at_round =
          next_crash < crashes.size() ? crashes[next_crash] : 0;

      BenchOptions seg_options = options;
      seg_options.resume = !first_segment;
      TraceCapture capture(seg_options);
      TraceCollector collector;

      std::optional<std::string> checkpoint;
      if (!first_segment) {
        Stopwatch recovery_timer;
        checkpoint = latest_checkpoint(seg.checkpoint.dir);
        if (!checkpoint) {
          std::cerr << "soak: no checkpoint to resume from under "
                    << seg.checkpoint.dir << "\n";
          return 2;
        }
        // Charge discovery + load + validation as the recovery latency.
        const CheckpointState state = load_checkpoint_state(*checkpoint);
        recovery_seconds.push_back(recovery_timer.seconds());
        resumed_from.push_back(static_cast<std::size_t>(state.next_round) - 1);
      }

      Trainer trainer(model, data, seg);
      if (capture.observer()) trainer.add_observer(*capture.observer());
      trainer.add_observer(collector);
      try {
        segmented =
            first_segment ? trainer.run() : trainer.resume(*checkpoint);
        finished = true;
      } catch (const ServerCrashed& crash) {
        std::cout << "  segment " << segments.size() + 1
                  << ": server crashed mid-aggregation at round "
                  << crash.round() << " (as planned)\n";
        ++next_crash;
      }
      SegmentStats stats;
      stats.accumulate(collector);
      segments.push_back(stats);
    }
    segmented_seconds = timer.seconds();
  }

  const std::string divergence = compare_histories(reference, segmented);
  const bool identical = divergence.empty();

  TablePrinter table({"segment", "rounds", "arrivals", "departures",
                      "mid-round departs", "retries", "ckpt writes"});
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const SegmentStats& st = segments[s];
    table.add_row({std::to_string(s + 1), std::to_string(st.rounds),
                   std::to_string(st.arrivals), std::to_string(st.departures),
                   std::to_string(st.departs), std::to_string(st.retries),
                   std::to_string(st.checkpoint_writes)});
  }
  std::cout << table.render();
  for (std::size_t i = 0; i < resumed_from.size(); ++i) {
    std::cout << "  resume " << i + 1 << ": crashed at round " << crashes[i]
              << ", recovered from checkpointed round " << resumed_from[i]
              << " in " << TablePrinter::fmt(recovery_seconds[i] * 1e3, 3)
              << " ms\n";
  }
  std::cout << (identical
                    ? "history: segmented run is bit-identical to the "
                      "uninterrupted reference\n"
                    : "history MISMATCH: " + divergence + "\n");

  JsonObject out;
  out["benchmark"] = "soak_crash_resume";
  out["rounds"] = rounds;
  out["seed"] = options.seed;
  out["checkpoint_every"] = options.checkpoint_every;
  out["churn"] = to_string(options.churn);
  out["faults"] = to_string(options.faults);
  JsonArray crash_rounds;
  for (const std::size_t c : crashes) crash_rounds.push_back(c);
  out["crash_rounds"] = std::move(crash_rounds);
  JsonArray resumes;
  for (std::size_t i = 0; i < resumed_from.size(); ++i) {
    JsonObject r;
    r["crashed_at"] = crashes[i];
    r["resumed_from"] = resumed_from[i];
    r["recovery_seconds"] = recovery_seconds[i];
    resumes.push_back(JsonValue(std::move(r)));
  }
  out["resumes"] = std::move(resumes);
  JsonArray segment_rows;
  for (const SegmentStats& st : segments) {
    JsonObject row;
    row["rounds"] = st.rounds;
    row["arrivals"] = st.arrivals;
    row["departures"] = st.departures;
    row["mid_round_departs"] = st.departs;
    row["failed_devices"] = st.failed_devices;
    row["retries"] = st.retries;
    row["checkpoint_writes"] = st.checkpoint_writes;
    row["checkpoint_bytes"] = st.checkpoint_bytes;
    segment_rows.push_back(JsonValue(std::move(row)));
  }
  out["segments"] = std::move(segment_rows);
  out["reference_wall_seconds"] = reference_seconds;
  out["segmented_wall_seconds"] = segmented_seconds;
  out["history_bit_identical"] = identical;
  if (!identical) out["divergence"] = divergence;
  save_json_file(json_path, JsonValue(std::move(out)));
  std::cout << "wrote " << json_path << "\n";

  return identical ? 0 : 1;
}
