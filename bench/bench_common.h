// Shared scaffolding for the figure/table reproduction drivers.
//
// Every driver accepts:
//   --rounds N       override the per-dataset default round count
//   --scale S        dataset scale factor in (0, 1] (device counts etc.)
//   --seed S         experiment seed (default 1)
//   --epochs E       local epochs E (default 20, the paper's Figure 1/2)
//   --out-dir DIR    where CSVs land (default bench_out/)
//   --trace-out P    stream per-round JSONL phase traces to P (obs/)
//   --trace-rotate-mb N  roll the JSONL trace when it passes N MiB,
//                    keeping a bounded set of .1/.2/... generations that
//                    each re-start with the run header (0 = off)
//   --profile-out P  write a Chrome trace-event span profile to P (obs/)
//   --metrics-out P  publish a Prometheus text-format scrape file to P,
//                    atomically rewritten as the run progresses (obs/
//                    exposition.h); lint with trace_lint --metrics
//   --metrics-every N  rewrite --metrics-out every N rounds (default 1)
//   --transport T    federation transport: inprocess (default, zero-copy)
//                    or serialized (round-trip the binary wire format)
//   --faults SPEC    inject channel faults (comm/fault.h), e.g.
//                    drop=0.1,corrupt=0.01,delay_ms=50,duplicate=0.05
//   --retries N      extra exchange attempts per device (default 2)
//   --deadline-ms D  delivery deadline in simulated ms (0 = off)
//   --quorum Q       aggregate once Q of selected devices reported (0, 1]
//   --shards N       aggregator shards per round (sim/sharded.h); any
//                    value yields a bit-identical history (default 1)
//   --churn SPEC     open-world device churn (sim/churn.h), e.g.
//                    arrive=0.05,depart=0.02,initial=100,min_active=10
//   --checkpoint-every N  write a durable FPC1 checkpoint every N rounds
//                    (core/checkpoint.h); 0 = off
//   --checkpoint-dir DIR  where checkpoints land (default
//                    <out-dir>/checkpoints)
//   --checkpoint-retain G newest checkpoint generations kept (default 3)
//   --resume         continue a crashed run: --trace-out appends instead
//                    of truncating and --metrics-out counters carry over
//                    from the published exposition file
//   --quick          very small run for smoke-testing the harness
// and prints the paper-style series table to stdout plus a CSV per figure.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "comm/fault.h"
#include "core/experiment.h"
#include "core/registry.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/churn.h"
#include "support/cli.h"
#include "support/csv.h"

namespace fed::bench {

struct BenchOptions {
  std::uint64_t seed = 1;
  double scale = 1.0;
  std::size_t epochs = 20;
  std::size_t rounds_override = 0;  // 0 = workload default
  std::string out_dir = "bench_out";
  std::string trace_out;            // empty = tracing disabled
  std::size_t trace_rotate_mb = 0;  // 0 = no JSONL rotation
  std::string profile_out;          // empty = span profiler disabled
  std::string metrics_out;          // empty = no Prometheus exposition
  std::size_t metrics_every = 1;    // rounds between metric publishes
  std::string transport = "inprocess";  // parse_transport_kind values
  FaultProfile faults;                  // all-zero = clean channel
  RecoveryConfig recovery;              // retry/deadline/quorum policy
  std::size_t shards = 1;               // aggregator shards per round
  ChurnConfig churn;                    // all-zero = closed world
  std::size_t checkpoint_every = 0;     // 0 = checkpointing off
  std::string checkpoint_dir;           // empty = <out-dir>/checkpoints
  std::size_t checkpoint_retain = 3;    // newest generations kept
  bool resume = false;                  // append-mode traces/metrics
  bool quick = false;
};

// Parses the shared flags; warns about unknown ones. Drivers with extra
// flags should read them from their own CliFlags first, then hand it to
// the CliFlags& overload so those reads suppress the unknown-flag warning.
BenchOptions parse_options(int argc, char** argv);
BenchOptions parse_options(const CliFlags& flags);

// Loads a workload applying --scale/--quick/--rounds and dividing round
// counts when quick mode is on.
Workload load_workload(const std::string& name, const BenchOptions& options);

// Applies the round override / quick shrink to a config built from the
// workload defaults (includes apply_common_flags).
void apply_rounds(TrainerConfig& config, const Workload& workload,
                  const BenchOptions& options);

// Installs every shared channel/server flag on the config in one place —
// --transport, --shards, and the fault/recovery knobs below — so a new
// common flag lands here once instead of in every driver. For drivers
// that size rounds themselves instead of going through apply_rounds.
void apply_common_flags(TrainerConfig& config, const BenchOptions& options);

// Installs --faults/--retries/--deadline-ms/--quorum on the config and
// logs the channel-fault banner (part of apply_common_flags).
void apply_faults(TrainerConfig& config, const BenchOptions& options);

// Owns the JSONL trace sink + observer created from --trace-out (with
// --trace-rotate-mb rotation), the Prometheus registry/feeder/exporter
// stack created from --metrics-out, and the span-profiler session
// created from --profile-out (enables the profiler at construction,
// drains it into a Chrome trace-event file at destruction). Keep it
// alive for the whole driver run and pass observer() (nullptr when no
// flag is set; a CompositeObserver when several are) to
// RunVariantsOptions::observer:
//
//   TraceCapture trace(options);
//   RunVariantsOptions rv;
//   rv.observer = trace.observer();
//   auto results = run_variants(workload, specs, rv);
class TraceCapture {
 public:
  explicit TraceCapture(const BenchOptions& options);
  ~TraceCapture();
  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  TrainingObserver* observer() const;
  // Non-null when --metrics-out is active (for end-of-run dumps).
  MetricsRegistry* registry() const { return registry_.get(); }

 private:
  std::unique_ptr<TraceSink> sink_;
  std::unique_ptr<TrainingObserver> tracer_;
  std::unique_ptr<MetricsRegistry> registry_;     // --metrics-out stack:
  std::unique_ptr<MetricsObserver> metrics_;      // feeder first,
  std::unique_ptr<MetricsExporter> exporter_;     // publisher second
  std::unique_ptr<CompositeObserver> composite_;  // when several are live
  std::string profile_out_;  // empty = profiler not owned by this capture
};

// Renders one metric (selected by `metric`) of every variant against the
// evaluated rounds, one column per variant — the paper's "series".
enum class Metric { kTrainLoss, kTestAccuracy, kGradVariance, kMu };
std::string render_series(const std::vector<VariantResult>& results,
                          Metric metric);
const char* metric_name(Metric metric);

// Prints the standard experiment banner.
void print_banner(const std::string& figure, const std::string& description);

}  // namespace fed::bench
