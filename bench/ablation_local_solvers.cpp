// Ablation of the "any local solver" claim (Section 3.2): FedProx run
// with three different local solvers under the same per-round iteration
// budget on Synthetic(1,1), with realized gamma-inexactness measured.
// The framework's guarantees are stated in terms of gamma alone; this
// driver shows how solver choice maps onto gamma and onto end-to-end
// convergence.

#include <iostream>

#include "bench_common.h"
#include "optim/adam.h"
#include "optim/gd.h"
#include "optim/sgd.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Ablation", "local solvers: SGD vs GD vs Adam under FedProx");

  CsvWriter csv(options.out_dir + "/ablation_local_solvers.csv",
                history_csv_header());

  const Workload w = load_workload("synthetic_1_1", options);
  for (double mu : {0.0, 1.0}) {
    std::vector<VariantSpec> specs;
    auto push = [&](const std::string& label,
                    std::shared_ptr<const LocalSolver> solver,
                    double learning_rate) {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, mu, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      c.solver = std::move(solver);
      c.learning_rate = learning_rate;
      c.measure_gamma = true;
      specs.push_back({label + " (mu=" + std::to_string(static_cast<int>(mu)) +
                           ")",
                       c});
    };
    push("sgd", std::make_shared<SgdSolver>(), w.learning_rate);
    push("gd", std::make_shared<GdSolver>(), w.learning_rate);
    // Adam needs a smaller step; its per-coordinate scaling is ~unit.
    push("adam", std::make_shared<AdamSolver>(), 0.003);
    auto results = run_variants(w, specs);
    std::cout << "\n--- " << w.name << " (mu=" << mu
              << "): training loss ---\n"
              << render_series(results, Metric::kTrainLoss);
    // Report the realized mean gamma of the final rounds.
    for (const auto& r : results) {
      double gamma = 0.0;
      std::size_t count = 0;
      for (const auto& m : r.history.rounds) {
        if (m.mean_gamma) {
          gamma += *m.mean_gamma;
          ++count;
        }
      }
      if (count) {
        std::cout << r.label << ": mean realized gamma "
                  << TablePrinter::fmt(gamma / static_cast<double>(count))
                  << "\n";
      }
    }
    append_history_csv(csv, w.name + "@mu=" + std::to_string(mu), results);
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
