// Figure 6 (Appendix C.3.2): the complete synthetic-data results behind
// Figure 2 — training loss, testing accuracy, and the dissimilarity
// metric on all four synthetic datasets, mu = 0 vs mu = 1, no systems
// heterogeneity.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Figure 6",
               "full synthetic results: loss, accuracy, dissimilarity");

  CsvWriter csv(options.out_dir + "/fig6_synthetic_full.csv",
                history_csv_header());
  TraceCapture trace(options);  // honours --trace-out
  RunVariantsOptions rv;
  rv.observer = trace.observer();

  for (const auto& name : synthetic_workload_names()) {
    const Workload w = load_workload(name, options);
    std::vector<VariantSpec> specs;
    for (double mu : {0.0, 1.0}) {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, mu, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      c.measure_dissimilarity = true;
      specs.push_back(
          {mu == 0.0 ? "FedAvg (FedProx, mu=0)" : "FedProx, mu>0 (mu=1)", c});
    }
    auto results = run_variants(w, specs, rv);
    std::cout << "\n--- " << w.name << ": training loss ---\n"
              << render_series(results, Metric::kTrainLoss)
              << "\n--- " << w.name << ": testing accuracy ---\n"
              << render_series(results, Metric::kTestAccuracy)
              << "\n--- " << w.name << ": variance of local gradients ---\n"
              << render_series(results, Metric::kGradVariance);
    append_history_csv(csv, w.name, results);
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
