// Ablation (beyond the paper; motivated by its future-work note on
// automatically tuning mu "based on the theoretical groundwork"):
// compares three mu policies on the four synthetic datasets —
//   fixed      mu = 1                (the paper's grid-tuned constant)
//   adaptive   +/- 0.1 loss heuristic (the paper's Figure 3)
//   theory     mu_t = c (B_t^2 - 1)   (Corollary 7 suggests mu ~ 6 L B^2)
// Expected shape: on IID data fixed mu=1 pays a convergence penalty while
// adaptive and theory decay toward 0; on heterogeneous data theory
// matches or beats the hand-tuned constant without any grid search.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Ablation", "mu policies: fixed vs adaptive vs theory-guided");

  CsvWriter csv(options.out_dir + "/ablation_mu_policies.csv",
                history_csv_header());

  for (const auto& name : synthetic_workload_names()) {
    const Workload w = load_workload(name, options);
    std::vector<VariantSpec> specs;
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, 1.0, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      specs.push_back({"fixed (mu=1)", c});
    }
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      c.adaptive_mu.enabled = true;
      c.adaptive_mu.initial_mu = (name == "synthetic_iid") ? 1.0 : 0.0;
      specs.push_back({"adaptive (loss heuristic)", c});
    }
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      c.theory_mu.enabled = true;
      c.theory_mu.coefficient = 0.05;
      specs.push_back({"theory (mu ~ B^2-1)", c});
    }
    auto results = run_variants(w, specs);
    std::cout << "\n--- " << w.name << ": training loss ---\n"
              << render_series(results, Metric::kTrainLoss)
              << "\n--- " << w.name << ": mu trajectory ---\n"
              << render_series(results, Metric::kMu);
    append_history_csv(csv, w.name, results);
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
