// Kernel microbenchmarks (google-benchmark): the hot paths of the
// simulator — GEMV/GEMM, logistic and LSTM loss+gradient, and one local
// SGD epoch — so regressions in the substrate are visible in isolation.

#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "nn/logistic.h"
#include "nn/lstm.h"
#include "optim/sgd.h"
#include "support/rng.h"
#include "tensor/ops.h"

namespace fed {
namespace {

void BM_Gemv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a(n, n);
  for (double& v : a.storage()) v = rng.normal();
  Vector x(n), y(n);
  for (double& v : x) v = rng.normal();
  for (auto _ : state) {
    gemv(ConstMatrixView(a.storage(), n, n), x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Gemv)->Arg(64)->Arg(256)->Arg(784);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Matrix a(n, n), b(n, n), c(n, n);
  for (double& v : a.storage()) v = rng.normal();
  for (double& v : b.storage()) v = rng.normal();
  for (auto _ : state) {
    gemm(ConstMatrixView(a.storage(), n, n), ConstMatrixView(b.storage(), n, n),
         MatrixView(c.storage(), n, n));
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(128);

void BM_LogisticLossGrad(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  LogisticRegression model(784, 10);
  Rng rng(3);
  Dataset data;
  data.features = Matrix(batch_size, 784);
  for (double& v : data.features.storage()) v = rng.normal();
  data.labels.resize(batch_size);
  for (auto& y : data.labels) {
    y = static_cast<std::int32_t>(rng.uniform_int(std::uint64_t{10}));
  }
  Vector w(model.parameter_count(), 0.01), grad(w.size());
  const auto batch = full_batch(batch_size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.loss_and_grad(w, data, batch, grad));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_LogisticLossGrad)->Arg(10)->Arg(64);

void BM_LstmLossGrad(benchmark::State& state) {
  const auto seq_len = static_cast<std::size_t>(state.range(0));
  LstmConfig config;
  config.vocab_size = 40;
  config.embed_dim = 8;
  config.hidden_dim = 24;
  config.num_layers = 2;
  config.num_classes = 40;
  LstmClassifier model(config);
  Rng rng(4);
  Dataset data;
  data.tokens.resize(10);
  data.labels.resize(10);
  for (std::size_t i = 0; i < 10; ++i) {
    data.tokens[i].resize(seq_len);
    for (auto& t : data.tokens[i]) {
      t = static_cast<std::int32_t>(rng.uniform_int(std::uint64_t{40}));
    }
    data.labels[i] = static_cast<std::int32_t>(rng.uniform_int(std::uint64_t{40}));
  }
  Vector w(model.parameter_count()), grad(w.size());
  model.init_parameters(w, rng);
  const auto batch = full_batch(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.loss_and_grad(w, data, batch, grad));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_LstmLossGrad)->Arg(12)->Arg(25);

void BM_LocalSgdEpoch(benchmark::State& state) {
  SyntheticConfig config = synthetic_config(1.0, 1.0, 5);
  config.num_devices = 1;
  config.min_samples = 200;
  config.sigma_log = 0.01;
  const FederatedDataset fed = make_synthetic(config);
  LogisticRegression model(fed.input_dim, fed.num_classes);
  Vector anchor(model.parameter_count(), 0.0);
  LocalProblem problem{&model, &fed.clients[0].train, anchor, 1.0, {}};
  const std::size_t iters =
      iterations_for_epochs(1, fed.clients[0].train.size(), 10);
  SolveBudget budget{.iterations = iters, .batch_size = 10,
                     .learning_rate = 0.01};
  SgdSolver solver;
  for (auto _ : state) {
    Rng rng(6);
    Vector w = anchor;
    solver.solve(problem, budget, rng, w);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_LocalSgdEpoch);

}  // namespace
}  // namespace fed

BENCHMARK_MAIN();
