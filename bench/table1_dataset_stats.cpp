// Table 1: statistics of the federated datasets (devices, samples,
// mean/stdev samples per device). Paper values for reference:
//   MNIST        1,000 devices   69,035 samples   mean 69    stdev 106
//   FEMNIST        200 devices   18,345 samples   mean 92    stdev 159
//   Shakespeare    143 devices  517,106 samples   mean 3,616 stdev 6,808
//   Sent140        772 devices   40,783 samples   mean 53    stdev 32
// Our stand-ins match the device structure; Shakespeare stream lengths
// are scaled down for CPU budget (DESIGN.md).

#include <iostream>

#include "bench_common.h"
#include "data/stats.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Table 1", "statistics of the federated datasets");

  std::vector<DatasetStats> rows;
  for (const auto& name : workload_names()) {
    const Workload w = load_workload(name, options);
    rows.push_back(compute_stats(w.data));
  }
  std::cout << format_stats_table(rows) << "\n";

  CsvWriter csv(options.out_dir + "/table1_dataset_stats.csv",
                {"dataset", "devices", "samples", "mean_per_device",
                 "stdev_per_device"});
  for (const auto& r : rows) {
    csv.write_row({r.name, std::to_string(r.devices), std::to_string(r.samples),
                   std::to_string(r.mean_per_device),
                   std::to_string(r.stdev_per_device)});
  }
  std::cout << "CSV written to " << csv.path() << "\n";
  return 0;
}
