// Figure 2: effect of statistical heterogeneity, no systems
// heterogeneity (every device runs E = 20 epochs). Four synthetic
// datasets of increasing heterogeneity; top row training loss, bottom row
// the gradient-variance dissimilarity metric. FedProx mu=0 here reduces
// to FedAvg. Expected shape: convergence degrades left to right for
// mu=0; mu>0 combats it; the variance metric tracks the loss.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Figure 2",
               "statistical heterogeneity: loss and gradient variance on "
               "synthetic datasets");

  CsvWriter csv(options.out_dir + "/fig2_statistical_heterogeneity.csv",
                history_csv_header());

  for (const auto& name : synthetic_workload_names()) {
    const Workload w = load_workload(name, options);
    std::vector<VariantSpec> specs;
    for (double mu : {0.0, 1.0}) {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, mu,
                                    /*stragglers=*/0.0, options.epochs,
                                    options.seed);
      apply_rounds(c, w, options);
      c.measure_dissimilarity = true;
      const std::string label =
          mu == 0.0 ? "FedAvg (FedProx, mu=0)" : "FedProx, mu>0 (mu=1)";
      specs.push_back({label, c});
    }
    auto results = run_variants(w, specs);
    std::cout << "\n--- " << w.name << ": training loss ---\n"
              << render_series(results, Metric::kTrainLoss)
              << "\n--- " << w.name << ": variance of local gradients ---\n"
              << render_series(results, Metric::kGradVariance);
    append_history_csv(csv, w.name, results);
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
