// Figures 9 and 10 (Appendix C.3.2): the E = 1 partial-work study. Every
// device can run at most one local epoch; stragglers complete a uniform
// fraction of that epoch. Loss (Fig 9) and testing accuracy (Fig 10)
// under 0% / 50% / 90% stragglers. Expected shape: local updates deviate
// little at E = 1, so statistical heterogeneity bites less, but keeping
// partial solutions (FedProx mu=0) still beats dropping them (FedAvg).

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  BenchOptions options = parse_options(argc, argv);
  options.epochs = 1;  // the defining setting of this figure
  print_banner("Figures 9-10", "partial work with E = 1");

  CsvWriter csv(options.out_dir + "/fig9_partial_work_e1.csv",
                history_csv_header());

  for (const auto& name : figure1_workload_names()) {
    const Workload w = load_workload(name, options);
    for (double stragglers : {0.0, 0.5, 0.9}) {
      std::vector<VariantSpec> specs;
      {
        TrainerConfig c = base_config(w, Algorithm::kFedAvg, 0.0, stragglers,
                                      options.epochs, options.seed);
        apply_rounds(c, w, options);
        specs.push_back({"FedAvg", c});
      }
      {
        TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, stragglers,
                                      options.epochs, options.seed);
        apply_rounds(c, w, options);
        specs.push_back({"FedProx (mu=0)", c});
      }
      {
        TrainerConfig c =
            base_config(w, Algorithm::kFedProx, w.best_mu, stragglers,
                        options.epochs, options.seed);
        apply_rounds(c, w, options);
        specs.push_back({"FedProx (best mu)", c});
      }
      auto results = run_variants(w, specs);
      const std::string tag =
          std::to_string(static_cast<int>(stragglers * 100)) + "% stragglers";
      std::cout << "\n--- " << w.name << " (" << tag
                << ", E=1): training loss ---\n"
                << render_series(results, Metric::kTrainLoss)
                << "\n--- " << w.name << " (" << tag
                << ", E=1): testing accuracy ---\n"
                << render_series(results, Metric::kTestAccuracy);
      append_history_csv(csv, w.name + "@" + tag, results);
    }
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
