// Figure 7 (Appendix C.3.2): testing accuracy for the Figure 1 settings,
// plus the paper's headline number — the average absolute testing-accuracy
// improvement of FedProx (best mu) over FedAvg in the highly heterogeneous
// 90%-straggler environment (paper: 22% absolute, on average across the
// five datasets). Accuracies are read off with the paper's convergence /
// divergence rule (Appendix C.3.2).

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Figure 7",
               "testing accuracy under systems heterogeneity + the 22% claim");

  CsvWriter csv(options.out_dir + "/fig7_test_accuracy.csv",
                history_csv_header());
  CsvWriter summary(options.out_dir + "/fig7_summary.csv",
                    {"dataset", "stragglers", "fedavg_acc", "fedprox_mu0_acc",
                     "fedprox_best_acc", "improvement_best_vs_fedavg"});

  double improvement_sum_90 = 0.0;
  std::size_t improvement_count_90 = 0;

  for (const auto& name : figure1_workload_names()) {
    const Workload w = load_workload(name, options);
    for (double stragglers : {0.0, 0.5, 0.9}) {
      std::vector<VariantSpec> specs;
      auto push = [&](Algorithm algorithm, double mu, const std::string& label) {
        TrainerConfig c = base_config(w, algorithm, mu, stragglers,
                                      options.epochs, options.seed);
        apply_rounds(c, w, options);
        specs.push_back({label, c});
      };
      push(Algorithm::kFedAvg, 0.0, "FedAvg");
      push(Algorithm::kFedProx, 0.0, "FedProx (mu=0)");
      push(Algorithm::kFedProx, w.best_mu, "FedProx (best mu)");
      auto results = run_variants(w, specs);

      const double acc_avg = settled_accuracy(results[0].history);
      const double acc_mu0 = settled_accuracy(results[1].history);
      const double acc_best = settled_accuracy(results[2].history);
      const double improvement = acc_best - acc_avg;
      if (stragglers == 0.9) {
        improvement_sum_90 += improvement;
        ++improvement_count_90;
      }
      const std::string tag =
          std::to_string(static_cast<int>(stragglers * 100)) + "%";
      std::cout << "\n--- " << w.name << " @ " << tag
                << " stragglers: testing accuracy ---\n"
                << render_series(results, Metric::kTestAccuracy)
                << "settled accuracies: FedAvg " << TablePrinter::fmt(acc_avg)
                << " | FedProx(mu=0) " << TablePrinter::fmt(acc_mu0)
                << " | FedProx(best mu) " << TablePrinter::fmt(acc_best)
                << " | improvement " << TablePrinter::fmt(improvement) << "\n";
      append_history_csv(csv, w.name + "@" + tag, results);
      summary.write_row({w.name, tag, std::to_string(acc_avg),
                         std::to_string(acc_mu0), std::to_string(acc_best),
                         std::to_string(improvement)});
    }
  }

  if (improvement_count_90 > 0) {
    const double mean =
        improvement_sum_90 / static_cast<double>(improvement_count_90);
    std::cout << "\n=== Average absolute testing-accuracy improvement of "
                 "FedProx (best mu) over FedAvg at 90% stragglers: "
              << std::fixed << std::setprecision(1) << 100.0 * mean
              << "% (paper reports 22%) ===\n";
  }
  std::cout << "\nCSVs written to " << csv.path() << " and " << summary.path()
            << "\n";
  return 0;
}
