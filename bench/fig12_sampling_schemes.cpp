// Figure 12 (Appendix C.3.4): comparing the two device-sampling schemes
// on the four synthetic datasets with uniform local work (E = 20):
//   uniform sampling + n_k-weighted aggregation (experiments' scheme)
//   p_k-weighted sampling + simple average       (analysis' scheme)
// each with mu = 0 and mu = 1. Expected shape: the weighted-sampling
// scheme is slightly better/more stable; mu = 1 is more stable than
// mu = 0 under either scheme.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Figure 12", "two device sampling schemes");

  CsvWriter csv(options.out_dir + "/fig12_sampling_schemes.csv",
                history_csv_header());

  for (const auto& name : synthetic_workload_names()) {
    const Workload w = load_workload(name, options);
    std::vector<VariantSpec> specs;
    for (auto scheme : {SamplingScheme::kUniformThenWeightedAverage,
                        SamplingScheme::kWeightedThenSimpleAverage}) {
      for (double mu : {0.0, 1.0}) {
        TrainerConfig c = base_config(w, Algorithm::kFedProx, mu, 0.0,
                                      options.epochs, options.seed);
        apply_rounds(c, w, options);
        c.sampling = scheme;
        c.measure_dissimilarity = true;
        specs.push_back({"mu=" + std::to_string(static_cast<int>(mu)) + ", " +
                             to_string(scheme),
                         c});
      }
    }
    auto results = run_variants(w, specs);
    std::cout << "\n--- " << w.name << ": training loss ---\n"
              << render_series(results, Metric::kTrainLoss)
              << "\n--- " << w.name << ": testing accuracy ---\n"
              << render_series(results, Metric::kTestAccuracy);
    append_history_csv(csv, w.name, results);
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
