// Figure 3: adaptively setting mu (+0.1 when the loss rises, -0.1 after 5
// consecutive falls) on Synthetic-IID (mu starts at 1 — adversarial) and
// Synthetic(1,1) (mu starts at 0 — adversarial). Expected shape: the
// heuristic tracks the hand-tuned mu>0 curve closely on the heterogeneous
// data and recovers from the bad initial mu on IID data.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Figure 3", "adaptive mu heuristic (adversarial initial mu)");

  CsvWriter csv(options.out_dir + "/fig3_adaptive_mu.csv",
                history_csv_header());

  const std::vector<std::pair<std::string, double>> datasets{
      {"synthetic_iid", 1.0},  // adversarial init for IID
      {"synthetic_1_1", 0.0},  // adversarial init for non-IID
  };
  for (const auto& [name, initial_mu] : datasets) {
    const Workload w = load_workload(name, options);
    std::vector<VariantSpec> specs;
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      specs.push_back({"FedAvg (FedProx, mu=0)", c});
    }
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, 0.0, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      c.adaptive_mu.enabled = true;
      c.adaptive_mu.initial_mu = initial_mu;
      specs.push_back(
          {"FedProx, dynamic mu (mu0=" + std::to_string(initial_mu) + ")", c});
    }
    {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, 1.0, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      specs.push_back({"FedProx, mu>0 (mu=1)", c});
    }
    auto results = run_variants(w, specs);
    std::cout << "\n--- " << w.name << ": training loss ---\n"
              << render_series(results, Metric::kTrainLoss)
              << "\n--- " << w.name << ": mu trajectory ---\n"
              << render_series(results, Metric::kMu);
    append_history_csv(csv, w.name, results);
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
