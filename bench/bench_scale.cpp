// Registered-device scale sweep: server-side throughput and memory as
// the federation grows from 10k to 1M registered devices.
//
// Each sweep point builds a synthetic federation with a deliberately
// tiny per-device footprint (input_dim 20, 5 classes, min 2 samples) so
// the registry itself — not the local solves — dominates, samples at
// least 1k devices per round, trains a few FedProx rounds with
// evaluation only on the first and final round, and records
//
//   rounds/sec     training rounds per second of non-eval round time
//                  (from the round traces, so eval cost is excluded)
//   peak RSS       VmHWM from /proc/self/status after the point ran
//                  (a process-lifetime high-water mark: points run in
//                  ascending order, so each row's value is the peak so
//                  far and the last row is the sweep's true peak)
//
// into BENCH_scale.json. Not a ctest — run it like micro_kernels:
//
//   ./bench_scale [--max-devices 1000000] [--rounds 5] [--shards N]
//                 [--sampled 1000] [--quick]

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "nn/logistic.h"
#include "obs/observer.h"
#include "support/json.h"
#include "support/stopwatch.h"

namespace {

using namespace fed;
using namespace fed::bench;

// Peak resident set size of this process in kilobytes (VmHWM), or 0
// when /proc is unavailable.
std::size_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    std::size_t kb = 0;
    fields >> kb;
    return kb;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const auto max_devices =
      static_cast<std::size_t>(flags.get_int("max-devices", 1000000));
  const auto sampled = static_cast<std::size_t>(flags.get_int("sampled", 1000));
  const std::string json_path = flags.get_string("bench-json",
                                                 "BENCH_scale.json");
  BenchOptions options = parse_options(flags);
  const std::size_t rounds =
      options.rounds_override ? options.rounds_override : 5;

  print_banner("bench_scale",
               "registered-device scale sweep (throughput + peak RSS)");

  std::vector<std::size_t> sweep;
  for (std::size_t n = options.quick ? 1000 : 10000; n <= max_devices;
       n *= 10) {
    sweep.push_back(n);
  }
  if (sweep.empty()) sweep.push_back(max_devices);

  JsonArray points;
  TablePrinter table({"devices", "sampled", "rounds/sec", "round_s",
                      "peak_rss_mb"});
  for (const std::size_t devices : sweep) {
    SyntheticConfig synth = synthetic_config(1.0, 1.0, options.seed);
    synth.num_devices = devices;
    synth.input_dim = 20;
    synth.num_classes = 5;
    // Tiny per-device shards: 2 + floor(exp(N(0.5, 0.5))) samples, so a
    // million devices fit in memory and the sweep stresses the registry
    // and the per-round selection/aggregation path, not the solves.
    synth.min_samples = 2;
    synth.mean_log = 0.5;
    synth.sigma_log = 0.5;

    Stopwatch build_timer;
    const FederatedDataset data = make_synthetic(synth);
    const double build_seconds = build_timer.seconds();
    LogisticRegression model(synth.input_dim, synth.num_classes);

    TrainerConfig config = fedprox_config(/*mu=*/1.0);
    config.rounds = rounds;
    config.devices_per_round = std::min(sampled, data.num_clients());
    config.systems.epochs = 1;
    config.batch_size = 10;
    config.learning_rate = 0.05;
    config.eval_every = rounds;  // evaluate only the first + final round
    config.seed = options.seed;
    apply_common_flags(config, options);

    TraceCollector collector;
    Trainer trainer(model, data, config);
    trainer.add_observer(collector);
    Stopwatch train_timer;
    const TrainHistory history = trainer.run();
    const double train_seconds = train_timer.seconds();

    // Throughput over the training rounds only: skip the eval-only round
    // 0 and subtract the eval phase from the final round's wall time.
    double train_round_seconds = 0.0;
    std::size_t train_rounds = 0;
    for (const auto& t : collector.traces()) {
      if (t.selected == 0) continue;
      train_round_seconds += t.round_seconds - t.eval_seconds;
      ++train_rounds;
    }
    const double rounds_per_sec =
        train_round_seconds > 0.0 ? train_rounds / train_round_seconds : 0.0;
    const std::size_t rss_kb = peak_rss_kb();

    JsonObject point;
    point["registered_devices"] = devices;
    point["sampled_per_round"] = config.devices_per_round;
    point["train_rounds"] = train_rounds;
    point["rounds_per_sec"] = rounds_per_sec;
    point["train_round_seconds_mean"] =
        train_rounds ? train_round_seconds / train_rounds : 0.0;
    point["dataset_build_seconds"] = build_seconds;
    point["train_wall_seconds"] = train_seconds;
    point["total_train_samples"] = data.total_train_samples();
    point["peak_rss_kb"] = rss_kb;
    point["final_train_loss"] = *history.final_metrics().train_loss;
    points.push_back(JsonValue(std::move(point)));

    table.add_row({std::to_string(devices),
                   std::to_string(config.devices_per_round),
                   TablePrinter::fmt(rounds_per_sec, 3),
                   TablePrinter::fmt(train_rounds
                                         ? train_round_seconds / train_rounds
                                         : 0.0, 4),
                   TablePrinter::fmt(rss_kb / 1024.0, 1)});
  }

  JsonObject out;
  out["benchmark"] = "scale_sweep";
  out["model"] = "logistic 20x5";
  out["rounds"] = rounds;
  out["shards"] = options.shards;
  out["transport"] = options.transport;
  out["threads_note"] = "0 = hardware concurrency";
  out["points"] = std::move(points);
  save_json_file(json_path, JsonValue(std::move(out)));

  std::cout << table.render() << "\nwrote " << json_path << "\n";
  return 0;
}
