// Figure 4 (Appendix B): FedDane vs FedProx on the four synthetic
// datasets. Top block: K=10 of 30 devices sampled for both methods.
// Bottom block: FedDane with increasing participation (K = 10, 20, 30)
// to narrow the gradient-estimation gap. Expected shape: FedDane tracks
// FedProx on IID data but degrades/diverges on the non-IID sets, and more
// participation only partially helps.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fed;
  using namespace fed::bench;
  const BenchOptions options = parse_options(argc, argv);
  print_banner("Figure 4", "FedDane gradient correction vs FedProx");

  CsvWriter csv(options.out_dir + "/fig4_feddane.csv", history_csv_header());

  for (const auto& name : synthetic_workload_names()) {
    const Workload w = load_workload(name, options);
    // Top: FedProx vs FedDane at K = 10, mu in {0, 1}.
    std::vector<VariantSpec> specs;
    for (double mu : {0.0, 1.0}) {
      TrainerConfig c = base_config(w, Algorithm::kFedProx, mu, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      specs.push_back({"FedProx (mu=" + std::to_string(static_cast<int>(mu)) +
                           ", K=10)",
                       c});
    }
    for (double mu : {0.0, 1.0}) {
      TrainerConfig c = base_config(w, Algorithm::kFedDane, mu, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      specs.push_back({"FedDane (mu=" + std::to_string(static_cast<int>(mu)) +
                           ", K=10)",
                       c});
    }
    // Bottom: FedDane with more participating devices.
    for (std::size_t k : {20u, 30u}) {
      if (k > w.data.num_clients()) continue;
      TrainerConfig c = base_config(w, Algorithm::kFedDane, 0.0, 0.0,
                                    options.epochs, options.seed);
      apply_rounds(c, w, options);
      c.devices_per_round = k;
      specs.push_back({"FedDane (mu=0, K=" + std::to_string(k) + ")", c});
    }
    auto results = run_variants(w, specs);
    std::cout << "\n--- " << w.name << ": training loss ---\n"
              << render_series(results, Metric::kTrainLoss);
    append_history_csv(csv, w.name, results);
  }
  std::cout << "\nCSV written to " << csv.path() << "\n";
  return 0;
}
